/**
 * @file
 * Figure 16 reproduction: server throughput improvement per platform
 * without degrading latency beyond the baseline (100% load; the
 * queueing-aware version is Figure 17).
 *
 * `--measured [batch-size]` adds a software data point to the analytic
 * table: it trains the real pipeline and drives a closed loop through a
 * core::ConcurrentServer twice — serial kernels (--no-batching
 * equivalent) and micro-batched at the given size (default 8) — and
 * reports the measured throughput ratio. This is the same knob
 * load_test exposes, packaged as a before/after experiment.
 *
 * `--measured --shards N1 [N2 ...]` (default counts 1 2 4) switches to
 * the scale-out experiment: closed-loop throughput vs shard count
 * through a core::ClusterRouter, three columns per count —
 *
 *   this-host qps    a real cluster squeezed onto this machine's cores
 *                    (flat once shard threads outnumber cores);
 *   fleet qps        the virtual-time fleet projection replaying the
 *                    *measured* per-query service times with one
 *                    machine per shard — the deployment the paper
 *                    assumes, and the column the scaling ratios cite;
 *   dcsim ratio      the queueing model's predicted capacity ratio
 *                    (shardedMm1MaxArrival: capacity adds linearly).
 *
 * It finishes with the outage drill: kill a shard mid-run and show
 * throughput degrading without a single Failed query.
 *
 * `--metrics-out PATH` / `--csv-out PATH` (with --measured) export the
 * per-arm server metrics — labeled {experiment=,arm=} — as Prometheus
 * text or CSV for the bench harness, same idiom as fig17 and load_test.
 * The measured run also prices the observability plane itself: the
 * batched closed loop repeats with 100% trace sampling + SLO tracker +
 * flight recorder + event log attached, and the throughput delta vs
 * the plane-off arm is reported (budget: within 2%; docs/BENCHMARKS.md).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "accel/latency.h"
#include "bench_util.h"
#include "common/flight_recorder.h"
#include "common/simd.h"
#include "common/slo.h"
#include "common/timer.h"
#include "core/cluster.h"
#include "core/concurrent_server.h"
#include "dcsim/queueing.h"

using namespace sirius;
using namespace sirius::accel;

namespace {

void
writeFile(const std::string &path, const std::string &text,
          const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s to %s\n", what, path.c_str());
}

/** Per-arm metrics sink: every measured server exports into one
 *  registry labeled {experiment=,arm=}, rendered at exit. */
struct MetricsSink
{
    MetricsRegistry registry;
    std::string metricsOut;
    std::string csvOut;

    void flush()
    {
        if (!metricsOut.empty())
            writeFile(metricsOut, registry.renderPrometheus(),
                      "Prometheus metrics");
        if (!csvOut.empty())
            writeFile(csvOut, registry.renderCsv(), "CSV metrics");
    }
};

double
measuredClosedLoopQps(const core::SiriusPipeline &pipeline,
                      core::ConcurrentServerConfig config,
                      size_t queries_per_client,
                      MetricsSink *sink = nullptr,
                      const char *experiment = "", const char *arm = "")
{
    core::ConcurrentServer server(pipeline, config);
    const auto result = core::runClosedLoop(server, config.workers,
                                            queries_per_client);
    if (sink != nullptr)
        server.exportMetrics(sink->registry,
                             {{"experiment", experiment}, {"arm", arm}});
    return result.achievedQps;
}

/** One cache-comparison arm: steady-state qps + cache accounting. */
struct CacheArm
{
    double qps = 0.0;
    core::PipelineCacheSnapshot caches;
};

/**
 * Closed loop under Zipf-skewed query selection, measured at steady
 * state: a warm pass runs first on the same server (populating the
 * caches when they are on; the uncached arm pays the identical warm
 * cost for fairness), then the measured pass. Both arms draw the same
 * query sequence (same seed), so the comparison is load-for-load.
 */
CacheArm
measuredZipfClosedLoop(const core::SiriusPipeline &pipeline,
                       core::ConcurrentServerConfig config,
                       size_t queries_per_client, double zipf_skew)
{
    core::ConcurrentServer server(pipeline, config);
    core::runClosedLoop(server, config.workers, 10, zipf_skew);
    const auto result = core::runClosedLoop(
        server, config.workers, queries_per_client, zipf_skew);
    CacheArm arm;
    arm.qps = result.achievedQps;
    arm.caches = server.snapshot().caches;
    return arm;
}

int
runMeasured(size_t batch_size, MetricsSink &sink)
{
    bench::banner("Figure 16 (measured): micro-batched vs serial "
                  "kernels, closed loop");
    // DNN backend: the Figure-16 ASR headline is the DNN, and it is
    // where batching pays most (one register-blocked GEMM per layer
    // instead of per-frame matvecs).
    std::printf("training the pipeline (DNN acoustic backend)...\n");
    core::SiriusConfig pipeline_config;
    pipeline_config.asrBackend = speech::AsrBackend::Dnn;
    const auto pipeline = core::SiriusPipeline::build(pipeline_config);

    core::ConcurrentServerConfig config;
    config.workers = 4;
    const size_t queries_per_client = 42;

    config.batching.enabled = false;
    // Warm-up pass so neither side pays first-touch costs.
    measuredClosedLoopQps(pipeline, config, 10);
    const double serial = measuredClosedLoopQps(
        pipeline, config, queries_per_client, &sink, "batching",
        "serial");

    config.batching.enabled = true;
    config.batching.maxBatchSize = batch_size;
    const double batched = measuredClosedLoopQps(
        pipeline, config, queries_per_client, &sink, "batching",
        "batched");

    std::printf("\n%-24s %10s\n", "kernel execution", "throughput");
    std::printf("%-24s %8.1fqps\n", "serial (--no-batching)", serial);
    std::printf("%-24s %8.1fqps\n", "batched", batched);
    std::printf("\nbatching at size %zu: %.2fx the serial closed-loop "
                "throughput\n", batch_size, batched / serial);
    std::printf("(identical results either way — the batched kernels "
                "are bitwise-equal to serial; see test_batching)\n");

    // Caching comparison: batched kernels both ways, Zipf(1.0)-skewed
    // queries (the repetition-heavy regime real assistant traffic
    // shows), caches off vs on. See docs/CACHING.md.
    const double zipf_skew = 1.0;
    bench::subhead("result caching under Zipf(1.0) skew "
                   "(cache on vs --no-cache)");
    core::ConcurrentServerConfig cache_config = config;
    cache_config.cache.enabled = false;
    const CacheArm uncached = measuredZipfClosedLoop(
        pipeline, cache_config, queries_per_client, zipf_skew);
    cache_config.cache.enabled = true;
    const CacheArm cached = measuredZipfClosedLoop(
        pipeline, cache_config, queries_per_client, zipf_skew);

    std::printf("%-24s %10s %9s %9s %9s\n", "result caches",
                "throughput", "asr-hit", "ans-hit", "imm-hit");
    std::printf("%-24s %8.1fqps %9s %9s %9s\n", "off (--no-cache)",
                uncached.qps, "-", "-", "-");
    std::printf("%-24s %8.1fqps %8.0f%% %8.0f%% %8.0f%%\n", "on",
                cached.qps,
                cached.caches.acousticScores.hitRate() * 100.0,
                cached.caches.answers.hitRate() * 100.0,
                cached.caches.matches.hitRate() * 100.0);
    std::printf("\ncaching at Zipf(%.1f): %.2fx the uncached "
                "closed-loop throughput\n", zipf_skew,
                cached.qps / uncached.qps);
    std::printf("(identical per-query results either way — cache keys "
                "are exact-content hashes; see test_cache)\n");

    // Observability-plane overhead: the batched closed loop again,
    // plane off vs fully on (100% trace sampling, SLO tracker, flight
    // recorder, event log). Best-of-3 per arm damps scheduler noise;
    // the budget is 2% (docs/BENCHMARKS.md observability row).
    bench::subhead("observability plane overhead (plane on vs off)");
    const auto best_of = [&](const core::ConcurrentServerConfig &c,
                             const char *arm) {
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep)
            best = std::max(best, measuredClosedLoopQps(
                                      pipeline, c, queries_per_client,
                                      &sink, "observability", arm));
        return best;
    };
    const double plane_off = best_of(config, "plane_off");

    EventLog events(1024);
    SloTracker slo(defaultSloConfig(0.25), &events);
    FlightRecorder flight;
    core::ConcurrentServerConfig plane_config = config;
    plane_config.traceSampleRate = 1.0;
    plane_config.traceCapacity = 1 << 14;
    plane_config.slo = &slo;
    plane_config.flight = &flight;
    const double plane_on = best_of(plane_config, "plane_on");

    const double overhead =
        (plane_off - plane_on) / plane_off * 100.0;
    std::printf("%-24s %10s\n", "observability plane", "throughput");
    std::printf("%-24s %8.1fqps\n", "off", plane_off);
    std::printf("%-24s %8.1fqps   (100%% sampling + slo + "
                "flight + events)\n", "on", plane_on);
    std::printf("\nplane-on overhead: %.1f%% of plane-off throughput "
                "(budget 2%%) — %s\n", overhead,
                overhead <= 2.0 ? "PASS" : "WARN: over budget");
    return 0;
}

/**
 * Closed-loop throughput vs shard count. The scaling claim rides the
 * virtual-time fleet projection (one machine per shard, measured
 * service times), because a single host cannot add cores by adding
 * shards — the real this-host column is printed beside it as the
 * honest same-machine measurement.
 */
int
runShardScaling(const std::vector<size_t> &shard_counts,
                MetricsSink &sink)
{
    bench::banner("Figure 16 (measured): closed-loop qps vs shard "
                  "count");
    std::printf("training the pipeline (DNN acoustic backend)...\n");
    core::SiriusConfig pipeline_config;
    pipeline_config.asrBackend = speech::AsrBackend::Dnn;
    const auto pipeline = core::SiriusPipeline::build(pipeline_config);

    // Measured per-query service times (serial, unloaded): the ground
    // truth both the projection and the queueing model consume.
    const auto &queries = core::standardQuerySet();
    std::vector<double> service_seconds;
    service_seconds.reserve(queries.size());
    for (const auto &query : queries) // warm pass: first-touch costs
        pipeline.process(query);
    double total = 0.0;
    for (const auto &query : queries) {
        Stopwatch watch;
        pipeline.process(query);
        service_seconds.push_back(watch.seconds());
        total += service_seconds.back();
    }
    const double mean_service = total / service_seconds.size();
    const double mu = 1.0 / mean_service;
    std::printf("measured mean service time %.2f ms (mu = %.1f "
                "queries/s per shard worker)\n\n", mean_service * 1e3,
                mu);

    core::ConcurrentServerConfig shard_config;
    shard_config.workers = 1;
    shard_config.batching.enabled = false; // one client per worker:
                                           // batches would be singletons
    const size_t queries_per_client = 42;
    // dcsim capacity bound: the latency budget is irrelevant to the
    // *ratio* (capacity adds linearly in shards), pick 2x service time.
    const double bound = 2.0 * mean_service;

    std::printf("%-8s %14s %14s %12s %12s\n", "shards",
                "this-host qps", "fleet qps", "fleet ratio",
                "dcsim ratio");
    double base_fleet = 0.0;
    for (size_t shards : shard_counts) {
        core::ClusterConfig cluster;
        cluster.shards = shards;
        cluster.shard = shard_config;
        core::ClusterRouter router(pipeline, cluster);
        const auto real = core::runClosedLoop(router, shards,
                                              queries_per_client);
        char arm[24];
        std::snprintf(arm, sizeof(arm), "%zu_shards", shards);
        router.exportMetrics(sink.registry,
                             {{"experiment", "scaling"}, {"arm", arm}});
        const auto fleet = core::projectClosedLoopFleet(
            service_seconds, shards, shard_config.workers, 1,
            queries_per_client);
        if (base_fleet == 0.0)
            base_fleet = fleet.aggregateQps;
        const double dcsim_ratio =
            dcsim::shardedMm1MaxArrival(
                mu, bound, static_cast<unsigned>(shards)) /
            dcsim::shardedMm1MaxArrival(mu, bound, 1);
        std::printf("%-8zu %12.1fqps %12.1fqps %11.2fx %11.2fx\n",
                    shards, real.achievedQps, fleet.aggregateQps,
                    fleet.aggregateQps / base_fleet, dcsim_ratio);
    }
    std::printf("\nfleet qps is the virtual-time projection (one "
                "machine per shard, measured service times); this-host "
                "qps time-slices every shard onto this machine's cores "
                "and goes flat once threads outnumber them. See "
                "docs/SCALING.md for why the fleet column is the "
                "deployment-shaped number\n");

    // Outage drill at the largest count: kill one shard mid-run; the
    // router must absorb it (throughput may dip, no query may fail).
    const size_t drill_shards = shard_counts.back();
    if (drill_shards >= 2) {
        bench::subhead("outage drill: kill one shard mid-run");
        core::ClusterConfig cluster;
        cluster.shards = drill_shards;
        cluster.shard = shard_config;
        core::ClusterRouter router(pipeline, cluster);
        core::ClusterLoadOptions drill;
        drill.killShard = 0;
        drill.killShardAt = drill_shards * queries_per_client / 2;
        const auto result = core::runClosedLoop(
            router, drill_shards, queries_per_client, drill);
        const auto stats = router.snapshot();
        const uint64_t failed = stats.outcomes[static_cast<size_t>(
            core::Degradation::Failed)];
        std::printf("killed shard 0 at request %zu of %zu: %.1f qps "
                    "served, %llu failovers, failed %llu\n",
                    drill.killShardAt,
                    drill_shards * queries_per_client,
                    result.achievedQps,
                    static_cast<unsigned long long>(stats.failovers),
                    static_cast<unsigned long long>(failed));
        std::printf("%s: an administrative shard kill %s\n",
                    failed == 0 ? "PASS" : "FAIL",
                    failed == 0
                        ? "degraded capacity without failing a query"
                        : "leaked Failed queries through the router");
        if (failed != 0)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("%s\n", simd::describeDispatch().c_str());
    if (argc > 1 && std::strcmp(argv[1], "--measured") == 0) {
        std::vector<size_t> shard_counts;
        size_t batch_size = 8;
        MetricsSink sink;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--shards") == 0) {
                while (i + 1 < argc && std::atoi(argv[i + 1]) > 0)
                    shard_counts.push_back(
                        static_cast<size_t>(std::atoi(argv[++i])));
                if (shard_counts.empty())
                    shard_counts = {1, 2, 4};
            } else if (std::strcmp(argv[i], "--metrics-out") == 0 &&
                       i + 1 < argc)
                sink.metricsOut = argv[++i];
            else if (std::strcmp(argv[i], "--csv-out") == 0 &&
                     i + 1 < argc)
                sink.csvOut = argv[++i];
            else if (std::atoi(argv[i]) > 0)
                batch_size = static_cast<size_t>(std::atoi(argv[i]));
        }
        const int rc = shard_counts.empty()
                           ? runMeasured(batch_size, sink)
                           : runShardScaling(shard_counts, sink);
        sink.flush();
        return rc;
    }
    bench::banner("Figure 16: Throughput Across Services (vs 4-core "
                  "query-parallel CMP)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();

    std::printf("%-11s %10s %10s %10s %10s\n", "service", "CMP(subq)",
                "GPU", "Phi", "FPGA");
    for (const auto &profile : profiles) {
        std::printf("%-11s", serviceKindName(profile.kind));
        for (Platform p : {Platform::CmpMulticore, Platform::Gpu,
                           Platform::Phi, Platform::Fpga}) {
            std::printf(" %9.2fx",
                        throughputImprovement(profile, model, p));
        }
        std::printf("\n");
    }

    bench::subhead("key observations (paper section 5.2.1)");
    std::printf("- GPU on ASR (DNN): %.1fx (paper: 13.7x)\n",
                throughputImprovement(profiles[1], model,
                                      Platform::Gpu));
    std::printf("- FPGA on IMM: %.1fx (paper: 12.6x)\n",
                throughputImprovement(profiles[3], model,
                                      Platform::Fpga));
    std::printf("- QA improvements are the most limited across "
                "platforms (CRF's 3.8-7.5x ceiling)\n");
    return 0;
}
