/**
 * @file
 * Figure 16 reproduction: server throughput improvement per platform
 * without degrading latency beyond the baseline (100% load; the
 * queueing-aware version is Figure 17).
 */

#include <cstdio>

#include "accel/latency.h"
#include "bench_util.h"

using namespace sirius;
using namespace sirius::accel;

int
main()
{
    bench::banner("Figure 16: Throughput Across Services (vs 4-core "
                  "query-parallel CMP)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();

    std::printf("%-11s %10s %10s %10s %10s\n", "service", "CMP(subq)",
                "GPU", "Phi", "FPGA");
    for (const auto &profile : profiles) {
        std::printf("%-11s", serviceKindName(profile.kind));
        for (Platform p : {Platform::CmpMulticore, Platform::Gpu,
                           Platform::Phi, Platform::Fpga}) {
            std::printf(" %9.2fx",
                        throughputImprovement(profile, model, p));
        }
        std::printf("\n");
    }

    bench::subhead("key observations (paper section 5.2.1)");
    std::printf("- GPU on ASR (DNN): %.1fx (paper: 13.7x)\n",
                throughputImprovement(profiles[1], model,
                                      Platform::Gpu));
    std::printf("- FPGA on IMM: %.1fx (paper: 12.6x)\n",
                throughputImprovement(profiles[3], model,
                                      Platform::Fpga));
    std::printf("- QA improvements are the most limited across "
                "platforms (CRF's 3.8-7.5x ceiling)\n");
    return 0;
}
