/**
 * @file
 * Figure 16 reproduction: server throughput improvement per platform
 * without degrading latency beyond the baseline (100% load; the
 * queueing-aware version is Figure 17).
 *
 * `--measured [batch-size]` adds a software data point to the analytic
 * table: it trains the real pipeline and drives a closed loop through a
 * core::ConcurrentServer twice — serial kernels (--no-batching
 * equivalent) and micro-batched at the given size (default 8) — and
 * reports the measured throughput ratio. This is the same knob
 * load_test exposes, packaged as a before/after experiment.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "accel/latency.h"
#include "bench_util.h"
#include "core/concurrent_server.h"

using namespace sirius;
using namespace sirius::accel;

namespace {

double
measuredClosedLoopQps(const core::SiriusPipeline &pipeline,
                      core::ConcurrentServerConfig config,
                      size_t queries_per_client)
{
    core::ConcurrentServer server(pipeline, config);
    const auto result = core::runClosedLoop(server, config.workers,
                                            queries_per_client);
    return result.achievedQps;
}

/** One cache-comparison arm: steady-state qps + cache accounting. */
struct CacheArm
{
    double qps = 0.0;
    core::PipelineCacheSnapshot caches;
};

/**
 * Closed loop under Zipf-skewed query selection, measured at steady
 * state: a warm pass runs first on the same server (populating the
 * caches when they are on; the uncached arm pays the identical warm
 * cost for fairness), then the measured pass. Both arms draw the same
 * query sequence (same seed), so the comparison is load-for-load.
 */
CacheArm
measuredZipfClosedLoop(const core::SiriusPipeline &pipeline,
                       core::ConcurrentServerConfig config,
                       size_t queries_per_client, double zipf_skew)
{
    core::ConcurrentServer server(pipeline, config);
    core::runClosedLoop(server, config.workers, 10, zipf_skew);
    const auto result = core::runClosedLoop(
        server, config.workers, queries_per_client, zipf_skew);
    CacheArm arm;
    arm.qps = result.achievedQps;
    arm.caches = server.snapshot().caches;
    return arm;
}

int
runMeasured(size_t batch_size)
{
    bench::banner("Figure 16 (measured): micro-batched vs serial "
                  "kernels, closed loop");
    // DNN backend: the Figure-16 ASR headline is the DNN, and it is
    // where batching pays most (one register-blocked GEMM per layer
    // instead of per-frame matvecs).
    std::printf("training the pipeline (DNN acoustic backend)...\n");
    core::SiriusConfig pipeline_config;
    pipeline_config.asrBackend = speech::AsrBackend::Dnn;
    const auto pipeline = core::SiriusPipeline::build(pipeline_config);

    core::ConcurrentServerConfig config;
    config.workers = 4;
    const size_t queries_per_client = 42;

    config.batching.enabled = false;
    // Warm-up pass so neither side pays first-touch costs.
    measuredClosedLoopQps(pipeline, config, 10);
    const double serial =
        measuredClosedLoopQps(pipeline, config, queries_per_client);

    config.batching.enabled = true;
    config.batching.maxBatchSize = batch_size;
    const double batched =
        measuredClosedLoopQps(pipeline, config, queries_per_client);

    std::printf("\n%-24s %10s\n", "kernel execution", "throughput");
    std::printf("%-24s %8.1fqps\n", "serial (--no-batching)", serial);
    std::printf("%-24s %8.1fqps\n", "batched", batched);
    std::printf("\nbatching at size %zu: %.2fx the serial closed-loop "
                "throughput\n", batch_size, batched / serial);
    std::printf("(identical results either way — the batched kernels "
                "are bitwise-equal to serial; see test_batching)\n");

    // Caching comparison: batched kernels both ways, Zipf(1.0)-skewed
    // queries (the repetition-heavy regime real assistant traffic
    // shows), caches off vs on. See docs/CACHING.md.
    const double zipf_skew = 1.0;
    bench::subhead("result caching under Zipf(1.0) skew "
                   "(cache on vs --no-cache)");
    core::ConcurrentServerConfig cache_config = config;
    cache_config.cache.enabled = false;
    const CacheArm uncached = measuredZipfClosedLoop(
        pipeline, cache_config, queries_per_client, zipf_skew);
    cache_config.cache.enabled = true;
    const CacheArm cached = measuredZipfClosedLoop(
        pipeline, cache_config, queries_per_client, zipf_skew);

    std::printf("%-24s %10s %9s %9s %9s\n", "result caches",
                "throughput", "asr-hit", "ans-hit", "imm-hit");
    std::printf("%-24s %8.1fqps %9s %9s %9s\n", "off (--no-cache)",
                uncached.qps, "-", "-", "-");
    std::printf("%-24s %8.1fqps %8.0f%% %8.0f%% %8.0f%%\n", "on",
                cached.qps,
                cached.caches.acousticScores.hitRate() * 100.0,
                cached.caches.answers.hitRate() * 100.0,
                cached.caches.matches.hitRate() * 100.0);
    std::printf("\ncaching at Zipf(%.1f): %.2fx the uncached "
                "closed-loop throughput\n", zipf_skew,
                cached.qps / uncached.qps);
    std::printf("(identical per-query results either way — cache keys "
                "are exact-content hashes; see test_cache)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--measured") == 0) {
        const size_t batch_size = argc > 2
            ? static_cast<size_t>(std::atoi(argv[2]))
            : 8;
        return runMeasured(batch_size == 0 ? 8 : batch_size);
    }
    bench::banner("Figure 16: Throughput Across Services (vs 4-core "
                  "query-parallel CMP)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();

    std::printf("%-11s %10s %10s %10s %10s\n", "service", "CMP(subq)",
                "GPU", "Phi", "FPGA");
    for (const auto &profile : profiles) {
        std::printf("%-11s", serviceKindName(profile.kind));
        for (Platform p : {Platform::CmpMulticore, Platform::Gpu,
                           Platform::Phi, Platform::Fpga}) {
            std::printf(" %9.2fx",
                        throughputImprovement(profile, model, p));
        }
        std::printf("\n");
    }

    bench::subhead("key observations (paper section 5.2.1)");
    std::printf("- GPU on ASR (DNN): %.1fx (paper: 13.7x)\n",
                throughputImprovement(profiles[1], model,
                                      Platform::Gpu));
    std::printf("- FPGA on IMM: %.1fx (paper: 12.6x)\n",
                throughputImprovement(profiles[3], model,
                                      Platform::Fpga));
    std::printf("- QA improvements are the most limited across "
                "platforms (CRF's 3.8-7.5x ceiling)\n");
    return 0;
}
