/**
 * @file
 * Figure 14 reproduction: end-to-end query latency per service on a
 * single leaf node configured with each accelerator.
 *
 * Service profiles use the paper-magnitude component split (validated
 * against our measured Figure 9 breakdown); accelerated platforms come
 * from the calibrated Table 5 model. CMP is the 1-thread original, CMP
 * (sub-query) the 4-core pthread port.
 */

#include <cstdio>

#include "accel/latency.h"
#include "bench_util.h"

using namespace sirius;
using namespace sirius::accel;

int
main()
{
    bench::banner("Figure 14: Latency Across Platforms for Each "
                  "Service");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();

    std::printf("%-11s %10s %14s %10s %10s %10s\n", "service", "CMP",
                "CMP(subq)", "GPU", "Phi", "FPGA");
    for (const auto &profile : profiles) {
        std::printf("%-11s", serviceKindName(profile.kind));
        for (Platform p : allPlatforms()) {
            const double latency = serviceLatency(profile, model, p);
            std::printf(p == Platform::CmpMulticore ? " %13.3fs"
                                                    : " %9.3fs",
                        latency);
        }
        std::printf("\n");
    }

    bench::subhead("component breakdown (baseline seconds)");
    for (const auto &profile : profiles) {
        std::printf("%-11s:", serviceKindName(profile.kind));
        for (const auto &c : profile.components)
            std::printf("  %s=%.2fs", kernelName(c.kernel), c.seconds);
        std::printf("  other=%.2fs\n", profile.unacceleratedSeconds);
    }

    bench::subhead("key observations (paper section 5.1.1)");
    const auto &asr_gmm = profiles[0];
    std::printf("- FPGA cuts ASR (GMM) from %.2fs to %.2fs (paper: "
                "4.2s -> 0.19s)\n",
                baselineLatency(asr_gmm),
                serviceLatency(asr_gmm, model, Platform::Fpga));
    std::printf("- CMP (sub-query) achieves ~%.0f%% latency reduction "
                "over CMP (paper: ~25%%... up to 4x with per-kernel "
                "scaling)\n",
                (1.0 - serviceLatency(asr_gmm, model,
                                      Platform::CmpMulticore) /
                           baselineLatency(asr_gmm)) * 100.0);
    int fpga_wins = 0;
    for (const auto &profile : profiles) {
        fpga_wins += serviceLatency(profile, model, Platform::Fpga) <
            serviceLatency(profile, model, Platform::Gpu);
    }
    std::printf("- FPGA beats GPU on %d of 4 services (paper: all but "
                "ASR (DNN/HMM))\n", fpga_wins);
    int phi_slower = 0;
    for (const auto &profile : profiles) {
        phi_slower += serviceLatency(profile, model, Platform::Phi) >
            serviceLatency(profile, model, Platform::CmpMulticore);
    }
    std::printf("- Phi slower than the pthreaded multicore baseline on "
                "%d of 4 services\n", phi_slower);
    return 0;
}
