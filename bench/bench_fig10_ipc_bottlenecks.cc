/**
 * @file
 * Figure 10 reproduction: IPC and top-down stall breakdown per kernel,
 * and the resulting bound on general-purpose-core speedup.
 *
 * Substitution note: the paper measures these with VTune; this container
 * has no PMU access, so the numbers are the documented modeled profiles
 * (accel/uarch.h). The figure's conclusion — a ~3x ceiling even with
 * every stall removed, far short of the 165x gap — is computed from
 * them.
 */

#include <cstdio>

#include "accel/uarch.h"
#include "bench_util.h"

using namespace sirius;
using namespace sirius::accel;

int
main()
{
    bench::banner("Figure 10: IPC and Bottleneck Breakdown (modeled)");

    std::printf("%-9s %5s %9s %9s %11s %9s %16s\n", "kernel", "IPC",
                "retiring", "frontend", "speculation", "backend",
                "stall-free gain");
    for (Kernel kernel : suiteKernels()) {
        const auto &p = microarchProfile(kernel);
        std::printf("%-9s %5.1f %8.0f%% %8.0f%% %10.0f%% %8.0f%% %15.2fx\n",
                    kernelName(kernel), p.ipc, p.retiring * 100,
                    p.frontEnd * 100, p.speculation * 100,
                    p.backEnd * 100, stallFreeSpeedup(kernel));
    }

    std::printf("\naggregate stall-free speedup bound: %.2fx\n",
                aggregateStallFreeSpeedup());
    std::printf("(paper: even with all stall cycles removed, the "
                "maximum speedup is bound by ~3x;\n acceleration is "
                "needed to bridge the 165x scalability gap)\n");
    return 0;
}
