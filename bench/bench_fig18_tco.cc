/**
 * @file
 * Table 7 / Figure 18 reproduction: datacenter TCO with each
 * acceleration option, normalized to the CMP-only datacenter, using the
 * Google TCO model with the paper's parameters.
 */

#include <cstdio>

#include "accel/latency.h"
#include "bench_util.h"
#include "dcsim/tco.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

int
main()
{
    bench::banner("Table 7: TCO Model Parameters");
    const TcoParams params;
    std::printf("%-28s %12.0f years\n", "DC depreciation",
                params.dcDepreciationYears);
    std::printf("%-28s %12.0f years\n", "server depreciation",
                params.serverDepreciationYears);
    std::printf("%-28s %12.0f %%\n", "average server utilization",
                params.averageUtilization * 100);
    std::printf("%-28s %12.3f $/kWh\n", "electricity",
                params.electricityPerKwh);
    std::printf("%-28s %12.1f $/W\n", "datacenter price",
                params.dcPricePerWatt);
    std::printf("%-28s %12.2f $/W/month\n", "datacenter opex",
                params.dcOpexPerWattMonth);
    std::printf("%-28s %12.0f %% capex/yr\n", "server opex",
                params.serverOpexFraction * 100);
    std::printf("%-28s %12.0f $\n", "server price (baseline)",
                params.serverPriceUsd);
    std::printf("%-28s %12.1f W\n", "server power (baseline)",
                params.serverPowerWatts);
    std::printf("%-28s %12.1f\n", "PUE", params.pue);
    std::printf("\nbaseline server yearly TCO: $%.0f\n",
                serverYearlyTco(baselineServer(params), params));

    bench::banner("Figure 18: Normalized DC TCO Across Platforms "
                  "(lower is better)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();

    std::printf("%-11s %10s %10s %10s %10s\n", "service", "CMP(subq)",
                "GPU", "Phi", "FPGA");
    for (const auto &profile : profiles) {
        std::printf("%-11s", serviceKindName(profile.kind));
        for (Platform p : {Platform::CmpMulticore, Platform::Gpu,
                           Platform::Phi, Platform::Fpga}) {
            const double improvement =
                throughputImprovement(profile, model, p);
            std::printf(" %9.3f",
                        normalizedTco(p, improvement, params));
        }
        std::printf("\n");
    }

    bench::subhead("key observations (paper section 5.2.2)");
    const double gpu_dnn_tco = normalizedTco(
        Platform::Gpu,
        throughputImprovement(profiles[1], model, Platform::Gpu),
        params);
    std::printf("- GPU on ASR (DNN): %.1fx TCO reduction (paper: "
                ">8x)\n", 1.0 / gpu_dnn_tco);
    const double fpga_imm_tco = normalizedTco(
        Platform::Fpga,
        throughputImprovement(profiles[3], model, Platform::Fpga),
        params);
    std::printf("- FPGA on IMM: %.1fx TCO reduction (paper: >4x)\n",
                1.0 / fpga_imm_tco);
    return 0;
}
