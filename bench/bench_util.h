/**
 * @file
 * Shared helpers for the per-figure bench binaries: section banners,
 * fixed-width table rows, and the standard model/profile wiring.
 */

#ifndef SIRIUS_BENCH_BENCH_UTIL_H
#define SIRIUS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace sirius::bench {

/** Print a '=== title ===' banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("==================================================="
                "===========\n");
}

/** Print a secondary '--- title ---' header. */
inline void
subhead(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

/** Render a simple ASCII bar of @p value scaled by @p per_char. */
inline std::string
bar(double value, double per_char, size_t max_chars = 48)
{
    size_t n = static_cast<size_t>(value / per_char);
    if (n > max_chars)
        n = max_chars;
    return std::string(n, '#');
}

} // namespace sirius::bench

#endif // SIRIUS_BENCH_BENCH_UTIL_H
