/**
 * @file
 * Microbenchmark for the SIMD kernel layer (common/simd.h): every
 * dispatched kernel A/B'd against its scalar reference at the shapes
 * the pipelines actually run (DNN hidden layers 256x256, GMM scoring
 * over the full 37-state model, 64-d SURF descriptors, ...). Prints
 * per-kernel GB/s and the speedup vs scalar, verifies the bitwise
 * identity contract on the way, and attributes time to a Profiler so
 * the breakdown composes with the Fig-9 harness.
 *
 * `--json` emits one machine-readable object (the format checked in as
 * BENCH_kernels.json; see docs/BENCHMARKS.md for regeneration).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/profiler.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"

using namespace sirius;
using namespace sirius::simd;

namespace {

/** One kernel case: fills work buffers, runs one call, reports the
 *  bytes one call streams (for GB/s). */
struct KernelCase
{
    std::string name;
    std::string shape;
    double bytesPerCall = 0.0;
    // Run one kernel invocation with @p table, writing into out.
    void (*run)(const KernelTable &table, struct Workspace &ws) =
        nullptr;
};

/** Shared pre-generated operands, sized for the largest case. */
struct Workspace
{
    // matvec/matmul at the DNN hidden-layer shape.
    static constexpr size_t kRows = 256, kCols = 256, kBatch = 32;
    std::vector<float> a, b, v, outF32;
    // GMM scoring: the full acoustic model flattened (37 states x 3
    // components) over 39-d features, plus a 32-frame batch.
    static constexpr size_t kComps = 111, kDim = 39, kFrames = 32;
    std::vector<std::vector<float>> means, invVars;
    std::vector<const float *> meanPtrs, invVarPtrs;
    std::vector<float> logNorms, frame;
    std::vector<double> xFrames, accF64, outF64;
    // SURF: 64 descriptors of 64-d, plus a VGA integral table row.
    static constexpr size_t kDescs = 64, kDescDim = 64;
    static constexpr int kImgW = 640, kImgH = 480;
    static constexpr int kHessianCount = 600;
    std::vector<std::vector<float>> descs;
    std::vector<const float *> descPtrs;
    std::vector<double> integral;
    std::vector<float> responses;
    std::vector<uint8_t> laplacians;
    // FFT: one 512-point pass + power spectrum.
    static constexpr size_t kFft = 512;
    std::vector<double> fftData, fftScratch, twiddles, norms;
    // Viterbi and row ops.
    static constexpr size_t kTags = 12;
    static constexpr size_t kRow = 4096;
    std::vector<double> prev, trans, best, rowAcc, rowX;
    std::vector<int32_t> arg;
    std::vector<float> relu;

    explicit Workspace(Rng &rng)
    {
        const auto f32 = [&rng](size_t n) {
            std::vector<float> out(n);
            for (auto &x : out)
                x = static_cast<float>(rng.uniform(-1.0, 1.0));
            return out;
        };
        const auto f64 = [&rng](size_t n) {
            std::vector<double> out(n);
            for (auto &x : out)
                x = rng.uniform(-1.0, 1.0);
            return out;
        };
        a = f32(kRows * kCols);
        b = f32(kCols * kBatch);
        v = f32(kCols);
        outF32.resize(kRows * kBatch);
        for (size_t c = 0; c < kComps; ++c) {
            means.push_back(f32(kDim));
            auto iv = f32(kDim);
            for (auto &x : iv)
                x = 0.5f + x * x;
            invVars.push_back(std::move(iv));
            logNorms.push_back(
                static_cast<float>(rng.uniform(-10.0, 0.0)));
        }
        for (size_t c = 0; c < kComps; ++c) {
            meanPtrs.push_back(means[c].data());
            invVarPtrs.push_back(invVars[c].data());
        }
        frame = f32(kDim);
        xFrames = f64(kDim * kFrames);
        accF64.resize(kFrames);
        outF64.resize(kComps);
        for (size_t i = 0; i < kDescs; ++i)
            descs.push_back(f32(kDescDim));
        for (size_t i = 0; i < kDescs; ++i)
            descPtrs.push_back(descs[i].data());
        integral = f64(static_cast<size_t>(kImgW + 1) * (kImgH + 1));
        responses.resize(kHessianCount);
        laplacians.resize(kHessianCount);
        fftData = f64(2 * kFft);
        fftScratch.resize(2 * kFft);
        twiddles = f64(kFft);
        norms.resize(kFft);
        prev = f64(kTags);
        trans = f64(kTags * kTags);
        best.resize(kTags);
        arg.resize(kTags);
        rowAcc = f64(kRow);
        rowX = f64(kRow);
        relu = f32(2 * kRow);
    }
};

const KernelCase kCases[] = {
    {"matvec_f32", "256x256",
     (Workspace::kRows * Workspace::kCols + Workspace::kCols +
      Workspace::kRows) *
         4.0,
     [](const KernelTable &t, Workspace &ws) {
         t.matvecF32(ws.a.data(), ws.kRows, ws.kCols, ws.v.data(),
                     ws.outF32.data());
     }},
    {"matmul_f32", "256x256x32",
     (Workspace::kRows * Workspace::kCols +
      Workspace::kCols * Workspace::kBatch +
      Workspace::kRows * Workspace::kBatch) *
         4.0,
     [](const KernelTable &t, Workspace &ws) {
         t.matmulF32(ws.a.data(), ws.kRows, ws.kCols, ws.b.data(),
                     ws.kBatch, ws.outF32.data());
     }},
    {"gmm_mixture_f64", "111x39",
     Workspace::kComps * (Workspace::kDim * 8.0 + 12.0) +
         Workspace::kDim * 4.0,
     [](const KernelTable &t, Workspace &ws) {
         t.gmmMixtureF64(ws.frame.data(), ws.kDim, ws.meanPtrs.data(),
                         ws.invVarPtrs.data(), ws.logNorms.data(),
                         ws.kComps, ws.outF64.data());
     }},
    {"gmm_lanes_f64", "32x39",
     Workspace::kDim * Workspace::kFrames * 8.0 +
         Workspace::kDim * 8.0 + Workspace::kFrames * 16.0,
     [](const KernelTable &t, Workspace &ws) {
         t.gmmLanesF64(ws.accF64.data(), ws.xFrames.data(), ws.kFrames,
                       ws.means[0].data(), ws.invVars[0].data(),
                       ws.kDim);
     }},
    {"desc_dist_f32", "64x64",
     (Workspace::kDescs * Workspace::kDescDim + Workspace::kDescDim +
      Workspace::kDescs) *
         4.0,
     [](const KernelTable &t, Workspace &ws) {
         t.descDistF32(ws.descs[0].data(), ws.descPtrs.data(),
                       ws.kDescs, ws.kDescDim, ws.outF32.data());
     }},
    {"hessian_row_f64", "600x9",
     Workspace::kHessianCount * (32 * 8.0 + 5.0),
     [](const KernelTable &t, Workspace &ws) {
         t.hessianRowF64(ws.integral.data(), ws.kImgW + 1, 12, 5, 1,
                         ws.kHessianCount, 9, 3,
                         1.0 / 81.0, ws.responses.data(),
                         ws.laplacians.data());
     }},
    {"fft_pass_f64", "512pt",
     Workspace::kFft * 32.0 + Workspace::kFft * 8.0,
     [](const KernelTable &t, Workspace &ws) {
         std::memcpy(ws.fftScratch.data(), ws.fftData.data(),
                     ws.fftData.size() * sizeof(double));
         t.fftPassF64(ws.fftScratch.data(), ws.kFft, ws.kFft,
                      ws.twiddles.data());
     }},
    {"complex_norm_f64", "512",
     Workspace::kFft * 24.0,
     [](const KernelTable &t, Workspace &ws) {
         t.complexNormF64(ws.fftData.data(), ws.kFft, ws.norms.data());
     }},
    {"viterbi_step_f64", "12tags",
     (Workspace::kTags * Workspace::kTags + 3 * Workspace::kTags) * 8.0,
     [](const KernelTable &t, Workspace &ws) {
         t.viterbiStepF64(ws.prev.data(), ws.trans.data(), ws.kTags,
                          ws.best.data(), ws.arg.data());
     }},
    {"axpy_f64", "4096",
     Workspace::kRow * 24.0,
     [](const KernelTable &t, Workspace &ws) {
         t.axpyF64(ws.rowAcc.data(), ws.rowX.data(), 0.001, ws.kRow);
     }},
    {"relu_f32", "8192",
     2 * Workspace::kRow * 8.0,
     [](const KernelTable &t, Workspace &ws) {
         t.reluF32(ws.relu.data(), ws.relu.size());
     }},
};

struct ArmTimes
{
    double scalarSpc; // seconds per call, scalar arm
    double simdSpc;   // seconds per call, dispatched arm
};

/** Time both arms of one case with interleaved blocks. Alternating
 *  short blocks sees host noise and frequency drift symmetrically
 *  (back-to-back arms would not), and the per-call minimum over many
 *  blocks estimates each arm's true cost.
 *  @return best-block seconds per call for each arm. */
ArmTimes
timeCase(const KernelCase &c, const KernelTable &scalar,
         const KernelTable &dispatched, Workspace &ws_scalar,
         Workspace &ws_simd, Profiler &profiler,
         const std::string &simd_arm, double min_seconds)
{
    // Warm up (and page in the buffers).
    for (int i = 0; i < 3; ++i) {
        c.run(scalar, ws_scalar);
        c.run(dispatched, ws_simd);
    }
    constexpr int kBlock = 16;
    ArmTimes best = {1e300, 1e300};
    double spent = 0.0;
    while (spent < 2.0 * min_seconds) {
        {
            auto scope = profiler.scope(c.name + "/scalar");
            Stopwatch block;
            for (int i = 0; i < kBlock; ++i)
                c.run(scalar, ws_scalar);
            const double spc = block.seconds() / kBlock;
            spent += block.seconds();
            if (spc < best.scalarSpc)
                best.scalarSpc = spc;
        }
        {
            auto scope = profiler.scope(c.name + "/" + simd_arm);
            Stopwatch block;
            for (int i = 0; i < kBlock; ++i)
                c.run(dispatched, ws_simd);
            const double spc = block.seconds() / kBlock;
            spent += block.seconds();
            if (spc < best.simdSpc)
                best.simdSpc = spc;
        }
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    double min_seconds = 0.05;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--json") {
            json = true;
        } else if (flag == "--min-ms" && i + 1 < argc) {
            min_seconds = std::strtod(argv[++i], nullptr) / 1e3;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--min-ms N]\n", argv[0]);
            return 2;
        }
    }

    const Isa best = bestSupportedIsa();
    setIsa(best);
    const KernelTable &dispatched = kernels();
    const KernelTable &scalar = scalarKernels();

    if (!json) {
        bench::banner("bench_kernels: SIMD kernel layer vs scalar "
                      "reference");
        std::printf("%s\n\n", describeDispatch().c_str());
        std::printf("%-18s %-10s %10s %10s %9s\n", "kernel", "shape",
                    "scalar", "simd", "speedup");
        std::printf("%-18s %-10s %10s %10s %9s\n", "", "", "GB/s",
                    "GB/s", "");
    }

    Rng rng(0xBE9C4);
    Profiler profiler;
    std::string rows;
    bool all_ok = true;
    for (const KernelCase &c : kCases) {
        // Fresh identically-seeded workspaces per arm so read-modify
        // kernels (relu, axpy, fft) see the same inputs, letting us
        // assert the bitwise-identity contract on the final state.
        Rng seed_a = rng, seed_b = rng;
        Workspace ws_scalar(seed_a), ws_simd(seed_b);
        const ArmTimes times =
            timeCase(c, scalar, dispatched, ws_scalar, ws_simd,
                     profiler, isaName(best), min_seconds);
        const double scalar_spc = times.scalarSpc;
        const double simd_spc = times.simdSpc;

        const bool identical =
            std::memcmp(ws_scalar.outF32.data(), ws_simd.outF32.data(),
                        ws_scalar.outF32.size() * sizeof(float)) == 0 &&
            std::memcmp(ws_scalar.outF64.data(), ws_simd.outF64.data(),
                        ws_scalar.outF64.size() * sizeof(double)) == 0 &&
            std::memcmp(ws_scalar.fftScratch.data(),
                        ws_simd.fftScratch.data(),
                        ws_scalar.fftScratch.size() * sizeof(double)) ==
                0 &&
            std::memcmp(ws_scalar.relu.data(), ws_simd.relu.data(),
                        ws_scalar.relu.size() * sizeof(float)) == 0 &&
            std::memcmp(ws_scalar.responses.data(),
                        ws_simd.responses.data(),
                        ws_scalar.responses.size() * sizeof(float)) ==
                0 &&
            std::memcmp(ws_scalar.best.data(), ws_simd.best.data(),
                        ws_scalar.best.size() * sizeof(double)) == 0;
        all_ok = all_ok && identical;

        const double scalar_gbps = c.bytesPerCall / scalar_spc / 1e9;
        const double simd_gbps = c.bytesPerCall / simd_spc / 1e9;
        const double speedup = scalar_spc / simd_spc;
        if (json) {
            char buf[256];
            std::snprintf(buf, sizeof(buf),
                          "    {\"kernel\": \"%s\", \"shape\": \"%s\", "
                          "\"scalar_gbps\": %.2f, \"simd_gbps\": %.2f, "
                          "\"speedup\": %.2f, \"bitwise_identical\": "
                          "%s}",
                          c.name.c_str(), c.shape.c_str(), scalar_gbps,
                          simd_gbps, speedup,
                          identical ? "true" : "false");
            if (!rows.empty())
                rows += ",\n";
            rows += buf;
        } else {
            std::printf("%-18s %-10s %10.2f %10.2f %8.2fx%s\n",
                        c.name.c_str(), c.shape.c_str(), scalar_gbps,
                        simd_gbps, speedup,
                        identical ? "" : "  BITWISE MISMATCH");
        }
    }

    if (json) {
        std::printf("{\n  \"bench\": \"bench_kernels\",\n"
                    "  \"isa\": \"%s\",\n  \"dispatch\": \"%s\",\n"
                    "  \"bitwise_identical\": %s,\n"
                    "  \"kernels\": [\n%s\n  ]\n}\n",
                    isaName(best), describeDispatch().c_str(),
                    all_ok ? "true" : "false", rows.c_str());
    } else {
        bench::subhead("profiler breakdown (accumulated wall time)");
        for (const auto &name : profiler.componentsByTime()) {
            const auto comp = profiler.component(name);
            std::printf("%-26s %8.1fms over %8llu regions\n",
                        name.c_str(), comp.seconds * 1e3,
                        static_cast<unsigned long long>(comp.calls));
        }
        std::printf("\nbitwise identity (simd vs scalar): %s\n",
                    all_ok ? "PASS" : "FAIL");
    }
    return all_ok ? 0 : 1;
}
