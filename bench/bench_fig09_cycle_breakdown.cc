/**
 * @file
 * Figure 9 reproduction: cycle (wall-time) breakdown per service.
 *
 * The paper profiles each service with VTune and finds a handful of hot
 * components: GMM/DNN scoring dominates ASR, {stemmer, regex, CRF} make
 * up ~85% of QA, and FE/FD dominate IMM. We reproduce the breakdown by
 * timing the same components of our pipeline.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/profiler.h"
#include "common/simd.h"
#include "core/pipeline.h"
#include "core/query_set.h"

using namespace sirius;
using namespace sirius::core;

namespace {

/**
 * Print one service's breakdown from a Profiler whose components were
 * fed one sample per query: percent of the service total plus the
 * per-query call count, mean, and min/max spread of each component.
 */
void
printBreakdown(const char *service, const Profiler &profiler)
{
    const double queries = profiler.component(
        profiler.componentsByTime().front()).calls;
    std::printf("\n%s (total %.2f ms per query)\n", service,
                queries > 0 ? profiler.totalSeconds() / queries * 1e3
                            : 0.0);
    std::printf("  %-18s %8s %6s %9s %9s %9s\n", "component",
                "percent", "calls", "mean ms", "min ms", "max ms");
    for (const auto &name : profiler.componentsByTime()) {
        const auto c = profiler.component(name);
        const double pct = profiler.fraction(name) * 100.0;
        std::printf("  %-18s %7.1f%% %6llu %9.3f %9.3f %9.3f  %s\n",
                    name.c_str(), pct,
                    static_cast<unsigned long long>(c.calls),
                    c.meanSeconds() * 1e3, c.minSeconds * 1e3,
                    c.maxSeconds * 1e3,
                    sirius::bench::bar(pct, 2.0).c_str());
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 9: Cycle Breakdown per Service");
    std::printf("%s\n", simd::describeDispatch().c_str());

    std::printf("building pipelines (GMM and DNN ASR backends)...\n");
    SiriusConfig gmm_config;
    const SiriusPipeline gmm_pipeline = SiriusPipeline::build(gmm_config);
    SiriusConfig dnn_config;
    dnn_config.asrBackend = speech::AsrBackend::Dnn;
    const SiriusPipeline dnn_pipeline = SiriusPipeline::build(dnn_config);

    // One Profiler per service view, fed one sample per query, so the
    // table shows calls (= queries) and the min/max spread alongside
    // the paper's percentage breakdown.
    Profiler asr_gmm, asr_dnn, qa, imm;
    for (const auto &query : standardQuerySet()) {
        const auto g = gmm_pipeline.process(query);
        asr_gmm.addSeconds("feature extract",
                           g.timings.asr.featureExtraction);
        asr_gmm.addSeconds("GMM scoring", g.timings.asr.scoring);
        asr_gmm.addSeconds("HMM/Viterbi", g.timings.asr.search);
        qa.addSeconds("Stemmer", g.timings.qa.stemmer);
        qa.addSeconds("Regex", g.timings.qa.regex);
        qa.addSeconds("CRF", g.timings.qa.crf);
        qa.addSeconds("search (BM25)", g.timings.qa.search);
        qa.addSeconds("answer select", g.timings.qa.select);
        imm.addSeconds("FE (SURF detect)",
                       g.timings.imm.featureExtraction);
        imm.addSeconds("FD (SURF descr.)",
                       g.timings.imm.featureDescription);
        imm.addSeconds("ANN matching", g.timings.imm.matching);

        const auto d = dnn_pipeline.process(query);
        asr_dnn.addSeconds("feature extract",
                           d.timings.asr.featureExtraction);
        asr_dnn.addSeconds("DNN scoring", d.timings.asr.scoring);
        asr_dnn.addSeconds("HMM/Viterbi", d.timings.asr.search);
    }

    printBreakdown("ASR (GMM/HMM)", asr_gmm);
    printBreakdown("ASR (DNN/HMM)", asr_dnn);
    printBreakdown("QA", qa);
    printBreakdown("IMM", imm);

    const double nlp = qa.seconds("Stemmer") + qa.seconds("Regex") +
        qa.seconds("CRF");
    const double qa_total = nlp + qa.seconds("search (BM25)") +
        qa.seconds("answer select");
    std::printf("\nQA NLP share (stemmer+regex+CRF): %.1f%% "
                "(paper: ~85%% of QA cycles)\n",
                qa_total > 0 ? nlp / qa_total * 100.0 : 0.0);
    return 0;
}
