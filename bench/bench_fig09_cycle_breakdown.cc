/**
 * @file
 * Figure 9 reproduction: cycle (wall-time) breakdown per service.
 *
 * The paper profiles each service with VTune and finds a handful of hot
 * components: GMM/DNN scoring dominates ASR, {stemmer, regex, CRF} make
 * up ~85% of QA, and FE/FD dominate IMM. We reproduce the breakdown by
 * timing the same components of our pipeline.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/query_set.h"

using namespace sirius;
using namespace sirius::core;

namespace {

void
printBreakdown(const char *service,
               const std::vector<std::pair<const char *, double>> &parts)
{
    double total = 0.0;
    for (const auto &[name, seconds] : parts)
        total += seconds;
    std::printf("\n%s (total %.2f ms per query)\n", service,
                total * 1e3);
    for (const auto &[name, seconds] : parts) {
        const double pct = total > 0 ? seconds / total * 100.0 : 0.0;
        std::printf("  %-18s %6.1f%%  %s\n", name, pct,
                    sirius::bench::bar(pct, 2.0).c_str());
    }
}

} // namespace

int
main()
{
    bench::banner("Figure 9: Cycle Breakdown per Service");

    std::printf("building pipelines (GMM and DNN ASR backends)...\n");
    SiriusConfig gmm_config;
    const SiriusPipeline gmm_pipeline = SiriusPipeline::build(gmm_config);
    SiriusConfig dnn_config;
    dnn_config.asrBackend = speech::AsrBackend::Dnn;
    const SiriusPipeline dnn_pipeline = SiriusPipeline::build(dnn_config);

    // Accumulate per-component time over the full query set.
    speech::AsrTimings asr_gmm{}, asr_dnn{};
    qa::QaTimings qa{};
    vision::ImmTimings imm{};
    for (const auto &query : standardQuerySet()) {
        const auto g = gmm_pipeline.process(query);
        asr_gmm.featureExtraction += g.timings.asr.featureExtraction;
        asr_gmm.scoring += g.timings.asr.scoring;
        asr_gmm.search += g.timings.asr.search;
        qa.stemmer += g.timings.qa.stemmer;
        qa.regex += g.timings.qa.regex;
        qa.crf += g.timings.qa.crf;
        qa.search += g.timings.qa.search;
        qa.select += g.timings.qa.select;
        imm.featureExtraction += g.timings.imm.featureExtraction;
        imm.featureDescription += g.timings.imm.featureDescription;
        imm.matching += g.timings.imm.matching;

        const auto d = dnn_pipeline.process(query);
        asr_dnn.featureExtraction += d.timings.asr.featureExtraction;
        asr_dnn.scoring += d.timings.asr.scoring;
        asr_dnn.search += d.timings.asr.search;
    }
    const double n = static_cast<double>(standardQuerySet().size());

    printBreakdown("ASR (GMM/HMM)",
                   {{"feature extract", asr_gmm.featureExtraction / n},
                    {"GMM scoring", asr_gmm.scoring / n},
                    {"HMM/Viterbi", asr_gmm.search / n}});
    printBreakdown("ASR (DNN/HMM)",
                   {{"feature extract", asr_dnn.featureExtraction / n},
                    {"DNN scoring", asr_dnn.scoring / n},
                    {"HMM/Viterbi", asr_dnn.search / n}});
    printBreakdown("QA", {{"Stemmer", qa.stemmer / n},
                          {"Regex", qa.regex / n},
                          {"CRF", qa.crf / n},
                          {"search (BM25)", qa.search / n},
                          {"answer select", qa.select / n}});
    printBreakdown("IMM",
                   {{"FE (SURF detect)", imm.featureExtraction / n},
                    {"FD (SURF descr.)", imm.featureDescription / n},
                    {"ANN matching", imm.matching / n}});

    const double nlp = qa.stemmer + qa.regex + qa.crf;
    const double qa_total = nlp + qa.search + qa.select;
    std::printf("\nQA NLP share (stemmer+regex+CRF): %.1f%% "
                "(paper: ~85%% of QA cycles)\n",
                qa_total > 0 ? nlp / qa_total * 100.0 : 0.0);
    return 0;
}
