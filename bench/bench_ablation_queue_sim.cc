/**
 * @file
 * Ablation: analytic M/M/1 vs discrete-event simulation.
 *
 * Figure 17's conclusions rest on the M/M/1 closed forms; this bench
 * validates them against the event-driven simulator and then shows what
 * the closed forms miss: QA's heavy-tailed service times (Figure 8)
 * inflate queueing delay well beyond the exponential model at the same
 * mean service rate, strengthening the paper's case for latency
 * head-room via acceleration.
 */

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/query_set.h"
#include "dcsim/queueing.h"
#include "dcsim/simulation.h"

using namespace sirius;
using namespace sirius::dcsim;

int
main()
{
    bench::banner("Ablation: analytic M/M/1 vs discrete-event "
                  "simulation");

    std::printf("%-8s %16s %16s %10s\n", "load", "analytic lat.",
                "simulated lat.", "error");
    for (double rho : {0.2, 0.4, 0.6, 0.8, 0.9}) {
        QueueSimConfig config;
        config.arrivalRate = rho;
        config.serviceRate = 1.0;
        const auto sim = simulateQueue(config);
        const double analytic = mm1Latency(rho, 1.0);
        std::printf("%-8.1f %15.3fs %15.3fs %9.1f%%\n", rho, analytic,
                    sim.sojournSeconds.mean(),
                    100.0 * (sim.sojournSeconds.mean() - analytic) /
                        analytic);
    }

    bench::subhead("service-time distribution at fixed mean "
                   "(load 0.7)");
    std::printf("%-15s %16s %14s %14s\n", "distribution", "mean lat.",
                "p95 lat.", "p99 lat.");
    for (auto dist : {ServiceDistribution::Deterministic,
                      ServiceDistribution::Exponential,
                      ServiceDistribution::HeavyTailed}) {
        QueueSimConfig config;
        config.arrivalRate = 0.7;
        config.serviceRate = 1.0;
        config.distribution = dist;
        const auto sim = simulateQueue(config);
        const char *name =
            dist == ServiceDistribution::Deterministic ? "deterministic"
            : dist == ServiceDistribution::Exponential ? "exponential"
                                                       : "heavy-tailed";
        std::printf("%-15s %15.3fs %13.3fs %13.3fs\n", name,
                    sim.sojournSeconds.mean(),
                    sim.sojournSeconds.percentile(95),
                    sim.sojournSeconds.percentile(99));
    }

    bench::subhead("queueing over the *measured* QA latency "
                   "distribution");
    {
        // Collect the real per-query QA latencies (Figure 8b) and feed
        // them into the simulator as the empirical service law.
        std::printf("building QA service and measuring the VQ set...\n");
        const auto qa = sirius::qa::QaService::build();
        std::vector<double> samples;
        for (const auto &query : sirius::core::queriesOfType(
                 sirius::core::QueryType::VoiceQuery)) {
            samples.push_back(qa.answer(query.text).timings.total());
        }
        double mean = 0.0;
        for (double s : samples)
            mean += s;
        mean /= static_cast<double>(samples.size());
        std::printf("measured QA service times: mean %.2f ms, %zu "
                    "samples\n", mean * 1e3, samples.size());
        std::printf("%-8s %18s %18s\n", "load", "empirical lat.",
                    "exponential lat.");
        for (double rho : {0.3, 0.5, 0.7, 0.9}) {
            const auto empirical = simulateQueueEmpirical(
                samples, rho / mean);
            QueueSimConfig config;
            config.arrivalRate = rho;
            config.serviceRate = 1.0;
            const auto exponential = simulateQueue(config);
            std::printf("%-8.1f %16.2fms %16.2fms\n", rho,
                        empirical.sojournSeconds.mean() * 1e3,
                        exponential.sojournSeconds.mean() * mean * 1e3);
        }
    }

    bench::subhead("max sustainable load at a 3x-service-time latency "
                   "bound");
    const double mu = 1.0, bound = 3.0;
    std::printf("analytic : %.3f queries/s\n", mm1MaxArrival(mu, bound));
    std::printf("simulated: %.3f queries/s\n",
                simulatedMaxArrival(mu, bound));
    std::printf("heavy-tail simulated: %.3f queries/s (tails eat "
                "capacity)\n",
                simulatedMaxArrival(mu, bound,
                                    ServiceDistribution::HeavyTailed));
    return 0;
}
