/**
 * @file
 * Ablation: static MFCC vs MFCC + delta + delta-delta features.
 *
 * Production front ends triple the feature width with time derivatives;
 * this measures what that buys (robustness) and costs (front-end and
 * scoring time) on the real ASR service under added input noise.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "core/query_set.h"
#include "speech/asr_service.h"

using namespace sirius;
using namespace sirius::speech;

int
main()
{
    bench::banner("Ablation: static vs delta-extended MFCC features");
    const auto sentences = core::asrTrainingSentences();

    std::printf("%-10s %10s %10s %14s %14s\n", "features", "dims",
                "WER", "feat (ms)", "scoring (ms)");
    for (bool deltas : {false, true}) {
        AsrConfig config;
        config.useDeltaFeatures = deltas;
        // Stress robustness: decode under noise the models did not see.
        config.synth.noiseLevel = 0.015;
        const auto asr = AsrService::train(sentences, config);

        AsrTimings totals;
        size_t errors = 0, words = 0;
        for (const auto &sentence : sentences) {
            audio::SynthesizerConfig noisy = config.synth;
            noisy.noiseLevel = 0.02;
            noisy.noiseSeed = 999;
            const audio::SpeechSynthesizer synth(noisy);
            const auto result = asr.transcribe(
                synth.synthesize(sentence));
            totals.featureExtraction += result.timings.featureExtraction;
            totals.scoring += result.timings.scoring;
            errors += wordEditDistance(sentence, result.text);
            words += split(sentence).size();
        }
        const double n = static_cast<double>(sentences.size());
        std::printf("%-10s %10d %9.1f%% %14.2f %14.2f\n",
                    deltas ? "mfcc+d+dd" : "static",
                    deltas ? 39 : 13,
                    100.0 * static_cast<double>(errors) /
                        static_cast<double>(words),
                    totals.featureExtraction / n * 1e3,
                    totals.scoring / n * 1e3);
    }
    std::printf("\nexpected: deltas triple feature width (higher "
                "scoring cost) and improve noise robustness\n");
    return 0;
}
