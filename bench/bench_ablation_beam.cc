/**
 * @file
 * Ablation: Viterbi beam width vs accuracy and search time.
 *
 * The decoder prunes states falling more than `beam` log-units below
 * the per-frame best. Wider beams cost search time; narrower beams risk
 * pruning the correct path. This sweep locates the knee on the real ASR
 * service — the design decision DESIGN.md calls out for the HMM search.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/strings.h"
#include "core/query_set.h"
#include "speech/asr_service.h"

using namespace sirius;
using namespace sirius::speech;

int
main()
{
    bench::banner("Ablation: Viterbi beam width (GMM backend)");
    const auto sentences = core::asrTrainingSentences();
    size_t total_words = 0;
    for (const auto &sentence : sentences)
        total_words += split(sentence).size();

    std::printf("%-8s %8s %16s\n", "beam", "WER", "search (ms/query)");
    for (double beam : {2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 120.0}) {
        AsrConfig config;
        config.decoder.beam = beam;
        const auto asr = AsrService::train(sentences, config);

        double search_ms = 0.0;
        size_t errors = 0;
        for (const auto &sentence : sentences) {
            const auto result = asr.transcribeText(sentence);
            search_ms += result.timings.search * 1e3;
            errors += wordEditDistance(sentence, result.text);
        }
        std::printf("%-8.0f %7.1f%% %16.2f\n", beam,
                    100.0 * static_cast<double>(errors) /
                        static_cast<double>(total_words),
                    search_ms / static_cast<double>(sentences.size()));
    }
    std::printf("\nexpected: WER degrades sharply below the knee; "
                "search time grows with the beam\n");
    return 0;
}
