/**
 * @file
 * Ablation: whole-phoneme vs 3-state sub-phonetic acoustic models, and
 * the compressed-voice network hop.
 *
 * Sphinx models each phoneme with a begin/middle/end HMM chain; this
 * measures what the finer temporal modeling costs (3x acoustic states,
 * bigger decode graph) and verifies accuracy on the full input set. The
 * second section measures the mobile-to-server codecs (mu-law, ADPCM):
 * compression ratio, SNR, and whether recognition survives the hop.
 */

#include <cstdio>

#include "audio/codec.h"
#include "bench_util.h"
#include "common/strings.h"
#include "core/query_set.h"
#include "speech/asr_service.h"

using namespace sirius;
using namespace sirius::audio;
using namespace sirius::speech;

int
main()
{
    bench::banner("Ablation: whole-phoneme vs 3-state sub-phonetic "
                  "models");
    const auto sentences = core::asrTrainingSentences();

    std::printf("%-6s %8s %8s %14s %14s %14s\n", "sub", "states",
                "WER", "scoring (ms)", "search (ms)", "graph states");
    for (int sub : {1, 3}) {
        AsrConfig config;
        config.statesPerPhoneme = sub;
        const auto asr = AsrService::train(sentences, config);

        AsrTimings totals;
        for (const auto &sentence : sentences) {
            const auto result = asr.transcribeText(sentence);
            totals.scoring += result.timings.scoring;
            totals.search += result.timings.search;
        }
        const double n = static_cast<double>(sentences.size());
        std::printf("%-6d %8zu %7.1f%% %14.2f %14.2f %14s\n", sub,
                    asr.scorer().stateCount(),
                    100.0 * asr.wordErrorRate(sentences),
                    totals.scoring / n * 1e3, totals.search / n * 1e3,
                    sub == 1 ? "1x" : "~3x");
    }
    std::printf("\n(the finer models triple scoring and search work; "
                "accuracy holds on the synthetic input set)\n");

    bench::banner("Ablation: compressed voice over the network hop");
    const auto asr = AsrService::train(sentences);
    std::printf("%-8s %14s %10s %8s\n", "codec", "bytes/sample", "SNR",
                "WER");

    size_t words = 0;
    for (const auto &s : sentences)
        words += split(s).size();

    // Raw 16-bit PCM reference.
    std::printf("%-8s %14s %10s %7.1f%%\n", "pcm16", "2.0", "inf",
                100.0 * asr.wordErrorRate(sentences));

    for (int which : {0, 1}) {
        double snr_sum = 0.0;
        size_t errors = 0;
        for (const auto &sentence : sentences) {
            const auto wave = asr.synthesize(sentence);
            Waveform arrived;
            if (which == 0) {
                arrived = MuLawCodec::decode(MuLawCodec::encode(wave));
            } else {
                arrived = AdpcmCodec::decode(AdpcmCodec::encode(wave),
                                             wave.samples.size());
            }
            snr_sum += codecSnrDb(wave, arrived);
            errors += wordEditDistance(sentence,
                                       asr.transcribe(arrived).text);
        }
        std::printf("%-8s %14s %8.1fdB %7.1f%%\n",
                    which == 0 ? "mu-law" : "adpcm",
                    which == 0 ? "1.0" : "0.5",
                    snr_sum / static_cast<double>(sentences.size()),
                    100.0 * static_cast<double>(errors) /
                        static_cast<double>(words));
    }
    // Codec-matched training: standard practice when the channel is
    // lossy — train the acoustic models on ADPCM-round-tripped audio.
    AsrConfig matched_config;
    matched_config.trainChannel = [](const Waveform &wave) {
        return AdpcmCodec::decode(AdpcmCodec::encode(wave),
                                  wave.samples.size());
    };
    const auto matched = AsrService::train(sentences, matched_config);
    size_t errors = 0;
    for (const auto &sentence : sentences) {
        const auto wave = matched.synthesize(sentence);
        const auto arrived = AdpcmCodec::decode(
            AdpcmCodec::encode(wave), wave.samples.size());
        errors += wordEditDistance(sentence,
                                   matched.transcribe(arrived).text);
    }
    std::printf("%-8s %14s %10s %7.1f%%   (codec-matched training)\n",
                "adpcm*", "0.5", "-",
                100.0 * static_cast<double>(errors) /
                    static_cast<double>(words));

    std::printf("\nfindings: mu-law (2x) is transparent to clean-trained "
                "models; ADPCM (4x) needs codec-matched training — the "
                "kind of deployment detail the paper's mobile-to-server "
                "hop implies\n");
    return 0;
}
