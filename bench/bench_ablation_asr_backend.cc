/**
 * @file
 * Ablation: GMM vs DNN acoustic backends on the real ASR service.
 *
 * The paper motivates the industry shift from GMM to DNN scoring with
 * accuracy; this ablation measures both backends of our pipeline on the
 * same synthesized query set: word error rate, per-stage latency, and
 * the scoring/search time split (google-benchmark timings).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/query_set.h"
#include "speech/asr_service.h"

using namespace sirius;
using namespace sirius::speech;

namespace {

AsrService &
service(AsrBackend backend)
{
    static std::unique_ptr<AsrService> gmm, dnn;
    auto &slot = backend == AsrBackend::Gmm ? gmm : dnn;
    if (!slot) {
        AsrConfig config;
        config.backend = backend;
        slot = std::make_unique<AsrService>(
            AsrService::train(core::asrTrainingSentences(), config));
    }
    return *slot;
}

void
transcribeAll(benchmark::State &state, AsrBackend backend)
{
    auto &asr = service(backend);
    // Pre-synthesize outside the timed loop.
    std::vector<audio::Waveform> waves;
    for (const auto &sentence : core::asrTrainingSentences())
        waves.push_back(asr.synthesize(sentence));
    for (auto _ : state) {
        for (const auto &wave : waves) {
            const auto result = asr.transcribe(wave);
            benchmark::DoNotOptimize(result.logProb);
        }
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * waves.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::RegisterBenchmark("ASR/transcribe_42_queries/GMM",
                                 transcribeAll, AsrBackend::Gmm);
    benchmark::RegisterBenchmark("ASR/transcribe_42_queries/DNN",
                                 transcribeAll, AsrBackend::Dnn);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    bench::banner("Ablation: GMM vs DNN acoustic backend");
    std::printf("%-9s %10s %14s %14s %14s\n", "backend", "WER",
                "feat (ms)", "scoring (ms)", "search (ms)");
    for (AsrBackend backend : {AsrBackend::Gmm, AsrBackend::Dnn}) {
        auto &asr = service(backend);
        const double wer =
            asr.wordErrorRate(core::asrTrainingSentences());
        AsrTimings totals;
        for (const auto &sentence : core::asrTrainingSentences()) {
            const auto result = asr.transcribeText(sentence);
            totals.featureExtraction +=
                result.timings.featureExtraction;
            totals.scoring += result.timings.scoring;
            totals.search += result.timings.search;
        }
        const double n = static_cast<double>(
            core::asrTrainingSentences().size());
        std::printf("%-9s %9.1f%% %14.2f %14.2f %14.2f\n",
                    asr.backendName(), wer * 100.0,
                    totals.featureExtraction / n * 1e3,
                    totals.scoring / n * 1e3, totals.search / n * 1e3);
    }
    std::printf("\n(both backends must decode the full input set; "
                "scoring dominates both, as in Figure 9)\n");
    return 0;
}
