/**
 * @file
 * Figure 19 reproduction: the trade-off between latency improvement
 * (x-axis) and TCO improvement (y-axis) for each server option across
 * the four services.
 */

#include <cstdio>

#include "accel/model.h"
#include "bench_util.h"
#include "dcsim/designer.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

int
main()
{
    bench::banner("Figure 19: Trade-off Between TCO and Latency");
    const CalibratedModel model;
    const DatacenterDesigner designer(defaultServiceProfiles(), model);

    std::printf("%-11s %-12s %16s %16s %12s\n", "service", "platform",
                "latency gain", "TCO gain", "meets L?");
    for (ServiceKind service : allServices()) {
        for (Platform platform :
             {Platform::CmpMulticore, Platform::Gpu, Platform::Phi,
              Platform::Fpga}) {
            const auto point = designer.evaluate(service, platform);
            std::printf("%-11s %-12s %15.1fx %15.2fx %12s\n",
                        serviceKindName(service), platformName(platform),
                        point.latencyImprovement,
                        1.0 / point.normalizedTco,
                        point.meetsLatencyConstraint ? "yes" : "no");
        }
    }

    bench::subhead("key observations (paper section 5.2.3)");
    std::printf("- FPGA achieves the best latency on 3 of 4 services; "
                "its purchase cost lets the GPU reach similar or better "
                "TCO with less latency gain\n");
    std::printf("- without the FPGA, the GPU is latency- and "
                "TCO-optimal for every service\n");
    return 0;
}
