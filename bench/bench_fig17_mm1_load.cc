/**
 * @file
 * Figure 17 reproduction: throughput improvement at various load levels
 * with the server modeled as an M/M/1 queue (darker bars in the paper =
 * higher load). Figure 16 is the 100%-load lower bound of this chart.
 *
 * Run with `--measured` to additionally validate the analytic model
 * against *measurement*: a real single-worker core::ConcurrentServer is
 * driven by the open-loop Poisson generator at each load level, and its
 * measured mean sojourn time is printed next to the M/M/1 prediction and
 * the virtual-time Lindley replay at the same utilization.
 *
 * Run with `--deadline-ms D` to re-plot the same measured curve with
 * the robustness layer enabled: every query gets a D-millisecond budget
 * from admission, overdue queries degrade along the VIQ→VQ→VC ladder
 * (core::Degradation), and the sweep pushes λ all the way to and past μ
 * — where the no-deadline sojourn diverges, the deadline run's p99
 * saturates and the shed/degraded columns absorb the overload instead.
 *
 * Run with `--shards M` for the cluster tier's validation: (a) mean/p99
 * sojourn across the four routing policies on an M-shard
 * core::ClusterRouter at fixed aggregate load, and (b) the sharded
 * M/M/1 check — hold aggregate λ constant, grow the fleet from 1 to M
 * shards, and compare the measured mean sojourn against
 * dcsim::shardedMm1Latency (each shard sees λ/N, so queueing delay
 * melts as shards are added). Holding λ fixed keeps the experiment
 * honest on one machine: total work never exceeds one core's capacity,
 * so adding shards changes only the queueing, which is what the model
 * predicts.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "accel/latency.h"
#include "bench_util.h"
#include "common/metrics.h"
#include "core/cluster.h"
#include "core/concurrent_server.h"
#include "dcsim/queueing.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

namespace {

void
writeFile(const std::string &path, const std::string &text,
          const char *what)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s for writing\n",
                     path.c_str());
        return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s to %s\n", what, path.c_str());
}

/**
 * Measured-vs-model comparison: one worker makes the leaf node an
 * M/[G]/1 queue, the shape the Figure-17 analysis assumes. Per-rho
 * server metrics are merged into one registry, labeled by load level,
 * and exported on request (--metrics-out Prometheus, --csv-out CSV for
 * the bench harness).
 */
void
measuredComparison(const std::string &metrics_out,
                   const std::string &csv_out)
{
    bench::banner("Figure 17 (validation): measured open-loop sojourn vs "
                  "M/M/1");
    std::printf("training the pipeline (small QA corpus for bench "
                "speed)...\n");
    core::SiriusConfig config;
    config.qa.fillerDocs = 60;
    const auto pipeline = core::SiriusPipeline::build(config);

    // Ground the capacity estimate on a sequential warm-up pass.
    core::SiriusServer probe(pipeline);
    for (const auto &query : core::standardQuerySet())
        probe.handle(query);
    const double mu = probe.serviceRate();
    std::printf("measured service rate mu = %.1f queries/s\n\n", mu);

    MetricsRegistry registry;
    std::printf("%-8s %14s %14s %14s %12s | %12s %12s %7s\n", "load",
                "measured mean", "replay mean", "M/M/1 mean", "shed",
                "cached mean", "cached p99", "hit");
    for (double rho : {0.3, 0.5, 0.7}) {
        const double lambda = rho * mu;
        core::ConcurrentServerConfig server_config;
        server_config.workers = 1; // M/*/1: the queueing model's shape
        server_config.queueCapacity = 256;
        // Trace every query: the default run doubles as the regression
        // gate that the span ring is sized for full sampling at this
        // request count (sirius_trace_dropped_total must stay 0).
        server_config.traceSampleRate = 1.0;
        server_config.traceCapacity = 8192;
        core::ConcurrentServer server(pipeline, server_config);
        const auto measured = core::runOpenLoop(server, lambda, 160);
        if (const auto stats = server.snapshot(); stats.traceDropped != 0) {
            std::fprintf(stderr,
                         "FAIL: %llu spans dropped from the trace ring "
                         "at load %.1f — sirius_trace_dropped_total "
                         "must be 0 in the default fig17 run\n",
                         static_cast<unsigned long long>(
                             stats.traceDropped),
                         rho);
            std::exit(1);
        }
        const auto replayed = core::loadTest(probe, lambda, 4000);
        char load[16];
        std::snprintf(load, sizeof(load), "%.1f", rho);
        server.exportMetrics(registry,
                             {{"server", "mm1"}, {"load", load}});

        // Cached arm: same arrivals, same round-robin queries (160
        // requests cycle the 42-query set ~4 times, so steady-state
        // repetition accrues even without Zipf skew), result caches on.
        core::ConcurrentServerConfig cached_config = server_config;
        cached_config.cache.enabled = true;
        core::ConcurrentServer cached(pipeline, cached_config);
        const auto cached_run = core::runOpenLoop(cached, lambda, 160);
        const auto cache_stats = cached.snapshot().caches.total();
        cached.exportMetrics(registry, {{"server", "mm1_cached"},
                                        {"load", load}});

        std::printf("%-8.1f %12.2fms %12.2fms %12.2fms %12llu | "
                    "%10.2fms %10.2fms %6.0f%%\n", rho,
                    measured.sojournSeconds.mean() * 1e3,
                    replayed.sojournSeconds.mean() * 1e3,
                    mm1Latency(lambda, mu) * 1e3,
                    static_cast<unsigned long long>(measured.rejected),
                    cached_run.sojournSeconds.mean() * 1e3,
                    cached_run.sojournSeconds.percentile(99) * 1e3,
                    cache_stats.hitRate() * 100.0);
    }
    if (!metrics_out.empty())
        writeFile(metrics_out, registry.renderPrometheus(),
                  "Prometheus metrics");
    if (!csv_out.empty())
        writeFile(csv_out, registry.renderCsv(), "CSV metrics");
    std::printf("\nthe three model columns should agree in shape: "
                "latency inflates as load rises. M/M/1 assumes "
                "exponential service, so with Sirius's "
                "near-deterministic per-class times it overestimates "
                "queueing at high load — the measured curve is the "
                "ground truth the model approximates. The cached "
                "columns re-run the same arrivals with the result "
                "caches on (docs/CACHING.md): repeats served from cache "
                "shrink the effective service time, which drops the "
                "whole queueing curve\n\n");
}

/**
 * Figure-17 curve with shedding: one worker, Poisson arrivals pushed to
 * and past capacity, measured with and without a per-query deadline.
 * Without a deadline, sojourn diverges as λ→μ (the M/M/1 pole). With
 * one, overdue queries shed stages down the VIQ→VQ→VC ladder and
 * complete near-free, so the queue keeps draining and p99 saturates
 * around the budget — bounded latency is bought with degraded answers,
 * and the degraded/missed columns price it.
 */
void
deadlineSweep(double deadline_seconds)
{
    bench::banner("Figure 17 (shedding): bounded sojourn under a "
                  "deadline vs divergence without");
    std::printf("training the pipeline (small QA corpus for bench "
                "speed)...\n");
    core::SiriusConfig config;
    config.qa.fillerDocs = 60;
    const auto pipeline = core::SiriusPipeline::build(config);

    core::SiriusServer probe(pipeline);
    for (const auto &query : core::standardQuerySet())
        probe.handle(query);
    const double mu = probe.serviceRate();
    std::printf("measured service rate mu = %.1f queries/s; deadline "
                "%.0f ms\n\n", mu, deadline_seconds * 1e3);

    std::printf("%-8s | %12s %6s | %12s %6s %9s %7s\n", "",
                "no deadline", "", "deadline", "", "", "");
    std::printf("%-8s | %12s %6s | %12s %6s %9s %7s\n", "load",
                "p99 sojourn", "shed", "p99 sojourn", "shed",
                "degraded", "missed");
    for (double rho : {0.5, 0.8, 0.95, 1.1}) {
        const double lambda = rho * mu;
        const size_t requests = 160;

        core::ConcurrentServerConfig base;
        base.workers = 1;
        base.queueCapacity = 256;
        core::ConcurrentServer plain(pipeline, base);
        const auto without = core::runOpenLoop(plain, lambda, requests);

        core::ConcurrentServerConfig bounded = base;
        bounded.deadlineSeconds = deadline_seconds;
        core::ConcurrentServer shedding(pipeline, bounded);
        const auto with = core::runOpenLoop(shedding, lambda, requests);

        std::printf("%-8.2f | %10.1fms %6llu | %10.1fms %6llu %9llu "
                    "%7llu\n", rho,
                    without.sojournSeconds.percentile(99) * 1e3,
                    static_cast<unsigned long long>(without.rejected),
                    with.sojournSeconds.percentile(99) * 1e3,
                    static_cast<unsigned long long>(with.rejected),
                    static_cast<unsigned long long>(with.degraded),
                    static_cast<unsigned long long>(
                        with.deadlineMisses));
    }
    std::printf("\nexpected shape: the no-deadline p99 grows without "
                "bound as load crosses 1.0 (every arrival queues behind "
                "an ever-longer backlog), while the deadline p99 "
                "saturates near the budget — overdue queries shed "
                "stages (degraded column) instead of stretching the "
                "tail\n\n");
}

/**
 * Cluster-tier validation: routing-policy sojourn comparison at fixed
 * aggregate load, then the sharded-M/M/1 scaling check (fixed λ,
 * growing fleet) against dcsim::shardedMm1Latency.
 */
void
shardedComparison(size_t max_shards)
{
    bench::banner("Figure 17 (cluster): routing policies and sharded "
                  "M/M/1");
    std::printf("training the pipeline (small QA corpus for bench "
                "speed)...\n");
    core::SiriusConfig config;
    config.qa.fillerDocs = 60;
    const auto pipeline = core::SiriusPipeline::build(config);

    core::SiriusServer probe(pipeline);
    for (const auto &query : core::standardQuerySet())
        probe.handle(query);
    const double mu = probe.serviceRate();
    // Fixed aggregate load at 60% of ONE worker's capacity: every run
    // below fits this machine, so shard count changes only the
    // queueing, never the compute budget.
    const double lambda = 0.6 * mu;
    const size_t requests = 160;
    std::printf("measured service rate mu = %.1f queries/s per shard; "
                "aggregate lambda = %.1f queries/s (rho 0.6 of one "
                "worker)\n\n", mu, lambda);

    core::ConcurrentServerConfig shard_config;
    shard_config.workers = 1;
    shard_config.queueCapacity = 256;
    shard_config.batching.enabled = false;

    std::printf("routing policies, %zu shards:\n", max_shards);
    std::printf("%-10s %14s %14s %14s %6s\n", "policy", "mean sojrn",
                "p95 sojrn", "p99 sojrn", "shed");
    for (size_t p = 0; p < core::kRoutingPolicies; ++p) {
        core::ClusterConfig cluster;
        cluster.shards = max_shards;
        cluster.policy = static_cast<core::RoutingPolicy>(p);
        cluster.shard = shard_config;
        core::ClusterRouter router(pipeline, cluster);
        const auto result = core::runOpenLoop(router, lambda, requests);
        std::printf("%-10s %12.2fms %12.2fms %12.2fms %6llu\n",
                    core::routingPolicyName(cluster.policy),
                    result.sojournSeconds.mean() * 1e3,
                    result.sojournSeconds.percentile(95) * 1e3,
                    result.sojournSeconds.percentile(99) * 1e3,
                    static_cast<unsigned long long>(result.rejected));
    }

    std::printf("\nsharded M/M/1: fixed aggregate lambda, growing "
                "fleet (least-outstanding routing)\n");
    std::printf("%-8s %16s %18s\n", "shards", "measured mean",
                "sharded M/M/1 mean");
    for (size_t shards = 1; shards <= max_shards; shards *= 2) {
        core::ClusterConfig cluster;
        cluster.shards = shards;
        cluster.shard = shard_config;
        core::ClusterRouter router(pipeline, cluster);
        const auto result = core::runOpenLoop(router, lambda, requests);
        std::printf("%-8zu %14.2fms %16.2fms\n", shards,
                    result.sojournSeconds.mean() * 1e3,
                    shardedMm1Latency(lambda, mu,
                                      static_cast<unsigned>(shards)) *
                        1e3);
    }
    std::printf("\nexpected shape: the model column falls toward the "
                "bare service time as shards are added — each shard "
                "sees lambda/N, so queueing delay melts while service "
                "time stays put. The measured column only follows on a "
                "host with >= as many cores as shard workers: with "
                "fewer, concurrent shards time-slice the same cores "
                "and inflate service time by roughly what they save in "
                "queue wait, so a flat measured column on a small host "
                "is the expected artifact, not a routing bug (see "
                "docs/SCALING.md). M/M/1's exponential-service "
                "assumption also overstates the queueing at small N "
                "for Sirius's near-deterministic per-class times\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool measured = false;
    double deadline_seconds = 0.0;
    size_t shards = 0;
    std::string metrics_out, csv_out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--measured") == 0)
            measured = true;
        else if (std::strcmp(argv[i], "--deadline-ms") == 0 &&
                 i + 1 < argc)
            deadline_seconds = std::atof(argv[++i]) * 1e-3;
        else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
            shards = static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--metrics-out") == 0 &&
                 i + 1 < argc)
            metrics_out = argv[++i];
        else if (std::strcmp(argv[i], "--csv-out") == 0 && i + 1 < argc)
            csv_out = argv[++i];
    }
    if (!measured && (!metrics_out.empty() || !csv_out.empty())) {
        std::printf("note: --metrics-out/--csv-out export the "
                    "--measured servers; enabling --measured\n");
        measured = true;
    }
    if (measured)
        measuredComparison(metrics_out, csv_out);
    if (deadline_seconds > 0.0)
        deadlineSweep(deadline_seconds);
    if (shards > 0)
        shardedComparison(shards);

    bench::banner("Figure 17: Throughput Improvement at Various Load "
                  "Levels (M/M/1)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();
    const double loads[] = {0.9, 0.7, 0.5, 0.3};

    for (const auto &profile : profiles) {
        std::printf("\n%s\n", serviceKindName(profile.kind));
        std::printf("%-10s", "platform");
        for (double rho : loads)
            std::printf("   load=%.1f", rho);
        std::printf("\n");
        for (Platform p : {Platform::Gpu, Platform::Phi,
                           Platform::Fpga}) {
            // Per-server latency speedup over the query-parallel CMP
            // core feeds the queueing model as a service-rate ratio.
            const double speedup =
                serviceLatency(profile, model, Platform::Cmp) /
                serviceLatency(profile, model, p);
            std::printf("%-10s", platformName(p));
            for (double rho : loads) {
                std::printf(" %9.1fx",
                            throughputImprovementAtLoad(speedup, rho) /
                                4.0);
            }
            std::printf("\n");
        }
    }

    std::printf("\nexpected shape: the lower the load, the bigger the "
                "improvement; the 100%%-load limit matches Figure 16\n");
    if (!measured)
        std::printf("(run with --measured to compare a real concurrent "
                    "server's open-loop latency against the M/M/1 "
                    "prediction)\n");
    if (deadline_seconds <= 0.0)
        std::printf("(run with --deadline-ms 200 to re-plot the "
                    "measured curve with deadline shedding enabled)\n");
    return 0;
}
