/**
 * @file
 * Figure 17 reproduction: throughput improvement at various load levels
 * with the server modeled as an M/M/1 queue (darker bars in the paper =
 * higher load). Figure 16 is the 100%-load lower bound of this chart.
 */

#include <cstdio>

#include "accel/latency.h"
#include "bench_util.h"
#include "dcsim/queueing.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

int
main()
{
    bench::banner("Figure 17: Throughput Improvement at Various Load "
                  "Levels (M/M/1)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();
    const double loads[] = {0.9, 0.7, 0.5, 0.3};

    for (const auto &profile : profiles) {
        std::printf("\n%s\n", serviceKindName(profile.kind));
        std::printf("%-10s", "platform");
        for (double rho : loads)
            std::printf("   load=%.1f", rho);
        std::printf("\n");
        for (Platform p : {Platform::Gpu, Platform::Phi,
                           Platform::Fpga}) {
            // Per-server latency speedup over the query-parallel CMP
            // core feeds the queueing model as a service-rate ratio.
            const double speedup =
                serviceLatency(profile, model, Platform::Cmp) /
                serviceLatency(profile, model, p);
            std::printf("%-10s", platformName(p));
            for (double rho : loads) {
                std::printf(" %9.1fx",
                            throughputImprovementAtLoad(speedup, rho) /
                                4.0);
            }
            std::printf("\n");
        }
    }

    std::printf("\nexpected shape: the lower the load, the bigger the "
                "improvement; the 100%%-load limit matches Figure 16\n");
    return 0;
}
