/**
 * @file
 * Figure 17 reproduction: throughput improvement at various load levels
 * with the server modeled as an M/M/1 queue (darker bars in the paper =
 * higher load). Figure 16 is the 100%-load lower bound of this chart.
 *
 * Run with `--measured` to additionally validate the analytic model
 * against *measurement*: a real single-worker core::ConcurrentServer is
 * driven by the open-loop Poisson generator at each load level, and its
 * measured mean sojourn time is printed next to the M/M/1 prediction and
 * the virtual-time Lindley replay at the same utilization.
 */

#include <cstdio>
#include <cstring>

#include "accel/latency.h"
#include "bench_util.h"
#include "core/concurrent_server.h"
#include "dcsim/queueing.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

namespace {

/**
 * Measured-vs-model comparison: one worker makes the leaf node an
 * M/[G]/1 queue, the shape the Figure-17 analysis assumes.
 */
void
measuredComparison()
{
    bench::banner("Figure 17 (validation): measured open-loop sojourn vs "
                  "M/M/1");
    std::printf("training the pipeline (small QA corpus for bench "
                "speed)...\n");
    core::SiriusConfig config;
    config.qa.fillerDocs = 60;
    const auto pipeline = core::SiriusPipeline::build(config);

    // Ground the capacity estimate on a sequential warm-up pass.
    core::SiriusServer probe(pipeline);
    for (const auto &query : core::standardQuerySet())
        probe.handle(query);
    const double mu = probe.serviceRate();
    std::printf("measured service rate mu = %.1f queries/s\n\n", mu);

    std::printf("%-8s %14s %14s %14s %12s\n", "load", "measured mean",
                "replay mean", "M/M/1 mean", "shed");
    for (double rho : {0.3, 0.5, 0.7}) {
        const double lambda = rho * mu;
        core::ConcurrentServerConfig server_config;
        server_config.workers = 1; // M/*/1: the queueing model's shape
        server_config.queueCapacity = 256;
        core::ConcurrentServer server(pipeline, server_config);
        const auto measured = core::runOpenLoop(server, lambda, 160);
        const auto replayed = core::loadTest(probe, lambda, 4000);
        std::printf("%-8.1f %12.2fms %12.2fms %12.2fms %12llu\n", rho,
                    measured.sojournSeconds.mean() * 1e3,
                    replayed.sojournSeconds.mean() * 1e3,
                    mm1Latency(lambda, mu) * 1e3,
                    static_cast<unsigned long long>(measured.rejected));
    }
    std::printf("\nthe three columns should agree in shape: latency "
                "inflates as load rises. M/M/1 assumes exponential "
                "service, so with Sirius's near-deterministic per-class "
                "times it overestimates queueing at high load — the "
                "measured curve is the ground truth the model "
                "approximates\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const bool measured =
        argc > 1 && std::strcmp(argv[1], "--measured") == 0;
    if (measured)
        measuredComparison();

    bench::banner("Figure 17: Throughput Improvement at Various Load "
                  "Levels (M/M/1)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();
    const double loads[] = {0.9, 0.7, 0.5, 0.3};

    for (const auto &profile : profiles) {
        std::printf("\n%s\n", serviceKindName(profile.kind));
        std::printf("%-10s", "platform");
        for (double rho : loads)
            std::printf("   load=%.1f", rho);
        std::printf("\n");
        for (Platform p : {Platform::Gpu, Platform::Phi,
                           Platform::Fpga}) {
            // Per-server latency speedup over the query-parallel CMP
            // core feeds the queueing model as a service-rate ratio.
            const double speedup =
                serviceLatency(profile, model, Platform::Cmp) /
                serviceLatency(profile, model, p);
            std::printf("%-10s", platformName(p));
            for (double rho : loads) {
                std::printf(" %9.1fx",
                            throughputImprovementAtLoad(speedup, rho) /
                                4.0);
            }
            std::printf("\n");
        }
    }

    std::printf("\nexpected shape: the lower the load, the bigger the "
                "improvement; the 100%%-load limit matches Figure 16\n");
    if (!measured)
        std::printf("(run with --measured to compare a real concurrent "
                    "server's open-loop latency against the M/M/1 "
                    "prediction)\n");
    return 0;
}
