/**
 * @file
 * Figure 7 reproduction.
 *
 * 7a (left):  average Web Search vs Sirius query latency, both measured
 *             on this machine's substrates (memory-resident, no I/O).
 * 7a (right): machines needed as the IPA:WS query ratio grows — the
 *             scalability gap.
 * 7b:         average latency per query class (WS, VC, VQ, VIQ).
 *
 * Absolute times differ from the paper's testbed (our corpus and models
 * are synthetic); the *ratios* are what this figure is about.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "core/query_set.h"
#include "dcsim/scalability.h"
#include "search/web_search.h"

using namespace sirius;
using namespace sirius::core;

int
main()
{
    bench::banner("Figure 7: Scalability Gap and Latency Across Query "
                  "Types");

    std::printf("building Sirius pipeline (training ASR, QA, IMM)...\n");
    SiriusConfig config;
    const SiriusPipeline pipeline = SiriusPipeline::build(config);
    const auto web_search = search::WebSearch::build();

    // ---- Web Search baseline latency (averaged over the fact set).
    SampleStats ws_stats;
    for (const auto &fact : search::knowledgeFacts()) {
        Stopwatch watch;
        const auto results = web_search.query(fact.subject, 10);
        ws_stats.add(watch.seconds());
        if (results.empty())
            std::printf("warning: empty result for %s\n",
                        fact.subject.c_str());
    }

    // ---- Sirius latency per query class.
    SampleStats all_stats;
    SampleStats per_class[3];
    for (const auto &query : standardQuerySet()) {
        const auto result = pipeline.process(query);
        const double latency = result.timings.total();
        all_stats.add(latency);
        per_class[static_cast<int>(query.type)].add(latency);
    }

    bench::subhead("Figure 7a (left): average query latency");
    std::printf("%-22s %12.3f ms\n", "Web Search (Nutch-like)",
                ws_stats.mean() * 1e3);
    std::printf("%-22s %12.3f ms\n", "Sirius (42 queries)",
                all_stats.mean() * 1e3);

    const double gap = dcsim::scalabilityGap(all_stats.mean(),
                                             ws_stats.mean());
    std::printf("\nscalability gap (Sirius / Web Search): %.1fx\n", gap);
    std::printf("(paper: ~15 s vs 91 ms => 165x on the authors' "
                "testbed)\n");

    bench::subhead("Figure 7a (right): machines needed vs IPA query "
                   "ratio");
    std::printf("%-18s %18s\n", "IPA:WS query ratio",
                "machines (xWS fleet)");
    const auto curve = dcsim::scalingCurve(gap, 5);
    for (size_t i = 0; i < curve.queryRatios.size(); ++i) {
        std::printf("%18.2f %18.1f\n", curve.queryRatios[i],
                    curve.machineRatios[i]);
    }

    bench::subhead("Figure 7b: average latency per query class");
    std::printf("%-6s %12s   %s\n", "class", "latency", "");
    std::printf("%-6s %10.3f ms %s\n", "WS", ws_stats.mean() * 1e3,
                bench::bar(ws_stats.mean() * 1e3, 2.0).c_str());
    const char *names[3] = {"VC", "VQ", "VIQ"};
    for (int c = 0; c < 3; ++c) {
        std::printf("%-6s %10.3f ms %s\n", names[c],
                    per_class[c].mean() * 1e3,
                    bench::bar(per_class[c].mean() * 1e3, 2.0).c_str());
    }
    std::printf("\nexpected shape: VIQ > VQ > VC >> WS (paper Fig 7b)\n");
    return 0;
}
