/**
 * @file
 * Ablation: the Section 4.3.4 FPGA designs, core by core.
 *
 * Reproduces the paper's core-scaling narrative with the structural
 * simulators: the Figure-11 GMM core goes from 56x (1 core) to 169x
 * (3 cores fill the Virtex-6); the Figure-12 stemmer goes from 6x
 * (17% of fabric) to 30x (5 cores). CPU rates are measured from the
 * real Sirius Suite kernels on this machine.
 */

#include <cstdio>

#include "accel/fpga_sim.h"
#include "bench_util.h"
#include "suite/gmm_kernel.h"
#include "suite/stemmer_kernel.h"

using namespace sirius;
using namespace sirius::accel;

int
main()
{
    bench::banner("Ablation: FPGA core scaling (Section 4.3.4)");

    // ---- Measure this machine's CPU rates on the actual kernels.
    const suite::GmmKernel gmm_kernel(256, 8, 128, 32, 7);
    const auto gmm_run = gmm_kernel.runSerial();
    const double cpu_states_per_s =
        static_cast<double>(gmm_kernel.stateCount() *
                            gmm_kernel.frameCount()) / gmm_run.seconds;

    const suite::StemmerKernel stem_kernel(400000, 7);
    const auto stem_run = stem_kernel.runSerial();
    const double cpu_words_per_s =
        static_cast<double>(stem_kernel.wordCount()) / stem_run.seconds;

    std::printf("measured CPU rates: GMM %.2fM state-scores/s, "
                "stemmer %.2fM words/s\n",
                cpu_states_per_s / 1e6, cpu_words_per_s / 1e6);

    // ---- GMM core scaling.
    bench::subhead("Figure 11 GMM core (39-dim, 8-component states)");
    const FpgaGmmSimulator gmm_sim(39, 8);
    std::printf("core: %d LUTs, %.0f cycles/state, fits %d cores\n",
                gmm_sim.coreLuts(), gmm_sim.cyclesPerState(),
                gmm_sim.maxCores());
    std::printf("%-7s %18s %18s\n", "cores", "states/s",
                "speedup vs this CPU");
    for (int cores = 1; cores <= gmm_sim.maxCores(); ++cores) {
        std::printf("%-7d %17.1fM %17.1fx\n", cores,
                    gmm_sim.statesPerSecond(cores) / 1e6,
                    gmm_sim.speedupVsCpu(cpu_states_per_s, cores));
    }
    std::printf("(paper: 56x with one core -> 169x with three; the "
                "3.0x core-scaling ratio is the structural invariant)\n");

    // ---- Stemmer core scaling.
    bench::subhead("Figure 12 stemmer core (six-step pipeline)");
    const FpgaStemmerSimulator stem_sim;
    std::printf("core: %.0f%% of fabric, %.0f cycles/word, fits %d "
                "cores\n",
                stem_sim.coreFabricFraction() * 100.0,
                stem_sim.cyclesPerWord(), stem_sim.maxCores());
    std::printf("%-7s %18s %18s\n", "cores", "words/s",
                "speedup vs this CPU");
    for (int cores = 1; cores <= stem_sim.maxCores(); ++cores) {
        std::printf("%-7d %17.1fM %17.1fx\n", cores,
                    stem_sim.wordsPerSecond(cores) / 1e6,
                    stem_sim.speedupVsCpu(cpu_words_per_s, cores));
    }
    std::printf("(paper: 6x with one core at 17%% fabric -> 30x with "
                "five)\n");
    return 0;
}
