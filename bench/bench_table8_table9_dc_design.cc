/**
 * @file
 * Table 8 / Table 9 reproduction: homogeneous and partitioned-
 * heterogeneous datacenter designs under three objectives and three
 * accelerator candidate sets.
 */

#include <cstdio>

#include "accel/model.h"
#include "bench_util.h"
#include "dcsim/designer.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

namespace {

void
printDesignTable(const DatacenterDesigner &designer, bool heterogeneous)
{
    const Objective objectives[] = {
        Objective::MinLatency,
        Objective::MinTcoWithLatency,
        Objective::MaxPowerEffWithLatency,
    };
    struct NamedSet
    {
        const char *name;
        CandidateSet set;
    };
    NamedSet sets[] = {
        {"with FPGA", {}},
        {"without FPGA", {true, true, false}},
        {"without FPGA or GPU", {false, true, false}},
    };

    for (const auto &[set_name, set] : sets) {
        std::printf("\n[%s]\n", set_name);
        std::printf("%-42s", "objective");
        for (ServiceKind service : allServices())
            std::printf(" %-11s", serviceKindName(service));
        std::printf("\n");
        for (Objective objective : objectives) {
            std::printf("%-42s", objectiveName(objective));
            if (heterogeneous) {
                for (const auto &[service, platform] :
                     designer.heterogeneousDesign(objective, set)) {
                    (void)service;
                    std::printf(" %-11s", platformName(platform));
                }
            } else {
                const Platform platform =
                    designer.homogeneousDesign(objective, set);
                for (size_t i = 0; i < allServices().size(); ++i)
                    std::printf(" %-11s", platformName(platform));
            }
            std::printf("\n");
        }
    }
}

} // namespace

int
main()
{
    const CalibratedModel model;
    const DatacenterDesigner designer(defaultServiceProfiles(), model);

    bench::banner("Table 8: Homogeneous Datacenter Designs");
    printDesignTable(designer, false);

    bench::banner("Table 9: Heterogeneous (Partitioned) Datacenter "
                  "Designs");
    printDesignTable(designer, true);

    bench::subhead("heterogeneous gains over the homogeneous design "
                   "(Table 9 parentheses)");
    CandidateSet all;
    std::printf("latency objective, ASR (DNN): %.1fx (paper: GPU "
                "3.6x)\n",
                designer.heterogeneousGain(Objective::MinLatency, all,
                                           ServiceKind::AsrDnn));
    std::printf("TCO objective, QA: %.0f%% (paper: FPGA 20%%)\n",
                (designer.heterogeneousGain(Objective::MinTcoWithLatency,
                                            all, ServiceKind::Qa) -
                 1.0) * 100.0);
    std::printf("TCO objective, IMM: %.0f%% (paper: FPGA 19%%)\n",
                (designer.heterogeneousGain(Objective::MinTcoWithLatency,
                                            all, ServiceKind::Imm) -
                 1.0) * 100.0);
    std::printf("\nkey observation: partitioned heterogeneity provides "
                "little benefit over the homogeneous design (paper "
                "section 5.2.4)\n");
    return 0;
}
