/**
 * @file
 * Ablation: approximate-nearest-neighbour budget in the IMM matcher.
 *
 * The k-d tree's `max_leaves` bound trades match fidelity against
 * search time (the "approximate" in the paper's ANN descriptor search).
 * This sweep measures, on real SURF descriptors from the landmark
 * database, how often the bounded search returns the exact nearest
 * neighbour and what end-to-end matching accuracy results.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "vision/imm_service.h"
#include "vision/landmarks.h"
#include "vision/matcher.h"

using namespace sirius;
using namespace sirius::vision;

int
main()
{
    bench::banner("Ablation: ANN search budget (k-d tree max_leaves)");

    // Database descriptors from one landmark; queries from its
    // perturbed view.
    const Image db_image = generateLandmark(3);
    const IntegralImage db_integral(db_image);
    auto db_keypoints = detectKeypoints(db_integral);
    const KdTree tree(describeKeypoints(db_integral, db_keypoints));

    const Image query_image = generateQueryView(3);
    const IntegralImage query_integral(query_image);
    auto query_keypoints = detectKeypoints(query_integral);
    const auto queries = describeKeypoints(query_integral,
                                           query_keypoints);

    std::printf("database: %zu descriptors; queries: %zu\n", tree.size(),
                queries.size());
    std::printf("%-12s %14s %14s %12s\n", "max_leaves", "exact-NN rate",
                "time (us/qry)", "good matches");
    for (size_t leaves : {size_t{1}, size_t{4}, size_t{16}, size_t{32},
                          size_t{128}, size_t{100000}}) {
        // Fidelity: how often the bounded search finds the true NN.
        size_t agree = 0;
        for (const auto &q : queries) {
            const auto approx = tree.nearest2(q, leaves);
            const auto exact = tree.nearest2Exact(q);
            agree += approx.index == exact.index;
        }
        // Cost: time the bounded search alone.
        Stopwatch watch;
        for (const auto &q : queries) {
            const auto nn = tree.nearest2(q, leaves);
            (void)nn;
        }
        const double us = watch.microseconds() /
            static_cast<double>(queries.size());
        const auto stats = matchDescriptors(queries, tree, 0.85f,
                                            leaves);
        std::printf("%-12zu %13.1f%% %14.2f %12zu\n", leaves,
                    100.0 * static_cast<double>(agree) /
                        static_cast<double>(queries.size()),
                    us, stats.goodMatches);
    }

    // End-to-end effect: the full database still identifies the right
    // landmark even at tight budgets?
    bench::subhead("end-to-end match accuracy vs budget");
    const ImmService imm = ImmService::build(10);
    size_t correct = 0;
    for (int id = 0; id < 10; ++id)
        correct += imm.match(generateQueryView(id)).bestId == id;
    std::printf("default budget (32 leaves): %zu/10 landmarks "
                "identified\n", correct);
    return 0;
}
