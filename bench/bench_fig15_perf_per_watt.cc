/**
 * @file
 * Figure 15 reproduction: energy efficiency (performance per watt) of
 * each accelerator across the four services, normalized to the all-core
 * multicore CPU.
 */

#include <cstdio>

#include "accel/latency.h"
#include "bench_util.h"

using namespace sirius;
using namespace sirius::accel;

int
main()
{
    bench::banner("Figure 15: Performance per Watt (normalized to "
                  "multicore CMP)");
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();

    std::printf("%-11s %10s %10s %10s %10s\n", "service", "CMP(subq)",
                "GPU", "Phi", "FPGA");
    double fpga_mean = 0.0;
    for (const auto &profile : profiles) {
        std::printf("%-11s", serviceKindName(profile.kind));
        for (Platform p : {Platform::CmpMulticore, Platform::Gpu,
                           Platform::Phi, Platform::Fpga}) {
            const double ppw = perfPerWattVsMulticore(profile, model, p);
            std::printf(" %9.2fx", ppw);
            if (p == Platform::Fpga)
                fpga_mean += ppw / 4.0;
        }
        std::printf("\n");
    }

    bench::subhead("key observations (paper section 5.1.2)");
    std::printf("- FPGA mean perf/W: %.1fx the multicore baseline "
                "(paper: >12x, best on every service)\n", fpga_mean);
    const auto &qa = profiles[2];
    std::printf("- GPU perf/W on QA: %.2fx (paper: below baseline, the "
                "GPU's only loss)\n",
                perfPerWattVsMulticore(qa, model, Platform::Gpu));
    return 0;
}
