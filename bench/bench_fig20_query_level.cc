/**
 * @file
 * Figure 20 reproduction: query-level latency, energy efficiency and
 * TCO of the two best homogeneous datacenters (GPU- and FPGA-
 * accelerated) across the VC / VQ / VIQ query classes.
 *
 * Pathways compose the service profiles: VC = ASR, VQ = ASR + QA,
 * VIQ = ASR + QA + IMM. Both ASR backends are reported: the GMM pathway
 * (Sirius' default end-to-end configuration) reproduces the paper's
 * FPGA latency win; the DNN pathway shows where the GPU's TCO edge
 * (2.6x in the paper) comes from — RASR's framework-level GPU port.
 */

#include <cstdio>

#include "accel/latency.h"
#include "bench_util.h"
#include "dcsim/tco.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

namespace {

struct Pathway
{
    const char *name;
    std::vector<ServiceKind> services;
};

const ServiceProfile &
profileOf(const std::vector<ServiceProfile> &profiles, ServiceKind kind)
{
    for (const auto &p : profiles) {
        if (p.kind == kind)
            return p;
    }
    std::abort();
}

void
reportPathways(const std::vector<ServiceProfile> &profiles,
               ServiceKind asr_kind, const char *label)
{
    const CalibratedModel model;
    const TcoParams params;
    const Pathway pathways[] = {
        {"VC", {asr_kind}},
        {"VQ", {asr_kind, ServiceKind::Qa}},
        {"VIQ", {asr_kind, ServiceKind::Qa, ServiceKind::Imm}},
    };

    bench::subhead(std::string("pathways with ") + label);
    std::printf("%-5s | %12s %12s %10s | %12s %12s %10s\n", "query",
                "GPU latency", "GPU energy", "GPU TCO", "FPGA latency",
                "FPGA energy", "FPGA TCO");
    double avg_lat[2] = {0, 0}, avg_tco[2] = {0, 0};
    for (const auto &pathway : pathways) {
        double results[2][3]; // [platform][latency gain, energy, tco]
        int idx = 0;
        for (Platform platform : {Platform::Gpu, Platform::Fpga}) {
            double base = 0.0, lat = 0.0, mc = 0.0;
            double energy_num = 0.0;
            for (ServiceKind kind : pathway.services) {
                const auto &profile = profileOf(profiles, kind);
                base += serviceLatency(profile, model, Platform::Cmp);
                lat += serviceLatency(profile, model, platform);
                mc += serviceLatency(profile, model,
                                     Platform::CmpMulticore);
            }
            const double latency_gain = base / lat;
            // Energy efficiency vs the multicore CMP at pathway level.
            const double base_watts =
                platformSpec(Platform::CmpMulticore).tdpWatts;
            const double watts = platformSpec(platform).tdpWatts;
            energy_num = (1.0 / (lat * watts)) /
                (1.0 / (mc * base_watts));
            const double improvement = (base / lat) / 4.0;
            const double tco_gain =
                1.0 / normalizedTco(platform, improvement, params);
            results[idx][0] = latency_gain;
            results[idx][1] = energy_num;
            results[idx][2] = tco_gain;
            avg_lat[idx] += latency_gain / 3.0;
            avg_tco[idx] += tco_gain / 3.0;
            ++idx;
        }
        std::printf("%-5s | %11.1fx %11.1fx %9.2fx | %11.1fx %11.1fx "
                    "%9.2fx\n",
                    pathway.name, results[0][0], results[0][1],
                    results[0][2], results[1][0], results[1][1],
                    results[1][2]);
    }
    std::printf("avg   | %11.1fx %23.2fx | %11.1fx %23.2fx\n",
                avg_lat[0], avg_tco[0], avg_lat[1], avg_tco[1]);
}

} // namespace

int
main()
{
    bench::banner("Figure 20: Latency, Energy Efficiency and TCO of GPU "
                  "and FPGA Datacenters");
    const auto profiles = defaultServiceProfiles();

    reportPathways(profiles, ServiceKind::AsrGmm, "ASR (GMM) — Sirius "
                                                  "default");
    reportPathways(profiles, ServiceKind::AsrDnn, "ASR (DNN) — RASR "
                                                  "backend");

    bench::subhead("paper reference points");
    std::printf("GPU DC: 10x average latency reduction, 2.6x TCO "
                "reduction\n");
    std::printf("FPGA DC: 16x average latency reduction, 1.4x TCO "
                "reduction\n");
    std::printf("(our GMM pathway reproduces the FPGA latency win; the "
                "GPU TCO edge appears in the DNN pathway — see "
                "EXPERIMENTS.md)\n");
    return 0;
}
