/**
 * @file
 * Table 3 / Table 4 / Table 5 / Figure 13 reproduction.
 *
 * Runs the seven Sirius Suite kernels under google-benchmark (serial
 * baseline and the threaded port at the paper's granularity), then
 * prints the platform table, the suite/granularity table, and the
 * speedup matrix from both the calibrated (Table 5) and analytic models,
 * rendered as the Figure 13 heat map.
 *
 * Hardware note: this container exposes a single core and no GPU / Phi /
 * FPGA, so accelerated columns come from the documented models; the
 * serial kernel timings below are real measurements of the kernels whose
 * structure the models describe.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "accel/model.h"
#include "accel/platform.h"
#include "bench_util.h"
#include "common/simd.h"
#include "suite/suite.h"

using namespace sirius;
using namespace sirius::suite;
using namespace sirius::accel;

namespace {

std::vector<std::unique_ptr<SuiteKernel>> &
kernels()
{
    static auto suite = makeSuite(SuiteScale::Full, 2015);
    return suite;
}

void
runSerial(benchmark::State &state, size_t index)
{
    const auto &kernel = kernels()[index];
    for (auto _ : state) {
        const auto result = kernel->runSerial();
        benchmark::DoNotOptimize(result.checksum);
    }
}

void
runThreaded(benchmark::State &state, size_t index)
{
    const auto &kernel = kernels()[index];
    for (auto _ : state) {
        const auto result = kernel->runThreaded(4);
        benchmark::DoNotOptimize(result.checksum);
    }
}

void
printTables()
{
    bench::banner("Table 3: Platform Specifications");
    std::printf("%-18s %-24s %6s %6s %8s %8s %8s %8s\n", "platform",
                "model", "GHz", "cores", "threads", "mem(GB)",
                "BW(GB/s)", "TFLOPS");
    for (Platform p : allPlatforms()) {
        if (p == Platform::CmpMulticore)
            continue;
        const auto &s = platformSpec(p);
        std::printf("%-18s %-24s %6.2f %6d %8d %8.1f %8.1f %8.1f\n",
                    s.name, s.model, s.frequencyGhz, s.cores,
                    s.hwThreads, s.memGb, s.memBwGBs, s.peakTflops);
    }

    bench::banner("Table 4: Sirius Suite and Granularity of Parallelism");
    std::printf("%-8s %-10s %-32s\n", "service", "kernel", "granularity");
    for (const auto &kernel : kernels()) {
        std::printf("%-8s %-10s %-32s\n", serviceName(kernel->service()),
                    kernel->name(), kernel->granularity());
    }

    const CalibratedModel calibrated;
    const AnalyticModel analytic;
    for (const SpeedupModel *model :
         {static_cast<const SpeedupModel *>(&calibrated),
          static_cast<const SpeedupModel *>(&analytic)}) {
        bench::banner(std::string("Table 5 / Figure 13: speedup over "
                                  "1-thread CMP (") + model->name() +
                      " model)");
        std::printf("%-10s %8s %8s %8s %8s\n", "kernel", "CMP", "GPU",
                    "Phi", "FPGA");
        for (Kernel kernel : suiteKernels()) {
            std::printf("%-10s %8.1f %8.1f %8.1f %8.1f\n",
                        kernelName(kernel),
                        model->speedup(kernel, Platform::CmpMulticore),
                        model->speedup(kernel, Platform::Gpu),
                        model->speedup(kernel, Platform::Phi),
                        model->speedup(kernel, Platform::Fpga));
        }
    }

    bench::banner("Figure 13: heat map (log2 of calibrated speedup)");
    std::printf("%-10s %-14s %-14s %-14s %-14s\n", "kernel", "CMP",
                "GPU", "Phi", "FPGA");
    for (Kernel kernel : suiteKernels()) {
        std::printf("%-10s", kernelName(kernel));
        for (Platform p : {Platform::CmpMulticore, Platform::Gpu,
                           Platform::Phi, Platform::Fpga}) {
            const double s = calibrated.speedup(kernel, p);
            std::printf(" %-13s",
                        bench::bar(std::log2(s) + 1.0, 1.0, 9).c_str());
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("%s\n", sirius::simd::describeDispatch().c_str());
    for (size_t i = 0; i < kernels().size(); ++i) {
        benchmark::RegisterBenchmark(
            (std::string(kernels()[i]->name()) + "/serial").c_str(),
            runSerial, i);
        benchmark::RegisterBenchmark(
            (std::string(kernels()[i]->name()) + "/threads:4").c_str(),
            runThreaded, i)
            ->UseRealTime();
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTables();
    return 0;
}
