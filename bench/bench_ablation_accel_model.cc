/**
 * @file
 * Ablation: analytic vs calibrated accelerator model.
 *
 * The calibrated model carries the paper's Table 5 verbatim (the
 * documented substitution for hardware we don't have); the analytic
 * model recomputes speedups from platform specs and kernel profiles.
 * This bench reports per-cell agreement so the substitution's quality
 * is visible, and shows how the datacenter-level conclusions change
 * (or don't) when the analytic model drives them.
 */

#include <cmath>
#include <cstdio>

#include "accel/model.h"
#include "bench_util.h"
#include "dcsim/designer.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

int
main()
{
    bench::banner("Ablation: analytic vs calibrated accelerator model");

    const CalibratedModel calibrated;
    const AnalyticModel analytic;

    std::printf("%-10s %-7s %12s %12s %10s\n", "kernel", "platform",
                "calibrated", "analytic", "log2 err");
    for (Kernel kernel : suiteKernels()) {
        for (Platform platform : acceleratorPlatforms()) {
            const double c = calibrated.speedup(kernel, platform);
            const double a = analytic.speedup(kernel, platform);
            std::printf("%-10s %-7s %11.1fx %11.1fx %+10.2f\n",
                        kernelName(kernel), platformName(platform), c, a,
                        std::log2(a / c));
        }
    }

    const auto agreement = compareModels(analytic, calibrated);
    std::printf("\nmean |log2 error|: %.2f   pairwise ordering "
                "agreement: %.0f%%\n",
                agreement.meanAbsLogError,
                agreement.orderingAgreement * 100.0);

    bench::subhead("do the DC design conclusions survive the model "
                   "swap?");
    for (const SpeedupModel *model :
         {static_cast<const SpeedupModel *>(&calibrated),
          static_cast<const SpeedupModel *>(&analytic)}) {
        const DatacenterDesigner designer(defaultServiceProfiles(),
                                          *model);
        CandidateSet all;
        std::printf("%-11s: latency-optimal=%s  TCO-optimal=%s  "
                    "power-optimal=%s\n",
                    model->name(),
                    platformName(designer.homogeneousDesign(
                        Objective::MinLatency, all)),
                    platformName(designer.homogeneousDesign(
                        Objective::MinTcoWithLatency, all)),
                    platformName(designer.homogeneousDesign(
                        Objective::MaxPowerEffWithLatency, all)));
    }
    return 0;
}
