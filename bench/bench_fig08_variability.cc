/**
 * @file
 * Figure 8 reproduction: latency variability across services and its
 * cause.
 *
 * 8a: latency distribution per service (ASR, QA, IMM) — QA has by far
 *     the widest spread.
 * 8b: per-VQ-query breakdown of QA time across its hot components.
 * 8c: correlation between QA latency and document-filter hits.
 */

#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/pipeline.h"
#include "core/query_set.h"

using namespace sirius;
using namespace sirius::core;

int
main()
{
    bench::banner("Figure 8: Sirius Variability Across Query Types and "
                  "Causes");
    std::printf("building Sirius pipeline...\n");
    const SiriusPipeline pipeline = SiriusPipeline::build();

    SampleStats asr_stats, qa_stats, imm_stats;
    std::vector<double> qa_latencies, filter_hits;

    bench::subhead("Figure 8b: QA component breakdown per VQ query");
    std::printf("%-55s %9s %9s %9s %9s %7s\n", "query", "stem(ms)",
                "regex(ms)", "crf(ms)", "total(ms)", "hits");
    for (const auto &query : standardQuerySet()) {
        const auto result = pipeline.process(query);
        if (result.timings.asr.total() > 0)
            asr_stats.add(result.timings.asr.total());
        if (result.timings.imm.total() > 0)
            imm_stats.add(result.timings.imm.total());
        if (result.timings.qa.total() > 0)
            qa_stats.add(result.timings.qa.total());

        if (query.type == QueryType::VoiceQuery) {
            const auto qa = pipeline.qa().answer(query.text);
            qa_latencies.push_back(qa.timings.total());
            filter_hits.push_back(
                static_cast<double>(qa.filterHits));
            std::printf("%-55s %9.2f %9.2f %9.2f %9.2f %7zu\n",
                        query.text.c_str(), qa.timings.stemmer * 1e3,
                        qa.timings.regex * 1e3, qa.timings.crf * 1e3,
                        qa.timings.total() * 1e3, qa.filterHits);
        }
    }

    bench::subhead("Figure 8a: latency distribution per service (ms)");
    std::printf("%-6s %10s %10s %10s %10s %12s\n", "svc", "min", "median",
                "max", "mean", "max/min");
    auto row = [](const char *name, const SampleStats &stats) {
        std::printf("%-6s %10.2f %10.2f %10.2f %10.2f %12.1f\n", name,
                    stats.min() * 1e3, stats.median() * 1e3,
                    stats.max() * 1e3, stats.mean() * 1e3,
                    stats.min() > 0 ? stats.max() / stats.min() : 0.0);
    };
    row("ASR", asr_stats);
    row("QA", qa_stats);
    row("IMM", imm_stats);
    std::printf("\nexpected shape: QA's spread dominates (paper: 1.7 s "
                "to 35 s); ASR and IMM are narrow\n");

    bench::subhead("Figure 8c: QA latency vs document-filter hits");
    const double r = pearsonCorrelation(filter_hits, qa_latencies);
    std::printf("Pearson correlation(filter hits, latency) = %.3f\n", r);
    std::printf("(paper demonstrates a strong positive correlation; "
                "filters doing more hit-processing work take longer)\n");
    return 0;
}
