/**
 * @file
 * Figure 21 reproduction: how far GPU- and FPGA-accelerated datacenters
 * bridge the scalability gap, from 165x resource scaling down to the
 * 10-16x range.
 */

#include <cstdio>

#include "accel/latency.h"
#include "bench_util.h"
#include "dcsim/scalability.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

int
main()
{
    bench::banner("Figure 21: Bridging the Scalability Gap");

    // The paper's measured gap: ~15 s average Sirius query vs 91 ms
    // Nutch web-search query.
    const double gap = scalabilityGap(15.0, 0.091);
    std::printf("baseline scalability gap: %.0fx\n", gap);

    // Average end-to-end latency reduction per accelerated DC over the
    // three query classes (the Figure 20 result).
    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();
    auto pathway_speedup = [&](Platform platform) {
        // Average over VC, VQ, VIQ with the GMM ASR front end.
        const ServiceKind pathway_sets[3][3] = {
            {ServiceKind::AsrGmm, ServiceKind::AsrGmm,
             ServiceKind::AsrGmm},
            {ServiceKind::AsrGmm, ServiceKind::Qa, ServiceKind::Qa},
            {ServiceKind::AsrGmm, ServiceKind::Qa, ServiceKind::Imm},
        };
        const size_t lens[3] = {1, 2, 3};
        double avg = 0.0;
        for (int q = 0; q < 3; ++q) {
            double base = 0.0, lat = 0.0;
            for (size_t i = 0; i < lens[q]; ++i) {
                for (const auto &profile : profiles) {
                    if (profile.kind == pathway_sets[q][i]) {
                        base += serviceLatency(profile, model,
                                               Platform::Cmp);
                        lat += serviceLatency(profile, model, platform);
                    }
                }
            }
            avg += (base / lat) / 3.0;
        }
        return avg;
    };

    const double gpu_speedup = pathway_speedup(Platform::Gpu);
    const double fpga_speedup = pathway_speedup(Platform::Fpga);

    std::printf("\n%-24s %16s %16s\n", "datacenter", "avg speedup",
                "remaining gap");
    std::printf("%-24s %15s %16.0fx\n", "CMP (today)", "1.0x", gap);
    std::printf("%-24s %15.1fx %16.1fx\n", "GPU-accelerated",
                gpu_speedup, bridgedGap(gap, gpu_speedup));
    std::printf("%-24s %15.1fx %16.1fx\n", "FPGA-accelerated",
                fpga_speedup, bridgedGap(gap, fpga_speedup));

    std::printf("\n(paper: acceleration reduces the 165x gap to 16x for "
                "GPU and 10x for FPGA datacenters)\n");
    return 0;
}
