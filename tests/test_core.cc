/**
 * @file
 * End-to-end tests for the Sirius pipeline: the full 42-query input set
 * must flow through ASR -> QC -> (IMM) -> QA with correct results.
 */

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/pipeline.h"
#include "core/query_classifier.h"
#include "core/query_set.h"

namespace {

using namespace sirius;
using namespace sirius::core;

// ----------------------------------------------------------------- queries

TEST(QuerySet, TaxonomyCounts)
{
    // Table 1: 16 VC, 16 VQ, 10 VIQ.
    EXPECT_EQ(queriesOfType(QueryType::VoiceCommand).size(), 16u);
    EXPECT_EQ(queriesOfType(QueryType::VoiceQuery).size(), 16u);
    EXPECT_EQ(queriesOfType(QueryType::VoiceImageQuery).size(), 10u);
    EXPECT_EQ(standardQuerySet().size(), 42u);
}

TEST(QuerySet, TypeNames)
{
    EXPECT_STREQ(queryTypeName(QueryType::VoiceCommand), "VC");
    EXPECT_STREQ(queryTypeName(QueryType::VoiceQuery), "VQ");
    EXPECT_STREQ(queryTypeName(QueryType::VoiceImageQuery), "VIQ");
}

TEST(QuerySet, ViqQueriesCarryLandmarks)
{
    for (const auto &q : queriesOfType(QueryType::VoiceImageQuery)) {
        EXPECT_GE(q.landmarkId, 0);
        EXPECT_FALSE(q.expectedAnswer.empty());
    }
}

TEST(QuerySet, VqQueriesHaveGroundTruth)
{
    for (const auto &q : queriesOfType(QueryType::VoiceQuery))
        EXPECT_FALSE(q.expectedAnswer.empty());
}

TEST(QuerySet, TrainingSentencesCoverQueries)
{
    const auto sentences = asrTrainingSentences();
    EXPECT_GE(sentences.size(), 40u);
}

// -------------------------------------------------------------- classifier

TEST(QueryClassifier, CommandsClassifiedAsActions)
{
    QueryClassifier qc;
    for (const auto &q : queriesOfType(QueryType::VoiceCommand)) {
        EXPECT_EQ(qc.classify(q.text), QueryClass::Action) << q.text;
    }
}

TEST(QueryClassifier, QuestionsClassifiedAsQuestions)
{
    QueryClassifier qc;
    for (const auto &q : queriesOfType(QueryType::VoiceQuery)) {
        EXPECT_EQ(qc.classify(q.text), QueryClass::Question) << q.text;
    }
    for (const auto &q : queriesOfType(QueryType::VoiceImageQuery)) {
        EXPECT_EQ(qc.classify(q.text), QueryClass::Question) << q.text;
    }
}

TEST(QueryClassifier, UnknownDefaultsToQuestion)
{
    QueryClassifier qc;
    EXPECT_EQ(qc.classify("bananas everywhere"), QueryClass::Question);
    EXPECT_EQ(qc.classify(""), QueryClass::Question);
}

// ---------------------------------------------------------------- pipeline

class PipelineFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 120;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *PipelineFixture::pipeline_ = nullptr;

TEST_F(PipelineFixture, VoiceCommandPathway)
{
    const auto vc = queriesOfType(QueryType::VoiceCommand);
    const auto result = pipeline_->process(vc[0]);
    EXPECT_EQ(result.queryClass, QueryClass::Action);
    EXPECT_EQ(result.action, vc[0].text);
    // VC only exercises ASR: no QA or IMM time.
    EXPECT_GT(result.timings.asr.total(), 0.0);
    EXPECT_DOUBLE_EQ(result.timings.qa.total(), 0.0);
    EXPECT_DOUBLE_EQ(result.timings.imm.total(), 0.0);
}

TEST_F(PipelineFixture, VoiceQueryPathway)
{
    const Query q{QueryType::VoiceQuery,
                  "what is the capital of italy", -1, "rome"};
    const auto result = pipeline_->process(q);
    EXPECT_EQ(result.queryClass, QueryClass::Question);
    EXPECT_EQ(result.transcript, q.text);
    EXPECT_NE(sirius::toLower(result.answer).find("rome"),
              std::string::npos) << result.answer;
    EXPECT_GT(result.timings.qa.total(), 0.0);
    EXPECT_DOUBLE_EQ(result.timings.imm.total(), 0.0);
}

TEST_F(PipelineFixture, VoiceImageQueryPathway)
{
    const Query q{QueryType::VoiceImageQuery,
                  "when does this restaurant close", 0, "9 pm"};
    const auto result = pipeline_->process(q);
    EXPECT_EQ(result.queryClass, QueryClass::Question);
    EXPECT_EQ(result.matchedLandmark, 0);
    EXPECT_NE(result.augmentedQuestion.find("falcon restaurant"),
              std::string::npos) << result.augmentedQuestion;
    EXPECT_NE(sirius::toLower(result.answer).find("9 pm"),
              std::string::npos) << result.answer;
    EXPECT_GT(result.timings.imm.total(), 0.0);
}

TEST_F(PipelineFixture, FullInputSetAccuracy)
{
    // The complete Table-1 input set must run end to end with high
    // accuracy (speech synthesis -> ASR -> QC -> IMM -> QA).
    const double acc = pipeline_->accuracy(standardQuerySet());
    EXPECT_GE(acc, 0.9) << "end-to-end accuracy " << acc;
}

TEST_F(PipelineFixture, ViqLatencyExceedsVcLatency)
{
    // Figure 7b: VIQ > VQ > VC in latency, because each adds services.
    const auto vc = pipeline_->process(
        queriesOfType(QueryType::VoiceCommand)[0]);
    const auto viq = pipeline_->process(
        queriesOfType(QueryType::VoiceImageQuery)[0]);
    EXPECT_GT(viq.timings.total(), vc.timings.total());
}

} // namespace
