/**
 * @file
 * Differential sweep for the SIMD kernel layer: every dispatched kernel
 * must be BITWISE identical to the scalar reference on every ISA the
 * host can run, across shapes, ragged tails, and unaligned slices. The
 * repo's golden fixtures and the fuzzer's diff_simd arm all assume this
 * contract (see common/simd.h), so the sweep compares bit patterns, not
 * ULPs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/simd.h"

using namespace sirius;
using namespace sirius::simd;

namespace {

/** Every non-scalar table the host can run (empty on a scalar-only
 *  host, in which case the sweeps degenerate to no-ops). */
std::vector<const KernelTable *>
vectorTables()
{
    std::vector<const KernelTable *> tables;
    for (Isa isa : supportedIsas()) {
        if (isa == Isa::Scalar)
            continue;
        EXPECT_TRUE(setIsa(isa));
        tables.push_back(&kernels());
    }
    return tables;
}

::testing::AssertionResult
bitsEqualF32(const std::vector<float> &got, const std::vector<float> &want,
             const char *what)
{
    EXPECT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        uint32_t g = 0, w = 0;
        std::memcpy(&g, &got[i], sizeof(g));
        std::memcpy(&w, &want[i], sizeof(w));
        if (g != w) {
            return ::testing::AssertionFailure()
                << what << ": bit mismatch at [" << i << "]: got "
                << got[i] << " want " << want[i];
        }
    }
    return ::testing::AssertionSuccess();
}

::testing::AssertionResult
bitsEqualF64(const std::vector<double> &got,
             const std::vector<double> &want, const char *what)
{
    EXPECT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        uint64_t g = 0, w = 0;
        std::memcpy(&g, &got[i], sizeof(g));
        std::memcpy(&w, &want[i], sizeof(w));
        if (g != w) {
            return ::testing::AssertionFailure()
                << what << ": bit mismatch at [" << i << "]: got "
                << got[i] << " want " << want[i];
        }
    }
    return ::testing::AssertionSuccess();
}

std::vector<float>
randomF32(Rng &rng, size_t n)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-2.0, 2.0));
    return v;
}

std::vector<double>
randomF64(Rng &rng, size_t n)
{
    std::vector<double> v(n);
    for (auto &x : v)
        x = rng.uniform(-2.0, 2.0);
    return v;
}

// Sizes hitting full vectors, ragged tails, and the sub-vector case for
// every lane width in play (SSE 4/2, AVX2 8/4).
const size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 17, 31, 33, 64,
                         65, 100};

} // namespace

TEST(SimdDispatch, ScalarIsAlwaysSupportedAndFirst)
{
    const auto isas = supportedIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), Isa::Scalar);
    EXPECT_TRUE(isaSupported(Isa::Scalar));
    EXPECT_EQ(isas.back(), bestSupportedIsa());
}

TEST(SimdDispatch, ParseIsaRoundTripsAndRejectsNative)
{
    for (Isa isa : {Isa::Scalar, Isa::Sse, Isa::Avx2, Isa::Neon}) {
        Isa parsed;
        EXPECT_TRUE(parseIsa(isaName(isa), parsed)) << isaName(isa);
        EXPECT_EQ(parsed, isa);
    }
    Isa out;
    EXPECT_TRUE(parseIsa("sse4.2", out));
    EXPECT_EQ(out, Isa::Sse);
    EXPECT_FALSE(parseIsa("native", out));
    EXPECT_FALSE(parseIsa("avx512", out));
    EXPECT_FALSE(parseIsa("", out));
}

TEST(SimdDispatch, SetIsaRejectsUnsupported)
{
    // At least one of NEON / AVX2 is foreign to any single host.
    const Isa foreign = isaSupported(Isa::Neon) ? Isa::Avx2 : Isa::Neon;
    ASSERT_FALSE(isaSupported(foreign));
    const Isa before = activeIsa();
    EXPECT_FALSE(setIsa(foreign));
    EXPECT_EQ(activeIsa(), before);
}

TEST(SimdDispatch, EnvironmentScalarForcesFallback)
{
    ASSERT_EQ(setenv("SIRIUS_SIMD", "scalar", 1), 0);
    EXPECT_EQ(initFromEnvironment(), Isa::Scalar);
    EXPECT_EQ(activeIsa(), Isa::Scalar);
    EXPECT_EQ(kernels().isa, Isa::Scalar);
    EXPECT_STREQ(kernels().name, "scalar");

    // "native" resolves back to the widest supported table.
    ASSERT_EQ(setenv("SIRIUS_SIMD", "native", 1), 0);
    EXPECT_EQ(initFromEnvironment(), bestSupportedIsa());

    // Unknown values warn and fall back to native rather than failing.
    ASSERT_EQ(setenv("SIRIUS_SIMD", "avx999", 1), 0);
    EXPECT_EQ(initFromEnvironment(), bestSupportedIsa());
    ASSERT_EQ(unsetenv("SIRIUS_SIMD"), 0);
    EXPECT_EQ(initFromEnvironment(), bestSupportedIsa());
}

TEST(SimdDispatch, DescribeDispatchNamesActiveIsa)
{
    setIsa(bestSupportedIsa());
    const std::string line = describeDispatch();
    EXPECT_NE(line.find("isa="), std::string::npos) << line;
    EXPECT_NE(line.find(isaName(activeIsa())), std::string::npos) << line;
    EXPECT_NE(line.find("supported="), std::string::npos) << line;
}

TEST(SimdDispatch, ExportMetricsPublishesDispatchGauge)
{
    setIsa(bestSupportedIsa());
    MetricsRegistry registry;
    simd::exportMetrics(registry, {});
    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("sirius_simd_dispatch{isa=\"" +
                        std::string(isaName(activeIsa())) + "\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("sirius_simd_supported{isa=\"scalar\"} 1"),
              std::string::npos)
        << text;
}

TEST(SimdDiff, MatmulF32)
{
    Rng rng(0x51D1);
    const size_t shapes[][3] = {{1, 1, 1},  {2, 3, 4},   {4, 4, 4},
                                {5, 7, 9},  {8, 16, 8},  {13, 1, 17},
                                {3, 64, 5}, {16, 32, 33}, {6, 5, 8}};
    for (const KernelTable *table : vectorTables()) {
        for (const auto &s : shapes) {
            const size_t n = s[0], k = s[1], m = s[2];
            const auto a = randomF32(rng, n * k);
            const auto b = randomF32(rng, k * m);
            std::vector<float> want(n * m, -1.0f), got(n * m, 1.0f);
            scalarKernels().matmulF32(a.data(), n, k, b.data(), m,
                                      want.data());
            table->matmulF32(a.data(), n, k, b.data(), m, got.data());
            EXPECT_TRUE(bitsEqualF32(got, want, table->name))
                << n << "x" << k << "x" << m;
        }
    }
}

TEST(SimdDiff, MatvecF32)
{
    Rng rng(0x51D2);
    const size_t shapes[][2] = {{1, 1},  {3, 5},   {7, 64}, {8, 8},
                                {13, 29}, {16, 100}, {17, 33}, {9, 1}};
    for (const KernelTable *table : vectorTables()) {
        for (const auto &s : shapes) {
            const size_t rows = s[0], cols = s[1];
            const auto m = randomF32(rng, rows * cols);
            const auto v = randomF32(rng, cols);
            std::vector<float> want(rows), got(rows);
            scalarKernels().matvecF32(m.data(), rows, cols, v.data(),
                                      want.data());
            table->matvecF32(m.data(), rows, cols, v.data(), got.data());
            EXPECT_TRUE(bitsEqualF32(got, want, table->name))
                << rows << "x" << cols;
        }
    }
}

TEST(SimdDiff, ElementwiseF32)
{
    Rng rng(0x51D3);
    for (const KernelTable *table : vectorTables()) {
        for (size_t n : kSizes) {
            auto base = randomF32(rng, n);
            // Seed relu edge cases: negative zero and exact zero lanes.
            if (n > 1)
                base[n / 2] = -0.0f;
            base[0] = 0.0f;

            auto want = base, got = base;
            scalarKernels().reluF32(want.data(), n);
            table->reluF32(got.data(), n);
            EXPECT_TRUE(bitsEqualF32(got, want, "reluF32")) << n;

            const auto x = randomF32(rng, n);
            want = base;
            got = base;
            scalarKernels().addRowF32(want.data(), x.data(), n);
            table->addRowF32(got.data(), x.data(), n);
            EXPECT_TRUE(bitsEqualF32(got, want, "addRowF32")) << n;

            const auto bias = static_cast<float>(rng.uniform(-1.0, 1.0));
            want = base;
            got = base;
            scalarKernels().addScalarF32(want.data(), n, bias);
            table->addScalarF32(got.data(), n, bias);
            EXPECT_TRUE(bitsEqualF32(got, want, "addScalarF32")) << n;
        }
    }
}

TEST(SimdDiff, GmmLanesF64)
{
    Rng rng(0x51D4);
    for (const KernelTable *table : vectorTables()) {
        for (size_t batch : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                             size_t{5}, size_t{8}, size_t{13}}) {
            for (size_t dim : {size_t{1}, size_t{13}, size_t{39}}) {
                const auto x = randomF64(rng, dim * batch);
                const auto mean = randomF32(rng, dim);
                auto inv_var = randomF32(rng, dim);
                for (auto &iv : inv_var)
                    iv = std::abs(iv) + 0.5f;
                auto want = randomF64(rng, batch);
                auto got = want;
                scalarKernels().gmmLanesF64(want.data(), x.data(), batch,
                                            mean.data(), inv_var.data(),
                                            dim);
                table->gmmLanesF64(got.data(), x.data(), batch,
                                   mean.data(), inv_var.data(), dim);
                EXPECT_TRUE(bitsEqualF64(got, want, table->name))
                    << batch << "x" << dim;
            }
        }
    }
}

TEST(SimdDiff, GmmMixtureF64)
{
    Rng rng(0x51D5);
    for (const KernelTable *table : vectorTables()) {
        for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                             size_t{8}, size_t{19}}) {
            const size_t dim = 13;
            const auto x = randomF32(rng, dim);
            std::vector<std::vector<float>> means, inv_vars;
            std::vector<const float *> mean_ptrs, iv_ptrs;
            std::vector<float> log_norms;
            for (size_t c = 0; c < count; ++c) {
                means.push_back(randomF32(rng, dim));
                auto iv = randomF32(rng, dim);
                for (auto &v : iv)
                    v = std::abs(v) + 0.5f;
                inv_vars.push_back(std::move(iv));
                log_norms.push_back(
                    static_cast<float>(rng.uniform(-10.0, 0.0)));
            }
            for (size_t c = 0; c < count; ++c) {
                mean_ptrs.push_back(means[c].data());
                iv_ptrs.push_back(inv_vars[c].data());
            }
            std::vector<double> want(count), got(count);
            scalarKernels().gmmMixtureF64(x.data(), dim,
                                          mean_ptrs.data(),
                                          iv_ptrs.data(),
                                          log_norms.data(), count,
                                          want.data());
            table->gmmMixtureF64(x.data(), dim, mean_ptrs.data(),
                                 iv_ptrs.data(), log_norms.data(), count,
                                 got.data());
            EXPECT_TRUE(bitsEqualF64(got, want, table->name)) << count;
        }
    }
}

TEST(SimdDiff, DescDistF32)
{
    Rng rng(0x51D6);
    for (const KernelTable *table : vectorTables()) {
        for (size_t count : {size_t{1}, size_t{2}, size_t{5}, size_t{8},
                             size_t{13}}) {
            for (size_t dim : {size_t{7}, size_t{33}, size_t{64}}) {
                const auto q = randomF32(rng, dim);
                std::vector<std::vector<float>> descs;
                std::vector<const float *> ptrs;
                for (size_t i = 0; i < count; ++i)
                    descs.push_back(randomF32(rng, dim));
                for (size_t i = 0; i < count; ++i)
                    ptrs.push_back(descs[i].data());
                std::vector<float> want(count), got(count);
                scalarKernels().descDistF32(q.data(), ptrs.data(), count,
                                            dim, want.data());
                table->descDistF32(q.data(), ptrs.data(), count, dim,
                                   got.data());
                EXPECT_TRUE(bitsEqualF32(got, want, table->name))
                    << count << "x" << dim;
            }
        }
    }
}

TEST(SimdDiff, DescNormalizeF32)
{
    Rng rng(0x51D7);
    for (const KernelTable *table : vectorTables()) {
        for (size_t n : kSizes) {
            const auto base = randomF32(rng, n);
            const double norm = rng.uniform(0.25, 4.0);
            auto want = base, got = base;
            scalarKernels().descNormalizeF32(want.data(), n, norm);
            table->descNormalizeF32(got.data(), n, norm);
            EXPECT_TRUE(bitsEqualF32(got, want, table->name)) << n;
        }
    }
}

TEST(SimdDiff, HessianRowF64)
{
    Rng rng(0x51D8);
    // A synthetic summed-area table; the kernel only reads values, so
    // any finite contents exercise the box-filter arithmetic (including
    // the max(0, .) clamp, which fires on non-monotone tables).
    const int width = 64, height = 40;
    const size_t stride = static_cast<size_t>(width) + 1;
    const auto table_data =
        randomF64(rng, stride * static_cast<size_t>(height + 1));

    for (const KernelTable *table : vectorTables()) {
        for (int filter_size : {9, 15, 21, 27}) {
            const int b = (filter_size - 1) / 2;
            const int lobe = filter_size / 3;
            const double inv =
                1.0 / (static_cast<double>(filter_size) *
                       static_cast<double>(filter_size));
            const int r = b + 2;
            ASSERT_LT(r + b + 1, height + 1);
            for (int step : {1, 2}) {
                for (int count : {1, 2, 3, 5, 8}) {
                    const int c0 = b + 1;
                    const int c_max = c0 + (count - 1) * step;
                    ASSERT_LT(c_max + b + 1, width + 1)
                        << filter_size << "/" << step << "/" << count;
                    std::vector<float> want_r(count), got_r(count);
                    std::vector<uint8_t> want_l(count), got_l(count);
                    scalarKernels().hessianRowF64(
                        table_data.data(), stride, r, c0, step, count,
                        filter_size, lobe, inv, want_r.data(),
                        want_l.data());
                    table->hessianRowF64(table_data.data(), stride, r,
                                         c0, step, count, filter_size,
                                         lobe, inv, got_r.data(),
                                         got_l.data());
                    EXPECT_TRUE(bitsEqualF32(got_r, want_r, table->name))
                        << filter_size << "/" << step << "/" << count;
                    EXPECT_EQ(got_l, want_l);
                }
            }
        }
    }
}

TEST(SimdDiff, RowOpsF64)
{
    Rng rng(0x51D9);
    for (const KernelTable *table : vectorTables()) {
        for (size_t n : kSizes) {
            const auto base = randomF64(rng, n);
            const auto x = randomF64(rng, n);

            auto want = base, got = base;
            scalarKernels().addRowF64(want.data(), x.data(), n);
            table->addRowF64(got.data(), x.data(), n);
            EXPECT_TRUE(bitsEqualF64(got, want, "addRowF64")) << n;

            const double scale = rng.uniform(-3.0, 3.0);
            want = base;
            got = base;
            scalarKernels().axpyF64(want.data(), x.data(), scale, n);
            table->axpyF64(got.data(), x.data(), scale, n);
            EXPECT_TRUE(bitsEqualF64(got, want, "axpyF64")) << n;
        }
    }
}

TEST(SimdDiff, ViterbiStepF64)
{
    Rng rng(0x51DA);
    for (const KernelTable *table : vectorTables()) {
        for (size_t num_tags : {size_t{1}, size_t{3}, size_t{5},
                                size_t{8}, size_t{12}, size_t{16}}) {
            for (int trial = 0; trial < 8; ++trial) {
                // Draw scores from a tiny integer set so exact ties are
                // common — the kernel must reproduce the scalar loop's
                // strict-> first-max tie-breaking, argmax included.
                std::vector<double> prev(num_tags),
                    trans(num_tags * num_tags);
                for (auto &p : prev)
                    p = static_cast<double>(rng.below(4));
                for (auto &t : trans)
                    t = static_cast<double>(rng.below(4));
                std::vector<double> want_b(num_tags), got_b(num_tags);
                std::vector<int32_t> want_a(num_tags), got_a(num_tags);
                scalarKernels().viterbiStepF64(prev.data(), trans.data(),
                                               num_tags, want_b.data(),
                                               want_a.data());
                table->viterbiStepF64(prev.data(), trans.data(),
                                      num_tags, got_b.data(),
                                      got_a.data());
                EXPECT_TRUE(bitsEqualF64(got_b, want_b, table->name))
                    << num_tags;
                EXPECT_EQ(got_a, want_a) << table->name << " tags="
                                         << num_tags;
            }
        }
    }
}

TEST(SimdDiff, FftPassF64)
{
    Rng rng(0x51DB);
    for (const KernelTable *table : vectorTables()) {
        for (size_t n : {size_t{4}, size_t{8}, size_t{32}, size_t{64}}) {
            for (size_t len = 2; len <= n; len <<= 1) {
                const auto base = randomF64(rng, 2 * n);
                const auto twiddles = randomF64(rng, len);
                auto want = base, got = base;
                scalarKernels().fftPassF64(want.data(), n, len,
                                           twiddles.data());
                table->fftPassF64(got.data(), n, len, twiddles.data());
                EXPECT_TRUE(bitsEqualF64(got, want, table->name))
                    << "n=" << n << " len=" << len;
            }
        }
    }
}

TEST(SimdDiff, ComplexNormF64)
{
    Rng rng(0x51DC);
    for (const KernelTable *table : vectorTables()) {
        for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                             size_t{8}, size_t{33}}) {
            const auto data = randomF64(rng, 2 * count);
            std::vector<double> want(count), got(count);
            scalarKernels().complexNormF64(data.data(), count,
                                           want.data());
            table->complexNormF64(data.data(), count, got.data());
            EXPECT_TRUE(bitsEqualF64(got, want, table->name)) << count;
        }
    }
}

TEST(SimdDiff, UnalignedSlicesStayIdentical)
{
    Rng rng(0x51DD);
    for (const KernelTable *table : vectorTables()) {
        for (size_t n : {size_t{8}, size_t{16}, size_t{33}}) {
            // Offset every pointer by one element so nothing is 16- or
            // 32-byte aligned; kernels must use unaligned accesses.
            auto acc_a = randomF32(rng, n + 1);
            auto acc_b = acc_a;
            const auto x = randomF32(rng, n + 1);
            scalarKernels().addRowF32(acc_a.data() + 1, x.data() + 1, n);
            table->addRowF32(acc_b.data() + 1, x.data() + 1, n);
            EXPECT_TRUE(bitsEqualF32(acc_b, acc_a, "addRowF32+1")) << n;

            auto dacc_a = randomF64(rng, n + 1);
            auto dacc_b = dacc_a;
            const auto dx = randomF64(rng, n + 1);
            scalarKernels().axpyF64(dacc_a.data() + 1, dx.data() + 1,
                                    1.5, n);
            table->axpyF64(dacc_b.data() + 1, dx.data() + 1, 1.5, n);
            EXPECT_TRUE(bitsEqualF64(dacc_b, dacc_a, "axpyF64+1")) << n;

            // Matvec over an unaligned matrix slice (rows start at +1).
            const size_t rows = 5;
            const auto m = randomF32(rng, rows * n + 1);
            const auto v = randomF32(rng, n + 1);
            std::vector<float> want(rows), got(rows);
            scalarKernels().matvecF32(m.data() + 1, rows, n,
                                      v.data() + 1, want.data());
            table->matvecF32(m.data() + 1, rows, n, v.data() + 1,
                             got.data());
            EXPECT_TRUE(bitsEqualF32(got, want, "matvecF32+1")) << n;
        }
    }
}
