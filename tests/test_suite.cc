/**
 * @file
 * Tests for the Sirius Suite kernels: serial/threaded agreement,
 * determinism, and Table 4 metadata.
 */

#include <gtest/gtest.h>

#include <set>

#include "suite/crf_kernel.h"
#include "suite/dnn_kernel.h"
#include "suite/fd_kernel.h"
#include "suite/fe_kernel.h"
#include "suite/gmm_kernel.h"
#include "suite/regex_kernel.h"
#include "suite/stemmer_kernel.h"
#include "suite/suite.h"

namespace {

using namespace sirius::suite;

class SuiteFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        kernels_ = new std::vector<std::unique_ptr<SuiteKernel>>(
            makeSuite(SuiteScale::Small, 99));
    }

    static void
    TearDownTestSuite()
    {
        delete kernels_;
        kernels_ = nullptr;
    }

    static std::vector<std::unique_ptr<SuiteKernel>> *kernels_;
};

std::vector<std::unique_ptr<SuiteKernel>> *SuiteFixture::kernels_ =
    nullptr;

TEST_F(SuiteFixture, SevenKernelsInTableOrder)
{
    ASSERT_EQ(kernels_->size(), 7u);
    const char *expected[] = {"GMM", "DNN", "Stemmer", "Regex",
                              "CRF", "FE", "FD"};
    for (size_t i = 0; i < 7; ++i)
        EXPECT_STREQ((*kernels_)[i]->name(), expected[i]);
}

TEST_F(SuiteFixture, ServicesMatchTable4)
{
    EXPECT_EQ((*kernels_)[0]->service(), Service::Asr);
    EXPECT_EQ((*kernels_)[1]->service(), Service::Asr);
    EXPECT_EQ((*kernels_)[2]->service(), Service::Qa);
    EXPECT_EQ((*kernels_)[3]->service(), Service::Qa);
    EXPECT_EQ((*kernels_)[4]->service(), Service::Qa);
    EXPECT_EQ((*kernels_)[5]->service(), Service::Imm);
    EXPECT_EQ((*kernels_)[6]->service(), Service::Imm);
}

TEST_F(SuiteFixture, GranularitiesNonEmpty)
{
    std::set<std::string> seen;
    for (const auto &kernel : *kernels_) {
        ASSERT_NE(kernel->granularity(), nullptr);
        seen.insert(kernel->granularity());
    }
    EXPECT_EQ(seen.size(), 7u); // all distinct, per Table 4
}

TEST_F(SuiteFixture, SerialRunsProduceWork)
{
    for (const auto &kernel : *kernels_) {
        const auto result = kernel->runSerial();
        EXPECT_GT(result.seconds, 0.0) << kernel->name();
        EXPECT_NE(result.checksum, 0u) << kernel->name();
    }
}

TEST_F(SuiteFixture, SerialDeterministic)
{
    for (const auto &kernel : *kernels_) {
        const auto a = kernel->runSerial();
        const auto b = kernel->runSerial();
        EXPECT_EQ(a.checksum, b.checksum) << kernel->name();
    }
}

TEST_F(SuiteFixture, ThreadedMatchesSerialChecksum)
{
    for (const auto &kernel : *kernels_) {
        // FE tiles the image, which legitimately perturbs border
        // keypoints (the paper notes the same effect); all other
        // kernels must agree exactly.
        if (std::string(kernel->name()) == "FE")
            continue;
        const auto serial = kernel->runSerial();
        const auto threaded = kernel->runThreaded(4);
        EXPECT_EQ(serial.checksum, threaded.checksum) << kernel->name();
    }
}

TEST_F(SuiteFixture, FeTiledCountCloseToSerial)
{
    const auto &fe = (*kernels_)[5];
    const auto serial = fe->runSerial();
    const auto threaded = fe->runThreaded(4);
    const double ratio = static_cast<double>(threaded.checksum) /
        static_cast<double>(serial.checksum);
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.3);
}

TEST_F(SuiteFixture, SingleThreadThreadedEqualsSerial)
{
    for (const auto &kernel : *kernels_) {
        if (std::string(kernel->name()) == "FE")
            continue;
        EXPECT_EQ(kernel->runThreaded(1).checksum,
                  kernel->runSerial().checksum)
            << kernel->name();
    }
}

TEST(SuiteKernels, StemmerInterlacedMatchesBlocked)
{
    StemmerKernel kernel(5000, 3);
    const auto blocked = kernel.runThreaded(4);
    const auto interlaced = kernel.runThreadedInterlaced(4);
    EXPECT_EQ(blocked.checksum, interlaced.checksum);
}

TEST(SuiteKernels, GmmScalesWithStates)
{
    GmmKernel small(16, 2, 16, 8, 5);
    GmmKernel large(64, 2, 16, 8, 5);
    EXPECT_EQ(small.stateCount(), 16u);
    EXPECT_EQ(large.stateCount(), 64u);
    // More states, more work.
    EXPECT_GT(large.runSerial().seconds, small.runSerial().seconds);
}

TEST(SuiteKernels, DnnBatchSizeRespected)
{
    DnnKernel kernel({16, 32, 8}, 24, 7);
    EXPECT_EQ(kernel.batchSize(), 24u);
}

TEST(SuiteKernels, RegexPairCount)
{
    RegexKernel kernel(20, 30, 11);
    EXPECT_EQ(kernel.pairCount(), 600u);
}

TEST(SuiteKernels, CrfTagsAllSentences)
{
    CrfKernel kernel(40, 60, 13);
    EXPECT_EQ(kernel.sentenceCount(), 40u);
    EXPECT_NE(kernel.runSerial().checksum, 0u);
}

TEST(SuiteKernels, FdKeypointsDetectedOnce)
{
    FdKernel kernel(256, 17);
    EXPECT_GT(kernel.keypointCount(), 10u);
}

TEST(SuiteKernels, ServiceNames)
{
    EXPECT_STREQ(serviceName(Service::Asr), "ASR");
    EXPECT_STREQ(serviceName(Service::Qa), "QA");
    EXPECT_STREQ(serviceName(Service::Imm), "IMM");
}

} // namespace
