/**
 * Tests for the PropertyFuzzer machinery itself: config generation,
 * campaign control, and shrinking — driven both by synthetic TrialFn
 * stubs (so shrink behaviour is fully controlled) and by the real
 * simulation (a smoke-sized clean campaign).
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/trial_run.h"
#include "testing/property_fuzzer.h"

namespace {

using sirius::sim::TrialConfig;
using sirius::sim::TrialReport;
using sirius::testing::FuzzOptions;
using sirius::testing::PropertyFuzzer;

TEST(PropertyFuzzer, GenerationIsPureInTheSeed)
{
    const TrialConfig a = PropertyFuzzer::generate(42);
    const TrialConfig b = PropertyFuzzer::generate(42);
    EXPECT_EQ(sirius::sim::formatTrialConfig(a),
              sirius::sim::formatTrialConfig(b));
    const TrialConfig c = PropertyFuzzer::generate(43);
    EXPECT_NE(sirius::sim::formatTrialConfig(a),
              sirius::sim::formatTrialConfig(c));
}

TEST(PropertyFuzzer, GeneratedConfigsStayInBounds)
{
    for (uint64_t seed = 0; seed < 200; ++seed) {
        const TrialConfig t = PropertyFuzzer::generate(seed);
        EXPECT_GE(t.shards, 1u);
        EXPECT_LE(t.shards, 6u);
        EXPECT_LT(t.policy, 4u);
        EXPECT_GE(t.workers, 1u);
        EXPECT_GE(t.queueCapacity, 4u);
        EXPECT_GE(t.batchSize, 1u);
        EXPECT_GE(t.queries, 8u);
        EXPECT_GE(t.distinctTexts, 4u);
        EXPECT_GE(t.batchWaitSeconds, 0.0005);
        EXPECT_LE(t.faultRate, 0.2);
        if (t.drill || t.hedgeSeconds > 0.0)
            EXPECT_GT(t.shards, 1u);
    }
}

TEST(PropertyFuzzer, CleanSystemSurvivesACampaign)
{
    FuzzOptions options;
    options.seed = 7;
    options.runs = 25; // the full 200-run smoke lives in fuzz_driver
    PropertyFuzzer fuzzer(sirius::sim::runTrial, options);
    const auto result = fuzzer.run();
    EXPECT_EQ(result.runs, 25u);
    EXPECT_FALSE(result.foundFailure)
        << result.failure.repro << " — "
        << (result.failure.violations.empty()
                ? "?"
                : result.failure.violations[0].oracle + ": " +
                    result.failure.violations[0].detail);
}

TEST(PropertyFuzzer, StopsAtFirstFailureAndReportsRepro)
{
    // Synthetic SUT: trials fail whenever queries is even.
    auto trial = [](const TrialConfig &t) {
        TrialReport report;
        report.queries = t.queries;
        if (t.queries % 2 == 0) {
            report.ok = false;
            report.violations.push_back({"parity", "even queries"});
        }
        return report;
    };
    FuzzOptions options;
    options.runs = 500;
    options.shrink = false;
    PropertyFuzzer fuzzer(trial, options);
    const auto result = fuzzer.run();
    ASSERT_TRUE(result.foundFailure);
    EXPECT_LE(result.runs, 500u);
    EXPECT_EQ(result.failure.config.queries % 2, 0u);
    TrialConfig parsed;
    ASSERT_TRUE(
        sirius::sim::parseTrialConfig(result.failure.repro, parsed));
    EXPECT_EQ(parsed.queries, result.failure.config.queries);
}

TEST(PropertyFuzzer, ShrinkMinimizesWhilePreservingTheOracle)
{
    // Fails whenever queries >= 3: minimal failing count is 3 (via
    // repeated halving from wherever the campaign first failed).
    auto trial = [](const TrialConfig &t) {
        TrialReport report;
        report.queries = t.queries;
        if (t.queries >= 3) {
            report.ok = false;
            report.violations.push_back(
                {"too_many", std::to_string(t.queries)});
        }
        return report;
    };
    FuzzOptions options;
    options.runs = 10;
    options.shrink = true;
    PropertyFuzzer fuzzer(trial, options);
    const auto result = fuzzer.run();
    ASSERT_TRUE(result.foundFailure);
    EXPECT_GT(result.failure.shrinkSteps, 0u);
    // Halving can't go below 3 without the failure vanishing.
    EXPECT_GE(result.failure.config.queries, 3u);
    EXPECT_LE(result.failure.config.queries, 5u);
    // Every accessory knob was shrunk off along the way.
    EXPECT_FALSE(result.failure.config.drill);
    EXPECT_EQ(result.failure.config.hedgeSeconds, 0.0);
    EXPECT_EQ(result.failure.config.faultRate, 0.0);
    EXPECT_FALSE(result.failure.config.cache);
    EXPECT_FALSE(result.failure.config.batch);
    EXPECT_EQ(result.failure.config.shards, 1u);
}

TEST(PropertyFuzzer, ShrinkRefusesCandidatesThatChangeTheOracle)
{
    // Original bug fires only with batching ON; with batching off a
    // *different* oracle trips. The shrinker must keep batch=true and
    // never report the decoy oracle.
    auto trial = [](const TrialConfig &t) {
        TrialReport report;
        report.queries = t.queries;
        if (t.batch) {
            report.ok = false;
            report.violations.push_back({"batch_bug", "x"});
        } else {
            report.ok = false;
            report.violations.push_back({"decoy", "y"});
        }
        return report;
    };
    FuzzOptions options;
    options.runs = 50;
    PropertyFuzzer fuzzer(trial, options);
    const auto result = fuzzer.run();
    ASSERT_TRUE(result.foundFailure);
    EXPECT_TRUE(result.failure.config.batch);
    ASSERT_FALSE(result.failure.violations.empty());
    EXPECT_EQ(result.failure.violations[0].oracle, "batch_bug");
}

TEST(PropertyFuzzer, WallClockBudgetStopsTheCampaign)
{
    auto trial = [](const TrialConfig &) { return TrialReport{}; };
    FuzzOptions options;
    options.runs = SIZE_MAX; // would never stop on runs alone
    options.maxSeconds = 0.05;
    PropertyFuzzer fuzzer(trial, options);
    const auto result = fuzzer.run();
    EXPECT_FALSE(result.foundFailure);
    EXPECT_GT(result.runs, 0u);
    EXPECT_LT(result.runs, SIZE_MAX);
}

} // namespace
