/**
 * @file
 * Unit, differential, and end-to-end tests for the cross-layer result
 * cache (common::ShardedLruCache and its three integrations).
 *
 * The cache's contract mirrors the batching layer's: it may only change
 * *which* requests pay for computation, never what any request gets
 * back. The unit tests pin the LRU/TTL/budget/deadline mechanics
 * (deterministically, under ManualTime), the hammer test runs the
 * sharded table under TSan, and the per-layer and e2e differential
 * tests enforce hit ≡ miss — including against the golden fixtures the
 * batching layer already pins, with caching and batching enabled
 * together.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/cache.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/concurrent_server.h"
#include "core/pipeline_cache.h"
#include "speech/score_cache.h"
#include "vision/landmarks.h"
#include "vision/match_cache.h"

namespace {

using namespace sirius;
using namespace sirius::core;

// ---------------------------------------------------------------------------
// Content keys.

TEST(CacheKeys, HashIsDeterministicAndContentSensitive)
{
    const std::string a = "the quick brown fox";
    const std::string b = "the quick brown fix";
    const auto ka1 = hashBytes128(a.data(), a.size());
    const auto ka2 = hashBytes128(a.data(), a.size());
    const auto kb = hashBytes128(b.data(), b.size());
    EXPECT_EQ(ka1, ka2);
    EXPECT_NE(ka1, kb);
    // Seeds separate streams; mixKey separates payload-equal inputs.
    EXPECT_NE(hashBytes128(a.data(), a.size(), 1),
              hashBytes128(a.data(), a.size(), 2));
    EXPECT_NE(mixKey(ka1, 7), mixKey(ka1, 8));
}

TEST(CacheKeys, FrameKeyExactByDefaultQuantizedOnRequest)
{
    audio::FeatureVector frame = {1.0f, -2.5f, 0.125f};
    audio::FeatureVector near = frame;
    near[1] += 1e-6f; // not bit-identical

    // Default (grain 0): exact float bits — near-equal frames must NOT
    // share a key, or hits would not be bitwise-identical to misses.
    EXPECT_EQ(speech::frameScoreKey(frame), speech::frameScoreKey(frame));
    EXPECT_NE(speech::frameScoreKey(frame), speech::frameScoreKey(near));

    // Opt-in quantization buckets near-equal frames together.
    EXPECT_EQ(speech::frameScoreKey(frame, 0.5),
              speech::frameScoreKey(near, 0.5));
    EXPECT_NE(speech::frameScoreKey(frame, 0.5),
              speech::frameScoreKey({9.0f, -2.5f, 0.125f}, 0.5));
}

TEST(CacheKeys, AnswerKeyNormalizesCaseAndWhitespace)
{
    EXPECT_EQ(answerCacheKey("WHO wrote  hamlet"),
              answerCacheKey("who wrote hamlet"));
    EXPECT_EQ(answerCacheKey("  who wrote hamlet \n"),
              answerCacheKey("who wrote hamlet"));
    EXPECT_NE(answerCacheKey("who wrote hamlet"),
              answerCacheKey("who wrote macbeth"));
}

TEST(CacheKeys, ImageKeyIncludesDimensions)
{
    // Same pixel byte stream, different shapes: must not collide.
    vision::Image wide(8, 2, 37);
    vision::Image tall(2, 8, 37);
    vision::Image same(8, 2, 37);
    EXPECT_EQ(vision::imageCacheKey(wide), vision::imageCacheKey(same));
    EXPECT_NE(vision::imageCacheKey(wide), vision::imageCacheKey(tall));
    same.set(3, 1, 38);
    EXPECT_NE(vision::imageCacheKey(wide), vision::imageCacheKey(same));
}

// ---------------------------------------------------------------------------
// Zipf sampler.

TEST(Zipf, SkewFavorsLowRanksDeterministically)
{
    const ZipfSampler zipf(42, 1.0);
    Rng rng(7);
    std::vector<size_t> counts(42, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[zipf.draw(rng)];
    // Rank 0 carries ~1/H(42) ~ 23% of the mass at s = 1.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[10]);
    EXPECT_GT(counts[0], 20000 / 5);
    // Same seed, same stream.
    Rng rng2(7);
    const ZipfSampler zipf2(42, 1.0);
    for (int i = 0; i < 100; ++i) {
        Rng probe(static_cast<uint64_t>(i));
        Rng probe2(static_cast<uint64_t>(i));
        EXPECT_EQ(zipf.draw(probe), zipf2.draw(probe2));
    }
}

TEST(Zipf, ZeroSkewIsNearUniform)
{
    const ZipfSampler zipf(10, 0.0);
    Rng rng(99);
    std::vector<size_t> counts(10, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.draw(rng)];
    for (size_t c : counts) {
        EXPECT_GT(c, 4000u);
        EXPECT_LT(c, 6000u);
    }
}

// ---------------------------------------------------------------------------
// ShardedLruCache mechanics (deterministic; single shard where order
// matters).

using IntCache = ShardedLruCache<uint64_t, std::string>;

CacheConfig
singleShard(size_t byte_budget, double ttl = 0.0,
            const ManualTime *clock = nullptr)
{
    CacheConfig config;
    config.enabled = true;
    config.shards = 1;
    config.byteBudget = byte_budget;
    config.ttlSeconds = ttl;
    config.clock = clock;
    return config;
}

TEST(ShardedLru, DisabledIsPassThrough)
{
    CacheConfig config; // enabled = false by default
    IntCache cache(config, "off");
    cache.put(1, "x", 10);
    std::string out;
    EXPECT_FALSE(cache.get(1, out));
    EXPECT_EQ(cache.entryCount(), 0u);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.bypasses, 1u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.insertions, 0u);
}

TEST(ShardedLru, LruEvictionOrderRespectsRecency)
{
    IntCache cache(singleShard(300), "lru");
    cache.put(1, "a", 100);
    cache.put(2, "b", 100);
    cache.put(3, "c", 100);
    std::string out;
    ASSERT_TRUE(cache.get(1, out)); // promote 1 to MRU: order 1,3,2
    cache.put(4, "d", 100);         // over budget: evict LRU tail = 2

    EXPECT_FALSE(cache.get(2, out));
    EXPECT_TRUE(cache.get(1, out));
    EXPECT_EQ(out, "a");
    EXPECT_TRUE(cache.get(3, out));
    EXPECT_TRUE(cache.get(4, out));
    EXPECT_EQ(cache.stats().evictedLru, 1u);
    EXPECT_EQ(cache.byteCount(), 300u);
}

TEST(ShardedLru, ByteBudgetIsNeverExceededAndOversizeIsRejected)
{
    IntCache cache(singleShard(250), "budget");
    Rng rng(5);
    for (uint64_t i = 0; i < 200; ++i) {
        cache.put(rng.below(50), "v", 40 + rng.below(40));
        EXPECT_LE(cache.byteCount(), 250u);
    }
    // A value larger than the whole shard budget is rejected outright.
    const auto before = cache.stats();
    cache.put(999, "huge", 251);
    std::string out;
    EXPECT_FALSE(cache.get(999, out));
    EXPECT_EQ(cache.stats().rejected, before.rejected + 1);
}

TEST(ShardedLru, ReplaceUpdatesValueAndBytes)
{
    IntCache cache(singleShard(1000), "replace");
    cache.put(1, "first", 100);
    cache.put(1, "second", 40);
    std::string out;
    ASSERT_TRUE(cache.get(1, out));
    EXPECT_EQ(out, "second");
    EXPECT_EQ(cache.byteCount(), 40u);
    EXPECT_EQ(cache.entryCount(), 1u);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.insertions, 1u);
    EXPECT_EQ(stats.replaced, 1u);
}

TEST(ShardedLru, TtlExpiresUnderManualTime)
{
    ManualTime clock;
    IntCache cache(singleShard(1000, 10.0, &clock), "ttl");
    cache.put(1, "fresh", 10);
    std::string out;
    EXPECT_TRUE(cache.get(1, out));

    clock.advance(9.0); // age 9 < ttl 10: still live
    EXPECT_TRUE(cache.get(1, out));
    clock.advance(2.0); // age 11 > ttl 10: expired, collected
    EXPECT_FALSE(cache.get(1, out));
    EXPECT_EQ(cache.entryCount(), 0u);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.evictedExpired, 1u);
    EXPECT_EQ(stats.hits, 2u);

    // Re-inserting restarts the clock for that key.
    cache.put(1, "again", 10);
    clock.advance(9.0);
    EXPECT_TRUE(cache.get(1, out));
    EXPECT_EQ(out, "again");
}

TEST(ShardedLru, ExpiredDeadlineBypassesTheLookup)
{
    ManualTime clock;
    IntCache cache(singleShard(1000), "deadline");
    cache.put(1, "present", 10);

    const auto live = Deadline::afterManual(5.0, clock);
    std::string out;
    EXPECT_TRUE(cache.get(1, out, live)); // bounded but not expired

    clock.advance(10.0); // the deadline is now expired
    EXPECT_FALSE(cache.get(1, out, live));
    const auto stats = cache.stats();
    EXPECT_EQ(stats.bypasses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    // The entry itself is untouched — only this lookup was skipped.
    EXPECT_TRUE(cache.get(1, out));
}

TEST(ShardedLru, LookupOutcomesPartitionLookups)
{
    ManualTime clock;
    IntCache cache(singleShard(1000, 5.0, &clock), "partition");
    std::string out;
    cache.get(1, out);          // miss
    cache.put(1, "x", 10);
    cache.get(1, out);          // hit
    clock.advance(6.0);
    cache.get(1, out);          // expired
    const auto gone = Deadline::afterManual(1.0, clock);
    clock.advance(2.0);
    cache.get(1, out, gone);    // bypass
    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.bypasses, 1u);
    EXPECT_EQ(stats.lookups(), 4u);
}

TEST(ShardedLru, MetricsExportUsesTheCacheLabel)
{
    IntCache cache(singleShard(1000), "unit_test");
    cache.put(1, "x", 10);
    std::string out;
    cache.get(1, out);
    cache.get(2, out);

    MetricsRegistry registry;
    cache.exportTo(registry);
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("sirius_cache_lookups_total"), std::string::npos);
    EXPECT_NE(prom.find("sirius_cache_insertions_total"),
              std::string::npos);
    EXPECT_NE(prom.find("sirius_cache_evictions_total"),
              std::string::npos);
    EXPECT_NE(prom.find("sirius_cache_entries"), std::string::npos);
    EXPECT_NE(prom.find("sirius_cache_bytes"), std::string::npos);
    EXPECT_NE(prom.find("cache=\"unit_test\""), std::string::npos);
    EXPECT_NE(prom.find("outcome=\"hit\""), std::string::npos);
}

/**
 * Concurrent hammer: many threads mixing gets and puts over a hot key
 * range with constant eviction churn. Run under TSan by scripts/check.sh
 * and the CI tsan job; the assertions here check value integrity (a hit
 * must return exactly what some put stored for that key) and exact
 * lookup accounting.
 */
TEST(ShardedLru, ConcurrentHammerKeepsValuesAndCountsConsistent)
{
    using VecCache = ShardedLruCache<uint64_t, std::vector<float>>;
    CacheConfig config;
    config.enabled = true;
    config.shards = 8;
    config.byteBudget = 4096; // small: forces steady eviction
    VecCache cache(config, "hammer");

    constexpr size_t kThreads = 4;
    constexpr size_t kOps = 3000;
    constexpr uint64_t kKeys = 64;
    std::atomic<size_t> corrupt{0};
    std::vector<std::thread> pool;
    for (size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            Rng rng(t + 1);
            for (size_t i = 0; i < kOps; ++i) {
                const uint64_t key = rng.below(kKeys);
                std::vector<float> value;
                if (cache.get(key, value)) {
                    // The value for key k is always {k, 2k}: any other
                    // content means lost or torn data.
                    if (value.size() != 2 ||
                        value[0] != static_cast<float>(key) ||
                        value[1] != static_cast<float>(2 * key))
                        corrupt.fetch_add(1);
                } else {
                    cache.put(key,
                              {static_cast<float>(key),
                               static_cast<float>(2 * key)},
                              2 * sizeof(float) + 48);
                }
            }
        });
    }
    for (auto &thread : pool)
        thread.join();

    EXPECT_EQ(corrupt.load(), 0u);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.lookups(), kThreads * kOps);
    EXPECT_LE(cache.byteCount(), config.byteBudget);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictedLru, 0u);
}

// ---------------------------------------------------------------------------
// Per-layer and end-to-end differential tests: hit ≡ miss.

class CacheE2E : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static CacheConfig
    enabledConfig()
    {
        CacheConfig config;
        config.enabled = true;
        return config;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *CacheE2E::pipeline_ = nullptr;

TEST_F(CacheE2E, AsrCacheHitIsBitwiseIdenticalToMiss)
{
    const auto wave =
        pipeline_->asr().synthesize("what is the capital of france");
    const auto uncached = pipeline_->asr().transcribe(wave);

    speech::AcousticScoreCache cache(enabledConfig(), "asr_test");
    const auto miss =
        pipeline_->asr().transcribe(wave, {}, nullptr, &cache);
    const auto first = cache.stats();
    EXPECT_EQ(first.hits, 0u);
    EXPECT_GT(first.insertions, 0u);

    const auto hit =
        pipeline_->asr().transcribe(wave, {}, nullptr, &cache);
    const auto second = cache.stats();
    EXPECT_EQ(second.misses, first.misses); // every frame hit
    EXPECT_GT(second.hits, 0u);

    // Bitwise: the decode consumed identical scores, so text and
    // log-probability are exactly equal, cache or no cache.
    EXPECT_EQ(uncached.text, miss.text);
    EXPECT_EQ(uncached.text, hit.text);
    EXPECT_EQ(uncached.logProb, miss.logProb);
    EXPECT_EQ(uncached.logProb, hit.logProb);
    EXPECT_EQ(uncached.frames, hit.frames);
}

TEST_F(CacheE2E, ImmCacheHitEqualsMiss)
{
    const vision::Image image = vision::generateQueryView(3);
    const auto uncached = pipeline_->imm().match(image);

    vision::MatchCache cache(enabledConfig(), "imm_test");
    const auto miss = pipeline_->imm().match(image, {}, nullptr, &cache);
    const auto hit = pipeline_->imm().match(image, {}, nullptr, &cache);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.insertions, 1u);

    for (const auto *result : {&miss, &hit}) {
        EXPECT_EQ(uncached.bestId, result->bestId);
        EXPECT_EQ(uncached.bestMatches, result->bestMatches);
        EXPECT_EQ(uncached.queryKeypoints, result->queryKeypoints);
        EXPECT_FALSE(result->cutShort);
    }
    // The hit bypassed the kernels entirely: no timed work.
    EXPECT_EQ(hit.timings.total(), 0.0);
}

TEST_F(CacheE2E, AnswerCacheHitEqualsMissThroughThePipeline)
{
    const auto &queries = standardQuerySet();
    const Query *vq = nullptr;
    for (const auto &query : queries) {
        if (query.type == QueryType::VoiceQuery) {
            vq = &query;
            break;
        }
    }
    ASSERT_NE(vq, nullptr);

    const auto uncached = pipeline_->process(*vq);

    PipelineCaches caches(enabledConfig());
    ProcessOptions options;
    options.caches = &caches;
    const auto miss = pipeline_->process(*vq, options);
    const auto hit = pipeline_->process(*vq, options);

    const auto answers = caches.snapshot().answers;
    EXPECT_EQ(answers.insertions, 1u);
    EXPECT_GE(answers.hits, 1u);

    for (const auto *result : {&miss, &hit}) {
        EXPECT_EQ(uncached.transcript, result->transcript);
        EXPECT_EQ(uncached.answer, result->answer);
        EXPECT_EQ(uncached.queryClass, result->queryClass);
        EXPECT_EQ(uncached.degradation, result->degradation);
    }
}

TEST_F(CacheE2E, CorruptedAttemptsBypassTheCacheBothWays)
{
    const auto &queries = standardQuerySet();
    const Query *vq = nullptr;
    for (const auto &query : queries) {
        if (query.type == QueryType::VoiceQuery) {
            vq = &query;
            break;
        }
    }
    ASSERT_NE(vq, nullptr);
    const auto clean = pipeline_->process(*vq);

    // Every QA attempt corrupted: the cache must neither store the
    // corrupted answers nor serve clean ones in their place.
    FaultConfig fault_config;
    fault_config.corruptionRate = 1.0;
    fault_config.faultAsr = false;
    fault_config.faultImm = false;
    FaultInjector injector(fault_config);

    PipelineCaches caches(enabledConfig());
    ProcessOptions faulted;
    faulted.caches = &caches;
    faulted.faults = &injector;
    const auto corrupted = pipeline_->process(*vq, faulted);
    EXPECT_NE(corrupted.answer, clean.answer);
    EXPECT_EQ(caches.snapshot().answers.insertions, 0u);
    EXPECT_EQ(caches.snapshot().answers.hits, 0u);

    // A later clean pass over the same caches computes (and then
    // caches) the true answer — the faulted pass left no residue.
    ProcessOptions clean_options;
    clean_options.caches = &caches;
    const auto after = pipeline_->process(*vq, clean_options);
    EXPECT_EQ(after.answer, clean.answer);
    EXPECT_EQ(caches.snapshot().answers.insertions, 1u);
}

// One line per query: index|type|degradation|class|landmark|transcript|
// answer — the same discrete-field format test_batching pins, so the
// cached server is held to the identical golden fixture.
std::string
goldenLine(size_t index, const Query &query, const SiriusResult &result)
{
    std::ostringstream out;
    out << index << '|' << queryTypeName(query.type) << '|'
        << degradationName(result.degradation) << '|'
        << static_cast<int>(result.queryClass) << '|'
        << result.matchedLandmark << '|' << result.transcript << '|'
        << result.answer;
    return out.str();
}

TEST_F(CacheE2E, CachedBatchedServerMatchesGoldenFixtures)
{
    const std::string path =
        std::string(SIRIUS_SOURCE_DIR) + "/tests/golden/e2e_results.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing — run scripts/regen_goldens.sh";
    std::vector<std::string> golden;
    std::string line;
    while (std::getline(in, line))
        golden.push_back(line);

    const auto &queries = standardQuerySet();
    ASSERT_EQ(golden.size(), queries.size());

    ConcurrentServerConfig config;
    config.workers = 4;
    config.cache.enabled = true;
    ASSERT_TRUE(config.batching.enabled); // cache + batching together

    ConcurrentServer server(*pipeline_, config);
    // Two passes over the whole set: the first populates the caches,
    // the second is served largely from them. BOTH must match the
    // goldens — a cache that changed any answer fails here.
    for (int pass = 0; pass < 2; ++pass) {
        std::vector<SiriusResult> results(queries.size());
        std::vector<std::thread> clients;
        constexpr size_t kClients = 4;
        for (size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                for (size_t i = c; i < queries.size(); i += kClients)
                    results[i] = server.handle(queries[i]);
            });
        }
        for (auto &client : clients)
            client.join();
        for (size_t i = 0; i < queries.size(); ++i)
            EXPECT_EQ(golden[i], goldenLine(i, queries[i], results[i]))
                << "pass " << pass << " query " << i
                << " diverged from the golden fixture";
    }

    // The second pass really was served from cache.
    const auto caches = server.snapshot().caches;
    EXPECT_GT(caches.acousticScores.hits, 0u);
    EXPECT_GT(caches.answers.hits, 0u);
    EXPECT_GT(caches.matches.hits, 0u);
    // And the accounting reached the labeled metrics exporters.
    const auto prom = server.snapshot().metrics.renderPrometheus();
    EXPECT_NE(prom.find("sirius_cache_lookups_total"), std::string::npos);
    EXPECT_NE(prom.find("sirius_cache_bytes"), std::string::npos);
}

} // namespace
