/**
 * @file
 * Tests for the datacenter simulation library: M/M/1 queueing, the
 * Table 7 TCO model, the design-space explorer (Tables 8/9) and the
 * scalability-gap arithmetic (Figures 7a, 21).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/latency.h"
#include "accel/model.h"
#include "dcsim/designer.h"
#include "dcsim/queueing.h"
#include "dcsim/scalability.h"
#include "dcsim/tco.h"

namespace {

using namespace sirius::accel;
using namespace sirius::dcsim;

// ---------------------------------------------------------------- queueing

TEST(Mm1, LatencyFormula)
{
    EXPECT_DOUBLE_EQ(mm1Latency(0.0, 2.0), 0.5);
    EXPECT_DOUBLE_EQ(mm1Latency(1.0, 2.0), 1.0);
    EXPECT_TRUE(std::isinf(mm1Latency(2.0, 2.0)));
}

TEST(Mm1, LatencyMonotoneInLoad)
{
    double prev = 0.0;
    for (double lambda = 0.0; lambda < 0.95; lambda += 0.05) {
        const double latency = mm1Latency(lambda, 1.0);
        EXPECT_GT(latency, prev);
        prev = latency;
    }
}

TEST(Mm1, MaxArrivalInvertsLatency)
{
    const double mu = 3.0;
    const double bound = 0.8;
    const double lambda = mm1MaxArrival(mu, bound);
    EXPECT_NEAR(mm1Latency(lambda, mu), bound, 1e-12);
    // A bound below the bare service time is unattainable.
    EXPECT_DOUBLE_EQ(mm1MaxArrival(1.0, 0.5), 0.0);
}

TEST(Mm1, UtilizationClamped)
{
    EXPECT_DOUBLE_EQ(mm1Utilization(0.5, 2.0), 0.25);
    EXPECT_DOUBLE_EQ(mm1Utilization(5.0, 2.0), 1.0);
}

TEST(Mm1, ThroughputImprovementAt100PercentLoadIsSpeedupish)
{
    // As rho -> 1 the improvement tends to the raw speedup (Figure 16 is
    // the 100%-load lower bound of Figure 17).
    const double s = 10.0;
    EXPECT_NEAR(throughputImprovementAtLoad(s, 0.999), s, 0.1);
}

TEST(Mm1, LowerLoadBiggerImprovement)
{
    // Figure 17: the lower the load, the bigger the improvement.
    const double s = 10.0;
    double prev = 0.0;
    for (double rho : {0.9, 0.7, 0.5, 0.3, 0.1}) {
        const double improvement = throughputImprovementAtLoad(s, rho);
        EXPECT_GT(improvement, prev);
        prev = improvement;
    }
}

TEST(Mm1, ImprovementExceedsSpeedupBelowFullLoad)
{
    EXPECT_GT(throughputImprovementAtLoad(10.0, 0.5), 10.0);
}

// --------------------------------------------------------------------- TCO

TEST(Tco, BaselineServerFromTable7)
{
    const auto server = baselineServer();
    EXPECT_DOUBLE_EQ(server.priceUsd, 2102.0);
    EXPECT_DOUBLE_EQ(server.powerWatts, 163.6);
}

TEST(Tco, AcceleratedServerAddsCardCostAndPower)
{
    const auto gpu = acceleratedServer(Platform::Gpu);
    EXPECT_DOUBLE_EQ(gpu.priceUsd, 2102.0 + 399.0);
    EXPECT_DOUBLE_EQ(gpu.powerWatts, 163.6 + 230.0);
    const auto cmp = acceleratedServer(Platform::CmpMulticore);
    EXPECT_DOUBLE_EQ(cmp.priceUsd, 2102.0);
}

TEST(Tco, YearlyTcoPositiveAndSane)
{
    const double tco = serverYearlyTco(baselineServer());
    // Must at least cover amortized capex and be of server-cost order.
    EXPECT_GT(tco, 2102.0 / 3.0);
    EXPECT_LT(tco, 10000.0);
}

TEST(Tco, EnergyCostScalesWithPower)
{
    TcoParams params;
    ServerConfig low{2102.0, 100.0};
    ServerConfig high{2102.0, 400.0};
    EXPECT_GT(serverYearlyTco(high, params),
              serverYearlyTco(low, params));
}

TEST(Tco, DatacenterScalesWithTargetLoad)
{
    const auto server = baselineServer();
    const double one = datacenterYearlyTco(server, 10.0, 10.0);
    const double ten = datacenterYearlyTco(server, 10.0, 100.0);
    EXPECT_NEAR(ten / one, 10.0, 1e-9);
}

TEST(Tco, NormalizedTcoBelowOneForGoodAccelerators)
{
    // A GPU giving ~13x throughput at modest extra cost must cut TCO
    // severalfold (Figure 18 shows >8x for ASR-DNN).
    const double gpu = normalizedTco(Platform::Gpu, 13.7);
    EXPECT_LT(gpu, 0.2);
    // The same card with no speedup only adds cost.
    EXPECT_GT(normalizedTco(Platform::Gpu, 1.0), 1.0);
}

TEST(Tco, PhiExpensiveCardNeedsBigGains)
{
    // Phi: high purchase price, small speedups -> TCO above baseline.
    EXPECT_GT(normalizedTco(Platform::Phi, 1.2), 1.0);
}

// ---------------------------------------------------------------- designer

class DesignerFixture : public ::testing::Test
{
  protected:
    CalibratedModel model_;
    DatacenterDesigner designer_{defaultServiceProfiles(), model_};
};

TEST_F(DesignerFixture, EvaluateProducesConsistentCells)
{
    for (ServiceKind service : allServices()) {
        for (Platform platform : allPlatforms()) {
            const auto point = designer_.evaluate(service, platform);
            EXPECT_GT(point.latencySeconds, 0.0);
            EXPECT_GT(point.normalizedTco, 0.0);
            EXPECT_GT(point.perfPerWatt, 0.0);
        }
    }
}

TEST_F(DesignerFixture, Table8LatencyRowIsFpga)
{
    // Table 8: with FPGAs allowed, the homogeneous min-latency DC uses
    // FPGAs.
    CandidateSet all;
    EXPECT_EQ(designer_.homogeneousDesign(Objective::MinLatency, all),
              Platform::Fpga);
}

TEST_F(DesignerFixture, Table8TcoRowIsGpu)
{
    // Table 8: the homogeneous TCO-optimal DC uses GPUs (with or
    // without FPGAs as candidates).
    CandidateSet all;
    EXPECT_EQ(designer_.homogeneousDesign(Objective::MinTcoWithLatency,
                                          all),
              Platform::Gpu);
    CandidateSet no_fpga;
    no_fpga.allowFpga = false;
    EXPECT_EQ(designer_.homogeneousDesign(Objective::MinTcoWithLatency,
                                          no_fpga),
              Platform::Gpu);
}

TEST_F(DesignerFixture, Table8PowerRowIsFpga)
{
    CandidateSet all;
    EXPECT_EQ(designer_.homogeneousDesign(
                  Objective::MaxPowerEffWithLatency, all),
              Platform::Fpga);
}

TEST_F(DesignerFixture, Table8WithoutFpgaOrGpuFallsBackToCmp)
{
    // Table 8, last column group: without FPGA and GPU the TCO-optimal
    // choice is the plain CMP server.
    CandidateSet cpu_only;
    cpu_only.allowFpga = false;
    cpu_only.allowGpu = false;
    EXPECT_EQ(designer_.homogeneousDesign(Objective::MinTcoWithLatency,
                                          cpu_only),
              Platform::CmpMulticore);
}

TEST_F(DesignerFixture, Table9HeterogeneousLatencyUsesGpuForAsrDnn)
{
    // Table 9: heterogeneous min-latency keeps FPGAs everywhere except
    // ASR (DNN), which prefers the GPU, gaining ~3.6x for that service.
    CandidateSet all;
    const auto design = designer_.heterogeneousDesign(
        Objective::MinLatency, all);
    for (const auto &[service, platform] : design) {
        if (service == ServiceKind::AsrDnn)
            EXPECT_EQ(platform, Platform::Gpu);
        else
            EXPECT_EQ(platform, Platform::Fpga);
    }
    const double gain = designer_.heterogeneousGain(
        Objective::MinLatency, all, ServiceKind::AsrDnn);
    EXPECT_GT(gain, 2.0);
    EXPECT_LT(gain, 6.0);
}

TEST_F(DesignerFixture, Table9HeterogeneousTcoGainsModest)
{
    // Table 9: partitioned heterogeneity buys only ~20% TCO on QA/IMM —
    // the paper's conclusion that heterogeneity is not clearly worth it.
    CandidateSet all;
    for (ServiceKind service : {ServiceKind::Qa, ServiceKind::Imm}) {
        const double gain = designer_.heterogeneousGain(
            Objective::MinTcoWithLatency, all, service);
        EXPECT_GE(gain, 1.0);
        // Our latency composition leaves slightly more TCO headroom than
        // the paper's ~20% cells, but it stays well under 2x.
        EXPECT_LT(gain, 2.0);
    }
}

// ------------------------------------------------------------- scalability

TEST(Scalability, GapIsLatencyRatio)
{
    EXPECT_DOUBLE_EQ(scalabilityGap(15.0, 0.091), 15.0 / 0.091);
}

TEST(Scalability, PaperMagnitude)
{
    // Paper: ~15 s Sirius vs 91 ms Nutch -> ~165x.
    const double gap = scalabilityGap(15.0, 0.091);
    EXPECT_GT(gap, 150.0);
    EXPECT_LT(gap, 180.0);
}

TEST(Scalability, MachinesGrowWithQueryRatio)
{
    const double gap = 165.0;
    EXPECT_NEAR(machinesRatio(gap, 0.0), 1.0, 1e-12);
    EXPECT_GT(machinesRatio(gap, 1.0), 100.0);
    EXPECT_GT(machinesRatio(gap, 10.0), machinesRatio(gap, 1.0));
}

TEST(Scalability, AccelerationBridgesGap)
{
    // Figure 21: acceleration cuts the 165x gap to ~10-16x.
    const double gap = 165.0;
    EXPECT_NEAR(bridgedGap(gap, 10.0), 16.5, 1e-9);
    EXPECT_NEAR(bridgedGap(gap, 16.0), 10.3, 0.05);
}

TEST(Scalability, CurveSampling)
{
    const auto curve = scalingCurve(165.0, 5);
    ASSERT_EQ(curve.queryRatios.size(), 5u);
    for (size_t i = 1; i < curve.machineRatios.size(); ++i)
        EXPECT_GT(curve.machineRatios[i], curve.machineRatios[i - 1]);
}

} // namespace
