/**
 * @file
 * Tests for the accelerator models: platform data (Tables 3/6), the
 * calibrated Table 5 speedups, analytic-model sanity, latency
 * composition (Figures 14-16) and the microarchitecture profiles
 * (Figure 10).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/latency.h"
#include "accel/model.h"
#include "accel/platform.h"
#include "accel/uarch.h"

namespace {

using namespace sirius::accel;

// ---------------------------------------------------------------- platforms

TEST(Platform, Table3Specs)
{
    const auto &cmp = platformSpec(Platform::Cmp);
    EXPECT_DOUBLE_EQ(cmp.frequencyGhz, 3.40);
    EXPECT_EQ(cmp.cores, 4);
    EXPECT_EQ(cmp.hwThreads, 8);
    EXPECT_DOUBLE_EQ(cmp.peakTflops, 0.5);

    const auto &gpu = platformSpec(Platform::Gpu);
    EXPECT_DOUBLE_EQ(gpu.memBwGBs, 224.0);
    EXPECT_DOUBLE_EQ(gpu.peakTflops, 3.2);

    const auto &phi = platformSpec(Platform::Phi);
    EXPECT_EQ(phi.cores, 60);
    EXPECT_EQ(phi.hwThreads, 240);

    const auto &fpga = platformSpec(Platform::Fpga);
    EXPECT_DOUBLE_EQ(fpga.frequencyGhz, 0.40);
}

TEST(Platform, Table6PowerAndCost)
{
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Cmp).tdpWatts, 80.0);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Gpu).tdpWatts, 230.0);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Phi).tdpWatts, 225.0);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Fpga).tdpWatts, 22.0);

    EXPECT_DOUBLE_EQ(platformSpec(Platform::Cmp).costUsd, 250.0);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Gpu).costUsd, 399.0);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Phi).costUsd, 2437.0);
    EXPECT_DOUBLE_EQ(platformSpec(Platform::Fpga).costUsd, 1795.0);
}

TEST(Platform, Enumerations)
{
    EXPECT_EQ(allPlatforms().size(), 5u);
    EXPECT_EQ(acceleratorPlatforms().size(), 3u);
    EXPECT_STREQ(platformName(Platform::Gpu), "GPU");
}

// --------------------------------------------------------- calibrated model

TEST(CalibratedModel, MatchesTable5)
{
    CalibratedModel model;
    // Spot-check every column of two rows and the headline cells.
    EXPECT_DOUBLE_EQ(model.speedup(Kernel::Gmm, Platform::CmpMulticore),
                     3.5);
    EXPECT_DOUBLE_EQ(model.speedup(Kernel::Gmm, Platform::Gpu), 70.0);
    EXPECT_DOUBLE_EQ(model.speedup(Kernel::Gmm, Platform::Phi), 1.1);
    EXPECT_DOUBLE_EQ(model.speedup(Kernel::Gmm, Platform::Fpga), 169.0);
    EXPECT_DOUBLE_EQ(model.speedup(Kernel::Fd, Platform::Gpu), 120.5);
    EXPECT_DOUBLE_EQ(model.speedup(Kernel::Crf, Platform::Fpga), 7.5);
    EXPECT_DOUBLE_EQ(model.speedup(Kernel::Stemmer, Platform::Fpga),
                     30.0);
}

TEST(CalibratedModel, BaselineIsUnity)
{
    CalibratedModel model;
    for (Kernel kernel : suiteKernels())
        EXPECT_DOUBLE_EQ(model.speedup(kernel, Platform::Cmp), 1.0);
}

TEST(CalibratedModel, FpgaBestForMostKernels)
{
    // Section 5.1.1: FPGA outperforms GPU for most services except
    // DNN-style workloads.
    CalibratedModel model;
    size_t fpga_wins = 0;
    for (Kernel kernel : suiteKernels()) {
        if (model.speedup(kernel, Platform::Fpga) >
            model.speedup(kernel, Platform::Gpu)) {
            ++fpga_wins;
        }
    }
    EXPECT_GE(fpga_wins, 4u);
    EXPECT_GT(model.speedup(Kernel::Dnn, Platform::Gpu) /
                  model.speedup(Kernel::Dnn, Platform::CmpMulticore),
              1.0);
}

// ----------------------------------------------------------- analytic model

TEST(AnalyticModel, BaselineIsUnity)
{
    AnalyticModel model;
    for (Kernel kernel : suiteKernels())
        EXPECT_DOUBLE_EQ(model.speedup(kernel, Platform::Cmp), 1.0);
}

TEST(AnalyticModel, SpeedupsPositiveAndFinite)
{
    AnalyticModel model;
    for (Kernel kernel : suiteKernels()) {
        for (Platform platform : allPlatforms()) {
            const double s = model.speedup(kernel, platform);
            EXPECT_GT(s, 0.0);
            EXPECT_TRUE(std::isfinite(s));
        }
    }
}

TEST(AnalyticModel, BranchyKernelsFavorFpgaOverGpu)
{
    // The stemmer's divergence should make the GPU much less attractive
    // than the FPGA, matching the paper's observation.
    AnalyticModel model;
    EXPECT_GT(model.speedup(Kernel::Stemmer, Platform::Fpga),
              model.speedup(Kernel::Stemmer, Platform::Gpu));
    EXPECT_GT(model.speedup(Kernel::Regex, Platform::Fpga),
              model.speedup(Kernel::Regex, Platform::Gpu));
}

TEST(AnalyticModel, DenseKernelsLoveTheGpu)
{
    AnalyticModel model;
    EXPECT_GT(model.speedup(Kernel::Dnn, Platform::Gpu), 10.0);
    EXPECT_GT(model.speedup(Kernel::Fd, Platform::Gpu), 10.0);
}

TEST(ModelAgreement, AnalyticTracksCalibratedOrdering)
{
    const CalibratedModel calibrated;
    const AnalyticModel analytic;
    const auto agreement = compareModels(analytic, calibrated);
    // Cross-model cell ordering should mostly agree; the analytic model
    // is a sanity check, not a re-measurement.
    EXPECT_GT(agreement.orderingAgreement, 0.75);
    EXPECT_LT(agreement.meanAbsLogError, 1.5);
}

TEST(ModelAgreement, SelfComparisonPerfect)
{
    const CalibratedModel model;
    const auto agreement = compareModels(model, model);
    EXPECT_DOUBLE_EQ(agreement.meanAbsLogError, 0.0);
    EXPECT_DOUBLE_EQ(agreement.orderingAgreement, 1.0);
}

// ------------------------------------------------------ latency composition

class LatencyFixture : public ::testing::Test
{
  protected:
    CalibratedModel model_;
    std::vector<ServiceProfile> profiles_ = defaultServiceProfiles();

    const ServiceProfile &
    service(ServiceKind kind) const
    {
        for (const auto &p : profiles_) {
            if (p.kind == kind)
                return p;
        }
        throw std::runtime_error("missing service");
    }
};

TEST_F(LatencyFixture, FourServicesPresent)
{
    EXPECT_EQ(profiles_.size(), 4u);
    EXPECT_EQ(allServices().size(), 4u);
}

TEST_F(LatencyFixture, BaselineLatencyIsComponentSum)
{
    for (const auto &profile : profiles_) {
        double sum = profile.unacceleratedSeconds;
        for (const auto &c : profile.components)
            sum += c.seconds;
        EXPECT_DOUBLE_EQ(baselineLatency(profile), sum);
        EXPECT_DOUBLE_EQ(
            serviceLatency(profile, model_, Platform::Cmp), sum);
    }
}

TEST_F(LatencyFixture, AcceleratorsReduceLatency)
{
    for (const auto &profile : profiles_) {
        const double base = baselineLatency(profile);
        for (Platform p : {Platform::Gpu, Platform::Fpga}) {
            EXPECT_LT(serviceLatency(profile, model_, p), base)
                << serviceKindName(profile.kind);
        }
    }
}

TEST_F(LatencyFixture, FpgaFasterThanGpuExceptAsrDnn)
{
    // Section 5.1.1: "The FPGA outperforms the GPU for most of the
    // services except ASR (DNN/HMM)."
    for (const auto &profile : profiles_) {
        const double gpu = serviceLatency(profile, model_,
                                          Platform::Gpu);
        const double fpga = serviceLatency(profile, model_,
                                           Platform::Fpga);
        if (profile.kind == ServiceKind::AsrDnn)
            EXPECT_LT(gpu, fpga);
        else
            EXPECT_LT(fpga, gpu);
    }
}

TEST_F(LatencyFixture, AsrGmmFpgaLatencyDropsBelow5Percent)
{
    // Paper: FPGA cuts ASR (GMM) from 4.2 s to 0.19 s (~22x).
    const auto &asr = service(ServiceKind::AsrGmm);
    const double base = baselineLatency(asr);
    const double fpga = serviceLatency(asr, model_, Platform::Fpga);
    EXPECT_GT(base / fpga, 10.0);
}

TEST_F(LatencyFixture, PhiSlowerThanMulticoreBaseline)
{
    // Section 5.1.1: "Phi is generally slower than the Pthreaded
    // multicore baseline."
    size_t slower = 0;
    for (const auto &profile : profiles_) {
        if (serviceLatency(profile, model_, Platform::Phi) >
            serviceLatency(profile, model_, Platform::CmpMulticore)) {
            ++slower;
        }
    }
    EXPECT_GE(slower, 3u);
}

TEST_F(LatencyFixture, FpgaBestPerfPerWatt)
{
    // Figure 15: FPGA exceeds every platform by a wide margin; >12x the
    // multicore baseline.
    for (const auto &profile : profiles_) {
        const double fpga = perfPerWattVsMulticore(profile, model_,
                                                   Platform::Fpga);
        for (Platform p : {Platform::CmpMulticore, Platform::Gpu,
                           Platform::Phi}) {
            EXPECT_GT(fpga, perfPerWattVsMulticore(profile, model_, p))
                << serviceKindName(profile.kind);
        }
    }
    double mean = 0.0;
    for (const auto &profile : profiles_)
        mean += perfPerWattVsMulticore(profile, model_, Platform::Fpga);
    EXPECT_GT(mean / 4.0, 12.0);
}

TEST_F(LatencyFixture, GpuPerfPerWattWorseThanBaselineForQa)
{
    // Figure 15: the GPU's perf/W trails the baseline only for QA.
    const auto &qa = service(ServiceKind::Qa);
    EXPECT_LT(perfPerWattVsMulticore(qa, model_, Platform::Gpu), 1.0);
    const auto &asr = service(ServiceKind::AsrDnn);
    EXPECT_GT(perfPerWattVsMulticore(asr, model_, Platform::Gpu), 1.0);
}

TEST_F(LatencyFixture, ThroughputNumbersMatchPaperShape)
{
    // Figure 16: GPU ~13.7x for ASR (DNN); FPGA ~12.6x for IMM.
    const double gpu_dnn = throughputImprovement(
        service(ServiceKind::AsrDnn), model_, Platform::Gpu);
    EXPECT_GT(gpu_dnn, 8.0);
    EXPECT_LT(gpu_dnn, 20.0);

    const double fpga_imm = throughputImprovement(
        service(ServiceKind::Imm), model_, Platform::Fpga);
    EXPECT_GT(fpga_imm, 8.0);
    EXPECT_LT(fpga_imm, 20.0);

    // QA throughput gains are more limited across platforms.
    const double gpu_qa = throughputImprovement(
        service(ServiceKind::Qa), model_, Platform::Gpu);
    EXPECT_LT(gpu_qa, gpu_dnn);
}

// ------------------------------------------------------------------- uarch

TEST(Uarch, SharesSumToOne)
{
    for (Kernel kernel : suiteKernels()) {
        const auto &profile = microarchProfile(kernel);
        EXPECT_NEAR(profile.retiring + profile.frontEnd +
                        profile.speculation + profile.backEnd,
                    1.0, 1e-9)
            << kernelName(kernel);
        EXPECT_GT(profile.ipc, 0.0);
        EXPECT_LE(profile.ipc, 4.0); // Haswell issue width
    }
}

TEST(Uarch, DnnAndRegexRunEfficiently)
{
    // Figure 10's narrative: DNN and Regex execute efficiently.
    EXPECT_GT(microarchProfile(Kernel::Dnn).ipc, 2.0);
    EXPECT_GT(microarchProfile(Kernel::Regex).ipc, 2.0);
    EXPECT_LT(microarchProfile(Kernel::Stemmer).ipc, 1.2);
}

TEST(Uarch, StallFreeSpeedupBoundedAround3x)
{
    // The paper's key claim: removing all stalls buys at most ~3x, far
    // short of the 165x scalability gap.
    const double aggregate = aggregateStallFreeSpeedup();
    EXPECT_GT(aggregate, 1.5);
    EXPECT_LT(aggregate, 4.0);
    for (Kernel kernel : suiteKernels())
        EXPECT_LT(stallFreeSpeedup(kernel), 4.1);
}

} // namespace
