/**
 * @file
 * Tests for the vision substrate: image ops, integral image, SURF FE/FD,
 * k-d tree ANN matching, landmark generation and the IMM service.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "common/rng.h"
#include "vision/image.h"
#include "vision/imm_service.h"
#include "vision/integral_image.h"
#include "vision/landmarks.h"
#include "vision/matcher.h"
#include "vision/surf.h"

namespace {

using namespace sirius;
using namespace sirius::vision;

// -------------------------------------------------------------------- image

TEST(Image, ConstructAndAccess)
{
    Image img(8, 4, 7);
    EXPECT_EQ(img.width(), 8);
    EXPECT_EQ(img.height(), 4);
    EXPECT_EQ(img.at(0, 0), 7);
    img.set(3, 2, 200);
    EXPECT_EQ(img.at(3, 2), 200);
}

TEST(Image, ClampedAccess)
{
    Image img(4, 4, 0);
    img.set(0, 0, 9);
    img.set(3, 3, 11);
    EXPECT_EQ(img.atClamped(-5, -5), 9);
    EXPECT_EQ(img.atClamped(100, 100), 11);
}

TEST(Image, FillRectClips)
{
    Image img(10, 10, 0);
    img.fillRect(-5, -5, 8, 8, 50);
    EXPECT_EQ(img.at(0, 0), 50);
    EXPECT_EQ(img.at(2, 2), 50);
    EXPECT_EQ(img.at(3, 3), 0);
}

TEST(Image, FillCircleRadius)
{
    Image img(21, 21, 0);
    img.fillCircle(10, 10, 5, 255);
    EXPECT_EQ(img.at(10, 10), 255);
    EXPECT_EQ(img.at(10, 15), 255);
    EXPECT_EQ(img.at(10, 16), 0);
    EXPECT_EQ(img.at(16, 16), 0);
}

TEST(Image, CheckerboardAlternates)
{
    Image img(16, 16, 0);
    img.checkerboard(0, 0, 16, 16, 4, 10, 200);
    EXPECT_EQ(img.at(0, 0), 200);
    EXPECT_EQ(img.at(4, 0), 10);
    EXPECT_EQ(img.at(4, 4), 200);
}

TEST(Image, TranslatedShiftsContent)
{
    Image img(6, 6, 0);
    img.set(1, 1, 99);
    const Image out = img.translated(2, 3, 5);
    EXPECT_EQ(out.at(3, 4), 99);
    EXPECT_EQ(out.at(0, 0), 5);
}

TEST(Image, BrightnessScalingClamps)
{
    Image img(2, 2, 200);
    img.scaleBrightness(2.0);
    EXPECT_EQ(img.at(0, 0), 255);
    img.scaleBrightness(0.0);
    EXPECT_EQ(img.at(1, 1), 0);
}

TEST(Image, PgmRoundTrip)
{
    Image img = generateLandmark(3, 32, 32);
    const std::string path = "/tmp/sirius_test_roundtrip.pgm";
    ASSERT_TRUE(img.savePgm(path));
    const Image loaded = Image::loadPgm(path);
    ASSERT_EQ(loaded.width(), img.width());
    ASSERT_EQ(loaded.height(), img.height());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x)
            ASSERT_EQ(loaded.at(x, y), img.at(x, y));
    }
    std::remove(path.c_str());
}

TEST(Image, LoadPgmMissingFileGivesEmpty)
{
    const Image img = Image::loadPgm("/tmp/definitely_missing_42.pgm");
    EXPECT_EQ(img.width(), 0);
}

// ----------------------------------------------------------------- integral

TEST(IntegralImage, BoxSumMatchesDirectSum)
{
    Rng rng(5);
    Image img(32, 24);
    for (int y = 0; y < 24; ++y) {
        for (int x = 0; x < 32; ++x)
            img.set(x, y, static_cast<uint8_t>(rng.below(256)));
    }
    const IntegralImage integral(img);
    for (int trial = 0; trial < 50; ++trial) {
        const int row = static_cast<int>(rng.below(20));
        const int col = static_cast<int>(rng.below(28));
        const int rows = 1 + static_cast<int>(rng.below(4));
        const int cols = 1 + static_cast<int>(rng.below(4));
        double direct = 0.0;
        for (int y = row; y < row + rows; ++y) {
            for (int x = col; x < col + cols; ++x)
                direct += img.at(x, y) / 255.0;
        }
        EXPECT_NEAR(integral.boxSum(row, col, rows, cols), direct, 1e-9);
    }
}

TEST(IntegralImage, FullImageSum)
{
    Image img(4, 4, 255);
    const IntegralImage integral(img);
    EXPECT_NEAR(integral.boxSum(0, 0, 4, 4), 16.0, 1e-9);
}

TEST(IntegralImage, OutOfRangeClamps)
{
    Image img(4, 4, 255);
    const IntegralImage integral(img);
    EXPECT_NEAR(integral.boxSum(-10, -10, 100, 100), 16.0, 1e-9);
}

TEST(IntegralImage, HaarXRespondsToVerticalEdge)
{
    // Left half dark, right half bright -> strong positive haarX.
    Image img(32, 32, 0);
    img.fillRect(16, 0, 16, 32, 255);
    const IntegralImage integral(img);
    EXPECT_GT(integral.haarX(16, 16, 8), 0.5);
    EXPECT_NEAR(integral.haarY(16, 16, 8), 0.0, 1e-9);
}

TEST(IntegralImage, HaarYRespondsToHorizontalEdge)
{
    Image img(32, 32, 0);
    img.fillRect(0, 16, 32, 16, 255);
    const IntegralImage integral(img);
    EXPECT_GT(integral.haarY(16, 16, 8), 0.5);
    EXPECT_NEAR(integral.haarX(16, 16, 8), 0.0, 1e-9);
}

// --------------------------------------------------------------------- SURF

TEST(Surf, DetectsBlobAtKnownLocation)
{
    Image img(128, 128, 40);
    img.fillCircle(64, 64, 9, 230);
    const IntegralImage integral(img);
    const auto keypoints = detectKeypoints(integral);
    ASSERT_FALSE(keypoints.empty());
    // The strongest keypoint should be at the blob center.
    const Keypoint *best = &keypoints[0];
    for (const auto &kp : keypoints) {
        if (kp.response > best->response)
            best = &kp;
    }
    EXPECT_NEAR(best->x, 64.0f, 6.0f);
    EXPECT_NEAR(best->y, 64.0f, 6.0f);
}

TEST(Surf, FlatImageHasNoKeypoints)
{
    Image img(128, 128, 120);
    const IntegralImage integral(img);
    EXPECT_TRUE(detectKeypoints(integral).empty());
}

TEST(Surf, LaplacianSignSeparatesBrightAndDarkBlobs)
{
    Image bright(96, 96, 20);
    bright.fillCircle(48, 48, 9, 240);
    Image dark(96, 96, 240);
    dark.fillCircle(48, 48, 9, 20);

    const auto kb = detectKeypoints(IntegralImage(bright));
    const auto kd = detectKeypoints(IntegralImage(dark));
    ASSERT_FALSE(kb.empty());
    ASSERT_FALSE(kd.empty());
    EXPECT_NE(kb[0].laplacianPositive, kd[0].laplacianPositive);
}

TEST(Surf, MoreTextureMoreKeypoints)
{
    Image sparse(256, 256, 100);
    sparse.fillCircle(128, 128, 10, 240);
    const Image busy = generateLandmark(0);
    const auto ks = detectKeypoints(IntegralImage(sparse));
    const auto kb = detectKeypoints(IntegralImage(busy));
    EXPECT_GT(kb.size(), ks.size());
}

TEST(Surf, DescriptorsAreUnitNorm)
{
    const Image img = generateLandmark(1);
    const IntegralImage integral(img);
    auto keypoints = detectKeypoints(integral);
    ASSERT_FALSE(keypoints.empty());
    const auto descriptors = describeKeypoints(integral, keypoints);
    ASSERT_EQ(descriptors.size(), keypoints.size());
    for (const auto &d : descriptors) {
        double norm = 0.0;
        for (float v : d)
            norm += static_cast<double>(v) * v;
        EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
    }
}

TEST(Surf, DescriptorStableUnderBrightness)
{
    // Brightness gain should barely move normalized descriptors.
    const Image img = generateLandmark(2);
    Image brighter = img;
    brighter.scaleBrightness(1.2);

    const IntegralImage ia(img), ib(brighter);
    auto ka = detectKeypoints(ia);
    ASSERT_FALSE(ka.empty());
    auto kb = ka; // same locations on the brighter image
    const auto da = describeKeypoints(ia, ka);
    const auto db = describeKeypoints(ib, kb);
    double total = 0.0;
    for (size_t i = 0; i < da.size(); ++i)
        total += std::sqrt(descriptorDistanceSq(da[i], db[i]));
    EXPECT_LT(total / static_cast<double>(da.size()), 0.25);
}

TEST(Surf, UprightSkipsOrientation)
{
    const Image img = generateLandmark(4);
    const IntegralImage integral(img);
    auto keypoints = detectKeypoints(integral);
    ASSERT_FALSE(keypoints.empty());
    SurfConfig config;
    config.upright = true;
    describeKeypoints(integral, keypoints, config);
    for (const auto &kp : keypoints)
        EXPECT_FLOAT_EQ(kp.orientation, 0.0f);
}

// ------------------------------------------------------------------ matcher

TEST(KdTree, ExactMatchesBruteForce)
{
    Rng rng(17);
    std::vector<Descriptor> data(200);
    for (auto &d : data) {
        for (auto &v : d)
            v = static_cast<float>(rng.uniform(-1, 1));
    }
    const KdTree tree(data);
    for (int trial = 0; trial < 30; ++trial) {
        Descriptor q;
        for (auto &v : q)
            v = static_cast<float>(rng.uniform(-1, 1));
        const auto exact = tree.nearest2Exact(q);
        const auto approx = tree.nearest2(q, 1000000);
        EXPECT_EQ(exact.index, approx.index);
        EXPECT_FLOAT_EQ(exact.distanceSq, approx.distanceSq);
    }
}

TEST(KdTree, ApproximateUsuallyFindsExactNearest)
{
    Rng rng(19);
    std::vector<Descriptor> data(500);
    for (auto &d : data) {
        for (auto &v : d)
            v = static_cast<float>(rng.uniform(-1, 1));
    }
    const KdTree tree(data);
    int agree = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        // Query near an existing point so ANN has a clear target.
        Descriptor q = data[rng.below(data.size())];
        for (auto &v : q)
            v += static_cast<float>(rng.gaussian(0, 0.01));
        const auto exact = tree.nearest2Exact(q);
        const auto approx = tree.nearest2(q, 32);
        agree += (exact.index == approx.index);
    }
    EXPECT_GE(agree, trials * 8 / 10);
}

TEST(KdTree, EmptyTreeReturnsNoMatch)
{
    const KdTree tree({});
    Descriptor q{};
    EXPECT_EQ(tree.nearest2(q).index, -1);
}

TEST(KdTree, SelfQueryFindsSelf)
{
    Rng rng(23);
    std::vector<Descriptor> data(64);
    for (auto &d : data) {
        for (auto &v : d)
            v = static_cast<float>(rng.uniform(-1, 1));
    }
    const KdTree tree(data);
    for (size_t i = 0; i < data.size(); ++i) {
        const auto nn = tree.nearest2(data[i], 64);
        EXPECT_EQ(nn.index, static_cast<int>(i));
        EXPECT_FLOAT_EQ(nn.distanceSq, 0.0f);
    }
}

TEST(Matcher, RatioTestFiltersAmbiguous)
{
    // Two identical descriptors in the database make every query
    // ambiguous, so the ratio test must reject it.
    Descriptor a{};
    a[0] = 1.0f;
    std::vector<Descriptor> db = {a, a};
    const KdTree tree(db);
    const auto stats = matchDescriptors({a}, tree, 0.8f);
    EXPECT_EQ(stats.goodMatches, 0u);
}

// ---------------------------------------------------------------- landmarks

TEST(Landmarks, DeterministicPerId)
{
    const Image a = generateLandmark(5);
    const Image b = generateLandmark(5);
    ASSERT_EQ(a.pixels(), b.pixels());
}

TEST(Landmarks, DistinctAcrossIds)
{
    const Image a = generateLandmark(6);
    const Image b = generateLandmark(7);
    EXPECT_NE(a.pixels(), b.pixels());
}

TEST(Landmarks, QueryViewDiffersButResembles)
{
    const Image db = generateLandmark(8);
    const Image query = generateQueryView(8);
    EXPECT_NE(db.pixels(), query.pixels());
    // Gross statistics should stay in the same ballpark.
    double mean_db = 0.0, mean_q = 0.0;
    for (uint8_t p : db.pixels())
        mean_db += p;
    for (uint8_t p : query.pixels())
        mean_q += p;
    mean_db /= static_cast<double>(db.pixels().size());
    mean_q /= static_cast<double>(query.pixels().size());
    EXPECT_NEAR(mean_db, mean_q, 40.0);
}

// -------------------------------------------------------------- IMM service

class ImmServiceTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        service_ = new ImmService(ImmService::build(8));
    }

    static void
    TearDownTestSuite()
    {
        delete service_;
        service_ = nullptr;
    }

    static ImmService *service_;
};

ImmService *ImmServiceTest::service_ = nullptr;

TEST_F(ImmServiceTest, DatabaseBuilt)
{
    EXPECT_EQ(service_->databaseSize(), 8u);
    for (int id = 0; id < 8; ++id)
        EXPECT_GT(service_->descriptorsOf(id).size(), 20u);
}

TEST_F(ImmServiceTest, ExactImageMatches)
{
    for (int id = 0; id < 8; ++id) {
        const auto result = service_->match(generateLandmark(id));
        EXPECT_EQ(result.bestId, id);
        EXPECT_GT(result.bestMatches, 10u);
    }
}

TEST_F(ImmServiceTest, PerturbedQueryStillMatches)
{
    for (int id = 0; id < 8; ++id) {
        const auto result = service_->match(generateQueryView(id));
        EXPECT_EQ(result.bestId, id) << "landmark " << id;
    }
}

TEST_F(ImmServiceTest, TimingsPopulated)
{
    const auto result = service_->match(generateQueryView(0));
    EXPECT_GT(result.queryKeypoints, 0u);
    EXPECT_GT(result.timings.featureExtraction, 0.0);
    EXPECT_GT(result.timings.featureDescription, 0.0);
    EXPECT_GT(result.timings.matching, 0.0);
}

} // namespace
