/**
 * @file
 * Tests for the third extension wave: the backoff trigram language
 * model and bilinear image resizing with scale-robust matching.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/strings.h"
#include "core/query_set.h"
#include "speech/language_model.h"
#include "speech/trigram_lm.h"
#include "vision/imm_service.h"
#include "vision/landmarks.h"

namespace {

using namespace sirius;
using namespace sirius::speech;

// ----------------------------------------------------------------- trigrams

class TrigramFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (const auto &sentence : core::asrTrainingSentences()) {
            std::vector<int> ids;
            for (const auto &word : split(toLower(sentence)))
                ids.push_back(vocab_.add(word));
            corpus_.push_back(std::move(ids));
        }
    }

    Vocabulary vocab_;
    std::vector<std::vector<int>> corpus_;
};

TEST_F(TrigramFixture, SeenTrigramsBeatBackoff)
{
    const TrigramLm lm(corpus_, vocab_.size());
    // "what is the" appears in training; a shuffled context does not.
    const int what = vocab_.idOf("what");
    const int is = vocab_.idOf("is");
    const int the = vocab_.idOf("the");
    ASSERT_GE(what, 0);
    ASSERT_GE(is, 0);
    ASSERT_GE(the, 0);
    EXPECT_GT(lm.logProb(what, is, the), lm.logProb(the, the, what));
}

TEST_F(TrigramFixture, TrigramPerplexityBeatsBigramOnTraining)
{
    const TrigramLm trigram(corpus_, vocab_.size());
    const BigramLm bigram(corpus_, vocab_.size());

    // Bigram perplexity over the same corpus for comparison.
    double bigram_log = 0.0;
    size_t tokens = 0;
    for (const auto &sentence : corpus_) {
        int prev = 0;
        for (int w : sentence) {
            bigram_log += bigram.logProb(prev, w);
            prev = w;
            ++tokens;
        }
        bigram_log += bigram.logProb(prev, 0);
        ++tokens;
    }
    const double bigram_ppl =
        std::exp(-bigram_log / static_cast<double>(tokens));
    EXPECT_LT(trigram.perplexity(corpus_), bigram_ppl);
}

TEST_F(TrigramFixture, SentenceLogProbNegativeAndFinite)
{
    const TrigramLm lm(corpus_, vocab_.size());
    for (const auto &sentence : corpus_) {
        const double lp = lm.sentenceLogProb(sentence);
        EXPECT_LT(lp, 0.0);
        EXPECT_TRUE(std::isfinite(lp));
    }
}

TEST_F(TrigramFixture, RescoresTrainingSentenceAboveShuffle)
{
    // The two-pass rescoring use case: the real word order must score
    // above a scrambled hypothesis of the same words.
    const TrigramLm lm(corpus_, vocab_.size());
    auto shuffled = corpus_[1];
    std::reverse(shuffled.begin(), shuffled.end());
    EXPECT_GT(lm.sentenceLogProb(corpus_[1]),
              lm.sentenceLogProb(shuffled));
}

TEST(TrigramLm, UnseenEverythingStillFinite)
{
    Vocabulary vocab;
    const int a = vocab.add("a");
    const int b = vocab.add("b");
    const TrigramLm lm({{a}}, vocab.size());
    EXPECT_TRUE(std::isfinite(lm.logProb(b, b, b)));
    EXPECT_LT(lm.logProb(b, b, b), 0.0);
}

// ------------------------------------------------------------------- resize

TEST(ImageResize, DimensionsAndRange)
{
    const auto img = vision::generateLandmark(4, 128, 128);
    const auto half = img.resized(64, 64);
    EXPECT_EQ(half.width(), 64);
    EXPECT_EQ(half.height(), 64);
    const auto stretched = img.resized(200, 50);
    EXPECT_EQ(stretched.width(), 200);
    EXPECT_EQ(stretched.height(), 50);
}

TEST(ImageResize, IdentityPreservesPixels)
{
    const auto img = vision::generateLandmark(5, 64, 64);
    const auto same = img.resized(64, 64);
    size_t mismatches = 0;
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            mismatches += std::abs(same.at(x, y) - img.at(x, y)) > 1;
        }
    }
    EXPECT_EQ(mismatches, 0u);
}

TEST(ImageResize, ConstantImageStaysConstant)
{
    vision::Image img(40, 40, 123);
    const auto out = img.resized(13, 29);
    for (int y = 0; y < out.height(); ++y) {
        for (int x = 0; x < out.width(); ++x)
            ASSERT_EQ(out.at(x, y), 123);
    }
}

TEST(ImageResize, MeanBrightnessPreserved)
{
    const auto img = vision::generateLandmark(6);
    const auto small = img.resized(100, 100);
    auto mean = [](const vision::Image &image) {
        double sum = 0.0;
        for (uint8_t p : image.pixels())
            sum += p;
        return sum / static_cast<double>(image.pixels().size());
    };
    EXPECT_NEAR(mean(img), mean(small), 3.0);
}

TEST(ImageResize, MatchingSurvivesModestRescale)
{
    // A camera never reproduces the database resolution exactly; the
    // SURF pipeline must still identify a ~12%-rescaled view.
    const auto imm = vision::ImmService::build(6);
    size_t correct = 0;
    for (int id = 0; id < 6; ++id) {
        const auto query = vision::generateQueryView(id)
            .resized(288, 288).resized(256, 256);
        correct += imm.match(query).bestId == id;
    }
    EXPECT_GE(correct, 5u);
}

} // namespace
