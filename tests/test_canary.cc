/**
 * Proof that the fuzzer catches real bugs: this binary links
 * sirius-sim-canary, the simulation built with SIRIUS_CANARY_BUG — an
 * off-by-one in the batch result scatter (every multi-item batch hands
 * each leg its neighbour's answer) and a double delivery on the hedge
 * path (a winning hedge leg skips the delivered check). The fuzzer
 * must find each planted defect within a small run budget and shrink
 * it to a one-line repro that still reproduces the same oracle
 * violation.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/trial_run.h"
#include "testing/property_fuzzer.h"

namespace {

using sirius::sim::TrialConfig;
using sirius::sim::TrialReport;
using sirius::testing::FuzzOptions;
using sirius::testing::PropertyFuzzer;

bool
hasOracle(const std::vector<sirius::sim::TrialViolation> &violations,
          const std::string &oracle)
{
    for (const auto &v : violations)
        if (v.oracle == oracle)
            return true;
    return false;
}

TEST(CanaryBugs, DirectTrialSeesBothPlantedDefects)
{
    // Batch scatter off-by-one: any multi-item batch mis-scatters, so
    // the base run's answers diverge from expectedAnswer().
    TrialConfig scatter;
    scatter.seed = 11;
    scatter.batch = true;
    scatter.batchSize = 4;
    scatter.cache = false;
    scatter.hedgeSeconds = 0.0;
    scatter.queries = 64;
    scatter.arrivalQps = 2000.0; // enough pressure to form batches
    const TrialReport scatter_report = sirius::sim::runTrial(scatter);
    EXPECT_FALSE(scatter_report.ok);
    EXPECT_TRUE(hasOracle(scatter_report.violations, "answer"));

    // Hedge double delivery: a slow primary plus an aggressive hedge
    // makes both legs complete, and the canary delivers both.
    TrialConfig hedge;
    hedge.seed = 13;
    hedge.batch = false;
    hedge.cache = false;
    hedge.shards = 4;
    hedge.hedgeSeconds = 0.002; // well under the 4-10ms service time
    hedge.queries = 64;
    const TrialReport hedge_report = sirius::sim::runTrial(hedge);
    EXPECT_FALSE(hedge_report.ok);
    EXPECT_TRUE(hasOracle(hedge_report.violations, "exactly_once"));
}

TEST(CanaryBugs, FuzzerFindsAndShrinksTheBatchScatterBug)
{
    // Focused target: hedging forced off so the scatter bug is the
    // only defect reachable — the fuzzer must still discover it from
    // nothing but random configs, within a small budget.
    auto trial = [](const TrialConfig &config) {
        TrialConfig t = config;
        t.hedgeSeconds = 0.0;
        return sirius::sim::runTrial(t);
    };
    FuzzOptions options;
    options.seed = 301;
    options.runs = 25;
    PropertyFuzzer fuzzer(trial, options);
    const auto result = fuzzer.run();
    ASSERT_TRUE(result.foundFailure)
        << "fuzzer missed the planted batch-scatter bug in 25 runs";
    EXPECT_TRUE(hasOracle(result.failure.violations, "answer"));

    // The shrunk repro still needs batching (the bug lives there)...
    EXPECT_TRUE(result.failure.config.batch);
    EXPECT_GE(result.failure.config.batchSize, 2u);
    // ...and replaying its one-line form reproduces the violation.
    TrialConfig replay;
    ASSERT_TRUE(
        sirius::sim::parseTrialConfig(result.failure.repro, replay));
    const TrialReport again = trial(replay);
    EXPECT_FALSE(again.ok);
    EXPECT_TRUE(hasOracle(again.violations, "answer"));
}

TEST(CanaryBugs, FuzzerFindsAndShrinksTheHedgeDoubleDelivery)
{
    // Focused target: batching forced off (hides the scatter bug) and
    // hedging forced on, so the double delivery is what's reachable.
    auto trial = [](const TrialConfig &config) {
        TrialConfig t = config;
        t.batch = false;
        if (t.shards < 2)
            t.shards = 2;
        if (t.hedgeSeconds <= 0.0)
            t.hedgeSeconds = 0.002;
        return sirius::sim::runTrial(t);
    };
    FuzzOptions options;
    options.seed = 302;
    options.runs = 25;
    PropertyFuzzer fuzzer(trial, options);
    const auto result = fuzzer.run();
    ASSERT_TRUE(result.foundFailure)
        << "fuzzer missed the planted double delivery in 25 runs";
    EXPECT_TRUE(hasOracle(result.failure.violations, "exactly_once"));
    EXPECT_GT(result.failure.shrinkSteps, 0u);

    TrialConfig replay;
    ASSERT_TRUE(
        sirius::sim::parseTrialConfig(result.failure.repro, replay));
    const TrialReport again = trial(replay);
    EXPECT_FALSE(again.ok);
    EXPECT_TRUE(hasOracle(again.violations, "exactly_once"));
}

} // namespace
