/**
 * @file
 * Tests for the leaf-server front end, its open-loop load test, and the
 * concurrent leaf server built on top of the same pipeline.
 *
 * Flakiness audit: nothing here sleeps or races a wall-clock window.
 * Queueing assertions go through loadTest()'s virtual-time Lindley
 * recursion, and latency comparisons are relative (heavy vs light load
 * within one run), so a slow or preempted CI machine shifts both sides
 * together. Tests that need absolute timing use ManualTime instead
 * (see test_robustness.cc and test_batching.cc).
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_server.h"
#include "core/server.h"

namespace {

using namespace sirius;
using namespace sirius::core;

class ServerFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *ServerFixture::pipeline_ = nullptr;

TEST_F(ServerFixture, StatsAccumulate)
{
    SiriusServer server(*pipeline_);
    const auto queries = standardQuerySet();
    server.handle(queries[0]);  // a VC
    server.handle(queries[16]); // a VQ
    EXPECT_EQ(server.stats().served, 2u);
    EXPECT_EQ(server.stats().actions, 1u);
    EXPECT_EQ(server.stats().answers, 1u);
    EXPECT_GT(server.serviceRate(), 0.0);
}

TEST_F(ServerFixture, LoadTestLatencyGrowsWithLoad)
{
    SiriusServer server(*pipeline_);
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const double capacity = server.serviceRate();

    const auto light = loadTest(server, 0.2 * capacity, 2000);
    const auto heavy = loadTest(server, 0.8 * capacity, 2000);
    EXPECT_GT(heavy.sojournSeconds.mean(), light.sojournSeconds.mean());
    EXPECT_GT(heavy.utilization, light.utilization);
    // Mean sojourn can never be below the mean service time.
    const double mean_service = 1.0 / capacity;
    EXPECT_GE(light.sojournSeconds.mean(), mean_service * 0.5);
}

TEST_F(ServerFixture, LoadTestRejectsOverload)
{
    SiriusServer server(*pipeline_);
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const double capacity = server.serviceRate();
    EXPECT_EXIT(loadTest(server, 3.0 * capacity, 100),
                ::testing::ExitedWithCode(1), "capacity");
}

TEST_F(ServerFixture, SequentialServerRecordsStageHistograms)
{
    SiriusServer server(*pipeline_);
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const auto &stats = server.stats();
    EXPECT_EQ(stats.serviceHistogram.count(), stats.served);
    EXPECT_EQ(stats.asrSeconds.count(), stats.served);
    // Every query runs ASR; only VIQ queries run IMM, and its histogram
    // still gets one (zero-duration) entry per request.
    EXPECT_GT(stats.asrSeconds.mean(), 0.0);
    EXPECT_LE(stats.serviceHistogram.p50(), stats.serviceHistogram.p99());
}

TEST_F(ServerFixture, ConcurrentMatchesSequentialCounts)
{
    SiriusServer sequential(*pipeline_);
    for (const auto &query : standardQuerySet())
        sequential.handle(query);

    ConcurrentServerConfig config;
    config.workers = 4;
    config.queueCapacity = 128;
    ConcurrentServer server(*pipeline_, config);
    ASSERT_GE(server.workerCount(), 4u);
    for (const auto &query : standardQuerySet())
        ASSERT_TRUE(server.submit(query));
    server.drain();

    const auto stats = server.snapshot();
    EXPECT_EQ(stats.accepted, standardQuerySet().size());
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.server.served, sequential.stats().served);
    EXPECT_EQ(stats.server.actions, sequential.stats().actions);
    EXPECT_EQ(stats.server.answers, sequential.stats().answers);
    EXPECT_EQ(stats.server.serviceHistogram.count(), stats.server.served);
}

TEST_F(ServerFixture, ConcurrentClientsAllServed)
{
    constexpr size_t kThreads = 4;
    constexpr size_t kQueriesEach = 8;
    ConcurrentServer server(*pipeline_);

    const auto &queries = standardQuerySet();
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&server, &queries, t] {
            for (size_t i = 0; i < kQueriesEach; ++i) {
                const auto &query =
                    queries[(t * kQueriesEach + i) % queries.size()];
                const auto result = server.handle(query);
                EXPECT_FALSE(result.transcript.empty());
            }
        });
    }
    for (auto &client : clients)
        client.join();

    const auto stats = server.snapshot();
    EXPECT_EQ(stats.server.served, kThreads * kQueriesEach);
    EXPECT_EQ(stats.accepted, kThreads * kQueriesEach);
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_EQ(stats.server.actions + stats.server.answers,
              kThreads * kQueriesEach);
    EXPECT_EQ(stats.server.serviceSeconds.count(),
              kThreads * kQueriesEach);
}

TEST_F(ServerFixture, SaturatedQueueShedsAndDrainsCleanly)
{
    ConcurrentServerConfig config;
    config.workers = 1;
    config.queueCapacity = 2;
    ConcurrentServer server(*pipeline_, config);

    const auto &queries = standardQuerySet();
    uint64_t admitted = 0, shed = 0;
    // Burst far past queue capacity faster than one worker can drain.
    for (size_t i = 0; i < 64; ++i) {
        if (server.submit(queries[i % queries.size()]))
            ++admitted;
        else
            ++shed;
    }
    server.drain();

    const auto stats = server.snapshot();
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(stats.accepted, admitted);
    EXPECT_EQ(stats.rejected, shed);
    EXPECT_EQ(stats.accepted + stats.rejected, 64u);
    // Drain loses nothing: every admitted request was served.
    EXPECT_EQ(stats.server.served, admitted);
}

TEST_F(ServerFixture, SnapshotPercentilesMonotone)
{
    ConcurrentServer server(*pipeline_);
    for (const auto &query : standardQuerySet())
        ASSERT_TRUE(server.submit(query));
    server.drain();

    const auto stats = server.snapshot();
    for (const auto *hist :
         {&stats.server.serviceHistogram, &stats.server.asrSeconds,
          &stats.server.qaSeconds, &stats.server.immSeconds}) {
        EXPECT_LE(hist->p50(), hist->p95());
        EXPECT_LE(hist->p95(), hist->p99());
    }
    EXPECT_GT(stats.server.serviceHistogram.p50(), 0.0);
    EXPECT_GT(server.serviceRate(), 0.0);
    // The profiler attributed stage time across workers.
    EXPECT_GT(server.profiler().totalSeconds(), 0.0);
    EXPECT_GT(server.profiler().seconds("asr"), 0.0);
}

TEST_F(ServerFixture, OpenLoopGeneratorAccountsForEveryRequest)
{
    ConcurrentServerConfig config;
    config.workers = 2;
    ConcurrentServer server(*pipeline_, config);
    const double mu = [&] {
        SiriusServer probe(*pipeline_);
        for (const auto &query : standardQuerySet())
            probe.handle(query);
        return probe.serviceRate();
    }();

    const auto result = runOpenLoop(server, 0.5 * mu, 40);
    EXPECT_EQ(result.offered, 40u);
    EXPECT_EQ(result.completed + result.rejected, result.offered);
    EXPECT_EQ(result.sojournSeconds.count(), result.completed);
    EXPECT_GT(result.elapsedSeconds, 0.0);
    // Sojourn includes service, so it can't be faster than the fastest
    // possible query.
    EXPECT_GT(result.sojournSeconds.min(), 0.0);
}

TEST_F(ServerFixture, ClosedLoopGeneratorServesExactly)
{
    ConcurrentServer server(*pipeline_);
    const auto result = runClosedLoop(server, 3, 5);
    EXPECT_EQ(result.offered, 15u);
    EXPECT_EQ(result.completed, 15u);
    EXPECT_EQ(result.rejected, 0u);
    EXPECT_EQ(server.snapshot().server.served, 15u);
    EXPECT_GT(result.achievedQps, 0.0);
}

TEST_F(ServerFixture, StatsMergeCombinesLeafViews)
{
    SiriusServer a(*pipeline_);
    SiriusServer b(*pipeline_);
    const auto &queries = standardQuerySet();
    a.handle(queries[0]);
    b.handle(queries[16]);
    b.handle(queries[17]);

    ServerStats fleet;
    fleet.merge(a.stats());
    fleet.merge(b.stats());
    EXPECT_EQ(fleet.served, 3u);
    EXPECT_EQ(fleet.actions, 1u);
    EXPECT_EQ(fleet.answers, 2u);
    EXPECT_EQ(fleet.serviceHistogram.count(), 3u);
    EXPECT_EQ(fleet.serviceSeconds.count(), 3u);
}

} // namespace
