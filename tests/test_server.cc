/**
 * @file
 * Tests for the leaf-server front end and its open-loop load test.
 */

#include <gtest/gtest.h>

#include "core/server.h"

namespace {

using namespace sirius;
using namespace sirius::core;

class ServerFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *ServerFixture::pipeline_ = nullptr;

TEST_F(ServerFixture, StatsAccumulate)
{
    SiriusServer server(*pipeline_);
    const auto queries = standardQuerySet();
    server.handle(queries[0]);  // a VC
    server.handle(queries[16]); // a VQ
    EXPECT_EQ(server.stats().served, 2u);
    EXPECT_EQ(server.stats().actions, 1u);
    EXPECT_EQ(server.stats().answers, 1u);
    EXPECT_GT(server.serviceRate(), 0.0);
}

TEST_F(ServerFixture, LoadTestLatencyGrowsWithLoad)
{
    SiriusServer server(*pipeline_);
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const double capacity = server.serviceRate();

    const auto light = loadTest(server, 0.2 * capacity, 2000);
    const auto heavy = loadTest(server, 0.8 * capacity, 2000);
    EXPECT_GT(heavy.sojournSeconds.mean(), light.sojournSeconds.mean());
    EXPECT_GT(heavy.utilization, light.utilization);
    // Mean sojourn can never be below the mean service time.
    const double mean_service = 1.0 / capacity;
    EXPECT_GE(light.sojournSeconds.mean(), mean_service * 0.5);
}

TEST_F(ServerFixture, LoadTestRejectsOverload)
{
    SiriusServer server(*pipeline_);
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const double capacity = server.serviceRate();
    EXPECT_EXIT(loadTest(server, 3.0 * capacity, 100),
                ::testing::ExitedWithCode(1), "capacity");
}

} // namespace
