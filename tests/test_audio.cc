/**
 * @file
 * Tests for the audio substrate: phoneme inventory, synthesizer and MFCC.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "audio/mfcc.h"
#include "audio/phoneme.h"
#include "audio/synthesizer.h"

namespace {

using namespace sirius::audio;

TEST(Phoneme, GraphemeRoundTrip)
{
    for (char c = 'a'; c <= 'z'; ++c)
        EXPECT_EQ(graphemeOf(phonemeOf(c)), c);
    for (char c = '0'; c <= '9'; ++c)
        EXPECT_EQ(graphemeOf(phonemeOf(c)), c);
}

TEST(Phoneme, CaseInsensitive)
{
    EXPECT_EQ(phonemeOf('A'), phonemeOf('a'));
    EXPECT_EQ(phonemeOf('Z'), phonemeOf('z'));
}

TEST(Phoneme, NonAlnumRejected)
{
    EXPECT_EQ(phonemeOf(' '), -1);
    EXPECT_EQ(phonemeOf('?'), -1);
}

TEST(Phoneme, FormantsDistinct)
{
    std::set<std::pair<int, int>> signatures;
    for (int p = 1; p < kNumPhonemes; ++p) {
        const auto spec = formantFor(p);
        EXPECT_GT(spec.f1, 0.0);
        EXPECT_GT(spec.f2, spec.f1);
        EXPECT_GT(spec.f3, spec.f2);
        signatures.insert({static_cast<int>(spec.f1),
                           static_cast<int>(spec.f2)});
    }
    // Every phoneme has a unique (f1, f2) signature.
    EXPECT_EQ(signatures.size(), static_cast<size_t>(kNumPhonemes - 1));
}

TEST(Phoneme, SilenceIsSilent)
{
    const auto spec = formantFor(kSilencePhoneme);
    EXPECT_DOUBLE_EQ(spec.gain, 0.0);
}

TEST(Phoneme, PronounceSkipsPunctuation)
{
    const auto pron = pronounce("what's");
    ASSERT_EQ(pron.size(), 5u);
    EXPECT_EQ(pron[0], phonemeOf('w'));
    EXPECT_EQ(pron[4], phonemeOf('s'));
}

TEST(Synthesizer, DeterministicOutput)
{
    SpeechSynthesizer synth;
    const auto a = synth.synthesize("hello world");
    const auto b = synth.synthesize("hello world");
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i)
        ASSERT_DOUBLE_EQ(a.samples[i], b.samples[i]);
}

TEST(Synthesizer, DurationScalesWithText)
{
    SpeechSynthesizer synth;
    const auto brief = synth.synthesize("hi");
    const auto lengthy = synth.synthesize("a much longer sentence here");
    EXPECT_GT(lengthy.seconds(), brief.seconds());
}

TEST(Synthesizer, SamplesBounded)
{
    SpeechSynthesizer synth;
    const auto wave = synth.synthesize("the quick brown fox 123");
    for (double s : wave.samples) {
        ASSERT_LE(std::fabs(s), 1.5);
    }
}

TEST(Synthesizer, FrameLabelsCoverExpectedPhonemes)
{
    SpeechSynthesizer synth;
    const auto labels = synth.frameLabels("ab", 160);
    std::set<int> seen(labels.begin(), labels.end());
    EXPECT_TRUE(seen.count(phonemeOf('a')));
    EXPECT_TRUE(seen.count(phonemeOf('b')));
    EXPECT_TRUE(seen.count(kSilencePhoneme));
}

TEST(Synthesizer, LabelsAlignWithWaveLength)
{
    SpeechSynthesizer synth;
    const auto wave = synth.synthesize("alignment test");
    const auto labels = synth.frameLabels("alignment test", 160);
    // One label per full frame shift in the waveform.
    EXPECT_EQ(labels.size(), wave.samples.size() / 160);
}

TEST(Mfcc, ProducesOneVectorPerFrame)
{
    SpeechSynthesizer synth;
    MfccExtractor mfcc;
    const auto wave = synth.synthesize("feature frames");
    const auto features = mfcc.extract(wave);
    const size_t expected =
        (wave.samples.size() - 400) / 160 + 1;
    EXPECT_EQ(features.size(), expected);
    for (const auto &f : features)
        ASSERT_EQ(f.size(), 13u);
}

TEST(Mfcc, EmptyWaveGivesNoFrames)
{
    MfccExtractor mfcc;
    Waveform wave;
    EXPECT_TRUE(mfcc.extract(wave).empty());
}

TEST(Mfcc, FeaturesFinite)
{
    SpeechSynthesizer synth;
    MfccExtractor mfcc;
    const auto wave = synth.synthesize("finite check 42");
    for (const auto &f : mfcc.extract(wave)) {
        for (float x : f)
            ASSERT_TRUE(std::isfinite(x));
    }
}

TEST(Mfcc, DistinguishesPhonemes)
{
    // Features of a sustained 'a' should differ clearly from a
    // sustained 'z'. Compare mean feature vectors by L2 distance.
    SpeechSynthesizer synth;
    MfccExtractor mfcc;
    const auto fa = mfcc.extract(synth.synthesize("aaaaaaaa"));
    const auto fz = mfcc.extract(synth.synthesize("zzzzzzzz"));
    ASSERT_FALSE(fa.empty());
    ASSERT_FALSE(fz.empty());
    std::vector<double> ma(13, 0.0), mz(13, 0.0);
    for (const auto &f : fa) {
        for (size_t d = 0; d < 13; ++d)
            ma[d] += f[d];
    }
    for (const auto &f : fz) {
        for (size_t d = 0; d < 13; ++d)
            mz[d] += f[d];
    }
    double dist = 0.0;
    for (size_t d = 0; d < 13; ++d) {
        const double a = ma[d] / static_cast<double>(fa.size());
        const double z = mz[d] / static_cast<double>(fz.size());
        dist += (a - z) * (a - z);
    }
    EXPECT_GT(std::sqrt(dist), 1.0);
}

TEST(Mfcc, SilenceFeaturesDifferFromSpeech)
{
    SpeechSynthesizer synth;
    MfccExtractor mfcc;
    SynthesizerConfig cfg;
    cfg.wordGapSeconds = 0.5;
    SpeechSynthesizer gap_synth(cfg);
    const auto features = mfcc.extract(gap_synth.synthesize("k"));
    ASSERT_GT(features.size(), 4u);
    // First frame is in leading silence; middle frames carry the phoneme.
    const auto &silent = features.front();
    const auto &voiced = features[features.size() / 2];
    double dist = 0.0;
    for (size_t d = 0; d < silent.size(); ++d)
        dist += (silent[d] - voiced[d]) * (silent[d] - voiced[d]);
    EXPECT_GT(std::sqrt(dist), 1.0);
}

} // namespace
