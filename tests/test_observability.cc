/**
 * @file
 * Tests for the observability layer: trace contexts, span nesting, the
 * bounded collector ring, head-based sampling, the labeled metrics
 * registry, the machine-readable exporters, and their integration with
 * the concurrent leaf server.
 */

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/profiler.h"
#include "common/trace.h"
#include "core/concurrent_server.h"

namespace {

using namespace sirius;
using namespace sirius::core;

/** Find all spans of one kind, in append order. */
std::vector<SpanRecord>
ofKind(const std::vector<SpanRecord> &spans, SpanKind kind)
{
    std::vector<SpanRecord> out;
    for (const auto &span : spans) {
        if (span.kind == kind)
            out.push_back(span);
    }
    return out;
}

std::string
attrValue(const SpanRecord &span, const std::string &key)
{
    for (const auto &[k, v] : span.attrs) {
        if (k == key)
            return v;
    }
    return "";
}

// ---------------------------------------------------------------------
// Spans and nesting

TEST(TraceTest, SpanNestingRecordsParentChain)
{
    TraceCollector collector(64, 1.0);
    TraceContext context(collector, 7);
    ASSERT_TRUE(context.active());
    ScopedTraceActivation activation(context);

    const uint32_t root = context.openRoot();
    EXPECT_GT(root, 0u);
    {
        Span outer("asr", SpanKind::Stage);
        ASSERT_TRUE(outer.active());
        {
            Span inner("acoustic_scoring", SpanKind::Kernel);
            inner.attr("backend", "gmm");
        }
    }
    context.closeRoot("query", 0.0, 1.0);

    const auto spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 3u);
    // Children close (and append) before their parents.
    EXPECT_EQ(spans[0].name, "acoustic_scoring");
    EXPECT_EQ(spans[1].name, "asr");
    EXPECT_EQ(spans[2].name, "query");
    EXPECT_EQ(spans[2].parentId, 0u);
    EXPECT_EQ(spans[2].spanId, root);
    EXPECT_EQ(spans[1].parentId, root);
    EXPECT_EQ(spans[0].parentId, spans[1].spanId);
    for (const auto &span : spans)
        EXPECT_EQ(span.traceId, 7u);
    EXPECT_EQ(attrValue(spans[0], "backend"), "gmm");
}

TEST(TraceTest, SpanEndIsIdempotentAndRestoresNesting)
{
    TraceCollector collector(64, 1.0);
    TraceContext context(collector, 1);
    ScopedTraceActivation activation(context);

    Span first("a", SpanKind::Stage);
    first.end();
    first.end(); // second end must not double-record
    Span second("b", SpanKind::Stage);
    second.end();

    const auto spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // "b" is a sibling of "a", not its child: nesting was restored.
    EXPECT_EQ(spans[1].parentId, spans[0].parentId);
}

TEST(TraceTest, InertContextMakesSpansNoOps)
{
    TraceContext inert;
    EXPECT_FALSE(inert.active());
    EXPECT_EQ(TraceContext::current(), nullptr);

    // No activation installed: ambient spans are no-ops.
    Span span("asr", SpanKind::Stage);
    EXPECT_FALSE(span.active());

    // An unsampled context is inert even with a collector around.
    TraceCollector off(16, 0.0);
    TraceContext dropped(off, 42);
    EXPECT_FALSE(dropped.active());
    ScopedTraceActivation activation(dropped);
    {
        Span nested("qa", SpanKind::Stage);
        EXPECT_FALSE(nested.active());
    }
    dropped.event(SpanKind::Retry, "stage_retry");
    EXPECT_EQ(off.size(), 0u);
    EXPECT_EQ(off.appended(), 0u);
}

TEST(TraceTest, ActivationTagsLogLinesAndRestores)
{
    TraceCollector collector(16, 1.0);
    TraceContext context(collector, 0xABC);
    EXPECT_TRUE(sirius::detail::logTraceTag().empty());
    {
        ScopedTraceActivation activation(context);
        EXPECT_FALSE(sirius::detail::logTraceTag().empty());
        EXPECT_EQ(TraceContext::current(), &context);
    }
    EXPECT_TRUE(sirius::detail::logTraceTag().empty());
    EXPECT_EQ(TraceContext::current(), nullptr);
}

// ---------------------------------------------------------------------
// Sampling

TEST(TraceTest, SamplingIsDeterministicForAFixedSeed)
{
    TraceCollector a(16, 0.5, 12345);
    TraceCollector b(16, 0.5, 12345);
    TraceCollector c(16, 0.5, 99999);

    size_t kept = 0, differs = 0;
    for (uint64_t id = 1; id <= 2000; ++id) {
        EXPECT_EQ(a.sampled(id), b.sampled(id));
        kept += a.sampled(id) ? 1 : 0;
        differs += a.sampled(id) != c.sampled(id) ? 1 : 0;
    }
    // Rate 0.5 keeps about half; the hash seed changes *which* half.
    EXPECT_GT(kept, 700u);
    EXPECT_LT(kept, 1300u);
    EXPECT_GT(differs, 0u);
}

TEST(TraceTest, SamplingRateExtremes)
{
    TraceCollector all(16, 1.0);
    TraceCollector none(16, 0.0);
    for (uint64_t id = 1; id <= 200; ++id) {
        EXPECT_TRUE(all.sampled(id));
        EXPECT_FALSE(none.sampled(id));
    }
}

// ---------------------------------------------------------------------
// Collector ring

TEST(TraceTest, RingOverflowKeepsNewestSpans)
{
    TraceCollector collector(8, 1.0);
    for (int i = 0; i < 20; ++i) {
        SpanRecord record;
        record.traceId = 1;
        record.spanId = static_cast<uint32_t>(i + 1);
        record.name = "span_" + std::to_string(i);
        collector.append(std::move(record));
    }
    EXPECT_EQ(collector.appended(), 20u);
    EXPECT_EQ(collector.size(), 8u);

    const auto spans = collector.snapshot();
    ASSERT_EQ(spans.size(), 8u);
    // Oldest first, and only the newest 8 survive the wrap.
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(spans[static_cast<size_t>(i)].name,
                  "span_" + std::to_string(12 + i));

    collector.clear();
    EXPECT_EQ(collector.size(), 0u);
    EXPECT_TRUE(collector.snapshot().empty());
}

TEST(TraceTest, ConcurrentAppendsAreAccountedExactly)
{
    TraceCollector collector(64, 1.0);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 500;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&collector, t] {
            for (int i = 0; i < kPerThread; ++i) {
                SpanRecord record;
                record.traceId = static_cast<uint64_t>(t + 1);
                record.name = "concurrent";
                collector.append(std::move(record));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(collector.appended(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(collector.size(), collector.capacity());
    for (const auto &span : collector.snapshot())
        EXPECT_EQ(span.name, "concurrent");
}

// ---------------------------------------------------------------------
// Span JSON round trip

TEST(TraceTest, SpanJsonGoldenFormat)
{
    SpanRecord span;
    span.traceId = 3;
    span.spanId = 2;
    span.parentId = 1;
    span.kind = SpanKind::Kernel;
    span.name = "acoustic_scoring";
    span.startSeconds = 0.5;
    span.durationSeconds = 0.25;
    span.attrs = {{"backend", "gmm"}};
    EXPECT_EQ(spanToJson(span),
              "{\"trace\":3,\"span\":2,\"parent\":1,"
              "\"kind\":\"kernel\",\"name\":\"acoustic_scoring\","
              "\"start_s\":0.500000000,\"dur_s\":0.250000000,"
              "\"attrs\":{\"backend\":\"gmm\"}}");
}

TEST(TraceTest, SpanJsonRoundTripWithEscapes)
{
    SpanRecord span;
    span.traceId = 99;
    span.spanId = 4;
    span.kind = SpanKind::Query;
    span.name = "query";
    span.durationSeconds = 1.5;
    span.attrs = {{"text", "say \"hi\"\nplease\t\\now"}};

    SpanRecord parsed;
    ASSERT_TRUE(spanFromJson(spanToJson(span), parsed));
    EXPECT_EQ(parsed.traceId, span.traceId);
    EXPECT_EQ(parsed.spanId, span.spanId);
    EXPECT_EQ(parsed.kind, SpanKind::Query);
    EXPECT_EQ(parsed.name, "query");
    EXPECT_DOUBLE_EQ(parsed.durationSeconds, 1.5);
    ASSERT_EQ(parsed.attrs.size(), 1u);
    EXPECT_EQ(parsed.attrs[0].second, "say \"hi\"\nplease\t\\now");
}

TEST(TraceTest, SpanJsonRejectsMalformedLines)
{
    SpanRecord out;
    EXPECT_FALSE(spanFromJson("", out));
    EXPECT_FALSE(spanFromJson("not json", out));
    EXPECT_FALSE(spanFromJson("{\"trace\":1}", out));
    EXPECT_FALSE(spanFromJson("{\"trace\":1,\"span\":2,\"kind\":"
                              "\"nope\",\"name\":\"x\"}", out));
}

TEST(TraceTest, JsonlFileRoundTripAndAppend)
{
    const std::string path =
        ::testing::TempDir() + "trace_roundtrip.jsonl";
    std::vector<SpanRecord> batch(2);
    batch[0].traceId = 1;
    batch[0].spanId = 1;
    batch[0].kind = SpanKind::Stage;
    batch[0].name = "asr";
    batch[1].traceId = 1;
    batch[1].spanId = 2;
    batch[1].kind = SpanKind::Stage;
    batch[1].name = "qa";
    ASSERT_TRUE(writeTraceJsonl(path, batch, false));
    batch[0].traceId = 2;
    batch[1].traceId = 2;
    ASSERT_TRUE(writeTraceJsonl(path, batch, true));

    // Corrupt one trailing line; the reader must skip and count it.
    {
        std::FILE *f = std::fopen(path.c_str(), "a");
        ASSERT_NE(f, nullptr);
        std::fputs("{broken\n", f);
        std::fclose(f);
    }
    size_t malformed = 0;
    const auto spans = readTraceJsonl(path, &malformed);
    ASSERT_EQ(spans.size(), 4u);
    EXPECT_EQ(malformed, 1u);
    EXPECT_EQ(spans[0].traceId, 1u);
    EXPECT_EQ(spans[2].traceId, 2u);
    EXPECT_EQ(spans[3].name, "qa");
    std::remove(path.c_str());
}

TEST(TraceTest, SpanKindNamesRoundTrip)
{
    for (size_t i = 0; i < kSpanKinds; ++i) {
        const auto kind = static_cast<SpanKind>(i);
        SpanKind parsed;
        ASSERT_TRUE(spanKindFromName(spanKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    SpanKind parsed;
    EXPECT_FALSE(spanKindFromName("bogus", parsed));
}

// ---------------------------------------------------------------------
// Metrics registry

TEST(MetricsTest, NamingConvention)
{
    EXPECT_TRUE(isValidMetricName("sirius_queue_wait_seconds"));
    EXPECT_TRUE(isValidMetricName("a"));
    EXPECT_TRUE(isValidMetricName("a1_b2"));
    EXPECT_FALSE(isValidMetricName(""));
    EXPECT_FALSE(isValidMetricName("QueueWait"));
    EXPECT_FALSE(isValidMetricName("queue-wait"));
    EXPECT_FALSE(isValidMetricName("1queue"));
    EXPECT_FALSE(isValidMetricName("queue wait"));
    EXPECT_FALSE(isValidMetricName("_queue"));
}

TEST(MetricsTest, SameNameAndLabelsShareOneInstance)
{
    MetricsRegistry registry;
    CounterMetric &a =
        registry.counter("sirius_test_total", {{"stage", "asr"}});
    CounterMetric &b =
        registry.counter("sirius_test_total", {{"stage", "asr"}});
    CounterMetric &other =
        registry.counter("sirius_test_total", {{"stage", "qa"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &other);
    a.add(2);
    b.add();
    EXPECT_EQ(a.value(), 3u);
    EXPECT_EQ(other.value(), 0u);
    EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsTest, LabelOrderDoesNotSplitInstances)
{
    MetricsRegistry registry;
    GaugeMetric &a = registry.gauge(
        "sirius_depth", {{"server", "leaf"}, {"stage", "asr"}});
    GaugeMetric &b = registry.gauge(
        "sirius_depth", {{"stage", "asr"}, {"server", "leaf"}});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsTest, MergeAcrossThreadLocalRegistries)
{
    constexpr int kThreads = 4;
    std::vector<MetricsRegistry> locals(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&locals, t] {
            MetricsRegistry &reg = locals[static_cast<size_t>(t)];
            CounterMetric &counter =
                reg.counter("sirius_work_total", {{"server", "leaf"}});
            LatencyHistogram &hist = reg.histogram(
                "sirius_work_seconds", {{"server", "leaf"}});
            for (int i = 0; i < 1000; ++i) {
                counter.add();
                hist.add(0.001 * (t + 1));
            }
            reg.gauge("sirius_worker_busy",
                      {{"worker", std::to_string(t)}}).set(1.0);
        });
    }
    for (auto &thread : threads)
        thread.join();

    MetricsRegistry merged;
    for (const auto &local : locals)
        merged.merge(local);
    EXPECT_EQ(merged.counter("sirius_work_total",
                             {{"server", "leaf"}}).value(), 4000u);
    EXPECT_EQ(merged.histogram("sirius_work_seconds",
                               {{"server", "leaf"}}).count(), 4000u);
    // One gauge instance per distinct worker label.
    EXPECT_EQ(merged.size(), 2u + kThreads);
}

TEST(MetricsTest, ConcurrentUpdatesOnOneSharedRegistry)
{
    MetricsRegistry registry;
    // Register up front; hot paths then update lock-free.
    CounterMetric &counter =
        registry.counter("sirius_hits_total", {{"server", "leaf"}});
    LatencyHistogram &hist =
        registry.histogram("sirius_hit_seconds", {{"server", "leaf"}});
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&counter, &hist] {
            for (int i = 0; i < 2000; ++i) {
                counter.add();
                hist.add(0.002);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), 8000u);
    EXPECT_EQ(hist.count(), 8000u);
}

TEST(MetricsTest, CopyIsIndependent)
{
    MetricsRegistry registry;
    registry.counter("sirius_total", {{"server", "leaf"}}).add(5);
    MetricsRegistry copy = registry;
    copy.counter("sirius_total", {{"server", "leaf"}}).add(1);
    EXPECT_EQ(registry.counter("sirius_total",
                               {{"server", "leaf"}}).value(), 5u);
    EXPECT_EQ(copy.counter("sirius_total",
                           {{"server", "leaf"}}).value(), 6u);
}

// ---------------------------------------------------------------------
// Exporters

TEST(MetricsTest, PrometheusGoldenForCountersAndGauges)
{
    MetricsRegistry registry;
    registry.counter("sirius_queries_total",
                     {{"server", "leaf"}, {"outcome", "ok"}}).add(12);
    registry.counter("sirius_queries_total",
                     {{"server", "leaf"}, {"outcome", "failed"}}).add(3);
    registry.gauge("sirius_queue_depth", {{"server", "leaf"}}).set(2.5);

    // Families are name-sorted; instances render their labels in the
    // order the call site registered them.
    EXPECT_EQ(registry.renderPrometheus(),
              "# TYPE sirius_queries_total counter\n"
              "sirius_queries_total{server=\"leaf\",outcome=\"failed\"}"
              " 3\n"
              "sirius_queries_total{server=\"leaf\",outcome=\"ok\"}"
              " 12\n"
              "# TYPE sirius_queue_depth gauge\n"
              "sirius_queue_depth{server=\"leaf\"} 2.5\n");
}

TEST(MetricsTest, PrometheusHistogramSeriesAreCumulative)
{
    MetricsRegistry registry;
    LatencyHistogram &hist =
        registry.histogram("sirius_lat_seconds", {{"server", "leaf"}});
    hist.add(0.010);
    hist.add(0.020);
    hist.add(0.500);
    const std::string text = registry.renderPrometheus();

    EXPECT_NE(text.find("# TYPE sirius_lat_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("sirius_lat_seconds_bucket{server=\"leaf\","
                        "le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("sirius_lat_seconds_count{server=\"leaf\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("sirius_lat_seconds_sum{server=\"leaf\"} 0.53"),
              std::string::npos);

    // Bucket counts must be cumulative (monotonically non-decreasing).
    uint64_t previous = 0;
    size_t pos = 0, buckets = 0;
    while ((pos = text.find("sirius_lat_seconds_bucket", pos)) !=
           std::string::npos) {
        const size_t space = text.find(' ', pos);
        ASSERT_NE(space, std::string::npos);
        const uint64_t count = std::strtoull(
            text.c_str() + space + 1, nullptr, 10);
        EXPECT_GE(count, previous);
        previous = count;
        ++buckets;
        pos = space;
    }
    EXPECT_GE(buckets, 2u);
}

TEST(MetricsTest, CsvGoldenFormat)
{
    MetricsRegistry registry;
    registry.counter("sirius_queries_total",
                     {{"outcome", "ok"}}).add(7);
    registry.gauge("sirius_queue_depth", {{"server", "leaf"}}).set(1.5);
    const std::string text = registry.renderCsv();
    EXPECT_EQ(text,
              "metric,labels,stat,value\n"
              "sirius_queries_total,outcome=ok,value,7\n"
              "sirius_queue_depth,server=leaf,value,1.5\n");

    registry.histogram("sirius_lat_seconds", {{"server", "leaf"}})
        .add(0.25);
    const std::string with_hist = registry.renderCsv();
    EXPECT_NE(with_hist.find(
                  "sirius_lat_seconds,server=leaf,count,1"),
              std::string::npos);
    EXPECT_NE(with_hist.find("sirius_lat_seconds,server=leaf,p99,"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Profiler extensions

TEST(ProfilerTest, TracksCallCountMinMax)
{
    Profiler profiler;
    profiler.addSeconds("scoring", 0.010);
    profiler.addSeconds("scoring", 0.030);
    profiler.addSeconds("scoring", 0.020);
    const auto c = profiler.component("scoring");
    EXPECT_EQ(c.calls, 3u);
    EXPECT_DOUBLE_EQ(c.seconds, 0.060);
    EXPECT_DOUBLE_EQ(c.minSeconds, 0.010);
    EXPECT_DOUBLE_EQ(c.maxSeconds, 0.030);
    EXPECT_DOUBLE_EQ(c.meanSeconds(), 0.020);
    EXPECT_EQ(profiler.component("absent").calls, 0u);

    const std::string report = profiler.report();
    EXPECT_NE(report.find("calls"), std::string::npos);
    EXPECT_NE(report.find("scoring"), std::string::npos);
}

TEST(ProfilerTest, MergeCombinesExtremes)
{
    Profiler a, b;
    a.addSeconds("x", 0.010);
    b.addSeconds("x", 0.002);
    b.addSeconds("x", 0.050);
    b.addSeconds("y", 0.001);
    a.merge(b);
    const auto x = a.component("x");
    EXPECT_EQ(x.calls, 3u);
    EXPECT_DOUBLE_EQ(x.minSeconds, 0.002);
    EXPECT_DOUBLE_EQ(x.maxSeconds, 0.050);
    EXPECT_EQ(a.component("y").calls, 1u);
}

TEST(ProfilerTest, ExportToRegistry)
{
    Profiler profiler;
    profiler.addSeconds("viterbi_search", 0.040);
    profiler.addSeconds("viterbi_search", 0.060);
    MetricsRegistry registry;
    profiler.exportTo(registry, {{"server", "leaf"}});
    EXPECT_EQ(registry.counter(
                  "sirius_component_calls_total",
                  {{"server", "leaf"},
                   {"component", "viterbi_search"}}).value(), 2u);
    EXPECT_DOUBLE_EQ(registry.gauge(
                         "sirius_component_seconds",
                         {{"server", "leaf"},
                          {"component", "viterbi_search"}}).value(),
                     0.1);
}

// ---------------------------------------------------------------------
// Log level parsing (the --log-level / SIRIUS_LOG_LEVEL hook)

TEST(LoggingTest, LogLevelFromName)
{
    LogLevel level = LogLevel::Error;
    EXPECT_TRUE(logLevelFromName("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(logLevelFromName("WARN", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(logLevelFromName("warning", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(logLevelFromName("Info", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_FALSE(logLevelFromName("loud", level));
    EXPECT_EQ(level, LogLevel::Info); // unchanged on failure
}

// ---------------------------------------------------------------------
// End-to-end: the concurrent server's traces and metrics

class ObservabilityFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *ObservabilityFixture::pipeline_ = nullptr;

TEST_F(ObservabilityFixture, ServerTracesAgreeWithServerStats)
{
    ConcurrentServerConfig config;
    config.workers = 2;
    config.traceSampleRate = 1.0;
    config.traceIdOffset = 500;
    ConcurrentServer server(*pipeline_, config);

    const auto queries = standardQuerySet();
    const size_t served = 6;
    for (size_t i = 0; i < served; ++i)
        server.handle(queries[i * 3 % queries.size()]);
    const auto stats = server.snapshot();

    // Every query produced a root span, a queue-wait span, and stage
    // spans nested under the root.
    const auto roots = ofKind(stats.spans, SpanKind::Query);
    const auto waits = ofKind(stats.spans, SpanKind::QueueWait);
    const auto stages = ofKind(stats.spans, SpanKind::Stage);
    const auto kernels = ofKind(stats.spans, SpanKind::Kernel);
    ASSERT_EQ(roots.size(), served);
    ASSERT_EQ(waits.size(), served);
    EXPECT_GE(stages.size(), served); // at least asr per query
    EXPECT_GE(kernels.size(), served);

    std::set<uint64_t> ids;
    for (const auto &root : roots) {
        ids.insert(root.traceId);
        EXPECT_GT(root.traceId, 500u); // the configured id offset
        EXPECT_EQ(root.parentId, 0u);
        EXPECT_GT(root.durationSeconds, 0.0);
        EXPECT_FALSE(attrValue(root, "type").empty());
        EXPECT_FALSE(attrValue(root, "degradation").empty());
    }
    EXPECT_EQ(ids.size(), served); // distinct trace per query
    for (const auto &wait : waits) {
        EXPECT_GE(wait.durationSeconds, 0.0);
        EXPECT_NE(wait.parentId, 0u); // nested under the root
    }

    // Stage spans cover the measured per-stage histograms: the traced
    // asr total must not be below the stats histogram total (the span
    // wraps the kernels plus retry logic), and should be of the same
    // magnitude.
    double traced_asr = 0.0;
    size_t asr_spans = 0;
    for (const auto &stage : stages) {
        if (stage.name == "asr") {
            traced_asr += stage.durationSeconds;
            ++asr_spans;
        }
    }
    EXPECT_EQ(asr_spans, served);
    const double measured_asr = stats.server.asrSeconds.sum();
    EXPECT_GT(measured_asr, 0.0);
    EXPECT_GE(traced_asr, measured_asr * 0.9);
    EXPECT_LE(traced_asr, measured_asr * 3.0 + 0.1);

    // Queue wait reached the ServerStats histogram as well.
    EXPECT_EQ(stats.server.queueWaitSeconds.count(), served);

    // And the registry view matches the raw counters.
    MetricsRegistry &metrics =
        const_cast<MetricsRegistry &>(stats.metrics);
    const uint64_t ok = metrics.counter(
        "sirius_queries_total",
        {{"server", "leaf"}, {"outcome", "ok"}}).value();
    const uint64_t degraded = metrics.counter(
        "sirius_queries_total",
        {{"server", "leaf"}, {"outcome", "degraded"}}).value();
    const uint64_t failed = metrics.counter(
        "sirius_queries_total",
        {{"server", "leaf"}, {"outcome", "failed"}}).value();
    EXPECT_EQ(ok + degraded + failed, served);
    EXPECT_EQ(metrics.histogram(
                  "sirius_queue_wait_seconds",
                  {{"server", "leaf"}}).count(), served);
    EXPECT_EQ(metrics.histogram(
                  "sirius_stage_seconds",
                  {{"server", "leaf"}, {"stage", "asr"}}).count(),
              served);

    // The whole registry renders without tripping any format check.
    EXPECT_FALSE(metrics.renderPrometheus().empty());
    EXPECT_FALSE(metrics.renderCsv().empty());
}

TEST_F(ObservabilityFixture, TracingDisabledRecordsNothing)
{
    ConcurrentServerConfig config;
    config.workers = 2;
    config.traceSampleRate = 0.0; // the default, spelled out
    ConcurrentServer server(*pipeline_, config);
    const auto queries = standardQuerySet();
    for (size_t i = 0; i < 4; ++i)
        server.handle(queries[i]);
    const auto stats = server.snapshot();
    EXPECT_TRUE(stats.spans.empty());
    EXPECT_EQ(server.traces().appended(), 0u);
    // Metrics still flow: they are independent of trace sampling.
    EXPECT_EQ(stats.server.served, 4u);
    EXPECT_EQ(stats.server.queueWaitSeconds.count(), 4u);
}

TEST_F(ObservabilityFixture, SampledSubsetIsDeterministic)
{
    const auto keptIds = [this](uint64_t seed) {
        ConcurrentServerConfig config;
        config.workers = 1;
        config.traceSampleRate = 0.5;
        config.traceSeed = seed;
        ConcurrentServer server(*pipeline_, config);
        const auto queries = standardQuerySet();
        for (size_t i = 0; i < 8; ++i)
            server.handle(queries[i]);
        std::set<uint64_t> ids;
        for (const auto &span : server.traces().snapshot())
            ids.insert(span.traceId);
        return ids;
    };
    const auto first = keptIds(42);
    const auto second = keptIds(42);
    EXPECT_EQ(first, second);
    EXPECT_LT(first.size(), 8u); // rate 0.5 drops some of 8 ids
}

} // namespace
