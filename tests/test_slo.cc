/**
 * @file
 * Tests for the observability plane: the SLO burn-rate engine
 * (SloTracker + EventLog), the always-on flight recorder, the exact
 * critical-path partition over stitched traces, and the Prometheus
 * exporter's edge cases (escaping, empty histograms, gauge merges).
 *
 * Flakiness audit: every fire/clear assertion runs the tracker on a
 * ManualTime clock, so alert transitions happen at a chosen
 * observation, never at a wall-clock race. The flight-recorder tests
 * drive offer()/offerPartial() sequentially and assert on the exact
 * keep/evict policy.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/critical_path.h"
#include "common/deadline.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/trace.h"

namespace {

using namespace sirius;

/** One availability objective + one alert rule on a manual clock. */
SloConfig
manualSloConfig(const ManualTime &clock)
{
    SloConfig config;
    SloObjective objective;
    objective.name = "availability";
    objective.signal = SloObjective::Signal::Availability;
    objective.target = 0.9; // error budget 10%
    config.objectives.push_back(objective);
    SloAlertRule rule;
    rule.name = "fast";
    rule.longWindowSeconds = 10.0;
    rule.shortWindowSeconds = 2.0;
    rule.burnThreshold = 2.0; // fires at > 20% bad
    config.rules.push_back(rule);
    config.bucketSeconds = 0.5;
    config.clock = &clock;
    return config;
}

// --- SloTracker ---------------------------------------------------

TEST(SloTracker, FiresAndClearsDeterministicallyUnderManualTime)
{
    ManualTime clock;
    EventLog events(64);
    SloTracker tracker(manualSloConfig(clock), &events);
    int fired = 0;
    tracker.setOnFire([&fired] { ++fired; });

    // A run of failures: burn rate = 1.0 / 0.1 = 10 > 2 on both
    // windows, so the alert fires on a deterministic observation.
    for (int i = 0; i < 5; ++i) {
        tracker.recordOutcome(false);
        clock.advance(0.1);
    }
    auto snap = tracker.snapshot();
    ASSERT_EQ(snap.objectives.size(), 1u);
    ASSERT_EQ(snap.objectives[0].alerts.size(), 1u);
    EXPECT_TRUE(snap.objectives[0].alerts[0].firing);
    EXPECT_EQ(snap.objectives[0].alerts[0].fires, 1u);
    EXPECT_EQ(fired, 1); // one transition, not one call per record
    EXPECT_TRUE(snap.anyFiring());

    // Quiet period: both windows age out; evaluate() (the monitor
    // path, no new observation) must clear the alert.
    clock.advance(11.0);
    tracker.evaluate();
    snap = tracker.snapshot();
    EXPECT_FALSE(snap.objectives[0].alerts[0].firing);
    EXPECT_EQ(snap.objectives[0].alerts[0].fires, 1u);
    EXPECT_EQ(snap.objectives[0].alerts[0].clears, 1u);
    EXPECT_FALSE(snap.anyFiring());
    EXPECT_EQ(fired, 1);

    // Transitions landed in the event log as structured events.
    size_t fires = 0, clears = 0;
    for (const auto &event : events.snapshot()) {
        fires += event.kind == "alert_fire" ? 1 : 0;
        clears += event.kind == "alert_clear" ? 1 : 0;
    }
    EXPECT_EQ(fires, 1u);
    EXPECT_EQ(clears, 1u);
}

TEST(SloTracker, HealthyTrafficNeverFires)
{
    ManualTime clock;
    SloTracker tracker(manualSloConfig(clock));
    // 5% bad: burn 0.5, under the threshold of 2. The bad observation
    // arrives 20th, not first — a lone first failure is a 100% bad
    // window, which correctly fires (see the previous test).
    for (int i = 0; i < 100; ++i) {
        tracker.recordOutcome(i % 20 != 19);
        clock.advance(0.05);
    }
    const auto snap = tracker.snapshot();
    EXPECT_FALSE(snap.anyFiring());
    EXPECT_EQ(snap.objectives[0].alerts[0].fires, 0u);
    EXPECT_EQ(snap.objectives[0].good, 95u);
    EXPECT_EQ(snap.objectives[0].total, 100u);
}

TEST(SloTracker, LatencyObjectiveJudgesAgainstThreshold)
{
    ManualTime clock;
    SloConfig config = defaultSloConfig(0.1);
    config.clock = &clock;
    config.windowScale = 1e-3;
    SloTracker tracker(config);
    tracker.recordLatency(0.05); // good
    tracker.recordLatency(0.50); // bad
    tracker.recordOutcome(true); // availability only
    const auto snap = tracker.snapshot();
    ASSERT_EQ(snap.objectives.size(), 2u);
    for (const auto &objective : snap.objectives) {
        if (objective.objective == "latency") {
            EXPECT_EQ(objective.good, 1u);
            EXPECT_EQ(objective.total, 2u);
        } else {
            EXPECT_EQ(objective.objective, "availability");
            EXPECT_EQ(objective.good, 1u);
            EXPECT_EQ(objective.total, 1u);
        }
    }
}

TEST(SloTracker, ExportIsDeltaSafeAcrossRepeatedCalls)
{
    ManualTime clock;
    SloTracker tracker(manualSloConfig(clock));
    tracker.recordOutcome(true);
    tracker.recordOutcome(true);
    tracker.recordOutcome(false);

    MetricsRegistry registry;
    tracker.exportTo(registry);
    tracker.exportTo(registry); // same registry again: no double count
    EXPECT_EQ(registry
                  .counter("sirius_slo_events_total",
                           {{"objective", "availability"},
                            {"outcome", "good"}})
                  .value(),
              2u);
    EXPECT_EQ(registry
                  .counter("sirius_slo_events_total",
                           {{"objective", "availability"},
                            {"outcome", "bad"}})
                  .value(),
              1u);
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("sirius_slo_target"), std::string::npos);
    EXPECT_NE(prom.find("sirius_slo_burn_rate"), std::string::npos);
    EXPECT_NE(prom.find("sirius_slo_alert_state"), std::string::npos);
}

// --- EventLog -----------------------------------------------------

TEST(EventLog, RingBoundsAndCountsDrops)
{
    EventLog log(4);
    for (int i = 0; i < 6; ++i)
        log.note(static_cast<double>(i), "tick",
                 "event " + std::to_string(i));
    EXPECT_EQ(log.appended(), 6u);
    EXPECT_EQ(log.dropped(), 2u);
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().timeSeconds, 2.0); // oldest two dropped
    EXPECT_EQ(events.back().timeSeconds, 5.0);

    MetricsRegistry registry;
    log.exportTo(registry);
    EXPECT_EQ(registry.counter("sirius_events_total", {{"kind", "tick"}})
                  .value(),
              6u);
    EXPECT_EQ(registry
                  .counter("sirius_events_dropped_total",
                           {{"log", "events"}})
                  .value(),
              2u);
}

TEST(EventLog, JsonRoundTripPreservesEscapes)
{
    EventLog::Event event;
    event.timeSeconds = 1.5;
    event.kind = "alert_fire";
    event.message = "a \"quoted\"\nbackslash \\ line";
    event.attrs = {{"objective", "latency"}, {"burn", "14.4"},
                   {"odd\"key", "odd\\value\n"}};
    const std::string line = EventLog::toJson(event);
    EXPECT_EQ(line.find('\n'), std::string::npos)
        << "JSONL lines must not embed raw newlines";

    EventLog::Event parsed;
    ASSERT_TRUE(EventLog::fromJson(line, parsed));
    EXPECT_EQ(parsed.timeSeconds, event.timeSeconds);
    EXPECT_EQ(parsed.kind, event.kind);
    EXPECT_EQ(parsed.message, event.message);
    EXPECT_EQ(parsed.attrs, event.attrs);

    EventLog::Event bad;
    EXPECT_FALSE(EventLog::fromJson("not json", bad));
}

TEST(EventLog, JsonlFileRoundTrip)
{
    EventLog log(8);
    log.note(0.5, "drill", "shard 1 fault armed", {{"shard", "1"}});
    log.note(1.0, "alert_fire", "burn over threshold",
             {{"alert", "fast"}});
    const std::string path = ::testing::TempDir() + "slo_events.jsonl";
    ASSERT_TRUE(log.writeJsonl(path));
    size_t malformed = 0;
    const auto events = EventLog::readJsonl(path, &malformed);
    std::remove(path.c_str());
    EXPECT_EQ(malformed, 0u);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, "drill");
    EXPECT_EQ(events[1].attrs,
              (std::vector<std::pair<std::string, std::string>>{
                  {"alert", "fast"}}));
}

// --- FlightRecorder -----------------------------------------------

std::vector<SpanRecord>
spanOf(uint64_t trace_id, const char *name, size_t padding = 0)
{
    SpanRecord span;
    span.traceId = trace_id;
    span.spanId = 1;
    span.kind = SpanKind::Query;
    span.name = name;
    span.durationSeconds = 0.001;
    span.attrs = {{"pad", std::string(padding, 'x')}};
    return {span};
}

TEST(FlightRecorder, SlowestReservoirKeepsTheTail)
{
    FlightRecorderConfig config;
    config.slowestCapacity = 2;
    config.sampleEvery = 1000; // no uniform keeps in this test
    FlightRecorder recorder(config);
    recorder.offer(1, 0.010, spanOf(1, "q1"));
    recorder.offer(2, 0.030, spanOf(2, "q2"));
    recorder.offer(3, 0.020, spanOf(3, "q3")); // evicts 1 (least slow)
    recorder.offer(4, 0.001, spanOf(4, "q4")); // rejected: too fast

    const auto traces = recorder.snapshot();
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].traceId, 2u); // slowest first
    EXPECT_EQ(traces[1].traceId, 3u);
    EXPECT_EQ(traces[0].reason, "slowest");

    const auto stats = recorder.stats();
    EXPECT_EQ(stats.offered, 4u);
    EXPECT_EQ(stats.kept, 3u);
    EXPECT_EQ(stats.evicted, 1u);
    EXPECT_EQ(stats.retained, 2u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(FlightRecorder, PartialLegsMergeIntoTheCompletingOffer)
{
    FlightRecorderConfig config;
    config.slowestCapacity = 1;
    config.sampleEvery = 1000;
    FlightRecorder recorder(config);

    // Legs arrive before the router completes the trace.
    recorder.offerPartial(7, spanOf(7, "leg_a"));
    recorder.offerPartial(7, spanOf(7, "leg_b"));
    recorder.offer(7, 0.010, spanOf(7, "route"));
    auto traces = recorder.snapshot();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].spans.size(), 3u);

    // A hedge loser finishing after delivery merges into the kept
    // trace and is counted.
    recorder.offerPartial(7, spanOf(7, "late_leg"));
    traces = recorder.snapshot();
    EXPECT_EQ(traces[0].spans.size(), 4u);
    EXPECT_EQ(recorder.stats().merged, 1u);

    // Legs of a rejected trace stage, then die with the rejection:
    // trace 8 is faster than the kept slowest and not a sample keep.
    recorder.offerPartial(8, spanOf(8, "leg_c"));
    recorder.offer(8, 0.001, spanOf(8, "route"));
    recorder.offerPartial(8, spanOf(8, "leg_d")); // stages again
    traces = recorder.snapshot();
    ASSERT_EQ(traces.size(), 1u);
    EXPECT_EQ(traces[0].traceId, 7u);
    EXPECT_EQ(recorder.stats().partials, 5u);
}

TEST(FlightRecorder, ByteBudgetIsAHardCap)
{
    FlightRecorderConfig config;
    config.slowestCapacity = 64;
    config.sampleEvery = 1000;
    config.byteBudget = 4096;
    FlightRecorder recorder(config);

    // A trace that alone exceeds the budget is refused outright.
    recorder.offer(1, 0.010, spanOf(1, "huge", 8192));
    EXPECT_EQ(recorder.stats().droppedBudget, 1u);
    EXPECT_EQ(recorder.stats().retained, 0u);

    // Filling with fitting traces evicts to stay under the cap.
    for (uint64_t id = 2; id < 20; ++id)
        recorder.offer(id, 0.001 * static_cast<double>(id),
                       spanOf(id, "q", 512));
    const auto stats = recorder.stats();
    EXPECT_LE(stats.bytes, config.byteBudget);
    EXPECT_GT(stats.evicted, 0u);
    EXPECT_GT(stats.retained, 0u);
    // The slowest offer survives every eviction pass.
    const auto traces = recorder.snapshot();
    EXPECT_EQ(traces[0].traceId, 19u);
}

TEST(FlightRecorder, UniformSampleIsEveryKth)
{
    FlightRecorderConfig config;
    config.slowestCapacity = 1;
    config.sampleEvery = 3;
    config.sampleCapacity = 2;
    FlightRecorder recorder(config);
    // Identical durations: after the first fills the slowest slot, the
    // rest can only be kept by the sampler (offers 4 and 7).
    for (uint64_t id = 1; id <= 8; ++id)
        recorder.offer(id, 0.010, spanOf(id, "q"));
    const auto stats = recorder.stats();
    EXPECT_EQ(stats.slowestCount, 1u);
    EXPECT_EQ(stats.sampleCount, 2u);
    std::vector<uint64_t> sampled;
    for (const auto &trace : recorder.snapshot())
        if (trace.reason == "sample")
            sampled.push_back(trace.traceId);
    EXPECT_EQ(sampled, (std::vector<uint64_t>{4u, 7u}));
}

// --- Critical path ------------------------------------------------

SpanRecord
makeSpan(uint64_t trace, uint32_t id, uint32_t parent, SpanKind kind,
         const char *name, double start, double duration,
         std::vector<std::pair<std::string, std::string>> attrs = {})
{
    SpanRecord span;
    span.traceId = trace;
    span.spanId = id;
    span.parentId = parent;
    span.kind = kind;
    span.name = name;
    span.startSeconds = start;
    span.durationSeconds = duration;
    span.attrs = std::move(attrs);
    return span;
}

TEST(CriticalPath, StitchedHedgedTracePartitionsExactly)
{
    // A synthetic stitched trace: router summary + a hedged pair of
    // legs, the primary winning, with the winner's shard spans.
    const uint64_t id = 42;
    std::vector<SpanRecord> spans;
    spans.push_back(makeSpan(id, 100, 0, SpanKind::Route, "route", 0.0,
                             0.010,
                             {{"shard", "0"}, {"policy", "rr"},
                              {"outcome", "none"}}));
    spans.push_back(makeSpan(id, 101, 100, SpanKind::Route, "route_leg",
                             0.0005, 0.009,
                             {{"arm", "primary"}, {"shard", "0"},
                              {"won", "1"}, {"outcome", "none"}}));
    spans.push_back(makeSpan(id, 102, 100, SpanKind::Route, "route_leg",
                             0.002, 0.004,
                             {{"arm", "hedge"}, {"shard", "1"},
                              {"won", "0"}, {"outcome", "none"}}));
    spans.push_back(makeSpan(id, 1, 101, SpanKind::Query, "query",
                             0.001, 0.0085));
    spans.push_back(makeSpan(id, 2, 1, SpanKind::QueueWait, "queue_wait",
                             0.001, 0.002));
    spans.push_back(makeSpan(id, 3, 1, SpanKind::Stage, "asr", 0.003,
                             0.004));
    spans.push_back(makeSpan(id, 4, 3, SpanKind::Kernel, "gemm", 0.0035,
                             0.002));

    const auto grouped = groupByTrace(spans);
    ASSERT_EQ(grouped.size(), 1u);
    const auto report = analyzeCriticalPath(grouped.at(id));
    EXPECT_TRUE(report.valid);
    EXPECT_TRUE(report.stitched);
    EXPECT_TRUE(report.hedged);
    EXPECT_EQ(report.failovers, 0);
    EXPECT_EQ(report.legs, 2);
    EXPECT_EQ(report.winnerArm, "primary");
    EXPECT_EQ(report.winnerShard, "0");
    EXPECT_DOUBLE_EQ(report.totalSeconds, 0.010);

    // The contract: the segment partition covers 100% of the root
    // span. 1 µs is the acceptance bound; construction makes it exact
    // to float addition error.
    EXPECT_NEAR(report.sumSeconds(), report.totalSeconds, 1e-6);
    EXPECT_LT(std::abs(report.sumSeconds() - report.totalSeconds),
              1e-12);

    double queue = 0.0, asr = 0.0;
    bool has_dispatch = false, has_deliver = false;
    for (const auto &segment : report.segments) {
        if (segment.name == "queue_wait")
            queue += segment.durationSeconds;
        if (segment.name == "asr")
            asr += segment.durationSeconds;
        has_dispatch |= segment.name == "route_dispatch";
        has_deliver |= segment.name == "route_deliver";
    }
    EXPECT_DOUBLE_EQ(queue, 0.002);
    EXPECT_DOUBLE_EQ(asr, 0.004);
    EXPECT_TRUE(has_dispatch);
    EXPECT_TRUE(has_deliver);
    ASSERT_EQ(report.kernelSeconds.count("gemm"), 1u);
    EXPECT_DOUBLE_EQ(report.kernelSeconds.at("gemm"), 0.002);
}

TEST(CriticalPath, SingleServerTraceIsNotStitched)
{
    const uint64_t id = 9;
    std::vector<SpanRecord> spans;
    spans.push_back(
        makeSpan(id, 1, 0, SpanKind::Query, "query", 0.0, 0.004));
    spans.push_back(makeSpan(id, 2, 1, SpanKind::QueueWait,
                             "queue_wait", 0.0, 0.001));
    spans.push_back(
        makeSpan(id, 3, 1, SpanKind::Stage, "qa", 0.001, 0.003));
    const auto report = analyzeCriticalPath(spans);
    EXPECT_TRUE(report.valid);
    EXPECT_FALSE(report.stitched);
    EXPECT_LT(std::abs(report.sumSeconds() - report.totalSeconds),
              1e-12);
}

TEST(CriticalPath, TraceWithoutARootIsInvalid)
{
    std::vector<SpanRecord> spans;
    spans.push_back(makeSpan(3, 2, 1, SpanKind::Stage, "asr", 0.0,
                             0.001));
    const auto report = analyzeCriticalPath(spans);
    EXPECT_FALSE(report.valid);
}

// --- Prometheus exporter edge cases -------------------------------

TEST(MetricsExport, LabelValuesAreEscaped)
{
    MetricsRegistry registry;
    registry.counter("sirius_test_total",
                     {{"path", "a\\b"}, {"msg", "say \"hi\"\nbye"}})
        .add(1);
    const std::string prom = registry.renderPrometheus();
    // The exposition format escapes backslash, quote, and newline
    // inside label values; a raw newline would corrupt the line
    // protocol.
    EXPECT_NE(prom.find("path=\"a\\\\b\""), std::string::npos) << prom;
    EXPECT_NE(prom.find("msg=\"say \\\"hi\\\"\\nbye\""),
              std::string::npos)
        << prom;
    for (const char *needle : {"say \"hi\"\nbye"})
        EXPECT_EQ(prom.find(needle), std::string::npos)
            << "raw unescaped value leaked into the exposition";
}

TEST(MetricsExport, EmptyHistogramRendersZeroSeries)
{
    MetricsRegistry registry;
    registry.histogram("sirius_test_latency_seconds",
                       {{"server", "s0"}});
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("sirius_test_latency_seconds_count"),
              std::string::npos);
    EXPECT_NE(prom.find("sirius_test_latency_seconds_sum"),
              std::string::npos);
    EXPECT_EQ(prom.find("nan"), std::string::npos) << prom;
    EXPECT_EQ(prom.find("inf"), std::string::npos) << prom;

    const std::string csv = registry.renderCsv();
    EXPECT_NE(csv.find("sirius_test_latency_seconds"),
              std::string::npos);
    EXPECT_EQ(csv.find("nan"), std::string::npos) << csv;
}

TEST(MetricsExport, GaugeMergeAddsInstantaneousValues)
{
    // Fleet merges sum gauges (queue depths add across shards); a
    // repeated merge must keep adding, and untouched gauges survive.
    MetricsRegistry a, b;
    a.gauge("sirius_queue_depth", {{"shard", "0"}}).set(2.0);
    b.gauge("sirius_queue_depth", {{"shard", "0"}}).set(3.0);
    b.gauge("sirius_queue_depth", {{"shard", "1"}}).set(7.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(
        a.gauge("sirius_queue_depth", {{"shard", "0"}}).value(), 5.0);
    EXPECT_DOUBLE_EQ(
        a.gauge("sirius_queue_depth", {{"shard", "1"}}).value(), 7.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(
        a.gauge("sirius_queue_depth", {{"shard", "0"}}).value(), 8.0);
}

} // namespace
