/**
 * @file
 * Unit and property tests for the common substrate: RNG, stats, FFT,
 * matrix math, thread pool, profiler and string helpers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <numeric>

#include "common/fft.h"
#include "common/matrix.h"
#include "common/profiler.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace {

using namespace sirius;

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    std::vector<int> seen(10, 0);
    for (int i = 0; i < 5000; ++i)
        ++seen[rng.below(10)];
    for (int count : seen)
        EXPECT_GT(count, 0);
}

TEST(Rng, GaussianMomentsApproximatelyStandard)
{
    Rng rng(13);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sumsq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(17);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(SampleStats, MeanAndStddev)
{
    SampleStats stats;
    stats.addAll({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(SampleStats, EmptyIsZero)
{
    SampleStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.percentile(50), 0.0);
}

TEST(SampleStats, PercentileInterpolates)
{
    SampleStats stats;
    stats.addAll({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(stats.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(stats.percentile(100), 4.0);
    EXPECT_DOUBLE_EQ(stats.percentile(50), 2.5);
}

TEST(SampleStats, PercentileMonotone)
{
    Rng rng(23);
    SampleStats stats;
    for (int i = 0; i < 500; ++i)
        stats.add(rng.uniform(0, 100));
    double prev = stats.percentile(0);
    for (int p = 1; p <= 100; ++p) {
        const double v = stats.percentile(p);
        ASSERT_GE(v, prev);
        prev = v;
    }
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);   // clamps into bin 0
    h.add(0.5);
    h.add(9.5);
    h.add(50.0);   // clamps into last bin
    EXPECT_EQ(h.binCount(size_t{0}), 2u);
    EXPECT_EQ(h.binCount(size_t{9}), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.75);
    h.add(0.8);
    const auto text = h.render(10);
    EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(PearsonCorrelation, PerfectPositive)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {3, 2, 1};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(PearsonCorrelation, DegenerateInputsGiveZero)
{
    EXPECT_DOUBLE_EQ(pearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
    EXPECT_DOUBLE_EQ(pearsonCorrelation({1, 2}, {1}), 0.0);
    EXPECT_DOUBLE_EQ(pearsonCorrelation({}, {}), 0.0);
}

TEST(Fft, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(5), 8u);
    EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
}

TEST(Fft, DeltaFunctionHasFlatSpectrum)
{
    std::vector<std::complex<double>> data(8, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    fft(data);
    for (const auto &c : data)
        EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Fft, RoundTripIdentity)
{
    Rng rng(29);
    std::vector<std::complex<double>> data(64);
    for (auto &c : data)
        c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto copy = data;
    fft(copy);
    fft(copy, true);
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(copy[i].real() / 64.0, data[i].real(), 1e-9);
        EXPECT_NEAR(copy[i].imag() / 64.0, data[i].imag(), 1e-9);
    }
}

TEST(Fft, PureToneConcentratesAtItsBin)
{
    const size_t n = 256;
    std::vector<double> signal(n);
    const int bin = 19;
    for (size_t i = 0; i < n; ++i) {
        signal[i] = std::sin(2.0 * M_PI * bin *
                             static_cast<double>(i) / n);
    }
    const auto mags = magnitudeSpectrum(signal);
    size_t peak = 0;
    for (size_t i = 1; i < mags.size(); ++i) {
        if (mags[i] > mags[peak])
            peak = i;
    }
    EXPECT_EQ(peak, static_cast<size_t>(bin));
}

TEST(Fft, ParsevalEnergyConserved)
{
    Rng rng(31);
    const size_t n = 128;
    std::vector<std::complex<double>> data(n);
    double time_energy = 0.0;
    for (auto &c : data) {
        c = {rng.uniform(-1, 1), 0.0};
        time_energy += std::norm(c);
    }
    fft(data);
    double freq_energy = 0.0;
    for (const auto &c : data)
        freq_energy += std::norm(c);
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-9);
}

TEST(Matrix, MatmulAgainstHandComputed)
{
    Matrix a(2, 3), b(3, 2), c;
    float va[] = {1, 2, 3, 4, 5, 6};
    float vb[] = {7, 8, 9, 10, 11, 12};
    std::copy(va, va + 6, a.data());
    std::copy(vb, vb + 6, b.data());
    matmul(a, b, c);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matrix, MatvecMatchesMatmul)
{
    Rng rng(37);
    Matrix m(5, 7);
    m.fillGaussian(rng, 0.0f, 1.0f);
    std::vector<float> v(7);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1, 1));
    std::vector<float> out;
    matvec(m, v, out);

    Matrix vm(7, 1), expect;
    for (size_t i = 0; i < 7; ++i)
        vm.at(i, 0) = v[i];
    matmul(m, vm, expect);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(out[i], expect.at(i, 0), 1e-4);
}

TEST(Matrix, SoftmaxSumsToOne)
{
    std::vector<float> v = {1.0f, 2.0f, 3.0f, -4.0f};
    softmaxInPlace(v);
    float sum = 0.0f;
    for (float x : v) {
        EXPECT_GT(x, 0.0f);
        sum += x;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
}

TEST(Matrix, LogSoftmaxMatchesSoftmax)
{
    std::vector<float> a = {0.5f, -1.5f, 2.0f};
    auto b = a;
    softmaxInPlace(a);
    logSoftmaxInPlace(b);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(std::exp(b[i]), a[i], 1e-5);
}

TEST(Matrix, LogSumExpStable)
{
    EXPECT_NEAR(logSumExp({1000.0, 1000.0}),
                1000.0 + std::log(2.0), 1e-9);
    EXPECT_NEAR(logAdd(-2000.0, -2000.0), -2000.0 + std::log(2.0), 1e-9);
    EXPECT_TRUE(std::isinf(logSumExp({})));
}

TEST(Matrix, ReluClampsNegatives)
{
    std::vector<float> v = {-1.0f, 0.0f, 2.5f};
    reluInPlace(v);
    EXPECT_FLOAT_EQ(v[0], 0.0f);
    EXPECT_FLOAT_EQ(v[1], 0.0f);
    EXPECT_FLOAT_EQ(v[2], 2.5f);
}

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

TEST(ParallelFor, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(1000, 8, [&hits](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            ++hits[i];
    });
    for (const auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, StridedCoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(777);
    parallelForStrided(777, 8, [&hits](size_t start, size_t stride) {
        for (size_t i = start; i < hits.size(); i += stride)
            ++hits[i];
    });
    for (const auto &h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop)
{
    parallelFor(0, 4, [](size_t, size_t) { FAIL(); });
    SUCCEED();
}

TEST(Profiler, AttributesAndRanks)
{
    Profiler profiler;
    profiler.addSeconds("slow", 3.0);
    profiler.addSeconds("fast", 1.0);
    profiler.addSeconds("slow", 1.0);
    EXPECT_DOUBLE_EQ(profiler.seconds("slow"), 4.0);
    EXPECT_DOUBLE_EQ(profiler.totalSeconds(), 5.0);
    EXPECT_DOUBLE_EQ(profiler.fraction("slow"), 0.8);
    const auto order = profiler.componentsByTime();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "slow");
}

TEST(Profiler, ScopeAccumulates)
{
    Profiler profiler;
    {
        auto scope = profiler.scope("region");
        volatile double x = 0;
        for (int i = 0; i < 100000; ++i)
            x = x + 1.0;
    }
    EXPECT_GT(profiler.seconds("region"), 0.0);
}

TEST(Profiler, ConcurrentAccumulationIsExact)
{
    Profiler profiler;
    constexpr int kThreads = 8;
    constexpr int kAdds = 2000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&profiler] {
            for (int i = 0; i < kAdds; ++i)
                profiler.addSeconds("shared", 1.0);
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_DOUBLE_EQ(profiler.seconds("shared"),
                     static_cast<double>(kThreads * kAdds));
}

TEST(Profiler, MergeCombinesComponents)
{
    Profiler a, b;
    a.addSeconds("asr", 2.0);
    b.addSeconds("asr", 1.0);
    b.addSeconds("qa", 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.seconds("asr"), 3.0);
    EXPECT_DOUBLE_EQ(a.seconds("qa"), 4.0);
    EXPECT_DOUBLE_EQ(a.totalSeconds(), 7.0);
}

TEST(LatencyHistogram, CountsSumAndMean)
{
    LatencyHistogram hist;
    hist.add(0.001);
    hist.add(0.002);
    hist.add(0.003);
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.006);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.002);
}

TEST(LatencyHistogram, QuantileConservativeAndBounded)
{
    LatencyHistogram hist(1e-5, 1.25, 96);
    for (int i = 0; i < 1000; ++i)
        hist.add(0.010);
    // The estimate is the holding bucket's upper edge: at or above the
    // true value, within one growth factor of it.
    EXPECT_GE(hist.p50(), 0.010);
    EXPECT_LE(hist.p50(), 0.010 * 1.25 * 1.25);
    EXPECT_DOUBLE_EQ(hist.p50(), hist.p99());
}

TEST(LatencyHistogram, PercentilesMonotone)
{
    LatencyHistogram hist;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i)
        hist.add(std::exp(rng.gaussian(-5.0, 1.5)));
    EXPECT_LE(hist.quantile(0.0), hist.p50());
    EXPECT_LE(hist.p50(), hist.p95());
    EXPECT_LE(hist.p95(), hist.p99());
    EXPECT_LE(hist.p99(), hist.quantile(1.0));
}

TEST(LatencyHistogram, QuantileTracksExactPercentiles)
{
    LatencyHistogram hist;
    SampleStats exact;
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        const double v = std::exp(rng.gaussian(-4.0, 1.0));
        hist.add(v);
        exact.add(v);
    }
    // Log-bucketing bounds relative error by the growth factor.
    for (double p : {50.0, 95.0, 99.0}) {
        const double est = hist.quantile(p / 100.0);
        const double truth = exact.percentile(p);
        EXPECT_GE(est, truth * 0.99);
        EXPECT_LE(est, truth * 1.30);
    }
}

TEST(LatencyHistogram, ExtremesClampToEdgeBuckets)
{
    LatencyHistogram hist(1e-5, 1.25, 8);
    hist.add(0.0);
    hist.add(-1.0);
    hist.add(1e9);
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(hist.buckets() - 1), 1u);
    EXPECT_EQ(hist.count(), 3u);
}

TEST(LatencyHistogram, MergeFoldsCounts)
{
    LatencyHistogram a, b;
    a.add(0.001);
    b.add(0.001);
    b.add(1.0);
    ASSERT_TRUE(a.sameLayout(b));
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 1.002);

    const LatencyHistogram other(1e-6, 1.5, 32);
    EXPECT_FALSE(a.sameLayout(other));
}

TEST(LatencyHistogram, CopyIsIndependent)
{
    LatencyHistogram a;
    a.add(0.5);
    LatencyHistogram b(a);
    a.add(0.5);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(b.count(), 1u);
    b = a;
    EXPECT_EQ(b.count(), 2u);
}

TEST(LatencyHistogram, ConcurrentAddsAreLossless)
{
    LatencyHistogram hist;
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&hist, t] {
            for (int i = 0; i < kAdds; ++i)
                hist.add(1e-4 * static_cast<double>(t + 1));
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(hist.count(),
              static_cast<uint64_t>(kThreads) * kAdds);
    uint64_t bucket_total = 0;
    for (size_t i = 0; i < hist.buckets(); ++i)
        bucket_total += hist.bucketCount(i);
    EXPECT_EQ(bucket_total, hist.count());
}

TEST(Strings, SplitJoinRoundTrip)
{
    const auto parts = split("a bb  ccc", " ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(join(parts, " "), "a bb ccc");
}

TEST(Strings, TrimAndCase)
{
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(toLower("AbC9"), "abc9");
}

TEST(Strings, PrefixSuffix)
{
    EXPECT_TRUE(startsWith("sirius", "sir"));
    EXPECT_FALSE(startsWith("si", "sir"));
    EXPECT_TRUE(endsWith("pipeline", "line"));
    EXPECT_FALSE(endsWith("line", "pipeline"));
}

TEST(Strings, FormatLikePrintf)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
}

TEST(Strings, JsonStringRoundTripsThroughTheScanner)
{
    // Every event-log line and trace span goes through
    // appendJsonString on the way out and JsonScanner on the way back
    // (log replay, trace stitching); the pair must be lossless for
    // anything a query or an answer can contain.
    const std::vector<std::string> cases = {
        "",
        "plain",
        "spaces and\ttabs",
        "line\nbreak\rreturn",
        "quote\"back\\slash",
        "controls \x01\x02\x1f end",
        "mixed: \"a\\b\"\n\t\x7f",
    };
    for (const auto &original : cases) {
        std::string encoded;
        appendJsonString(encoded, original);
        ASSERT_GE(encoded.size(), 2u);
        EXPECT_EQ(encoded.front(), '"');
        EXPECT_EQ(encoded.back(), '"');
        // The wire form must be a single line: raw newlines inside the
        // literal would corrupt the JSONL framing.
        EXPECT_EQ(encoded.find('\n'), std::string::npos);
        JsonScanner scanner(encoded);
        std::string decoded;
        ASSERT_TRUE(scanner.parseString(decoded)) << encoded;
        EXPECT_EQ(decoded, original);
        EXPECT_TRUE(scanner.done());
    }
}

TEST(Strings, JsonScannerReadsAFlatEventLogObject)
{
    std::string line = "{\"kind\": ";
    appendJsonString(line, "shard_eject\"\n");
    line += ", \"t\": 0.125, \"shard\": 3}";
    JsonScanner scanner(line);
    ASSERT_TRUE(scanner.expect('{'));
    std::string key, kind;
    ASSERT_TRUE(scanner.parseString(key));
    EXPECT_EQ(key, "kind");
    ASSERT_TRUE(scanner.expect(':'));
    ASSERT_TRUE(scanner.parseString(kind));
    EXPECT_EQ(kind, "shard_eject\"\n");
    ASSERT_TRUE(scanner.expect(','));
    double t = 0.0, shard = 0.0;
    ASSERT_TRUE(scanner.parseString(key));
    ASSERT_TRUE(scanner.expect(':'));
    ASSERT_TRUE(scanner.parseNumber(t));
    EXPECT_DOUBLE_EQ(t, 0.125);
    ASSERT_TRUE(scanner.expect(','));
    ASSERT_TRUE(scanner.parseString(key));
    ASSERT_TRUE(scanner.expect(':'));
    ASSERT_TRUE(scanner.parseNumber(shard));
    EXPECT_DOUBLE_EQ(shard, 3.0);
    ASSERT_TRUE(scanner.expect('}'));
    EXPECT_TRUE(scanner.done());
}

TEST(Zipf, SkewedDrawsFavourLowRanks)
{
    // With s=1 over 16 items the head must dominate: rank 0 appears
    // roughly 1/H(16) ~ 30% of the time, and the top four ranks
    // together take the clear majority of draws.
    ZipfSampler sampler(16, 1.0);
    Rng rng(99);
    std::vector<size_t> counts(sampler.size(), 0);
    const size_t draws = 20000;
    for (size_t i = 0; i < draws; ++i)
        ++counts[sampler.draw(rng)];
    EXPECT_GT(counts[0], counts[8] * 4);
    EXPECT_GT(counts[0], draws / 5);
    const size_t head =
        counts[0] + counts[1] + counts[2] + counts[3];
    EXPECT_GT(head, draws / 2);
    // Heavier skew concentrates further: under s=2 the head item
    // takes a strictly larger share than under s=1.
    ZipfSampler heavy(16, 2.0);
    Rng rng2(99);
    std::vector<size_t> heavyCounts(heavy.size(), 0);
    for (size_t i = 0; i < draws; ++i)
        ++heavyCounts[heavy.draw(rng2)];
    EXPECT_GT(heavyCounts[0], counts[0]);
}

TEST(Zipf, ZeroSkewIsUniform)
{
    ZipfSampler sampler(8, 0.0);
    Rng rng(5);
    std::vector<size_t> counts(sampler.size(), 0);
    const size_t draws = 32000;
    for (size_t i = 0; i < draws; ++i)
        ++counts[sampler.draw(rng)];
    const double expected =
        static_cast<double>(draws) / static_cast<double>(counts.size());
    for (const size_t count : counts) {
        EXPECT_GT(static_cast<double>(count), expected * 0.85);
        EXPECT_LT(static_cast<double>(count), expected * 1.15);
    }
}

TEST(Zipf, DrawsAreDeterministicPerSeedAndSamplerIsShareable)
{
    // The sampler itself is immutable state: two Rngs with the same
    // seed walking one shared sampler must produce identical streams,
    // and a different seed must diverge somewhere.
    ZipfSampler sampler(24, 0.9);
    Rng a(1234), b(1234), c(4321);
    bool diverged = false;
    for (int i = 0; i < 256; ++i) {
        const size_t fromA = sampler.draw(a);
        EXPECT_EQ(fromA, sampler.draw(b));
        if (fromA != sampler.draw(c))
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Timer, StopwatchMovesForward)
{
    Stopwatch watch;
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i)
        x = x + 1.0;
    EXPECT_GT(watch.nanoseconds(), 0u);
    EXPECT_GE(watch.seconds(), 0.0);
}

TEST(Timer, ScopedTimerAccumulates)
{
    double sink = 0.0;
    {
        ScopedTimer timer(sink);
        volatile double x = 0;
        for (int i = 0; i < 100000; ++i)
            x = x + 1.0;
    }
    EXPECT_GT(sink, 0.0);
}

} // namespace
