/**
 * @file
 * fuzz_driver: command-line front end for the property fuzzer and the
 * simulation chaos drill.
 *
 * Modes (first match wins):
 *   --replay "k=v,..."   re-run one trial from a repro line; exit 1 on
 *                        any oracle violation.
 *   --corpus DIR         replay every repro line in every file of DIR
 *                        (blank lines and #-comments skipped).
 *   --drill              run the canonical 4-shard kill/revive chaos
 *                        drill on virtual time and assert the full
 *                        eject -> alert -> recover -> clear arc.
 *   (default)            fuzz campaign; --profile smoke is the tier-1
 *                        budget (200 runs), --profile nightly the long
 *                        one (unbounded runs, wall-clock capped).
 *
 * Common flags: --seed N, --runs N, --minutes M (wall budget),
 * --no-shrink.
 *
 * On a campaign failure the last line printed is the one-line repro:
 *   FUZZ-REPRO seed=...,shards=...,...
 * paste it into --replay (or a file under tests/corpus/) verbatim.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/sim_cluster.h"
#include "sim/trial_run.h"
#include "testing/property_fuzzer.h"

namespace {

using sirius::sim::TrialConfig;
using sirius::sim::TrialReport;

void
printViolations(const TrialReport &report)
{
    for (const auto &v : report.violations)
        std::printf("  VIOLATION [%s] %s\n", v.oracle.c_str(),
                    v.detail.c_str());
}

int
replayLine(const std::string &line, const char *origin)
{
    TrialConfig config;
    if (!sirius::sim::parseTrialConfig(line, config)) {
        std::printf("FAIL %s: unparseable repro line: %s\n", origin,
                    line.c_str());
        return 1;
    }
    const TrialReport report = sirius::sim::runTrial(config);
    if (!report.ok) {
        std::printf("FAIL %s: %zu violation(s) for %s\n", origin,
                    report.violations.size(), line.c_str());
        printViolations(report);
        return 1;
    }
    std::printf("ok   %s: %s\n", origin, line.c_str());
    return 0;
}

int
replayCorpus(const std::string &dir)
{
    int failures = 0;
    size_t lines = 0;
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir))
        if (entry.is_regular_file())
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty() || line[0] == '#')
                continue;
            ++lines;
            failures += replayLine(line, path.filename().c_str());
        }
    }
    std::printf("corpus: %zu repro line(s), %d failure(s)\n", lines,
                failures);
    if (lines == 0) {
        std::printf("FAIL corpus: no repro lines found in %s\n",
                    dir.c_str());
        return 1;
    }
    return failures == 0 ? 0 : 1;
}

int
runDrill(uint64_t seed)
{
    const auto report = sirius::sim::runChaosDrill(seed);
    const auto &stats = report.result.stats;
    std::printf("chaos drill seed=%llu: offered=%llu ok=%llu "
                "failed=%llu shed=%llu failovers=%llu probes=%llu "
                "ejections=%llu recoveries=%llu events=%zu "
                "digest=%016llx\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(stats.offered),
                static_cast<unsigned long long>(stats.completedOk),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.failovers),
                static_cast<unsigned long long>(stats.probes),
                static_cast<unsigned long long>(stats.ejections),
                static_cast<unsigned long long>(stats.recoveries),
                stats.events.size(),
                static_cast<unsigned long long>(
                    report.result.digest));
    std::printf("  arc: ejected=%d alert_fired=%d recovered=%d "
                "alert_cleared=%d healthy_at_end=%zu/4\n",
                report.ejected ? 1 : 0, report.alertFired ? 1 : 0,
                report.recovered ? 1 : 0, report.alertCleared ? 1 : 0,
                stats.healthyShardsAtEnd);
    const bool ok = report.ejected && report.alertFired &&
        report.recovered && report.alertCleared &&
        stats.healthyShardsAtEnd == 4;
    std::printf("%s\n", ok ? "DRILL PASS" : "DRILL FAIL");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 1;
    size_t runs = 200;
    double minutes = 0.0;
    bool shrink = true;
    bool drill = false;
    std::string replay;
    std::string corpus;
    std::string profile;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seed")
            seed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--runs")
            runs = std::strtoull(next(), nullptr, 10);
        else if (arg == "--minutes")
            minutes = std::strtod(next(), nullptr);
        else if (arg == "--profile")
            profile = next();
        else if (arg == "--replay")
            replay = next();
        else if (arg == "--corpus")
            corpus = next();
        else if (arg == "--drill")
            drill = true;
        else if (arg == "--no-shrink")
            shrink = false;
        else {
            std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
            return 2;
        }
    }

    if (!replay.empty())
        return replayLine(replay, "--replay");
    if (!corpus.empty())
        return replayCorpus(corpus);
    if (drill)
        return runDrill(seed);

    sirius::testing::FuzzOptions options;
    options.seed = seed;
    options.runs = runs;
    options.shrink = shrink;
    if (profile == "smoke") {
        options.runs = 200;
    } else if (profile == "nightly") {
        options.runs = SIZE_MAX; // wall-clock capped instead
        if (minutes <= 0.0)
            minutes = 20.0;
    } else if (!profile.empty()) {
        std::fprintf(stderr,
                     "--profile must be smoke or nightly, got %s\n",
                     profile.c_str());
        return 2;
    }
    if (minutes > 0.0)
        options.maxSeconds = minutes * 60.0;

    sirius::testing::PropertyFuzzer fuzzer(sirius::sim::runTrial,
                                           options);
    const auto result = fuzzer.run();
    std::printf("fuzz: %zu run(s), seed=%llu\n", result.runs,
                static_cast<unsigned long long>(seed));
    if (!result.foundFailure) {
        std::printf("FUZZ PASS\n");
        return 0;
    }
    const auto &failure = result.failure;
    std::printf("FUZZ FAIL at run %zu (%zu shrink step(s)):\n",
                failure.runIndex, failure.shrinkSteps);
    TrialReport final_report;
    final_report.violations = failure.violations;
    printViolations(final_report);
    std::printf("FUZZ-REPRO %s\n", failure.repro.c_str());
    return 1;
}
