/**
 * @file
 * Tests for the NLP substrate: tokenizer, Porter stemmer, regex engine and
 * CRF tagger (including forward/backward consistency properties).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nlp/crf.h"
#include "nlp/porter_stemmer.h"
#include "nlp/pos_corpus.h"
#include "nlp/regex.h"
#include "nlp/tokenizer.h"

namespace {

using namespace sirius::nlp;

// ---------------------------------------------------------------- tokenizer

TEST(Tokenizer, SplitsAndLowercases)
{
    const auto toks = tokenize("Who was elected 44th President?");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[0], "who");
    EXPECT_EQ(toks[3], "44th");
    EXPECT_EQ(toks[4], "president");
}

TEST(Tokenizer, KeepsApostrophes)
{
    const auto toks = tokenize("what's the time");
    EXPECT_EQ(toks[0], "what's");
}

TEST(Tokenizer, EmptyAndPunctuationOnly)
{
    EXPECT_TRUE(tokenize("").empty());
    EXPECT_TRUE(tokenize("?!,.;:").empty());
}

TEST(Tokenizer, KeepPunctVariant)
{
    const auto toks = tokenizeKeepPunct("Stop here. Now!");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[2], ".");
    EXPECT_EQ(toks[3], "Now");
    EXPECT_EQ(toks[4], "!");
}

// ------------------------------------------------------------------ stemmer

struct StemCase
{
    const char *input;
    const char *expected;
};

class PorterStemmerGolden : public ::testing::TestWithParam<StemCase>
{
};

TEST_P(PorterStemmerGolden, MatchesReferenceOutput)
{
    PorterStemmer stemmer;
    EXPECT_EQ(stemmer.stem(GetParam().input), GetParam().expected);
}

// Golden outputs from Porter's reference implementation.
INSTANTIATE_TEST_SUITE_P(ReferenceWords, PorterStemmerGolden,
    ::testing::Values(
        StemCase{"caresses", "caress"},
        StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"},
        StemCase{"caress", "caress"},
        StemCase{"cats", "cat"},
        StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"},
        StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"},
        StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"},
        StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"},
        StemCase{"sized", "size"},
        StemCase{"hopping", "hop"},
        StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"},
        StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"},
        StemCase{"failing", "fail"},
        StemCase{"filing", "file"},
        StemCase{"happy", "happi"},
        StemCase{"sky", "sky"},
        StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"},
        StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"},
        StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"},
        StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"},
        StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"},
        StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"},
        StemCase{"predication", "predic"},
        StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"},
        StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"},
        StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"},
        StemCase{"formative", "form"},
        StemCase{"formalize", "formal"},
        StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"},
        StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"},
        StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"},
        StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"},
        StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"},
        StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"},
        StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"},
        StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"},
        StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"},
        StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"},
        StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmer, ShortWordsUnchanged)
{
    PorterStemmer stemmer;
    EXPECT_EQ(stemmer.stem("a"), "a");
    EXPECT_EQ(stemmer.stem("is"), "is");
    EXPECT_EQ(stemmer.stem("be"), "be");
}

TEST(PorterStemmer, NonAlphaUnchanged)
{
    PorterStemmer stemmer;
    EXPECT_EQ(stemmer.stem("42nd"), "42nd");
    EXPECT_EQ(stemmer.stem("c++"), "c++");
}

TEST(PorterStemmer, NeverGrowsAndMostlyIdempotent)
{
    // Porter never lengthens a word, and re-stemming is usually a no-op.
    // The synthetic word list stacks derivational endings, which hits
    // Porter's (known) non-idempotent corners more often than dictionary
    // text does, so the idempotence bound here is deliberately loose.
    PorterStemmer stemmer;
    const auto words = generateWordList(2000, 5);
    size_t stable = 0;
    for (const auto &w : words) {
        const auto once = stemmer.stem(w);
        const auto twice = stemmer.stem(once);
        ASSERT_LE(once.size(), w.size());
        ASSERT_LE(twice.size(), once.size());
        ASSERT_FALSE(once.empty());
        stable += (once == twice);
    }
    EXPECT_GT(static_cast<double>(stable) /
                  static_cast<double>(words.size()),
              0.75);
}

TEST(PorterStemmer, StemAllMatchesIndividual)
{
    PorterStemmer stemmer;
    std::vector<std::string> words = {"running", "flies", "happiness"};
    auto copy = words;
    stemmer.stemAll(copy);
    for (size_t i = 0; i < words.size(); ++i)
        EXPECT_EQ(copy[i], stemmer.stem(words[i]));
}

// -------------------------------------------------------------------- regex

TEST(Regex, LiteralMatch)
{
    Regex re("abc");
    ASSERT_TRUE(re.ok());
    EXPECT_TRUE(re.fullMatch("abc"));
    EXPECT_FALSE(re.fullMatch("ab"));
    EXPECT_TRUE(re.search("xxabcxx"));
    EXPECT_FALSE(re.search("axbxc"));
}

TEST(Regex, DotMatchesAnyOneChar)
{
    Regex re("a.c");
    EXPECT_TRUE(re.fullMatch("abc"));
    EXPECT_TRUE(re.fullMatch("a c"));
    EXPECT_FALSE(re.fullMatch("ac"));
}

TEST(Regex, StarQuantifier)
{
    Regex re("ab*c");
    EXPECT_TRUE(re.fullMatch("ac"));
    EXPECT_TRUE(re.fullMatch("abc"));
    EXPECT_TRUE(re.fullMatch("abbbbc"));
    EXPECT_FALSE(re.fullMatch("adc"));
}

TEST(Regex, PlusQuantifier)
{
    Regex re("ab+c");
    EXPECT_FALSE(re.fullMatch("ac"));
    EXPECT_TRUE(re.fullMatch("abc"));
    EXPECT_TRUE(re.fullMatch("abbc"));
}

TEST(Regex, QuestionQuantifier)
{
    Regex re("colou?r");
    EXPECT_TRUE(re.fullMatch("color"));
    EXPECT_TRUE(re.fullMatch("colour"));
    EXPECT_FALSE(re.fullMatch("colouur"));
}

TEST(Regex, Alternation)
{
    Regex re("cat|dog|bird");
    EXPECT_TRUE(re.fullMatch("cat"));
    EXPECT_TRUE(re.fullMatch("dog"));
    EXPECT_TRUE(re.fullMatch("bird"));
    EXPECT_FALSE(re.fullMatch("fish"));
}

TEST(Regex, GroupedAlternationWithQuantifier)
{
    Regex re("(ab|cd)+e");
    EXPECT_TRUE(re.fullMatch("abe"));
    EXPECT_TRUE(re.fullMatch("abcdabe"));
    EXPECT_FALSE(re.fullMatch("e"));
}

TEST(Regex, CharacterClasses)
{
    Regex re("[a-c]+[0-9]");
    EXPECT_TRUE(re.fullMatch("abc7"));
    EXPECT_FALSE(re.fullMatch("abd7"));
    EXPECT_FALSE(re.fullMatch("abc"));
}

TEST(Regex, NegatedClass)
{
    Regex re("[^0-9]+");
    EXPECT_TRUE(re.fullMatch("hello"));
    EXPECT_FALSE(re.fullMatch("hel1o"));
}

TEST(Regex, EscapeClasses)
{
    Regex digits("\\d+");
    EXPECT_TRUE(digits.fullMatch("12345"));
    EXPECT_FALSE(digits.fullMatch("12a45"));

    Regex word("\\w+");
    EXPECT_TRUE(word.fullMatch("ab_9"));
    EXPECT_FALSE(word.fullMatch("ab 9"));

    Regex space("a\\sb");
    EXPECT_TRUE(space.fullMatch("a b"));
    EXPECT_TRUE(space.fullMatch("a\tb"));
    EXPECT_FALSE(space.fullMatch("axb"));

    Regex nondigit("\\D+");
    EXPECT_TRUE(nondigit.fullMatch("ab"));
    EXPECT_FALSE(nondigit.fullMatch("a1"));
}

TEST(Regex, Anchors)
{
    Regex re("^who\\s");
    EXPECT_TRUE(re.search("who is there"));
    EXPECT_FALSE(re.search("guess who is"));

    Regex end("end$");
    EXPECT_TRUE(end.search("the end"));
    EXPECT_FALSE(end.search("end of story"));
}

TEST(Regex, OrdinalPattern)
{
    Regex re("\\d+(st|nd|rd|th)");
    EXPECT_TRUE(re.search("the 44th president"));
    EXPECT_TRUE(re.search("1st place"));
    EXPECT_FALSE(re.search("44 president"));
}

TEST(Regex, CountMatchesCountsStartOffsets)
{
    Regex re("ab");
    EXPECT_EQ(re.countMatches("abxabxab"), 3u);
    EXPECT_EQ(re.countMatches("xxx"), 0u);
}

TEST(Regex, EmptyPatternMatchesEverywhere)
{
    Regex re("");
    ASSERT_TRUE(re.ok());
    EXPECT_TRUE(re.fullMatch(""));
    EXPECT_TRUE(re.search("anything"));
}

TEST(Regex, ErrorsReported)
{
    EXPECT_FALSE(Regex("(abc").ok());
    EXPECT_FALSE(Regex("[abc").ok());
    EXPECT_FALSE(Regex("*a").ok());
    EXPECT_FALSE(Regex("a\\").ok());
    EXPECT_FALSE(Regex("[z-a]").ok());
}

TEST(Regex, NoCatastrophicBacktracking)
{
    // (a+)+b against aaaa...a is exponential for backtrackers; the Pike VM
    // must stay linear. 200 chars would hang a backtracking engine.
    Regex re("(a+)+b");
    ASSERT_TRUE(re.ok());
    const std::string text(200, 'a');
    EXPECT_FALSE(re.fullMatch(text));
}

TEST(Regex, QuestionAnalysisPatternsCompile)
{
    const auto patterns = questionAnalysisPatterns();
    EXPECT_GE(patterns.size(), 10u);
    for (const auto &p : patterns)
        EXPECT_TRUE(p.ok()) << p.pattern() << ": " << p.error();
}

TEST(Regex, QuestionAnalysisPatternsClassifyQuestions)
{
    const auto patterns = questionAnalysisPatterns();
    // First pattern is the who-question detector.
    EXPECT_TRUE(patterns[0].search("who was elected 44th president"));
    EXPECT_FALSE(patterns[0].search("set my alarm for 8am"));
}

// ---------------------------------------------------------------------- CRF

class CrfTrained : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        corpus_ = new std::vector<TaggedSentence>(
            generatePosCorpus(400, 77));
        heldout_ = new std::vector<TaggedSentence>(
            generatePosCorpus(80, 78));
        tagger_ = new CrfTagger(size_t{1} << 15);
        CrfTagger::TrainOptions opts;
        opts.epochs = 5;
        tagger_->train(*corpus_, opts);
    }

    static void
    TearDownTestSuite()
    {
        delete corpus_;
        delete heldout_;
        delete tagger_;
        corpus_ = nullptr;
        heldout_ = nullptr;
        tagger_ = nullptr;
    }

    static std::vector<TaggedSentence> *corpus_;
    static std::vector<TaggedSentence> *heldout_;
    static CrfTagger *tagger_;
};

std::vector<TaggedSentence> *CrfTrained::corpus_ = nullptr;
std::vector<TaggedSentence> *CrfTrained::heldout_ = nullptr;
CrfTagger *CrfTrained::tagger_ = nullptr;

TEST_F(CrfTrained, TrainingAccuracyHigh)
{
    EXPECT_GT(tagger_->accuracy(*corpus_), 0.97);
}

TEST_F(CrfTrained, HeldOutAccuracyHigh)
{
    EXPECT_GT(tagger_->accuracy(*heldout_), 0.95);
}

TEST_F(CrfTrained, ForwardBackwardPartitionAgree)
{
    for (size_t i = 0; i < 10; ++i) {
        const auto &words = (*heldout_)[i].words;
        const double zf = tagger_->logPartitionForward(words);
        const double zb = tagger_->logPartitionBackward(words);
        EXPECT_NEAR(zf, zb, 1e-6 * std::max(1.0, std::fabs(zf)));
    }
}

TEST_F(CrfTrained, LogLikelihoodNonPositive)
{
    for (size_t i = 0; i < 10; ++i)
        EXPECT_LE(tagger_->logLikelihood((*heldout_)[i]), 1e-9);
}

TEST_F(CrfTrained, ViterbiPathScoresAtLeastGold)
{
    // The Viterbi path maximizes the unnormalized score, so its
    // likelihood must be >= the gold path's likelihood.
    for (size_t i = 0; i < 10; ++i) {
        const auto &sentence = (*heldout_)[i];
        TaggedSentence viterbi;
        viterbi.words = sentence.words;
        viterbi.tags = tagger_->tag(sentence.words);
        EXPECT_GE(tagger_->logLikelihood(viterbi) + 1e-9,
                  tagger_->logLikelihood(sentence));
    }
}

TEST_F(CrfTrained, TagsDeterministicQuestion)
{
    const std::vector<std::string> q = {"who", "is", "the", "president",
                                        "of", "the", "country", "?"};
    const auto tags = tagger_->tag(q);
    ASSERT_EQ(tags.size(), q.size());
    EXPECT_EQ(tags[0], PosTag::Pron);
    EXPECT_EQ(tags[1], PosTag::Verb);
    EXPECT_EQ(tags[2], PosTag::Det);
    EXPECT_EQ(tags[3], PosTag::Noun);
    EXPECT_EQ(tags[7], PosTag::Punct);
}

TEST(Crf, UntrainedPartitionIsUniform)
{
    CrfTagger tagger(1024);
    const std::vector<std::string> words = {"a", "b", "c"};
    // With all-zero weights, Z = numTags^n.
    const double expected = 3.0 * std::log(
        static_cast<double>(kNumTags));
    EXPECT_NEAR(tagger.logPartitionForward(words), expected, 1e-9);
}

TEST(Crf, EmptySentenceHandled)
{
    CrfTagger tagger(1024);
    EXPECT_TRUE(tagger.tag({}).empty());
    EXPECT_DOUBLE_EQ(tagger.logPartitionForward({}), 0.0);
}

TEST(Crf, FeatureExtractionDeterministic)
{
    CrfTagger tagger(4096);
    std::vector<uint32_t> a, b;
    const std::vector<std::string> words = {"The", "44th", "president"};
    tagger.extractFeatures(words, 1, a);
    tagger.extractFeatures(words, 1, b);
    EXPECT_EQ(a, b);
    for (uint32_t f : a)
        EXPECT_LT(f, 4096u);
}

TEST(Crf, TagNamesDistinct)
{
    std::set<std::string> names;
    for (size_t t = 0; t < kNumTags; ++t)
        names.insert(tagName(static_cast<PosTag>(t)));
    EXPECT_EQ(names.size(), kNumTags);
}

// ------------------------------------------------------------------- corpus

TEST(PosCorpus, DeterministicPerSeed)
{
    const auto a = generatePosCorpus(50, 9);
    const auto b = generatePosCorpus(50, 9);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].words, b[i].words);
}

TEST(PosCorpus, TagsAlignWithWords)
{
    for (const auto &s : generatePosCorpus(100, 10)) {
        EXPECT_EQ(s.words.size(), s.tags.size());
        EXPECT_FALSE(s.words.empty());
    }
}

TEST(PosCorpus, LexiconLookupConsistent)
{
    PosLexicon lexicon;
    EXPECT_EQ(lexicon.lookup("the"), PosTag::Det);
    EXPECT_EQ(lexicon.lookup("president"), PosTag::Noun);
    EXPECT_EQ(lexicon.lookup("zzzunknown"), PosTag::Other);
}

TEST(PosCorpus, WordListSizeAndContent)
{
    const auto words = generateWordList(5000, 11);
    EXPECT_EQ(words.size(), 5000u);
    for (const auto &w : words)
        ASSERT_FALSE(w.empty());
}

} // namespace
