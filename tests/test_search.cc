/**
 * @file
 * Tests for the search substrate: corpus generation, inverted index,
 * BM25 ranking, and the Web Search baseline service.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/strings.h"
#include "search/corpus.h"
#include "search/inverted_index.h"
#include "search/web_search.h"

namespace {

using namespace sirius;
using namespace sirius::search;

TEST(Corpus, FactsCoverInputSet)
{
    const auto &facts = knowledgeFacts();
    EXPECT_GE(facts.size(), 26u); // 16 VQ facts + 10 landmark facts
    for (const auto &fact : facts) {
        EXPECT_FALSE(fact.subject.empty());
        EXPECT_FALSE(fact.answer.empty());
        // The stated sentence must actually contain the answer.
        EXPECT_NE(toLower(fact.sentence).find(toLower(fact.answer)),
                  std::string::npos)
            << fact.subject;
    }
}

TEST(Corpus, LandmarkNamesDistinct)
{
    std::set<std::string> names;
    for (int id = 0; id < 10; ++id)
        names.insert(landmarkName(id));
    EXPECT_EQ(names.size(), 10u);
}

TEST(Corpus, DeterministicPerSeed)
{
    const auto a = buildEncyclopedia(50, 7);
    const auto b = buildEncyclopedia(50, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].text, b[i].text);
}

TEST(Corpus, SizeScalesWithFiller)
{
    const auto small = buildEncyclopedia(10, 7);
    const auto large = buildEncyclopedia(100, 7);
    EXPECT_EQ(large.size() - small.size(), 90u);
}

TEST(InvertedIndex, FindsFactDocuments)
{
    const InvertedIndex index(buildEncyclopedia(100, 31));
    const auto hits = index.search("capital of italy", 5);
    ASSERT_FALSE(hits.empty());
    const auto &top = index.document(hits[0].docId);
    EXPECT_NE(toLower(top.text).find("rome"), std::string::npos);
}

TEST(InvertedIndex, ScoresDescending)
{
    const InvertedIndex index(buildEncyclopedia(100, 31));
    const auto hits = index.search("president united states", 10);
    for (size_t i = 1; i < hits.size(); ++i)
        EXPECT_LE(hits[i].score, hits[i - 1].score);
}

TEST(InvertedIndex, UnknownTermsGiveNoHits)
{
    const InvertedIndex index(buildEncyclopedia(20, 31));
    EXPECT_TRUE(index.search("xylophone quetzalcoatl", 5).empty());
}

TEST(InvertedIndex, StemmingUnifiesInflections)
{
    // "closes" and "closing" should hit the same documents when stemming
    // is on.
    const auto docs = buildEncyclopedia(50, 31);
    const InvertedIndex stemmed(docs, true);
    const auto a = stemmed.search("restaurant closes", 5);
    const auto b = stemmed.search("restaurant closing", 5);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_EQ(a[0].docId, b[0].docId);
}

TEST(InvertedIndex, KLimitsResults)
{
    const InvertedIndex index(buildEncyclopedia(100, 31));
    EXPECT_LE(index.search("the city", 3).size(), 3u);
}

TEST(InvertedIndex, DocumentFrequencySane)
{
    const InvertedIndex index(buildEncyclopedia(100, 31));
    EXPECT_GT(index.documentFrequency("city"), 0u);
    EXPECT_EQ(index.documentFrequency("qqqzzz"), 0u);
}

TEST(WebSearch, ReturnsFormattedResults)
{
    const auto ws = WebSearch::build(60, 31);
    const auto results = ws.query("longest river in the world", 5);
    ASSERT_FALSE(results.empty());
    EXPECT_FALSE(results[0].title.empty());
    EXPECT_FALSE(results[0].snippet.empty());
    EXPECT_GT(results[0].score, 0.0);
    // The Nile fact document should be on top.
    EXPECT_NE(toLower(results[0].title + results[0].snippet).find("river"),
              std::string::npos);
}

TEST(WebSearch, AllFactQueriesRetrieveTheirDocument)
{
    const auto ws = WebSearch::build(120, 31);
    for (const auto &fact : knowledgeFacts()) {
        const auto results = ws.query(fact.subject, 3);
        ASSERT_FALSE(results.empty()) << fact.subject;
        bool found = false;
        for (const auto &r : results) {
            if (toLower(r.snippet).find(toLower(fact.answer)) !=
                    std::string::npos ||
                r.title == fact.subject) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << fact.subject;
    }
}

} // namespace
