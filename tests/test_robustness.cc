/**
 * @file
 * Tests for the robustness layer: Deadline budgets, seeded fault
 * injection, per-stage retry, and graceful degradation down the Table-1
 * ladder (VIQ→VQ→VC) — plus the ServerStats counters that price it.
 */

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "core/concurrent_server.h"
#include "core/server.h"
#include "vision/landmarks.h"

namespace {

using namespace sirius;
using namespace sirius::core;

// ---------------------------------------------------------------------
// Deadline: the budget primitive.

TEST(Deadline, DefaultIsUnbounded)
{
    const Deadline d;
    EXPECT_FALSE(d.bounded());
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remainingSeconds()));
    EXPECT_TRUE(std::isinf(d.budgetSeconds()));
    EXPECT_FALSE(Deadline::unbounded().bounded());
}

TEST(Deadline, AfterZeroExpiresImmediately)
{
    const Deadline d = Deadline::after(0.0);
    EXPECT_TRUE(d.bounded());
    EXPECT_TRUE(d.expired());
    EXPECT_LE(d.remainingSeconds(), 0.0);
}

TEST(Deadline, BudgetCountsDown)
{
    // Virtual time: the countdown is asserted exactly, not "after a
    // sleep that was hopefully long enough on this machine".
    ManualTime clock;
    const Deadline d = Deadline::afterManual(60.0, clock);
    EXPECT_TRUE(d.bounded());
    EXPECT_FALSE(d.expired());
    EXPECT_DOUBLE_EQ(d.budgetSeconds(), 60.0);
    EXPECT_DOUBLE_EQ(d.remainingSeconds(), 60.0);
    clock.advance(2.0);
    EXPECT_DOUBLE_EQ(d.remainingSeconds(), 58.0);
    EXPECT_FALSE(d.expired());
    clock.advance(58.0);
    EXPECT_TRUE(d.expired());
    EXPECT_LE(d.remainingSeconds(), 0.0);
}

TEST(Deadline, CopiesShareTheExpiryInstant)
{
    ManualTime clock;
    const Deadline original = Deadline::afterManual(0.005, clock);
    const Deadline copy = original; // what stage-to-stage handoff does
    EXPECT_FALSE(copy.expired());
    clock.advance(0.010);
    EXPECT_TRUE(original.expired());
    EXPECT_TRUE(copy.expired());
}

TEST(ManualTime, StartsAtZeroAndOnlyMovesOnAdvance)
{
    ManualTime clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
    clock.advance(1.5);
    EXPECT_DOUBLE_EQ(clock.now(), 1.5);
    clock.advance(0.25);
    EXPECT_DOUBLE_EQ(clock.now(), 1.75);
}

TEST(ManualTime, ConcurrentAdvancesAllLand)
{
    ManualTime clock;
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&] {
            for (int i = 0; i < 1000; ++i)
                clock.advance(0.001);
        });
    }
    for (auto &thread : pool)
        thread.join();
    EXPECT_NEAR(clock.now(), 4.0, 1e-9);
}

// ---------------------------------------------------------------------
// FaultInjector: seeded, rate-based, scoped.

TEST(FaultInjector, DisabledByDefault)
{
    FaultInjector injector;
    EXPECT_FALSE(injector.enabled());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(injector.draw("qa"), StageFault::None);
    EXPECT_EQ(injector.draws(), 0u);
    EXPECT_EQ(injector.failuresInjected(), 0u);
}

TEST(FaultInjector, SameSeedSameStream)
{
    FaultConfig config;
    config.failureRate = 0.2;
    config.latencyRate = 0.1;
    config.corruptionRate = 0.1;
    FaultInjector a(config);
    FaultInjector b(config);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.draw("qa"), b.draw("qa"));
    EXPECT_EQ(a.failuresInjected(), b.failuresInjected());
    EXPECT_EQ(a.latenciesInjected(), b.latenciesInjected());
    EXPECT_EQ(a.corruptionsInjected(), b.corruptionsInjected());
}

TEST(FaultInjector, CountsFollowTheConfiguredRates)
{
    FaultConfig config;
    config.failureRate = 0.2;
    config.latencyRate = 0.05;
    FaultInjector injector(config);
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        injector.draw("qa");
    EXPECT_EQ(injector.draws(), static_cast<uint64_t>(n));
    const double failure_fraction =
        static_cast<double>(injector.failuresInjected()) / n;
    const double latency_fraction =
        static_cast<double>(injector.latenciesInjected()) / n;
    EXPECT_NEAR(failure_fraction, 0.2, 0.03);
    EXPECT_NEAR(latency_fraction, 0.05, 0.02);
    EXPECT_EQ(injector.corruptionsInjected(), 0u);
}

TEST(FaultInjector, ScopedStagesDrawNoneWithoutConsumingTheStream)
{
    FaultConfig config;
    config.failureRate = 0.5;
    config.faultQa = false;
    FaultInjector scoped(config);

    FaultConfig all = config;
    all.faultQa = true;
    FaultInjector reference(all);

    // Interleaving out-of-scope QA draws must not shift the ASR stream.
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(scoped.draw("qa"), StageFault::None);
        EXPECT_EQ(scoped.draw("asr"), reference.draw("asr"));
    }
    EXPECT_EQ(scoped.draws(), 100u); // only the in-scope draws counted
}

TEST(FaultInjector, CorruptAlwaysChangesNonEmptyText)
{
    FaultConfig config;
    config.corruptionRate = 1.0;
    FaultInjector injector(config);
    const std::string text = "the speed of light is 299792458 m/s";
    for (int i = 0; i < 20; ++i) {
        const std::string garbled = injector.corrupt(text);
        EXPECT_NE(garbled, text);
        EXPECT_EQ(garbled.size(), text.size());
    }
    EXPECT_TRUE(injector.corrupt("").empty());
    EXPECT_NE(injector.corrupt("z"), "z"); // forced-change path
}

TEST(FaultInjector, RejectsInvalidRates)
{
    FaultConfig over;
    over.failureRate = 0.8;
    over.latencyRate = 0.5;
    EXPECT_EXIT(FaultInjector{over}, ::testing::ExitedWithCode(1),
                "sum above 1");
    FaultConfig negative;
    negative.corruptionRate = -0.1;
    EXPECT_EXIT(FaultInjector{negative}, ::testing::ExitedWithCode(1),
                "non-negative");
}

// ---------------------------------------------------------------------
// Pipeline degradation paths. One shared trained pipeline (small QA
// corpus) keeps the suite fast, mirroring test_server.cc.

class RobustnessFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static const Query &
    someVq()
    {
        return standardQuerySet()[16];
    }

    static const Query &
    someViq()
    {
        return standardQuerySet()[32];
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *RobustnessFixture::pipeline_ = nullptr;

TEST_F(RobustnessFixture, DefaultOptionsReproduceTheBaseline)
{
    const auto baseline = pipeline_->process(someVq());
    const auto robust = pipeline_->process(someVq(), ProcessOptions{});
    EXPECT_EQ(robust.transcript, baseline.transcript);
    EXPECT_EQ(robust.answer, baseline.answer);
    EXPECT_EQ(robust.degradation, Degradation::None);
    EXPECT_FALSE(robust.degraded());
    EXPECT_FALSE(robust.deadlineExpired);
    EXPECT_EQ(robust.stageRetries, 0);
    EXPECT_TRUE(robust.shedStages.empty());
}

TEST_F(RobustnessFixture, ExpiredAtEntryFailsWithoutRunningStages)
{
    ProcessOptions options;
    options.deadline = Deadline::after(0.0);
    const auto result = pipeline_->process(someViq(), options);
    EXPECT_EQ(result.degradation, Degradation::Failed);
    EXPECT_TRUE(result.deadlineExpired);
    EXPECT_TRUE(result.transcript.empty());
    EXPECT_TRUE(result.answer.empty());
    EXPECT_EQ(result.shedStages, "asr,imm,qa");
    // Nothing ran, so nothing was timed: overdue queries are near-free.
    EXPECT_EQ(result.timings.total(), 0.0);

    const auto vq = pipeline_->process(someVq(), options);
    EXPECT_EQ(vq.shedStages, "asr,qa");
}

TEST_F(RobustnessFixture, ImmFaultDowngradesViqToVq)
{
    FaultConfig config;
    config.failureRate = 1.0;
    config.faultAsr = false;
    config.faultQa = false;
    FaultInjector injector(config);
    ProcessOptions options;
    options.faults = &injector;

    const auto result = pipeline_->process(someViq(), options);
    EXPECT_EQ(result.degradation, Degradation::ViqToVq);
    EXPECT_EQ(result.shedStages, "imm");
    EXPECT_EQ(result.matchedLandmark, -1);
    // The VQ rung still delivers: transcript and an answer, just without
    // the landmark substitution.
    EXPECT_FALSE(result.transcript.empty());
    EXPECT_FALSE(result.answer.empty());
    EXPECT_EQ(result.augmentedQuestion, result.transcript);
}

TEST_F(RobustnessFixture, QaRetriesExhaustThenDegradeToVc)
{
    FaultConfig config;
    config.failureRate = 1.0;
    config.faultAsr = false;
    config.faultImm = false;
    FaultInjector injector(config);
    ProcessOptions options;
    options.faults = &injector;
    options.retry.maxRetries = 2;
    options.retry.backoffSeconds = 1e-5;

    const auto result = pipeline_->process(someVq(), options);
    EXPECT_EQ(result.degradation, Degradation::VqToVc);
    EXPECT_EQ(result.shedStages, "qa");
    EXPECT_EQ(result.stageRetries, 2); // retried, then gave up
    EXPECT_FALSE(result.transcript.empty()); // the VC-level partial
    EXPECT_EQ(result.queryClass, QueryClass::Question);
    EXPECT_TRUE(result.answer.empty());

    // The same loss on a VIQ query lands on the viq->vc rung.
    const auto viq = pipeline_->process(someViq(), options);
    EXPECT_EQ(viq.degradation, Degradation::ViqToVc);
}

TEST_F(RobustnessFixture, RetrySucceedsUnderPartialFaults)
{
    FaultConfig config;
    config.failureRate = 0.5;
    config.faultAsr = false;
    config.faultImm = false;
    FaultInjector injector(config);
    ProcessOptions options;
    options.faults = &injector;
    options.retry.maxRetries = 4;
    options.retry.backoffSeconds = 1e-5;

    int retries = 0, degraded = 0;
    const auto queries = queriesOfType(QueryType::VoiceQuery);
    for (const auto &query : queries) {
        const auto result = pipeline_->process(query, options);
        retries += result.stageRetries;
        degraded += result.degraded() ? 1 : 0;
    }
    // At 50% failure and 4 retries, most queries recover via retry.
    EXPECT_GT(retries, 0);
    EXPECT_LT(degraded, static_cast<int>(queries.size()) / 2);
    EXPECT_GT(injector.failuresInjected(), 0u);
}

TEST_F(RobustnessFixture, DeadlineExceededMidQaReturnsVcPartial)
{
    // A QA-scoped latency fault stalls past the whole budget: ASR
    // completes comfortably inside it, then the stall burns the rest, so
    // QA is cut short with nothing selected and the query bottoms out at
    // a VC-level partial result. The stall and the budget live on a
    // ManualTime, so the test is instant and immune to machine load —
    // real stage work costs zero virtual seconds, only the injected
    // latency moves the clock.
    ManualTime clock;
    FaultConfig config;
    config.latencyRate = 1.0;
    config.addedLatencySeconds = 3.0;
    config.latencyClock = &clock;
    config.faultAsr = false;
    config.faultImm = false;
    FaultInjector injector(config);
    ProcessOptions options;
    options.deadline = Deadline::afterManual(2.0, clock);
    options.faults = &injector;

    const auto result = pipeline_->process(someVq(), options);
    EXPECT_EQ(result.degradation, Degradation::VqToVc);
    EXPECT_EQ(result.shedStages, "qa");
    EXPECT_TRUE(result.deadlineExpired);
    EXPECT_FALSE(result.transcript.empty());
    EXPECT_TRUE(result.answer.empty());
    EXPECT_EQ(injector.latenciesInjected(), 1u);
}

TEST_F(RobustnessFixture, DeadlineExceededMidImmShedsBothUpperRungs)
{
    // The stall hits IMM on a VIQ query: IMM is cut short empty, and by
    // the time QA is reached the budget is gone — viq->vc, with the
    // transcript as the salvage. Virtual time again: 3 virtual seconds
    // of stall against a 2-virtual-second budget, no real sleeping.
    ManualTime clock;
    FaultConfig config;
    config.latencyRate = 1.0;
    config.addedLatencySeconds = 3.0;
    config.latencyClock = &clock;
    config.faultAsr = false;
    config.faultQa = false;
    FaultInjector injector(config);
    ProcessOptions options;
    options.deadline = Deadline::afterManual(2.0, clock);
    options.faults = &injector;

    const auto result = pipeline_->process(someViq(), options);
    EXPECT_EQ(result.degradation, Degradation::ViqToVc);
    EXPECT_EQ(result.shedStages, "imm,qa");
    EXPECT_TRUE(result.deadlineExpired);
    EXPECT_FALSE(result.transcript.empty());
    EXPECT_EQ(result.matchedLandmark, -1);
    EXPECT_TRUE(result.answer.empty());
}

TEST_F(RobustnessFixture, CorruptedQaAnswerStillServes)
{
    const auto baseline = pipeline_->process(someVq());
    ASSERT_FALSE(baseline.answer.empty());

    FaultConfig config;
    config.corruptionRate = 1.0;
    config.faultAsr = false;
    config.faultImm = false;
    FaultInjector injector(config);
    ProcessOptions options;
    options.faults = &injector;

    const auto result = pipeline_->process(someVq(), options);
    // Corruption is served-but-wrong, not shed: the ladder stays put.
    EXPECT_EQ(result.degradation, Degradation::None);
    EXPECT_FALSE(result.answer.empty());
    EXPECT_NE(result.answer, baseline.answer);
    EXPECT_EQ(injector.corruptionsInjected(), 1u);
}

TEST_F(RobustnessFixture, CorruptedImmMatchIsDiscardedNotTrusted)
{
    FaultConfig config;
    config.corruptionRate = 1.0;
    config.faultAsr = false;
    config.faultQa = false;
    FaultInjector injector(config);
    ProcessOptions options;
    options.faults = &injector;

    const auto result = pipeline_->process(someViq(), options);
    // A garbled match must not augment the question with a wrong
    // landmark; the query proceeds as a plain VQ but is not counted as
    // degraded (the stage ran; its output was quarantined).
    EXPECT_EQ(result.matchedLandmark, -1);
    EXPECT_EQ(result.degradation, Degradation::None);
    EXPECT_EQ(result.augmentedQuestion, result.transcript);
}

TEST_F(RobustnessFixture, ServiceLevelDeadlinesCutWorkShort)
{
    const Deadline expired = Deadline::after(0.0);

    const auto wave = pipeline_->asr().synthesize(someVq().text);
    const auto asr = pipeline_->asr().transcribe(wave, expired);
    EXPECT_TRUE(asr.cutShort);
    EXPECT_TRUE(asr.text.empty());

    const auto qa = pipeline_->qa().answer(someVq().text, expired);
    EXPECT_TRUE(qa.cutShort);
    EXPECT_TRUE(qa.answer.empty());

    const auto image = vision::generateQueryView(someViq().landmarkId);
    const auto imm = pipeline_->imm().match(image, expired);
    EXPECT_TRUE(imm.cutShort);

    // Unbounded deadlines never cut anything short.
    const auto full = pipeline_->asr().transcribe(wave, Deadline());
    EXPECT_FALSE(full.cutShort);
    EXPECT_FALSE(full.text.empty());
}

// ---------------------------------------------------------------------
// ServerStats: the counters that price degradation.

TEST_F(RobustnessFixture, DegradedFractionMatchesInjectedRate)
{
    // The acceptance experiment: QA-only failures at rate r with no
    // retries make every injected failure exactly one degraded query, so
    // the server's degraded count must equal the injector's failure
    // count, and the degraded fraction must sit near r.
    const double rate = 0.25;
    FaultConfig config;
    config.failureRate = rate;
    config.faultAsr = false;
    config.faultImm = false;
    config.seed = 0xD06F00D;
    FaultInjector injector(config);
    ProcessOptions options;
    options.faults = &injector;

    SiriusServer server(*pipeline_);
    const auto queries = queriesOfType(QueryType::VoiceQuery);
    const size_t n = 200;
    for (size_t i = 0; i < n; ++i)
        server.handle(queries[i % queries.size()], options);

    const auto &stats = server.stats();
    EXPECT_EQ(stats.served, n);
    EXPECT_EQ(stats.failed, 0u); // QA loss degrades, never fails
    EXPECT_EQ(stats.degraded, injector.failuresInjected());
    EXPECT_EQ(stats.degradationCounts[size_t(Degradation::VqToVc)],
              stats.degraded);
    EXPECT_EQ(stats.degradedSeconds.count(), stats.degraded);
    const double fraction = static_cast<double>(stats.degraded) /
        static_cast<double>(stats.served);
    EXPECT_NEAR(fraction, rate, 0.08);
}

TEST_F(RobustnessFixture, StatsMergeFoldsRobustnessCounters)
{
    SiriusServer a(*pipeline_);
    SiriusServer b(*pipeline_);

    FaultConfig config;
    config.failureRate = 1.0;
    config.faultAsr = false;
    config.faultQa = false;
    FaultInjector injector(config);
    ProcessOptions imm_loss;
    imm_loss.faults = &injector;
    imm_loss.retry.maxRetries = 1;
    imm_loss.retry.backoffSeconds = 1e-5;

    ProcessOptions overdue;
    overdue.deadline = Deadline::after(0.0);

    a.handle(someVq());             // clean
    a.handle(someViq(), imm_loss);  // viq->vq with one retry
    b.handle(someVq(), overdue);    // failed + deadline miss

    ServerStats fleet;
    fleet.merge(a.stats());
    fleet.merge(b.stats());
    EXPECT_EQ(fleet.served, 3u);
    EXPECT_EQ(fleet.degraded, 1u);
    EXPECT_EQ(fleet.failed, 1u);
    EXPECT_EQ(fleet.deadlineMisses, 1u);
    EXPECT_EQ(fleet.stageRetries, 1u);
    EXPECT_EQ(fleet.degradationCounts[size_t(Degradation::None)], 1u);
    EXPECT_EQ(fleet.degradationCounts[size_t(Degradation::ViqToVq)], 1u);
    EXPECT_EQ(fleet.degradationCounts[size_t(Degradation::Failed)], 1u);
    EXPECT_EQ(fleet.degradedSeconds.count(), 1u);
    // A failed query is neither an action nor an answer.
    EXPECT_EQ(fleet.actions + fleet.answers, 2u);
}

// ---------------------------------------------------------------------
// ConcurrentServer: the policy applied from the admission point.

TEST_F(RobustnessFixture, ConcurrentFaultCountsStayConsistent)
{
    FaultConfig fault_config;
    fault_config.failureRate = 0.3;
    fault_config.faultAsr = false;
    fault_config.faultImm = false;
    FaultInjector injector(fault_config);

    ConcurrentServerConfig config;
    config.workers = 4;
    config.queueCapacity = 128;
    config.faults = &injector;
    ConcurrentServer server(*pipeline_, config);
    for (const auto &query : standardQuerySet())
        ASSERT_TRUE(server.submit(query));
    server.drain();

    const auto stats = server.snapshot();
    EXPECT_EQ(stats.server.served, standardQuerySet().size());
    // QA-only failures with no retries: every injected failure is
    // exactly one degraded (VC commands never reach QA), regardless of
    // how the workers interleaved their draws.
    EXPECT_EQ(stats.server.degraded, injector.failuresInjected());
    EXPECT_EQ(stats.server.failed, 0u);
    uint64_t laddered = 0;
    for (size_t i = 1; i < stats.server.degradationCounts.size(); ++i)
        laddered += stats.server.degradationCounts[i];
    EXPECT_EQ(laddered, stats.server.degraded + stats.server.failed);
    EXPECT_EQ(stats.server.actions + stats.server.answers,
              stats.server.served - stats.server.failed);
}

TEST_F(RobustnessFixture, OverloadedServerShedsOverdueQueriesCheaply)
{
    // One worker, a burst far past what the deadline allows: late queue
    // entries expire while waiting and must complete near-free as Failed
    // instead of stretching the backlog.
    ConcurrentServerConfig config;
    config.workers = 1;
    config.queueCapacity = 256;
    config.deadlineSeconds = 0.05;
    ConcurrentServer server(*pipeline_, config);

    const auto &queries = standardQuerySet();
    for (size_t i = 0; i < queries.size(); ++i)
        ASSERT_TRUE(server.submit(queries[i]));
    server.drain();

    const auto stats = server.snapshot();
    EXPECT_EQ(stats.server.served, queries.size());
    EXPECT_GT(stats.server.deadlineMisses, 0u);
    EXPECT_GT(stats.server.failed + stats.server.degraded, 0u);
    // Every completion is accounted on exactly one ladder rung.
    uint64_t rungs = 0;
    for (uint64_t count : stats.server.degradationCounts)
        rungs += count;
    EXPECT_EQ(rungs, stats.server.served);
}

} // namespace
