/**
 * @file
 * Parameterized property sweeps: a regex conformance table, an M/M/1
 * law grid, codec round-trip bounds across content, and TCO monotonicity
 * across platforms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "audio/codec.h"
#include "audio/synthesizer.h"
#include "dcsim/queueing.h"
#include "dcsim/simulation.h"
#include "dcsim/tco.h"
#include "nlp/regex.h"

namespace {

using namespace sirius;

// --------------------------------------------------- regex conformance

struct RegexCase
{
    const char *pattern;
    const char *text;
    bool full;    ///< expected fullMatch outcome
    bool found;   ///< expected search outcome
};

class RegexConformance : public ::testing::TestWithParam<RegexCase>
{
};

TEST_P(RegexConformance, MatchesExpectation)
{
    const auto &c = GetParam();
    nlp::Regex re(c.pattern);
    ASSERT_TRUE(re.ok()) << c.pattern << ": " << re.error();
    EXPECT_EQ(re.fullMatch(c.text), c.full)
        << c.pattern << " vs " << c.text;
    EXPECT_EQ(re.search(c.text), c.found)
        << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(Table, RegexConformance,
    ::testing::Values(
        RegexCase{"a", "a", true, true},
        RegexCase{"a", "b", false, false},
        RegexCase{"a", "ba", false, true},
        RegexCase{".", "", false, false},
        RegexCase{".*", "", true, true},
        RegexCase{"a*", "aaaa", true, true},
        RegexCase{"a+", "", false, false},
        RegexCase{"ab|cd", "cd", true, true},
        RegexCase{"(a|b)*c", "ababc", true, true},
        RegexCase{"(a|b)*c", "ababd", false, false},
        RegexCase{"x?y", "y", true, true},
        RegexCase{"x?y", "xy", true, true},
        RegexCase{"x?y", "xxy", false, true},
        RegexCase{"[abc]+", "cab", true, true},
        RegexCase{"[^abc]+", "cab", false, false},
        RegexCase{"[a-z0-9]+", "w0rd", true, true},
        RegexCase{"\\d\\d", "7", false, false},
        RegexCase{"\\d\\d", "x42y", false, true},
        RegexCase{"\\w+@\\w+", "user@host", true, true},
        RegexCase{"^ab", "abc", false, true},
        RegexCase{"bc$", "abc", false, true},
        RegexCase{"^abc$", "abc", true, true},
        RegexCase{"a.c", "abc", true, true},
        RegexCase{"a\\.c", "abc", false, false},
        RegexCase{"a\\.c", "a.c", true, true},
        RegexCase{"(ab)+", "ababab", true, true},
        RegexCase{"(ab)+", "aba", false, true},
        RegexCase{"a(b|c)?d", "ad", true, true},
        RegexCase{"a(b|c)?d", "abd", true, true},
        RegexCase{"a(b|c)?d", "abcd", false, false}));

// --------------------------------------------------------- M/M/1 grid

struct Mm1Case
{
    double lambda;
    double mu;
};

class Mm1Grid : public ::testing::TestWithParam<Mm1Case>
{
};

TEST_P(Mm1Grid, SimulationMatchesClosedForm)
{
    const auto &c = GetParam();
    dcsim::QueueSimConfig config;
    config.arrivalRate = c.lambda;
    config.serviceRate = c.mu;
    config.measuredQueries = 15000;
    const auto sim = dcsim::simulateQueue(config);
    const double analytic = dcsim::mm1Latency(c.lambda, c.mu);
    EXPECT_NEAR(sim.sojournSeconds.mean(), analytic, analytic * 0.12)
        << "lambda=" << c.lambda << " mu=" << c.mu;
    EXPECT_NEAR(sim.utilization, c.lambda / c.mu, 0.04);
}

INSTANTIATE_TEST_SUITE_P(Grid, Mm1Grid,
    ::testing::Values(Mm1Case{0.2, 1.0}, Mm1Case{0.5, 1.0},
                      Mm1Case{0.8, 1.0}, Mm1Case{1.0, 2.0},
                      Mm1Case{3.0, 4.0}, Mm1Case{0.3, 0.5},
                      Mm1Case{8.0, 10.0}));

// ---------------------------------------------------- codec round trips

class CodecSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CodecSweep, MuLawBeatsAdpcmSnrOnEveryUtterance)
{
    audio::SpeechSynthesizer synth;
    const auto wave = synth.synthesize(GetParam());
    const auto mu = audio::MuLawCodec::decode(
        audio::MuLawCodec::encode(wave));
    const auto adpcm = audio::AdpcmCodec::decode(
        audio::AdpcmCodec::encode(wave), wave.samples.size());
    const double mu_snr = audio::codecSnrDb(wave, mu);
    const double adpcm_snr = audio::codecSnrDb(wave, adpcm);
    EXPECT_GT(mu_snr, adpcm_snr);
    EXPECT_GT(mu_snr, 25.0);
    EXPECT_GT(adpcm_snr, 10.0);
}

INSTANTIATE_TEST_SUITE_P(Utterances, CodecSweep,
    ::testing::Values("set my alarm for 8 am",
                      "who was elected 44th president",
                      "when does this restaurant close",
                      "navigate to the airport",
                      "what is the longest river in the world"));

// -------------------------------------------------------- TCO sweeps

class TcoPlatformSweep
    : public ::testing::TestWithParam<accel::Platform>
{
};

TEST_P(TcoPlatformSweep, NormalizedTcoStrictlyDecreasingInThroughput)
{
    double prev = 1e18;
    for (double improvement = 1.0; improvement <= 64.0;
         improvement *= 2.0) {
        const double tco = dcsim::normalizedTco(GetParam(), improvement);
        EXPECT_LT(tco, prev);
        EXPECT_GT(tco, 0.0);
        prev = tco;
    }
}

TEST_P(TcoPlatformSweep, UnitThroughputNeverCheaperThanBaseline)
{
    // With no throughput gain an accelerated server can only cost more
    // (or the same, for the CPU rows).
    EXPECT_GE(dcsim::normalizedTco(GetParam(), 1.0), 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Platforms, TcoPlatformSweep,
    ::testing::Values(accel::Platform::CmpMulticore,
                      accel::Platform::Gpu, accel::Platform::Phi,
                      accel::Platform::Fpga));

} // namespace
