/**
 * @file
 * Tests for the second extension wave: voice codecs (mu-law / ADPCM),
 * the device-action intent parser, leftmost-longest regex extraction,
 * and 3-state sub-phonetic acoustic models.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "audio/codec.h"
#include "audio/phoneme.h"
#include "audio/synthesizer.h"
#include "core/intent.h"
#include "core/pipeline.h"
#include "core/query_set.h"
#include "nlp/regex.h"
#include "speech/asr_service.h"

namespace {

using namespace sirius;
using namespace sirius::audio;
using namespace sirius::core;

// -------------------------------------------------------------------- codec

TEST(MuLaw, SampleRoundTripMonotone)
{
    // Decoded values track the encoded sample within quantization error
    // that grows logarithmically with magnitude.
    for (int16_t pcm : {int16_t{0}, int16_t{100}, int16_t{-100},
                        int16_t{1000}, int16_t{-1000}, int16_t{20000},
                        int16_t{-20000}}) {
        const int16_t round =
            MuLawCodec::decodeSample(MuLawCodec::encodeSample(pcm));
        const double err = std::fabs(round - pcm);
        const double bound = 16.0 + std::fabs(pcm) * 0.05;
        EXPECT_LE(err, bound) << pcm;
    }
}

TEST(MuLaw, HalvesTheByteRate)
{
    SpeechSynthesizer synth;
    const auto wave = synth.synthesize("compression check");
    const auto bytes = MuLawCodec::encode(wave);
    EXPECT_EQ(bytes.size(), wave.samples.size()); // 1 byte vs 2 (PCM16)
}

TEST(MuLaw, WaveformSnrHigh)
{
    SpeechSynthesizer synth;
    const auto wave = synth.synthesize("who was elected president");
    const auto decoded = MuLawCodec::decode(MuLawCodec::encode(wave));
    EXPECT_GT(codecSnrDb(wave, decoded), 25.0);
}

TEST(Adpcm, QuartersTheByteRate)
{
    SpeechSynthesizer synth;
    const auto wave = synth.synthesize("four to one");
    const auto bytes = AdpcmCodec::encode(wave);
    EXPECT_LE(bytes.size(), wave.samples.size() / 2 + 1);
}

TEST(Adpcm, WaveformSnrUsable)
{
    SpeechSynthesizer synth;
    const auto wave = synth.synthesize("set my alarm");
    const auto decoded = AdpcmCodec::decode(AdpcmCodec::encode(wave),
                                            wave.samples.size());
    EXPECT_EQ(decoded.samples.size(), wave.samples.size());
    EXPECT_GT(codecSnrDb(wave, decoded), 12.0);
}

TEST(Codec, AsrSurvivesMuLawHop)
{
    // The paper's deployment: compressed voice crosses the network, the
    // server decodes and recognizes. End to end through mu-law.
    const std::vector<std::string> sentences = {"set my alarm",
                                                "play some music"};
    const auto asr = speech::AsrService::train(sentences);
    for (const auto &sentence : sentences) {
        const auto wave = asr.synthesize(sentence);
        const auto arrived = MuLawCodec::decode(MuLawCodec::encode(wave));
        EXPECT_EQ(asr.transcribe(arrived).text, sentence);
    }
}

TEST(Codec, AsrSurvivesAdpcmHop)
{
    const std::vector<std::string> sentences = {"set my alarm",
                                                "play some music"};
    const auto asr = speech::AsrService::train(sentences);
    for (const auto &sentence : sentences) {
        const auto wave = asr.synthesize(sentence);
        const auto arrived = AdpcmCodec::decode(
            AdpcmCodec::encode(wave), wave.samples.size());
        EXPECT_EQ(asr.transcribe(arrived).text, sentence);
    }
}

TEST(Codec, SnrRejectsEmpty)
{
    Waveform empty;
    EXPECT_EXIT(codecSnrDb(empty, empty),
                ::testing::ExitedWithCode(1), "empty");
}

// ------------------------------------------------------------------ intents

TEST(IntentParser, CoversTheVoiceCommandInputSet)
{
    // Every VC query in the Table-1 input set must parse to a concrete
    // (non-Unknown) intent.
    IntentParser parser;
    for (const auto &query : queriesOfType(QueryType::VoiceCommand)) {
        const Intent intent = parser.parse(query.text);
        EXPECT_NE(intent.kind, IntentKind::Unknown) << query.text;
    }
}

TEST(IntentParser, ExtractsSlots)
{
    IntentParser parser;
    const auto alarm = parser.parse("set my alarm for 8 am");
    EXPECT_EQ(alarm.kind, IntentKind::SetAlarm);
    EXPECT_EQ(alarm.slots.at("time"), "8 am");

    const auto volume = parser.parse("turn down the volume");
    EXPECT_EQ(volume.kind, IntentKind::AdjustVolume);
    EXPECT_EQ(volume.slots.at("direction"), "down");

    const auto toggle = parser.parse("turn on the flashlight");
    EXPECT_EQ(toggle.kind, IntentKind::ToggleDevice);
    EXPECT_EQ(toggle.slots.at("state"), "on");
    EXPECT_EQ(toggle.slots.at("device"), "flashlight");

    const auto music = parser.parse("play some jazz music");
    EXPECT_EQ(music.kind, IntentKind::PlayMusic);
    EXPECT_EQ(music.slots.at("genre"), "jazz");
}

TEST(IntentParser, DistinguishesStopFromPlay)
{
    IntentParser parser;
    EXPECT_EQ(parser.parse("stop the music player").kind,
              IntentKind::StopMusic);
    EXPECT_EQ(parser.parse("play some jazz music").kind,
              IntentKind::PlayMusic);
}

TEST(IntentParser, UnknownForQuestions)
{
    IntentParser parser;
    EXPECT_EQ(parser.parse("what is the capital of italy").kind,
              IntentKind::Unknown);
}

TEST(IntentParser, KindNamesDistinct)
{
    EXPECT_STRNE(intentKindName(IntentKind::SetAlarm),
                 intentKindName(IntentKind::Call));
    EXPECT_STREQ(intentKindName(IntentKind::Unknown), "unknown");
}

// ------------------------------------------------------------ regex extract

TEST(RegexFind, LeftmostLongest)
{
    nlp::Regex re("\\d+");
    size_t start = 0, length = 0;
    ASSERT_TRUE(re.findFirst("abc 1234 and 56", start, length));
    EXPECT_EQ(start, 4u);
    EXPECT_EQ(length, 4u); // longest at the leftmost position
}

TEST(RegexFind, NoMatchReturnsFalse)
{
    nlp::Regex re("\\d+");
    size_t start = 0, length = 0;
    EXPECT_FALSE(re.findFirst("no digits here", start, length));
}

TEST(RegexFind, AnchoredExtraction)
{
    nlp::Regex re("^\\w+");
    size_t start = 0, length = 0;
    ASSERT_TRUE(re.findFirst("hello world", start, length));
    EXPECT_EQ(start, 0u);
    EXPECT_EQ(length, 5u);
}

TEST(RegexFind, GreedyAcrossAlternation)
{
    nlp::Regex re("(ab|abc)");
    size_t start = 0, length = 0;
    ASSERT_TRUE(re.findFirst("abc", start, length));
    EXPECT_EQ(length, 3u); // longest alternative wins
}

// ----------------------------------------------------- 3-state HMM phonemes

TEST(SubPhoneticStates, TriplesAcousticStates)
{
    speech::AsrConfig config;
    config.statesPerPhoneme = 3;
    const auto asr = speech::AsrService::train({"set my alarm"}, config);
    EXPECT_EQ(asr.scorer().stateCount(),
              static_cast<size_t>(audio::kNumPhonemes) * 3);
}

TEST(SubPhoneticStates, StillDecodesPerfectly)
{
    speech::AsrConfig config;
    config.statesPerPhoneme = 3;
    const std::vector<std::string> sentences = {
        "set my alarm", "who was elected president",
        "when does this restaurant close"};
    const auto asr = speech::AsrService::train(sentences, config);
    for (const auto &sentence : sentences)
        EXPECT_EQ(asr.transcribeText(sentence).text, sentence);
}

TEST(SubPhoneticStates, DnnBackendWorksToo)
{
    speech::AsrConfig config;
    config.statesPerPhoneme = 3;
    config.backend = speech::AsrBackend::Dnn;
    config.dnnHidden = {64};
    const std::vector<std::string> sentences = {"play some music",
                                                "take a picture now"};
    const auto asr = speech::AsrService::train(sentences, config);
    for (const auto &sentence : sentences)
        EXPECT_EQ(asr.transcribeText(sentence).text, sentence);
}

// --------------------------------------------------------- pipeline intents

TEST(PipelineIntent, VoiceCommandYieldsParsedIntent)
{
    SiriusConfig config;
    config.qa.fillerDocs = 40;
    const auto pipeline = SiriusPipeline::build(config);
    const Query q{QueryType::VoiceCommand, "set my alarm for 8 am", -1,
                  ""};
    const auto result = pipeline.process(q);
    EXPECT_EQ(result.intent.kind, IntentKind::SetAlarm);
    EXPECT_EQ(result.intent.slots.at("time"), "8 am");
}

} // namespace
