/**
 * @file
 * Tests for the speech library: GMM, DNN, language model, decoder, and the
 * end-to-end ASR service (both acoustic backends must genuinely decode
 * synthesized speech back to text).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "audio/phoneme.h"
#include "common/rng.h"
#include "speech/asr_service.h"
#include "speech/decoder.h"
#include "speech/dnn.h"
#include "speech/gmm.h"
#include "speech/language_model.h"

namespace {

using namespace sirius;
using namespace sirius::speech;

// ---------------------------------------------------------------------- GMM

TEST(DiagGaussian, DensityPeaksAtMean)
{
    DiagGaussian g;
    g.mean = {1.0f, -2.0f};
    g.invVar = {1.0f, 1.0f};
    g.refreshNorm();
    const double at_mean = g.logDensity({1.0f, -2.0f});
    const double off_mean = g.logDensity({2.0f, -2.0f});
    EXPECT_GT(at_mean, off_mean);
    EXPECT_NEAR(at_mean, -std::log(2.0 * M_PI), 1e-6);
}

TEST(Gmm, FitRecoversTwoClusters)
{
    Rng rng(3);
    std::vector<audio::FeatureVector> data;
    for (int i = 0; i < 300; ++i) {
        const float center = (i % 2 == 0) ? -5.0f : 5.0f;
        data.push_back({center + static_cast<float>(rng.gaussian(0, 0.5)),
                        center + static_cast<float>(rng.gaussian(0, 0.5))});
    }
    Rng fit_rng(4);
    const Gmm gmm = Gmm::fit(data, 2, 10, fit_rng);
    ASSERT_EQ(gmm.components().size(), 2u);
    // Component means should land near (-5,-5) and (5,5) in some order.
    const auto &m0 = gmm.components()[0].mean;
    const auto &m1 = gmm.components()[1].mean;
    const bool ordered = (m0[0] < 0 && m1[0] > 0) ||
        (m0[0] > 0 && m1[0] < 0);
    EXPECT_TRUE(ordered);
    EXPECT_NEAR(std::fabs(m0[0]), 5.0, 0.5);
    EXPECT_NEAR(std::fabs(m1[0]), 5.0, 0.5);
}

TEST(Gmm, LikelihoodHigherNearTrainingData)
{
    Rng rng(5);
    std::vector<audio::FeatureVector> data;
    for (int i = 0; i < 200; ++i)
        data.push_back({static_cast<float>(rng.gaussian(2.0, 0.3))});
    Rng fit_rng(6);
    const Gmm gmm = Gmm::fit(data, 2, 8, fit_rng);
    EXPECT_GT(gmm.logLikelihood({2.0f}), gmm.logLikelihood({10.0f}));
}

TEST(Gmm, WeightsNormalized)
{
    Rng rng(7);
    std::vector<audio::FeatureVector> data;
    for (int i = 0; i < 100; ++i)
        data.push_back({static_cast<float>(rng.gaussian(0, 1))});
    Rng fit_rng(8);
    const Gmm gmm = Gmm::fit(data, 3, 5, fit_rng);
    double sum = 0.0;
    for (float lw : gmm.logWeights())
        sum += std::exp(static_cast<double>(lw));
    EXPECT_NEAR(sum, 1.0, 1e-3);
}

// ---------------------------------------------------------------------- DNN

TEST(FeedForwardNet, ParameterCountMatchesArchitecture)
{
    FeedForwardNet net({4, 8, 3}, 1);
    EXPECT_EQ(net.parameterCount(), 4u * 8 + 8 + 8 * 3 + 3);
    EXPECT_EQ(net.inputSize(), 4u);
    EXPECT_EQ(net.outputSize(), 3u);
}

TEST(FeedForwardNet, ForwardIsLogDistribution)
{
    FeedForwardNet net({5, 16, 7}, 2);
    const auto out = net.forward({0.1f, -0.2f, 0.3f, 0.0f, 1.0f});
    ASSERT_EQ(out.size(), 7u);
    double sum = 0.0;
    for (float lp : out)
        sum += std::exp(static_cast<double>(lp));
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(FeedForwardNet, LearnsXorLikeSeparation)
{
    // Two interleaved Gaussian blobs per class; the net must exceed 95%.
    Rng rng(9);
    std::vector<audio::FeatureVector> inputs;
    std::vector<int> labels;
    for (int i = 0; i < 400; ++i) {
        const int label = i % 2;
        const float sx = (i / 2) % 2 == 0 ? 1.0f : -1.0f;
        const float sy = label == 0 ? sx : -sx;
        inputs.push_back({sx * 2 + static_cast<float>(rng.gaussian(0, .3)),
                          sy * 2 + static_cast<float>(rng.gaussian(0, .3))});
        labels.push_back(label);
    }
    FeedForwardNet net({2, 16, 2}, 10);
    net.train(inputs, labels, 30, 0.05f, 11);
    EXPECT_GT(net.accuracy(inputs, labels), 0.95);
}

TEST(FeedForwardNet, SgdStepReducesLossOnRepeatedExample)
{
    FeedForwardNet net({3, 8, 4}, 12);
    const std::vector<float> x = {0.5f, -0.5f, 1.0f};
    const double first = net.sgdStep(x, 2, 0.1f);
    double last = first;
    for (int i = 0; i < 20; ++i)
        last = net.sgdStep(x, 2, 0.1f);
    EXPECT_LT(last, first);
}

// ----------------------------------------------------------------------- LM

TEST(Vocabulary, IdsStableAndReserved)
{
    Vocabulary vocab;
    EXPECT_EQ(vocab.idOf("<s>"), 0);
    const int a = vocab.add("apple");
    const int b = vocab.add("banana");
    EXPECT_EQ(vocab.add("apple"), a);
    EXPECT_NE(a, b);
    EXPECT_EQ(vocab.wordOf(a), "apple");
    EXPECT_EQ(vocab.idOf("cherry"), -1);
}

TEST(BigramLm, ProbabilitiesNormalized)
{
    Vocabulary vocab;
    const int a = vocab.add("a");
    const int b = vocab.add("b");
    BigramLm lm({{a, b}, {a, a, b}}, vocab.size());
    for (int prev = 0; prev < static_cast<int>(vocab.size()); ++prev) {
        double sum = 0.0;
        for (int next = 0; next < static_cast<int>(vocab.size()); ++next)
            sum += std::exp(lm.logProb(prev, next));
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(BigramLm, SeenBigramsMoreLikely)
{
    Vocabulary vocab;
    const int the = vocab.add("the");
    const int cat = vocab.add("cat");
    const int dog = vocab.add("dog");
    BigramLm lm({{the, cat}, {the, cat}, {the, dog}}, vocab.size());
    EXPECT_GT(lm.logProb(the, cat), lm.logProb(the, dog));
    EXPECT_GT(lm.logProb(the, dog), lm.logProb(cat, dog));
}

// ------------------------------------------------------------------ decoder

TEST(Lexicon, AddWordPronounces)
{
    Lexicon lexicon;
    const int id = lexicon.addWord("cab");
    ASSERT_EQ(lexicon.prons[static_cast<size_t>(id)].size(), 3u);
    EXPECT_EQ(lexicon.prons[static_cast<size_t>(id)][0],
              audio::phonemeOf('c'));
}

TEST(ViterbiDecoder, StateGraphSized)
{
    Lexicon lexicon;
    lexicon.addWord("ab");
    lexicon.addWord("cde");
    BigramLm lm({}, lexicon.vocab.size());
    ViterbiDecoder decoder(lexicon, lm);
    // 1 global silence + (2 phonemes + 1 sil) + (3 phonemes + 1 sil).
    EXPECT_EQ(decoder.stateCount(), 8u);
}

TEST(ViterbiDecoder, EmptyScoresGiveEmptyText)
{
    Lexicon lexicon;
    lexicon.addWord("hi");
    BigramLm lm({}, lexicon.vocab.size());
    ViterbiDecoder decoder(lexicon, lm);
    const auto result = decoder.decode({});
    EXPECT_TRUE(result.text.empty());
}

// ------------------------------------------------------------- ASR service

class AsrEndToEnd : public ::testing::TestWithParam<AsrBackend>
{
  protected:
    static const std::vector<std::string> &
    sentences()
    {
        static const std::vector<std::string> corpus = {
            "set my alarm",
            "who was elected president",
            "what is the capital of italy",
            "play some music",
            "when does this restaurant close",
        };
        return corpus;
    }

    AsrService
    makeService(AsrBackend backend) const
    {
        AsrConfig config;
        config.backend = backend;
        config.trainNoiseVariants = 2;
        config.dnnHidden = {64};
        config.dnnEpochs = 4;
        return AsrService::train(sentences(), config);
    }
};

TEST_P(AsrEndToEnd, DecodesTrainingSentences)
{
    const auto service = makeService(GetParam());
    for (const auto &sentence : sentences()) {
        const auto result = service.transcribeText(sentence);
        EXPECT_EQ(result.text, sentence)
            << "backend=" << service.backendName();
    }
}

TEST_P(AsrEndToEnd, DecodesNovelWordOrder)
{
    const auto service = makeService(GetParam());
    // Words seen in training, but a sentence never seen.
    const std::string novel = "who is the president of italy";
    const auto result = service.transcribeText(novel);
    // Allow at most one word error for the unseen word order.
    EXPECT_LE(wordEditDistance(novel, result.text), 1u)
        << "got: " << result.text;
}

TEST_P(AsrEndToEnd, TimingsPopulated)
{
    const auto service = makeService(GetParam());
    const auto result = service.transcribeText("set my alarm");
    EXPECT_GT(result.frames, 0u);
    EXPECT_GT(result.timings.featureExtraction, 0.0);
    EXPECT_GT(result.timings.scoring, 0.0);
    EXPECT_GT(result.timings.search, 0.0);
}

TEST_P(AsrEndToEnd, WordErrorRateLow)
{
    const auto service = makeService(GetParam());
    EXPECT_LT(service.wordErrorRate(sentences()), 0.05);
}

INSTANTIATE_TEST_SUITE_P(Backends, AsrEndToEnd,
                         ::testing::Values(AsrBackend::Gmm,
                                           AsrBackend::Dnn),
                         [](const auto &info) {
                             return info.param == AsrBackend::Gmm
                                 ? "Gmm" : "Dnn";
                         });

TEST(AsrService, WordEditDistanceBasics)
{
    EXPECT_EQ(wordEditDistance("a b c", "a b c"), 0u);
    EXPECT_EQ(wordEditDistance("a b c", "a c"), 1u);
    EXPECT_EQ(wordEditDistance("a b", "a x b"), 1u);
    EXPECT_EQ(wordEditDistance("", "a b"), 2u);
}

} // namespace
