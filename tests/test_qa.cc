/**
 * @file
 * Tests for the QA service: question analysis, document filters, answer
 * extraction, and the full pipeline answering the paper's query set.
 */

#include <gtest/gtest.h>

#include "common/strings.h"
#include "qa/answer.h"
#include "qa/filters.h"
#include "qa/qa_service.h"
#include "qa/question.h"
#include "search/corpus.h"

namespace {

using namespace sirius;
using namespace sirius::qa;

class QaFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        QaConfig config;
        config.fillerDocs = 120;
        service_ = new QaService(QaService::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete service_;
        service_ = nullptr;
    }

    static QaService *service_;
};

QaService *QaFixture::service_ = nullptr;

// ---------------------------------------------------------------- analysis

TEST_F(QaFixture, WhoQuestionTypedPerson)
{
    const auto a = service_->analyzer().analyze(
        "who was elected 44th president");
    EXPECT_EQ(a.type, AnswerType::Person);
    EXPECT_GT(a.regexHits, 0u);
    EXPECT_FALSE(a.searchQuery.empty());
}

TEST_F(QaFixture, WhereQuestionTypedLocation)
{
    const auto a = service_->analyzer().analyze("where is las vegas");
    EXPECT_EQ(a.type, AnswerType::Location);
}

TEST_F(QaFixture, WhenQuestionTypedTime)
{
    const auto a = service_->analyzer().analyze(
        "when does falcon restaurant close");
    EXPECT_EQ(a.type, AnswerType::Time);
}

TEST_F(QaFixture, WhatQuestionTypedEntity)
{
    const auto a = service_->analyzer().analyze(
        "what is the capital of italy");
    EXPECT_EQ(a.type, AnswerType::Entity);
}

TEST_F(QaFixture, FocusWordsExcludeStopwords)
{
    const auto a = service_->analyzer().analyze(
        "what is the capital of italy");
    for (const auto &w : a.focusWords) {
        EXPECT_FALSE(QuestionAnalyzer::isStopword(w)) << w;
    }
    EXPECT_NE(std::find(a.focusWords.begin(), a.focusWords.end(),
                        "capital"), a.focusWords.end());
    EXPECT_NE(std::find(a.focusWords.begin(), a.focusWords.end(),
                        "italy"), a.focusWords.end());
}

TEST_F(QaFixture, StemsAlignWithFocusWords)
{
    const auto a = service_->analyzer().analyze(
        "who discovered the law of gravity");
    ASSERT_EQ(a.focusWords.size(), a.focusStems.size());
    EXPECT_FALSE(a.focusStems.empty());
}

// ----------------------------------------------------------------- filters

TEST_F(QaFixture, KeywordFilterPrefersRelevantDocument)
{
    KeywordOverlapFilter filter;
    const auto analysis = service_->analyzer().analyze(
        "what is the capital of italy");
    search::Document relevant{0, "italy",
        "The capital of Italy is Rome. Rome is the capital and the "
        "largest city of Italy."};
    search::Document irrelevant{1, "other",
        "The harbor hosts a busy trading port. The festival attracts "
        "many visitors."};
    const auto on = filter.apply(relevant, analysis);
    const auto off = filter.apply(irrelevant, analysis);
    EXPECT_GT(on.hits, off.hits);
    EXPECT_GT(on.score, off.score);
}

TEST_F(QaFixture, RegexFilterCountsAnswerShapes)
{
    AnswerTypeRegexFilter filter;
    QuestionAnalysis analysis;
    analysis.type = AnswerType::Time;
    search::Document doc{0, "t", "The shop closes at 9 Pm in 1999."};
    const auto outcome = filter.apply(doc, analysis);
    EXPECT_GE(outcome.hits, 2u); // "9 Pm" and "1999"
}

TEST_F(QaFixture, PosFilterFindsCandidates)
{
    PosCandidateFilter filter(service_->analyzer().tagger());
    QuestionAnalysis analysis;
    analysis.type = AnswerType::Entity;
    search::Document doc{0, "d",
        "the president visited the capital and the museum."};
    const auto outcome = filter.apply(doc, analysis);
    EXPECT_GT(outcome.hits, 0u);
}

TEST_F(QaFixture, ProximityFilterNeedsTwoStems)
{
    ProximityFilter filter;
    const auto analysis = service_->analyzer().analyze(
        "what is the capital of italy");
    search::Document close_doc{0, "a", "the capital of italy is rome"};
    search::Document far_doc{1, "b",
        "the capital city hosts a market while somewhere very far away "
        "and much later someone mentioned italy"};
    EXPECT_GT(filter.apply(close_doc, analysis).hits,
              filter.apply(far_doc, analysis).hits);
}

TEST_F(QaFixture, StandardFilterSuiteComplete)
{
    const auto filters = makeStandardFilters(
        service_->analyzer().tagger());
    ASSERT_EQ(filters.size(), 4u);
    bool has_stem = false, has_regex = false, has_crf = false;
    for (const auto &f : filters) {
        has_stem |= f->component() == NlpComponent::Stemmer;
        has_regex |= f->component() == NlpComponent::Regex;
        has_crf |= f->component() == NlpComponent::Crf;
    }
    EXPECT_TRUE(has_stem && has_regex && has_crf);
}

// ---------------------------------------------------------------- pipeline

struct QaCase
{
    const char *question;
    const char *expected; ///< lower-case answer substring
};

class QaGolden : public QaFixture,
                 public ::testing::WithParamInterface<QaCase>
{
};

TEST_P(QaGolden, AnswersFromCorpus)
{
    const auto result = service_->answer(GetParam().question);
    EXPECT_NE(toLower(result.answer).find(GetParam().expected),
              std::string::npos)
        << "question: " << GetParam().question
        << " answer: " << result.answer;
}

INSTANTIATE_TEST_SUITE_P(InputSet, QaGolden,
    ::testing::Values(
        QaCase{"where is las vegas", "nevada"},
        QaCase{"what is the capital of italy", "rome"},
        QaCase{"who is the author of harry potter", "rowling"},
        QaCase{"who was elected 44th president", "obama"},
        QaCase{"what is the capital of france", "paris"},
        QaCase{"who invented the telephone", "bell"},
        QaCase{"what is the longest river in the world", "nile"},
        QaCase{"who painted the mona lisa", "vinci"},
        QaCase{"what is the largest ocean on earth", "pacific"},
        QaCase{"who wrote romeo and juliet", "shakespeare"},
        QaCase{"what is the currency of japan", "yen"},
        QaCase{"who discovered the law of gravity", "newton"},
        QaCase{"what is the highest mountain in the world", "everest"},
        QaCase{"what is the capital of cuba", "havana"},
        QaCase{"who is the current president of the united states",
               "obama"},
        QaCase{"when does falcon restaurant close", "9 pm"},
        QaCase{"when does golden dragon restaurant close", "11 pm"},
        QaCase{"when does liberty museum close", "6 pm"}));

TEST_F(QaFixture, TimingsPopulated)
{
    const auto result = service_->answer(
        "what is the capital of italy");
    EXPECT_GT(result.timings.total(), 0.0);
    EXPECT_GT(result.timings.crf, 0.0);
    EXPECT_GT(result.timings.stemmer, 0.0);
    EXPECT_GT(result.timings.search, 0.0);
    EXPECT_GT(result.docsExamined, 0u);
    EXPECT_GT(result.filterHits, 0u);
}

TEST_F(QaFixture, NlpDominatesSearchTime)
{
    // Figure 9: stemmer+regex+CRF make up the bulk of QA cycles; BM25
    // retrieval is comparatively cheap.
    QaTimings total;
    for (const auto *q : {"who invented the telephone",
                          "what is the capital of cuba",
                          "where is las vegas"}) {
        const auto result = service_->answer(q);
        total.stemmer += result.timings.stemmer;
        total.regex += result.timings.regex;
        total.crf += result.timings.crf;
        total.search += result.timings.search;
        total.select += result.timings.select;
    }
    EXPECT_GT(total.stemmer + total.regex + total.crf, total.search);
}

TEST_F(QaFixture, NonsenseQuestionGivesEmptyOrWeakAnswer)
{
    const auto result = service_->answer(
        "zzz qqq unknownword gibberish");
    EXPECT_EQ(result.docsExamined, 0u);
    EXPECT_TRUE(result.answer.empty());
}

TEST_F(QaFixture, FilterHitsVaryAcrossQueries)
{
    const auto a = service_->answer("what is the capital of italy");
    const auto b = service_->answer(
        "who is the current president of the united states");
    EXPECT_NE(a.filterHits, b.filterHits);
}

// ------------------------------------------------------------- extraction

TEST(AnswerExtractor, PrefersProximateCandidate)
{
    AnswerExtractor extractor;
    QuestionAnalysis analysis;
    analysis.type = AnswerType::Time;
    analysis.focusStems = {"close"};
    search::Document doc{0, "d",
        "The shop closes at 9 Pm. The shop opened in 1850."};
    const auto candidates = extractor.extract({{&doc, 1.0}}, analysis);
    ASSERT_FALSE(candidates.empty());
    EXPECT_EQ(toLower(candidates[0].text), "9 pm");
}

TEST(AnswerExtractor, SkipsQuestionEcho)
{
    // A candidate made purely of question words must not be returned.
    AnswerExtractor extractor;
    QuestionAnalysis analysis;
    analysis.type = AnswerType::Person;
    analysis.focusStems = {"harri", "potter"};
    search::Document doc{0, "d",
        "Harry Potter was created by Joanne Rowling."};
    const auto candidates = extractor.extract({{&doc, 1.0}}, analysis);
    ASSERT_FALSE(candidates.empty());
    EXPECT_EQ(toLower(candidates[0].text), "joanne rowling");
}

TEST(AnswerExtractor, EmptyDocsGiveNoCandidates)
{
    AnswerExtractor extractor;
    QuestionAnalysis analysis;
    analysis.type = AnswerType::Entity;
    analysis.focusStems = {"capit"};
    EXPECT_TRUE(extractor.extract({}, analysis).empty());
}

} // namespace
