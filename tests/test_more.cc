/**
 * @file
 * Second-wave coverage: deeper properties and edge cases across the
 * regex engine, stemmer, CRF, decoder, vision, search, QA, accelerator
 * models and the queue simulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/latency.h"
#include "accel/model.h"
#include "common/rng.h"
#include "dcsim/designer.h"
#include "dcsim/queueing.h"
#include "dcsim/scalability.h"
#include "dcsim/simulation.h"
#include "dcsim/tco.h"
#include "nlp/crf.h"
#include "nlp/porter_stemmer.h"
#include "nlp/pos_corpus.h"
#include "nlp/regex.h"
#include "search/inverted_index.h"
#include "speech/asr_service.h"
#include "speech/decoder.h"
#include "vision/imm_service.h"
#include "vision/landmarks.h"
#include "vision/surf.h"

namespace {

using namespace sirius;

// -------------------------------------------------------------------- regex

TEST(RegexMore, NestedGroupsAndQuantifiers)
{
    nlp::Regex re("a(b(c|d)*)+e");
    ASSERT_TRUE(re.ok());
    EXPECT_TRUE(re.fullMatch("abe"));
    EXPECT_TRUE(re.fullMatch("abcde"));
    EXPECT_TRUE(re.fullMatch("abccddbce"));
    EXPECT_FALSE(re.fullMatch("ae"));
    EXPECT_FALSE(re.fullMatch("abca"));
}

TEST(RegexMore, AnchorsInsideAlternation)
{
    nlp::Regex re("^start|end$");
    EXPECT_TRUE(re.search("start of it"));
    EXPECT_TRUE(re.search("at the end"));
    EXPECT_FALSE(re.search("the start inside"));
    EXPECT_FALSE(re.search("no match"));
}

TEST(RegexMore, ClassWithEscapesAndLiterals)
{
    nlp::Regex re("[\\d\\s,]+");
    ASSERT_TRUE(re.ok());
    EXPECT_TRUE(re.fullMatch("1 2,3"));
    EXPECT_FALSE(re.fullMatch("1a2"));
}

TEST(RegexMore, DashAtClassEndIsLiteral)
{
    nlp::Regex re("[a-]+");
    ASSERT_TRUE(re.ok());
    EXPECT_TRUE(re.fullMatch("a-a"));
    EXPECT_FALSE(re.fullMatch("b"));
}

TEST(RegexMore, QuestionAfterGroup)
{
    nlp::Regex re("(very )?good");
    EXPECT_TRUE(re.fullMatch("good"));
    EXPECT_TRUE(re.fullMatch("very good"));
    EXPECT_FALSE(re.fullMatch("very very good"));
}

TEST(RegexMore, CountMatchesOverlapping)
{
    // Matches are counted by distinct start offsets, so "aaa" has three
    // places where "aa" can begin a match... two, since the last 'a'
    // alone can't.
    nlp::Regex re("aa");
    EXPECT_EQ(re.countMatches("aaa"), 2u);
}

TEST(RegexMore, ProgramSizeBounded)
{
    // Thompson construction is linear in pattern size.
    nlp::Regex small("abc");
    nlp::Regex big("(a|b)*c+d?e(f|g|h)*");
    EXPECT_LT(small.programSize(), 10u);
    EXPECT_LT(big.programSize(), 64u);
}

TEST(RegexMore, LongLiteralChainLinearTime)
{
    std::string pattern(200, 'a');
    nlp::Regex re(pattern);
    ASSERT_TRUE(re.ok());
    EXPECT_TRUE(re.fullMatch(std::string(200, 'a')));
    EXPECT_FALSE(re.fullMatch(std::string(199, 'a')));
}

// ------------------------------------------------------------------ stemmer

TEST(StemmerMore, StepFamilies)
{
    nlp::PorterStemmer stemmer;
    // 1a
    EXPECT_EQ(stemmer.stem("ponies"), "poni");
    // 1b with at/bl/iz restoration
    EXPECT_EQ(stemmer.stem("luxuriated"), "luxuri");
    EXPECT_EQ(stemmer.stem("troubling"), "troubl");
    // 2
    EXPECT_EQ(stemmer.stem("generalization"), "gener");
    // 3
    EXPECT_EQ(stemmer.stem("duplicate"), "duplic");
    // 4
    EXPECT_EQ(stemmer.stem("effective"), "effect");
    // 5
    EXPECT_EQ(stemmer.stem("probate"), "probat");
}

TEST(StemmerMore, EmptyAndUnicodeSafe)
{
    nlp::PorterStemmer stemmer;
    EXPECT_EQ(stemmer.stem(""), "");
    EXPECT_EQ(stemmer.stem("caf\xc3\xa9"), "caf\xc3\xa9");
}

// ---------------------------------------------------------------------- CRF

TEST(CrfMore, LearnsPureTransitionStructure)
{
    // Words carry no signal (all identical); tags strictly alternate.
    // Only the transition weights can explain the data.
    std::vector<nlp::TaggedSentence> corpus;
    for (int i = 0; i < 60; ++i) {
        nlp::TaggedSentence s;
        for (int t = 0; t < 8; ++t) {
            s.words.push_back("x");
            s.tags.push_back(t % 2 == 0 ? nlp::PosTag::Noun
                                        : nlp::PosTag::Verb);
        }
        corpus.push_back(std::move(s));
    }
    nlp::CrfTagger tagger(1024);
    nlp::CrfTagger::TrainOptions opts;
    opts.epochs = 8;
    tagger.train(corpus, opts);
    const auto tags = tagger.tag({"x", "x", "x", "x"});
    EXPECT_EQ(tags[0], nlp::PosTag::Noun);
    EXPECT_EQ(tags[1], nlp::PosTag::Verb);
    EXPECT_EQ(tags[2], nlp::PosTag::Noun);
    EXPECT_EQ(tags[3], nlp::PosTag::Verb);
}

TEST(CrfMore, TrainingImprovesLikelihood)
{
    const auto corpus = nlp::generatePosCorpus(100, 3);
    nlp::CrfTagger tagger(size_t{1} << 14);
    double before = 0.0;
    for (const auto &s : corpus)
        before += tagger.logLikelihood(s);
    nlp::CrfTagger::TrainOptions opts;
    opts.epochs = 3;
    tagger.train(corpus, opts);
    double after = 0.0;
    for (const auto &s : corpus)
        after += tagger.logLikelihood(s);
    EXPECT_GT(after, before);
}

// ------------------------------------------------------------------ decoder

TEST(DecoderMore, WiderBeamNeverWorseScore)
{
    speech::AsrConfig narrow_cfg;
    narrow_cfg.decoder.beam = 3.0;
    speech::AsrConfig wide_cfg;
    wide_cfg.decoder.beam = 100.0;
    const std::vector<std::string> sentences = {"play some music",
                                                "set my alarm"};
    const auto narrow = speech::AsrService::train(sentences, narrow_cfg);
    const auto wide = speech::AsrService::train(sentences, wide_cfg);
    for (const auto &sentence : sentences) {
        const auto n = narrow.transcribeText(sentence);
        const auto w = wide.transcribeText(sentence);
        EXPECT_GE(w.logProb + 1e-9, n.logProb) << sentence;
    }
}

TEST(DecoderMore, DecodeDeterministic)
{
    const std::vector<std::string> sentences = {"who was elected"};
    const auto asr = speech::AsrService::train(sentences);
    const auto a = asr.transcribeText(sentences[0]);
    const auto b = asr.transcribeText(sentences[0]);
    EXPECT_EQ(a.text, b.text);
    EXPECT_DOUBLE_EQ(a.logProb, b.logProb);
}

TEST(DecoderMore, LogProbFinite)
{
    const auto asr = speech::AsrService::train({"open the camera app"});
    const auto result = asr.transcribeText("open the camera app");
    EXPECT_TRUE(std::isfinite(result.logProb));
}

// ------------------------------------------------------------------- vision

TEST(VisionMore, LargerBlobDetectedAtLargerScale)
{
    auto strongest_scale = [](int radius) {
        vision::Image img(192, 192, 40);
        img.fillCircle(96, 96, radius, 230);
        const auto keypoints =
            vision::detectKeypoints(vision::IntegralImage(img));
        float best_resp = -1.0f, best_scale = 0.0f;
        for (const auto &kp : keypoints) {
            if (kp.response > best_resp) {
                best_resp = kp.response;
                best_scale = kp.scale;
            }
        }
        return best_scale;
    };
    EXPECT_LT(strongest_scale(6), strongest_scale(18));
}

TEST(VisionMore, TighterRatioFewerMatches)
{
    const vision::Image img = vision::generateLandmark(5);
    const vision::IntegralImage integral(img);
    auto keypoints = vision::detectKeypoints(integral);
    const auto descriptors = vision::describeKeypoints(integral,
                                                       keypoints);
    const vision::KdTree tree(descriptors);

    const vision::Image query = vision::generateQueryView(5);
    const vision::IntegralImage query_integral(query);
    auto query_kps = vision::detectKeypoints(query_integral);
    const auto query_desc = vision::describeKeypoints(query_integral,
                                                      query_kps);
    const auto loose = vision::matchDescriptors(query_desc, tree, 0.95f);
    const auto tight = vision::matchDescriptors(query_desc, tree, 0.6f);
    EXPECT_GE(loose.goodMatches, tight.goodMatches);
    EXPECT_GT(loose.goodMatches, 0u);
}

TEST(VisionMore, WrongLandmarkScoresFewerMatches)
{
    const auto imm = vision::ImmService::build(6);
    // Matching landmark 2's view: entry 2 must hold more good matches
    // than any other entry.
    const auto result = imm.match(vision::generateQueryView(2));
    EXPECT_EQ(result.bestId, 2);
    EXPECT_GT(result.bestMatches, 5u);
}

// ------------------------------------------------------------------- search

TEST(SearchMore, RareTermsWeighMore)
{
    // A document mentioning a rare entity must outrank one sharing only
    // ubiquitous words.
    std::vector<search::Document> docs;
    docs.push_back({0, "a", "quetzal bird of the cloud forest"});
    for (int i = 1; i <= 20; ++i) {
        docs.push_back({i, "b" + std::to_string(i),
                        "the bird lives near the city and the market"});
    }
    const search::InvertedIndex index(docs);
    const auto hits = index.search("quetzal bird", 3);
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits[0].docId, 0);
}

TEST(SearchMore, ScoresStableUnderK)
{
    const search::InvertedIndex index(search::buildEncyclopedia(60, 31));
    const auto top3 = index.search("capital of france", 3);
    const auto top10 = index.search("capital of france", 10);
    for (size_t i = 0; i < top3.size(); ++i) {
        EXPECT_EQ(top3[i].docId, top10[i].docId);
        EXPECT_DOUBLE_EQ(top3[i].score, top10[i].score);
    }
}

// ------------------------------------------------------------------- accel

TEST(AccelMore, MulticoreColumnNearPaperRange)
{
    // Table 5's CMP column sits between 3.5x and 6x; the analytic model
    // must land in that neighbourhood for every kernel.
    accel::AnalyticModel model;
    for (accel::Kernel kernel : accel::suiteKernels()) {
        const double s = model.speedup(
            kernel, accel::Platform::CmpMulticore);
        EXPECT_GT(s, 2.5) << accel::kernelName(kernel);
        EXPECT_LT(s, 7.0) << accel::kernelName(kernel);
    }
}

TEST(AccelMore, HmmRowsAreConservative)
{
    accel::CalibratedModel model;
    // The [35]-based HMM search assumption: 3.7x on GPU/FPGA.
    EXPECT_DOUBLE_EQ(model.speedup(accel::Kernel::HmmSearch,
                                   accel::Platform::Gpu), 3.7);
    EXPECT_DOUBLE_EQ(model.speedup(accel::Kernel::HmmSearchDnn,
                                   accel::Platform::Fpga), 3.7);
    // RASR's framework port carries the DNN numbers.
    EXPECT_DOUBLE_EQ(model.speedup(accel::Kernel::HmmSearchDnn,
                                   accel::Platform::Gpu), 54.7);
}

TEST(AccelMore, ServiceLatencyMonotoneInComponentSpeedup)
{
    accel::CalibratedModel model;
    for (const auto &profile : accel::defaultServiceProfiles()) {
        const double cmp = accel::serviceLatency(
            profile, model, accel::Platform::Cmp);
        const double mt = accel::serviceLatency(
            profile, model, accel::Platform::CmpMulticore);
        EXPECT_LT(mt, cmp);
    }
}

TEST(AccelMore, BaselineSustainedTracksRetiring)
{
    // The analytic baseline must order kernels exactly as their
    // retiring fractions do.
    using accel::Kernel;
    EXPECT_GT(accel::baselineSustainedGflops(Kernel::Dnn),
              accel::baselineSustainedGflops(Kernel::Gmm));
    EXPECT_GT(accel::baselineSustainedGflops(Kernel::Regex),
              accel::baselineSustainedGflops(Kernel::Stemmer));
}

// ------------------------------------------------------------------- dcsim

TEST(DcsimMore, NormalizedTcoMonotoneInThroughput)
{
    double prev = 1e9;
    for (double improvement : {1.0, 2.0, 4.0, 8.0, 16.0}) {
        const double tco = dcsim::normalizedTco(accel::Platform::Gpu,
                                                improvement);
        EXPECT_LT(tco, prev);
        prev = tco;
    }
}

TEST(DcsimMore, DesignerLatencyRowWithoutAccelerators)
{
    accel::CalibratedModel model;
    dcsim::DatacenterDesigner designer(accel::defaultServiceProfiles(),
                                       model);
    dcsim::CandidateSet cpu_phi_only;
    cpu_phi_only.allowGpu = false;
    cpu_phi_only.allowFpga = false;
    // Phi only helps ASR(DNN); aggregated across services the multicore
    // CMP wins min-latency.
    EXPECT_EQ(designer.homogeneousDesign(dcsim::Objective::MinLatency,
                                         cpu_phi_only),
              accel::Platform::CmpMulticore);
}

TEST(DcsimMore, HeterogeneousGainNeverBelowOne)
{
    accel::CalibratedModel model;
    dcsim::DatacenterDesigner designer(accel::defaultServiceProfiles(),
                                       model);
    dcsim::CandidateSet all;
    for (auto objective : {dcsim::Objective::MinLatency,
                           dcsim::Objective::MinTcoWithLatency,
                           dcsim::Objective::MaxPowerEffWithLatency}) {
        for (accel::ServiceKind service : accel::allServices()) {
            EXPECT_GE(designer.heterogeneousGain(objective, all, service),
                      1.0 - 1e-9);
        }
    }
}

TEST(DcsimMore, EmpiricalSimulatorMatchesDeterministicLimit)
{
    // Resampling from a single-valued set IS deterministic service:
    // M/D/1 at load 0.6.
    const std::vector<double> samples(4, 1.0);
    const auto sim = dcsim::simulateQueueEmpirical(samples, 0.6, 20000);
    // M/D/1 mean sojourn: 1 + rho / (2 (1 - rho)) = 1.75.
    EXPECT_NEAR(sim.sojournSeconds.mean(), 1.75, 0.1);
}

TEST(DcsimMore, EmpiricalSimulatorReproducible)
{
    const std::vector<double> samples = {0.5, 1.0, 2.0};
    const auto a = dcsim::simulateQueueEmpirical(samples, 0.3, 3000, 5);
    const auto b = dcsim::simulateQueueEmpirical(samples, 0.3, 3000, 5);
    EXPECT_DOUBLE_EQ(a.sojournSeconds.mean(), b.sojournSeconds.mean());
}

TEST(DcsimMore, EmpiricalSimulatorRejectsOverload)
{
    const std::vector<double> samples = {1.0};
    EXPECT_EXIT(dcsim::simulateQueueEmpirical(samples, 1.5),
                ::testing::ExitedWithCode(1), "unstable");
}

TEST(DcsimMore, MachinesRatioAtZeroQueriesIsOne)
{
    EXPECT_DOUBLE_EQ(dcsim::machinesRatio(165.0, 0.0), 1.0);
}

} // namespace
