/**
 * @file
 * Tests for the extension modules: delta features, the FPGA structural
 * simulators (Section 4.3.4), and the discrete-event queue simulator
 * validating the M/M/1 analytics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/fpga_sim.h"
#include "audio/delta.h"
#include "dcsim/queueing.h"
#include "dcsim/simulation.h"
#include "speech/asr_service.h"

namespace {

using namespace sirius;
using namespace sirius::audio;
using namespace sirius::accel;
using namespace sirius::dcsim;

// ----------------------------------------------------------- delta features

TEST(Delta, ConstantSignalHasZeroDeltas)
{
    std::vector<FeatureVector> frames(10, FeatureVector(4, 2.5f));
    for (const auto &d : computeDeltas(frames)) {
        for (float v : d)
            EXPECT_FLOAT_EQ(v, 0.0f);
    }
}

TEST(Delta, LinearRampHasConstantSlope)
{
    // x_t = 3t  ->  delta should be ~3 away from the edges.
    std::vector<FeatureVector> frames;
    for (int t = 0; t < 20; ++t)
        frames.push_back({static_cast<float>(3 * t)});
    const auto deltas = computeDeltas(frames, 2);
    for (size_t t = 2; t + 2 < frames.size(); ++t)
        EXPECT_NEAR(deltas[t][0], 3.0f, 1e-4);
}

TEST(Delta, AppendTriplesDimensionality)
{
    std::vector<FeatureVector> frames(5, FeatureVector(13, 1.0f));
    const auto extended = appendDeltas(frames);
    ASSERT_EQ(extended.size(), frames.size());
    for (const auto &f : extended)
        EXPECT_EQ(f.size(), 39u);
}

TEST(Delta, EmptyInputHandled)
{
    EXPECT_TRUE(computeDeltas({}).empty());
    EXPECT_TRUE(appendDeltas({}).empty());
}

TEST(Delta, StaticCoefficientsPreserved)
{
    std::vector<FeatureVector> frames;
    for (int t = 0; t < 8; ++t)
        frames.push_back({static_cast<float>(t), 7.0f});
    const auto extended = appendDeltas(frames);
    for (size_t t = 0; t < frames.size(); ++t) {
        EXPECT_FLOAT_EQ(extended[t][0], frames[t][0]);
        EXPECT_FLOAT_EQ(extended[t][1], frames[t][1]);
    }
}

TEST(Delta, AsrStillDecodesWithDeltas)
{
    speech::AsrConfig config;
    config.useDeltaFeatures = true;
    config.gmmComponents = 4;
    const std::vector<std::string> sentences = {
        "play some music", "set my alarm", "who was elected president"};
    const auto asr = speech::AsrService::train(sentences, config);
    for (const auto &sentence : sentences)
        EXPECT_EQ(asr.transcribeText(sentence).text, sentence);
}

// --------------------------------------------------------------- FPGA model

TEST(FpgaGmm, ThreeCoresFillTheVirtex6)
{
    // Paper: "when fully utilizing the FPGA fabric we achieved a 169x
    // speedup using 3 GMM cores" (over 56x for one core).
    const FpgaGmmSimulator sim(39, 8);
    EXPECT_EQ(sim.maxCores(), 3);
}

TEST(FpgaGmm, LinearCoreScaling)
{
    const FpgaGmmSimulator sim(32, 8);
    const double one = sim.statesPerSecond(1);
    for (int cores = 2; cores <= sim.maxCores(); ++cores) {
        EXPECT_NEAR(sim.statesPerSecond(cores) / one,
                    static_cast<double>(cores), 1e-9);
    }
    // Requests beyond the fabric clamp at maxCores.
    EXPECT_DOUBLE_EQ(sim.statesPerSecond(100),
                     sim.statesPerSecond(sim.maxCores()));
}

TEST(FpgaGmm, FullFabricRatioMatchesPaper)
{
    // 169 / 56 = 3.02x from single core to full fabric.
    const FpgaGmmSimulator sim(39, 8);
    const double ratio = sim.statesPerSecond(sim.maxCores()) /
        sim.statesPerSecond(1);
    EXPECT_NEAR(ratio, 169.0 / 56.0, 0.15);
}

TEST(FpgaGmm, MoreComponentsSlower)
{
    const FpgaGmmSimulator few(32, 4);
    const FpgaGmmSimulator many(32, 16);
    EXPECT_GT(few.statesPerSecond(1), many.statesPerSecond(1));
}

TEST(FpgaStemmer, FiveCoresAtSeventeenPercent)
{
    // Paper: one core uses 17% of the fabric at 6x; full fabric 30x.
    const FpgaStemmerSimulator sim;
    EXPECT_EQ(sim.maxCores(), 5);
    const double ratio = sim.wordsPerSecond(sim.maxCores()) /
        sim.wordsPerSecond(1);
    EXPECT_NEAR(ratio, 30.0 / 6.0, 1e-9);
}

TEST(FpgaStemmer, ThroughputReasonable)
{
    // One core at 400 MHz / ~14 cycles per word ~ 28M words/s — about
    // 6x a CPU core stemming ~4.7M words/s, the paper's single-core
    // figure.
    const FpgaStemmerSimulator sim;
    const double speedup = sim.speedupVsCpu(4.7e6, 1);
    EXPECT_GT(speedup, 4.0);
    EXPECT_LT(speedup, 9.0);
}

// ---------------------------------------------------------- queue simulator

TEST(QueueSim, MatchesMm1Analytics)
{
    // Simulated mean sojourn time must match 1/(mu - lambda).
    for (double rho : {0.3, 0.5, 0.7}) {
        QueueSimConfig config;
        config.arrivalRate = rho;
        config.serviceRate = 1.0;
        const auto result = simulateQueue(config);
        const double analytic = mm1Latency(rho, 1.0);
        EXPECT_NEAR(result.sojournSeconds.mean(), analytic,
                    analytic * 0.08)
            << "rho=" << rho;
    }
}

TEST(QueueSim, UtilizationMatchesLoad)
{
    QueueSimConfig config;
    config.arrivalRate = 0.6;
    config.serviceRate = 1.0;
    const auto result = simulateQueue(config);
    EXPECT_NEAR(result.utilization, 0.6, 0.03);
}

TEST(QueueSim, DeterministicServiceHalvesQueueing)
{
    // M/D/1 waiting time is half of M/M/1's: W_MD1 = rho/(2 mu (1-rho)).
    QueueSimConfig config;
    config.arrivalRate = 0.7;
    config.serviceRate = 1.0;
    config.distribution = ServiceDistribution::Exponential;
    const double mm1_wait =
        simulateQueue(config).sojournSeconds.mean() - 1.0;
    config.distribution = ServiceDistribution::Deterministic;
    const double md1_wait =
        simulateQueue(config).sojournSeconds.mean() - 1.0;
    EXPECT_NEAR(md1_wait / mm1_wait, 0.5, 0.08);
}

TEST(QueueSim, HeavyTailsInflateLatencyAtSameMean)
{
    // Figure 8's QA variability: heavier service tails mean worse
    // queueing delay at identical mean service time.
    QueueSimConfig config;
    config.arrivalRate = 0.7;
    config.serviceRate = 1.0;
    config.distribution = ServiceDistribution::Exponential;
    const double exp_latency = simulateQueue(config)
        .sojournSeconds.mean();
    config.distribution = ServiceDistribution::HeavyTailed;
    config.slowProbability = 0.05;
    config.slowFactor = 10.0;
    const double heavy_latency = simulateQueue(config)
        .sojournSeconds.mean();
    EXPECT_GT(heavy_latency, exp_latency);
}

TEST(QueueSim, ReproduciblePerSeed)
{
    QueueSimConfig config;
    config.arrivalRate = 0.5;
    config.measuredQueries = 2000;
    const auto a = simulateQueue(config);
    const auto b = simulateQueue(config);
    EXPECT_DOUBLE_EQ(a.sojournSeconds.mean(), b.sojournSeconds.mean());
}

TEST(QueueSim, RejectsUnstableLoad)
{
    QueueSimConfig config;
    config.arrivalRate = 2.0;
    config.serviceRate = 1.0;
    EXPECT_EXIT(simulateQueue(config),
                ::testing::ExitedWithCode(1), "unstable");
}

TEST(QueueSim, SimulatedMaxArrivalTracksAnalytic)
{
    const double mu = 2.0;
    const double bound = 1.5;
    const double analytic = mm1MaxArrival(mu, bound);
    const double simulated = simulatedMaxArrival(mu, bound);
    EXPECT_NEAR(simulated, analytic, analytic * 0.1);
}

TEST(QueueSim, BoundBelowServiceTimeGivesZero)
{
    EXPECT_DOUBLE_EQ(simulatedMaxArrival(1.0, 0.5), 0.0);
}

} // namespace
