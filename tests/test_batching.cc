/**
 * @file
 * Differential and scheduler tests for cross-query micro-batching.
 *
 * The batching layer's contract is that it may only change *when*
 * kernels run, never what they produce: batched DNN forward, GMM
 * scoring, and descriptor matching must be bitwise-identical to the
 * serial paths on the same inputs. The property sweeps here enforce
 * that across random seeds, batch sizes (1/2/7/32), and ragged last
 * batches, and the scheduler tests pin down every flush policy (size,
 * timeout, deadline, shutdown) plus TSan-clean concurrent enqueue.
 */

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/batch_scheduler.h"
#include "core/concurrent_server.h"
#include "speech/dnn.h"
#include "speech/gmm.h"
#include "vision/matcher.h"

namespace {

using namespace sirius;
using namespace sirius::core;

constexpr size_t kBatchSizes[] = {1, 2, 7, 32};

/** Exact bit-pattern equality, not approximate float equality. */
void
expectBitwiseEqual(const std::vector<float> &serial,
                   const std::vector<float> &batched, const char *what,
                   size_t item)
{
    ASSERT_EQ(serial.size(), batched.size()) << what << " item " << item;
    ASSERT_EQ(0, std::memcmp(serial.data(), batched.data(),
                             serial.size() * sizeof(float)))
        << what << " item " << item << " diverged bitwise";
}

std::vector<audio::FeatureVector>
randomFrames(Rng &rng, size_t count, size_t dim)
{
    std::vector<audio::FeatureVector> frames(count);
    for (auto &frame : frames) {
        frame.resize(dim);
        for (auto &x : frame)
            x = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
    return frames;
}

std::vector<const audio::FeatureVector *>
pointersTo(const std::vector<audio::FeatureVector> &frames, size_t begin,
           size_t end)
{
    std::vector<const audio::FeatureVector *> out;
    for (size_t i = begin; i < end; ++i)
        out.push_back(&frames[i]);
    return out;
}

/**
 * Sweep batched vs serial over every batch size, covering a ragged
 * last batch (kFrames is not a multiple of any swept size but 1).
 */
constexpr size_t kFrames = 33;

void
sweepScorer(const speech::AcousticScorer &scorer,
            const std::vector<audio::FeatureVector> &frames,
            const char *what)
{
    std::vector<std::vector<float>> serial;
    for (const auto &frame : frames)
        serial.push_back(scorer.scoreAll(frame));

    for (size_t batch_size : kBatchSizes) {
        for (size_t begin = 0; begin < frames.size();
             begin += batch_size) {
            const size_t end =
                std::min(frames.size(), begin + batch_size);
            const auto batched =
                scorer.scoreBatch(pointersTo(frames, begin, end));
            ASSERT_EQ(batched.size(), end - begin);
            for (size_t i = 0; i < batched.size(); ++i)
                expectBitwiseEqual(serial[begin + i], batched[i], what,
                                   begin + i);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential property sweeps: DNN, GMM, matcher.

TEST(BatchingDifferential, DnnForwardBatchMatchesSerialBitwise)
{
    for (uint64_t seed : {7ull, 1234ull, 987654321ull}) {
        speech::FeedForwardNet net({13, 24, 37}, seed);
        Rng rng(seed ^ 0xF00Dull);
        const auto frames = randomFrames(rng, kFrames, 13);

        std::vector<std::vector<float>> serial;
        for (const auto &frame : frames)
            serial.push_back(net.forward(frame));

        for (size_t batch_size : kBatchSizes) {
            for (size_t begin = 0; begin < frames.size();
                 begin += batch_size) {
                const size_t end =
                    std::min(frames.size(), begin + batch_size);
                std::vector<const std::vector<float> *> inputs;
                for (size_t i = begin; i < end; ++i)
                    inputs.push_back(&frames[i]);
                const auto batched = net.forwardBatch(inputs);
                ASSERT_EQ(batched.size(), end - begin);
                for (size_t i = 0; i < batched.size(); ++i)
                    expectBitwiseEqual(serial[begin + i], batched[i],
                                       "dnn_forward", begin + i);
            }
        }
    }
}

TEST(BatchingDifferential, DnnAcousticModelScoreBatchMatchesSerial)
{
    for (uint64_t seed : {11ull, 222ull}) {
        Rng rng(seed);
        const size_t states = 6;
        const auto train = randomFrames(rng, 240, 13);
        std::vector<int> labels(train.size());
        for (auto &label : labels)
            label = static_cast<int>(rng.below(states));
        const auto model = speech::DnnAcousticModel::train(
            train, labels, {16}, 2, 0.01f, seed, states);

        Rng test_rng(seed ^ 0xBEEFull);
        sweepScorer(model, randomFrames(test_rng, kFrames, 13),
                    "dnn_score");
    }
}

TEST(BatchingDifferential, GmmScoreBatchMatchesSerialBitwise)
{
    for (uint64_t seed : {5ull, 314159ull}) {
        Rng rng(seed);
        const size_t states = 6;
        const auto train = randomFrames(rng, 400, 13);
        std::vector<int> labels(train.size());
        for (auto &label : labels)
            label = static_cast<int>(rng.below(states));
        const auto model = speech::GmmAcousticModel::train(
            train, labels, 3, 2, seed, states);

        Rng test_rng(seed ^ 0xCAFEull);
        sweepScorer(model, randomFrames(test_rng, kFrames, 13),
                    "gmm_score");
    }
}

TEST(BatchingDifferential, DefaultScoreBatchIsSerialLoop)
{
    // A scorer that does not override scoreBatch gets the serial loop,
    // so custom backends are batch-correct by construction.
    class Plain : public speech::AcousticScorer
    {
      public:
        std::vector<float>
        scoreAll(const audio::FeatureVector &f) const override
        {
            return {f[0] * 3.0f, f[0] - 2.0f};
        }
        size_t stateCount() const override { return 2; }
        const char *name() const override { return "PLAIN"; }
    };
    Plain plain;
    Rng rng(99);
    sweepScorer(plain, randomFrames(rng, kFrames, 4), "plain_score");
}

vision::Descriptor
randomDescriptor(Rng &rng)
{
    vision::Descriptor d;
    for (auto &x : d)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return d;
}

TEST(BatchingDifferential, MatcherBatchMatchesSerial)
{
    for (uint64_t seed : {3ull, 77ull, 4242ull}) {
        Rng rng(seed);
        std::vector<vision::Descriptor> base(100);
        for (auto &d : base)
            d = randomDescriptor(rng);
        const vision::KdTree tree(base);

        // Ragged query sets: several sizes including empty and single.
        std::vector<std::vector<vision::Descriptor>> query_sets;
        for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{7},
                         size_t{32}}) {
            std::vector<vision::Descriptor> qs(n);
            for (auto &d : qs) {
                d = randomDescriptor(rng);
                // Half the queries are near-duplicates of database
                // entries so the ratio test actually passes sometimes.
                if (rng.uniform() < 0.5) {
                    d = base[rng.below(base.size())];
                    d[0] += 0.01f;
                }
            }
            query_sets.push_back(std::move(qs));
        }

        std::vector<const std::vector<vision::Descriptor> *> pointers;
        for (const auto &qs : query_sets)
            pointers.push_back(&qs);
        const auto batched = vision::matchDescriptorsBatch(pointers, tree);
        ASSERT_EQ(batched.size(), query_sets.size());
        for (size_t i = 0; i < query_sets.size(); ++i) {
            const auto serial =
                vision::matchDescriptors(query_sets[i], tree);
            EXPECT_EQ(serial.goodMatches, batched[i].goodMatches) << i;
            EXPECT_EQ(serial.totalQueries, batched[i].totalQueries) << i;
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler unit tests (flush policies, drain, concurrency).

/** Deterministic scorer for scheduler tests: no training, no noise. */
class FakeScorer : public speech::AcousticScorer
{
  public:
    std::vector<float>
    scoreAll(const audio::FeatureVector &f) const override
    {
        return {f[0] * 2.0f, f[0] + 1.0f};
    }
    size_t stateCount() const override { return 2; }
    const char *name() const override { return "FAKE"; }
};

std::vector<audio::FeatureVector>
oneFrame(float value)
{
    return {audio::FeatureVector{value}};
}

TEST(BatchScheduler, SizeFlushClosesFullBatch)
{
    FakeScorer scorer;
    BatchConfig config;
    config.maxBatchSize = 2;
    config.maxWaitSeconds = 1000.0; // never: size must trigger
    BatchScheduler scheduler(&scorer, nullptr, config);

    speech::FrameScoreBatcher::Outcome a, b;
    const auto frames_a = oneFrame(1.0f);
    const auto frames_b = oneFrame(2.0f);
    std::thread first([&] { a = scheduler.scoreFrames(frames_a, {}); });
    b = scheduler.scoreFrames(frames_b, {});
    first.join();

    EXPECT_EQ(a.batchSize, 2u);
    EXPECT_EQ(b.batchSize, 2u);
    EXPECT_STREQ(a.flushReason, "size");
    EXPECT_STREQ(b.flushReason, "size");
    ASSERT_EQ(a.scores.size(), 1u);
    ASSERT_EQ(b.scores.size(), 1u);
    EXPECT_EQ(a.scores[0], scorer.scoreAll(frames_a[0]));
    EXPECT_EQ(b.scores[0], scorer.scoreAll(frames_b[0]));

    const auto snap = scheduler.snapshot();
    const auto &score = snap.kernels[size_t(BatchKernel::Score)];
    EXPECT_EQ(score.batches, 1u);
    EXPECT_EQ(score.items, 2u);
    EXPECT_EQ(score.flushes[size_t(FlushReason::Size)], 1u);
    EXPECT_DOUBLE_EQ(score.meanOccupancy(), 2.0);
}

TEST(BatchScheduler, TimeoutFlushReleasesLoneItem)
{
    FakeScorer scorer;
    BatchConfig config;
    config.maxBatchSize = 8;       // never fills
    config.maxWaitSeconds = 1e-3;  // the scheduler thread must flush
    BatchScheduler scheduler(&scorer, nullptr, config);

    const auto frames = oneFrame(3.0f);
    const auto outcome = scheduler.scoreFrames(frames, {});
    EXPECT_EQ(outcome.batchSize, 1u);
    EXPECT_STREQ(outcome.flushReason, "timeout");
    EXPECT_FALSE(outcome.cutShort);
    ASSERT_EQ(outcome.scores.size(), 1u);
    EXPECT_EQ(outcome.scores[0], scorer.scoreAll(frames[0]));

    const auto snap = scheduler.snapshot();
    EXPECT_EQ(snap.kernels[size_t(BatchKernel::Score)]
                  .flushes[size_t(FlushReason::Timeout)],
              1u);
}

TEST(BatchScheduler, NearDeadlineItemFlushesImmediately)
{
    FakeScorer scorer;
    BatchConfig config;
    config.maxBatchSize = 8;
    config.maxWaitSeconds = 1000.0;
    config.deadlineSlackSeconds = 0.005;
    BatchScheduler scheduler(&scorer, nullptr, config);

    // Virtual time: 1 ms of budget left, within the 5 ms slack, but not
    // expired — the item must neither wait out a batching window nor be
    // cut short.
    ManualTime clock;
    const auto deadline = Deadline::afterManual(0.001, clock);
    const auto frames = oneFrame(4.0f);
    const auto outcome = scheduler.scoreFrames(frames, deadline);
    EXPECT_EQ(outcome.batchSize, 1u);
    EXPECT_STREQ(outcome.flushReason, "deadline");
    EXPECT_FALSE(outcome.cutShort);
    ASSERT_EQ(outcome.scores.size(), 1u);
    EXPECT_EQ(outcome.scores[0], scorer.scoreAll(frames[0]));
}

TEST(BatchScheduler, ExpiredItemComesBackCutShortUnscored)
{
    FakeScorer scorer;
    BatchConfig config;
    config.maxBatchSize = 8;
    config.maxWaitSeconds = 1000.0;
    BatchScheduler scheduler(&scorer, nullptr, config);

    ManualTime clock;
    const auto deadline = Deadline::afterManual(1.0, clock);
    clock.advance(2.0); // now expired, deterministically
    const auto frames = oneFrame(5.0f);
    const auto outcome = scheduler.scoreFrames(frames, deadline);
    EXPECT_TRUE(outcome.cutShort);
    EXPECT_TRUE(outcome.scores.empty());
    EXPECT_STREQ(outcome.flushReason, "deadline");
}

TEST(BatchScheduler, ShutdownDrainsQueuedItems)
{
    FakeScorer scorer;
    BatchConfig config;
    config.maxBatchSize = 8;
    config.maxWaitSeconds = 1000.0; // only shutdown can flush
    auto scheduler =
        std::make_unique<BatchScheduler>(&scorer, nullptr, config);

    speech::FrameScoreBatcher::Outcome outcome;
    const auto frames = oneFrame(6.0f);
    std::thread waiter(
        [&] { outcome = scheduler->scoreFrames(frames, {}); });
    while (scheduler->pendingItems(BatchKernel::Score) == 0)
        std::this_thread::yield();
    scheduler.reset(); // must resolve the queued item, not hang it
    waiter.join();

    EXPECT_STREQ(outcome.flushReason, "shutdown");
    ASSERT_EQ(outcome.scores.size(), 1u);
    EXPECT_EQ(outcome.scores[0], scorer.scoreAll(frames[0]));
}

TEST(BatchScheduler, ConcurrentEnqueueAccountingIsExact)
{
    FakeScorer scorer;
    BatchConfig config;
    config.maxBatchSize = 4;
    config.maxWaitSeconds = 200e-6;
    BatchScheduler scheduler(&scorer, nullptr, config);

    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 25;
    std::atomic<size_t> wrong{0};
    std::vector<std::thread> pool;
    for (size_t t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (size_t i = 0; i < kPerThread; ++i) {
                const float value =
                    static_cast<float>(t * kPerThread + i);
                const auto frames = oneFrame(value);
                const auto outcome = scheduler.scoreFrames(frames, {});
                if (outcome.scores.size() != 1 ||
                    outcome.scores[0] != scorer.scoreAll(frames[0]) ||
                    outcome.batchSize == 0 ||
                    outcome.batchSize > config.maxBatchSize) {
                    wrong.fetch_add(1);
                }
            }
        });
    }
    for (auto &thread : pool)
        thread.join();

    EXPECT_EQ(wrong.load(), 0u);
    const auto snap = scheduler.snapshot();
    const auto &score = snap.kernels[size_t(BatchKernel::Score)];
    EXPECT_EQ(score.items, kThreads * kPerThread);
    uint64_t flushes = 0;
    for (uint64_t f : score.flushes)
        flushes += f;
    EXPECT_EQ(flushes, score.batches);
    EXPECT_GE(score.batches, (kThreads * kPerThread) /
                                 config.maxBatchSize);
    EXPECT_EQ(score.waitSeconds.count(), kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// End-to-end: batched server results equal the serial pipeline's, and
// golden fixtures pin today's outputs against silent kernel drift.

class BatchingE2E : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *BatchingE2E::pipeline_ = nullptr;

void
expectSameResult(const SiriusResult &serial, const SiriusResult &batched,
                 size_t index)
{
    EXPECT_EQ(serial.transcript, batched.transcript) << index;
    EXPECT_EQ(serial.queryClass, batched.queryClass) << index;
    EXPECT_EQ(serial.action, batched.action) << index;
    EXPECT_EQ(serial.answer, batched.answer) << index;
    EXPECT_EQ(serial.matchedLandmark, batched.matchedLandmark) << index;
    EXPECT_EQ(serial.augmentedQuestion, batched.augmentedQuestion)
        << index;
    EXPECT_EQ(serial.degradation, batched.degradation) << index;
}

TEST_F(BatchingE2E, ConcurrentBatchedServerMatchesSerialPipeline)
{
    const auto &queries = standardQuerySet();
    std::vector<SiriusResult> serial(queries.size());
    for (size_t i = 0; i < queries.size(); ++i)
        serial[i] = pipeline_->process(queries[i]);

    ConcurrentServerConfig config;
    config.workers = 4;
    ASSERT_TRUE(config.batching.enabled); // batching is the default
    ConcurrentServer server(*pipeline_, config);

    // Four blocking clients drive overlapping queries so batches really
    // form; every result must equal the serial pipeline's bit for bit.
    std::vector<SiriusResult> batched(queries.size());
    std::vector<std::thread> clients;
    constexpr size_t kClients = 4;
    for (size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            for (size_t i = c; i < queries.size(); i += kClients)
                batched[i] = server.handle(queries[i]);
        });
    }
    for (auto &client : clients)
        client.join();

    for (size_t i = 0; i < queries.size(); ++i)
        expectSameResult(serial[i], batched[i], i);

    // The batch queues really ran the kernels: every ASR pass went
    // through the score queue.
    const auto snap = server.snapshot();
    const auto &score = snap.batching.kernels[size_t(BatchKernel::Score)];
    EXPECT_EQ(score.items, queries.size());
    EXPECT_GT(score.batches, 0u);
    // IMM runs only for VIQ queries whose transcript classifies as a
    // question (an Action classification returns before stage 3), so
    // derive the expected match-queue traffic from the serial results.
    size_t expect_matches = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
        if (queries[i].type == QueryType::VoiceImageQuery &&
            serial[i].queryClass == QueryClass::Question)
            ++expect_matches;
    }
    const auto &match = snap.batching.kernels[size_t(BatchKernel::Match)];
    EXPECT_EQ(match.items, expect_matches);
    EXPECT_GT(expect_matches, 0u);
    // And the accounting reached the labeled metrics exporters.
    const auto prom = snap.metrics.renderPrometheus();
    EXPECT_NE(prom.find("sirius_batch_items_total"), std::string::npos);
    EXPECT_NE(prom.find("sirius_batch_flushes_total"), std::string::npos);
}

TEST_F(BatchingE2E, DisabledBatchingStillMatchesSerial)
{
    const auto &queries = standardQuerySet();
    ConcurrentServerConfig config;
    config.workers = 2;
    config.batching.enabled = false;
    ConcurrentServer server(*pipeline_, config);
    for (size_t i = 0; i < 6; ++i) {
        const auto serial = pipeline_->process(queries[i * 7]);
        const auto unbatched = server.handle(queries[i * 7]);
        expectSameResult(serial, unbatched, i * 7);
    }
    EXPECT_EQ(server.batcher(), nullptr);
}

// One line per query: index|type|degradation|class|landmark|transcript|
// answer. Discrete fields only — cross-machine float drift must not
// fail goldens, while any behavioural kernel change still does.
std::string
goldenLine(size_t index, const Query &query, const SiriusResult &result)
{
    std::ostringstream out;
    out << index << '|' << queryTypeName(query.type) << '|'
        << degradationName(result.degradation) << '|'
        << static_cast<int>(result.queryClass) << '|'
        << result.matchedLandmark << '|' << result.transcript << '|'
        << result.answer;
    return out.str();
}

TEST_F(BatchingE2E, GoldenEndToEndOutputs)
{
    const std::string path =
        std::string(SIRIUS_SOURCE_DIR) + "/tests/golden/e2e_results.txt";

    const auto &queries = standardQuerySet();
    std::vector<std::string> current;
    for (size_t i = 0; i < queries.size(); ++i)
        current.push_back(
            goldenLine(i, queries[i], pipeline_->process(queries[i])));

    if (std::getenv("SIRIUS_REGEN_GOLDENS") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        for (const auto &line : current)
            out << line << '\n';
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing — run scripts/regen_goldens.sh";
    std::vector<std::string> golden;
    std::string line;
    while (std::getline(in, line))
        golden.push_back(line);

    ASSERT_EQ(golden.size(), current.size())
        << "query count changed — regen goldens if intentional";
    for (size_t i = 0; i < golden.size(); ++i)
        EXPECT_EQ(golden[i], current[i])
            << "end-to-end output drifted for query " << i
            << " — if intentional, run scripts/regen_goldens.sh";
}

} // namespace
