/**
 * @file
 * Tests for the scale-out serving tier: ClusterRouter routing policies,
 * shard health (ejection + probed recovery), failover, hedging, fleet
 * statistics, and the virtual-time fleet projection.
 *
 * Flakiness audit: routing and failover assertions run queries
 * sequentially (handle()), so distribution properties are exact, not
 * statistical. The concurrency tests assert conservation laws
 * (delivered-once, drained-to-zero) that hold under any interleaving,
 * never wall-clock values. The fleet projection is pure virtual time.
 */

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/critical_path.h"
#include "common/fault_injection.h"
#include "common/flight_recorder.h"
#include "core/cluster.h"
#include "dcsim/queueing.h"

namespace {

using namespace sirius;
using namespace sirius::core;

class ClusterFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    /** A small cluster over the shared pipeline. */
    static ClusterConfig
    smallCluster(size_t shards, RoutingPolicy policy)
    {
        ClusterConfig cluster;
        cluster.shards = shards;
        cluster.policy = policy;
        cluster.shard.workers = 1;
        cluster.shard.queueCapacity = 64;
        return cluster;
    }

    /** Which shard served the single query just handled. */
    static size_t
    servedBy(const ClusterRouter &router,
             const std::vector<uint64_t> &before)
    {
        for (size_t i = 0; i < router.shardCount(); ++i) {
            const auto served =
                router.shard(i).server().snapshot().server.served;
            if (served != before[i])
                return i;
        }
        return SIZE_MAX;
    }

    static std::vector<uint64_t>
    servedCounts(const ClusterRouter &router)
    {
        std::vector<uint64_t> out;
        for (size_t i = 0; i < router.shardCount(); ++i)
            out.push_back(
                router.shard(i).server().snapshot().server.served);
        return out;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *ClusterFixture::pipeline_ = nullptr;

TEST(RoutingPolicy, NamesRoundTrip)
{
    for (size_t i = 0; i < kRoutingPolicies; ++i) {
        const auto policy = static_cast<RoutingPolicy>(i);
        RoutingPolicy parsed;
        ASSERT_TRUE(
            routingPolicyFromName(routingPolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    RoutingPolicy out;
    EXPECT_FALSE(routingPolicyFromName("zig-zag", out));
}

TEST_F(ClusterFixture, RoundRobinDistributesExactly)
{
    ClusterRouter router(
        *pipeline_, smallCluster(4, RoutingPolicy::RoundRobin));
    const auto &queries = standardQuerySet();
    // Sequential traffic: round robin must land exactly N/4 per shard.
    for (size_t round = 0; round < 2; ++round)
        for (size_t i = 0; i < 40; ++i)
            router.handle(queries[i % queries.size()]);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(router.shard(i).server().snapshot().server.served,
                  20u)
            << "shard " << i;
}

TEST_F(ClusterFixture, LeastOutstandingSpreadsIdleTies)
{
    ClusterRouter router(
        *pipeline_, smallCluster(4, RoutingPolicy::LeastOutstanding));
    const auto &queries = standardQuerySet();
    // Sequential traffic never queues, so every pick is an all-idle
    // tie; the rotating tie-break must spread them evenly.
    for (size_t i = 0; i < 40; ++i)
        router.handle(queries[i % queries.size()]);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(router.shard(i).server().snapshot().server.served,
                  10u)
            << "shard " << i;
}

TEST_F(ClusterFixture, PowerOfTwoUsesEveryShardDeterministically)
{
    auto config = smallCluster(4, RoutingPolicy::PowerOfTwo);
    config.seed = 7;
    ClusterRouter router(*pipeline_, config);
    const auto &queries = standardQuerySet();
    for (size_t i = 0; i < 60; ++i)
        router.handle(queries[i % queries.size()]);
    // Seeded draws: the exact split is deterministic; the property
    // worth holding is that no shard starves and all queries land.
    uint64_t total = 0;
    for (size_t i = 0; i < 4; ++i) {
        const auto served =
            router.shard(i).server().snapshot().server.served;
        EXPECT_GT(served, 0u) << "shard " << i << " starved";
        total += served;
    }
    EXPECT_EQ(total, 60u);
}

TEST_F(ClusterFixture, AffinityRoutesRepeatsToTheSameShard)
{
    ClusterRouter router(
        *pipeline_, smallCluster(4, RoutingPolicy::AffinityHash));
    const auto &queries = standardQuerySet();
    std::vector<size_t> home(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
        const auto before = servedCounts(router);
        router.handle(queries[i]);
        home[i] = servedBy(router, before);
        ASSERT_NE(home[i], SIZE_MAX);
    }
    // Repeats land on the same shard (this is what keeps the per-shard
    // caches warm), and the hash actually spreads the query set.
    std::set<size_t> used;
    for (size_t round = 0; round < 2; ++round) {
        for (size_t i = 0; i < queries.size(); ++i) {
            const auto before = servedCounts(router);
            router.handle(queries[i]);
            EXPECT_EQ(servedBy(router, before), home[i])
                << "query " << i << " moved between repeats";
            used.insert(home[i]);
        }
    }
    EXPECT_GE(used.size(), 2u) << "affinity hash collapsed the fleet";
}

TEST_F(ClusterFixture, KillShardReroutesWithoutFailures)
{
    ClusterRouter router(
        *pipeline_, smallCluster(4, RoutingPolicy::RoundRobin));
    const auto &queries = standardQuerySet();
    router.killShard(2);
    for (const auto &query : queries)
        router.handle(query);
    const auto stats = router.snapshot();
    EXPECT_EQ(router.shard(2).server().snapshot().server.served, 0u);
    EXPECT_EQ(stats.outcomes[static_cast<size_t>(Degradation::Failed)],
              0u);
    EXPECT_EQ(stats.healthyShards, 3u);
    EXPECT_EQ(stats.fleet.served, queries.size());

    // Revive: the shard takes traffic again.
    router.reviveShard(2);
    for (size_t i = 0; i < 8; ++i)
        router.handle(queries[i]);
    EXPECT_GT(router.shard(2).server().snapshot().server.served, 0u);
}

TEST_F(ClusterFixture, SubmitRejectsWhenEveryShardIsDown)
{
    ClusterRouter router(
        *pipeline_, smallCluster(2, RoutingPolicy::RoundRobin));
    router.killShard(0);
    router.killShard(1);
    EXPECT_FALSE(router.submit(standardQuerySet()[0]));
    EXPECT_EQ(router.snapshot().rejected, 1u);
    router.drain(); // must not hang with zero in-flight queries
}

/**
 * One line per query, discrete fields only — the same format
 * tests/golden/e2e_results.txt stores (see test_batching.cc).
 */
std::string
goldenLine(size_t index, const Query &query, const SiriusResult &result)
{
    std::ostringstream out;
    out << index << '|' << queryTypeName(query.type) << '|'
        << degradationName(result.degradation) << '|'
        << static_cast<int>(result.queryClass) << '|'
        << result.matchedLandmark << '|' << result.transcript << '|'
        << result.answer;
    return out.str();
}

TEST_F(ClusterFixture, FailoverResultsMatchSingleShardGoldens)
{
    // Shard 0 fails every stage attempt; shard 1 is clean. Every query
    // that lands on shard 0 comes back Failed and must fail over to
    // shard 1, whose answer is bitwise-identical to the single-server
    // golden (replicas run the same trained pipeline).
    FaultConfig faults;
    faults.failureRate = 1.0;
    FaultInjector broken(faults);

    auto config = smallCluster(2, RoutingPolicy::RoundRobin);
    config.shard.retry.maxRetries = 0;
    config.shardFaults = {&broken, nullptr};
    // Keep shard 0 in rotation the whole run so failover (not
    // ejection) is what the test exercises.
    config.health.minSamples = 1000;
    ClusterRouter router(*pipeline_, config);

    const auto &queries = standardQuerySet();
    std::vector<std::string> lines;
    for (size_t i = 0; i < queries.size(); ++i)
        lines.push_back(
            goldenLine(i, queries[i], router.handle(queries[i])));

    const auto stats = router.snapshot();
    EXPECT_GT(stats.failovers, 0u);
    EXPECT_EQ(stats.outcomes[static_cast<size_t>(Degradation::Failed)],
              0u);

    const std::string path =
        std::string(SIRIUS_SOURCE_DIR) + "/tests/golden/e2e_results.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing — run scripts/regen_goldens.sh";
    std::string expected;
    for (size_t i = 0; i < lines.size(); ++i) {
        ASSERT_TRUE(std::getline(in, expected)) << "golden truncated";
        EXPECT_EQ(lines[i], expected) << "query " << i;
    }
}

TEST_F(ClusterFixture, EjectionAndProbedRecovery)
{
    FaultConfig faults;
    faults.failureRate = 1.0;
    FaultInjector flaky(faults);

    auto config = smallCluster(2, RoutingPolicy::RoundRobin);
    config.shard.retry.maxRetries = 0;
    config.shardFaults = {&flaky, nullptr};
    config.health.window = 16;
    config.health.minSamples = 4;
    config.health.ejectBadRate = 0.4;
    config.health.probeAfterSeconds = 0.0; // probe immediately
    config.health.recoveryProbes = 2;
    ClusterRouter router(*pipeline_, config);

    const auto &queries = standardQuerySet();
    // Enough sequential queries that shard 0's window fills with bad
    // outcomes and ejects it.
    for (size_t i = 0; i < 16; ++i)
        router.handle(queries[i % queries.size()]);
    EXPECT_EQ(router.shard(0).ejections(), 1u);
    EXPECT_FALSE(router.shard(0).healthy());

    // The dependency recovers: disarm the injector, keep traffic
    // flowing; probes go through shard 0, succeed, and re-admit it.
    flaky.setEnabled(false);
    for (size_t i = 0; i < 16 && !router.shard(0).healthy(); ++i)
        router.handle(queries[i % queries.size()]);
    EXPECT_TRUE(router.shard(0).healthy());
    EXPECT_EQ(router.shard(0).recoveries(), 1u);
    EXPECT_GE(router.shard(0).probes(), 2u);

    // Through the whole outage, no query was lost.
    const auto stats = router.snapshot();
    EXPECT_EQ(stats.outcomes[static_cast<size_t>(Degradation::Failed)],
              0u);
    EXPECT_EQ(stats.healthyShards, 2u);
}

TEST_F(ClusterFixture, HedgingDeliversExactlyOnce)
{
    auto config = smallCluster(2, RoutingPolicy::RoundRobin);
    config.shard.workers = 2;
    // Far below any real service time: every query's hedge fires, and
    // delivered-once must still hold.
    config.hedgeSeconds = 1e-4;
    ClusterRouter router(*pipeline_, config);

    const size_t clients = 4, per_client = 10;
    const auto result = runClosedLoop(router, clients, per_client);
    EXPECT_EQ(result.completed, clients * per_client);

    const auto stats = router.snapshot();
    EXPECT_EQ(stats.accepted, clients * per_client);
    EXPECT_GT(stats.hedgesFired, 0u);
    EXPECT_EQ(stats.failovers, 0u) << "hedged queries must not also "
                                      "fail over";
    uint64_t delivered = 0;
    for (size_t i = 0; i < kDegradationLevels; ++i)
        delivered += stats.outcomes[i];
    EXPECT_EQ(delivered, clients * per_client);
    // Every leg (primary + hedges) completed and was counted.
    EXPECT_EQ(stats.fleet.served, stats.accepted + stats.hedgesFired);
}

TEST_F(ClusterFixture, ConcurrentRoutingConservesQueries)
{
    // The TSan target: many clients, p2c routing, hedging on — every
    // conservation law must hold under arbitrary interleavings.
    auto config = smallCluster(4, RoutingPolicy::PowerOfTwo);
    config.shard.workers = 2;
    config.hedgeSeconds = 0.002;
    ClusterRouter router(*pipeline_, config);

    const size_t clients = 8, per_client = 6;
    const auto result = runClosedLoop(router, clients, per_client);
    EXPECT_EQ(result.completed, clients * per_client);

    const auto stats = router.snapshot();
    EXPECT_EQ(stats.accepted, clients * per_client);
    EXPECT_EQ(stats.rejected, 0u);
    uint64_t delivered = 0;
    for (size_t i = 0; i < kDegradationLevels; ++i)
        delivered += stats.outcomes[i];
    EXPECT_EQ(delivered, stats.accepted);
    uint64_t shard_served = 0;
    for (const auto &shard : stats.shards)
        shard_served += shard.server.served;
    EXPECT_EQ(shard_served, stats.fleet.served);
    EXPECT_EQ(stats.fleet.served,
              stats.accepted + stats.failovers + stats.hedgesFired +
                  stats.probes);
}

TEST_F(ClusterFixture, FleetStatsAndMetricsMerge)
{
    ClusterRouter router(
        *pipeline_, smallCluster(2, RoutingPolicy::RoundRobin));
    const auto &queries = standardQuerySet();
    for (const auto &query : queries)
        router.handle(query);

    const auto stats = router.snapshot();
    EXPECT_EQ(stats.fleet.served, queries.size());
    EXPECT_EQ(stats.fleet.served,
              stats.shards[0].server.served +
                  stats.shards[1].server.served);
    EXPECT_EQ(stats.fleet.serviceHistogram.count(), queries.size());

    const std::string prom = stats.metrics.renderPrometheus();
    EXPECT_NE(prom.find("sirius_cluster_shards"), std::string::npos);
    EXPECT_NE(prom.find("sirius_cluster_routed_total"),
              std::string::npos);
    EXPECT_NE(prom.find("sirius_cluster_shard_healthy"),
              std::string::npos);
    EXPECT_NE(prom.find("server=\"shard0\""), std::string::npos);
    EXPECT_NE(prom.find("server=\"shard1\""), std::string::npos);
    EXPECT_NE(prom.find("policy=\"rr\""), std::string::npos);
}

TEST_F(ClusterFixture, RouteSpansCarryRoutingAttributes)
{
    auto config = smallCluster(2, RoutingPolicy::AffinityHash);
    config.shard.traceSampleRate = 1.0;
    ClusterRouter router(*pipeline_, config);
    const auto &queries = standardQuerySet();
    for (size_t i = 0; i < 8; ++i)
        router.handle(queries[i]);

    const auto spans = router.traces().snapshot();
    // Every query leaves one "route" summary plus one "route_leg" per
    // dispatched leg (exactly one each here: no hedging, no failures).
    size_t routes = 0, legs = 0;
    for (const auto &span : spans) {
        EXPECT_EQ(span.kind, SpanKind::Route);
        EXPECT_GT(span.durationSeconds, 0.0);
        if (span.name == "route_leg") {
            ++legs;
            bool has_arm = false, has_won = false;
            for (const auto &[key, value] : span.attrs) {
                if (key == "arm") {
                    has_arm = true;
                    EXPECT_EQ(value, "primary");
                }
                if (key == "won") {
                    has_won = true;
                    EXPECT_EQ(value, "1");
                }
            }
            EXPECT_TRUE(has_arm && has_won);
            EXPECT_NE(span.parentId, 0u);
            continue;
        }
        ++routes;
        EXPECT_EQ(span.name, "route");
        bool has_shard = false, has_policy = false, has_outcome = false;
        for (const auto &[key, value] : span.attrs) {
            if (key == "shard")
                has_shard = true;
            if (key == "policy") {
                has_policy = true;
                EXPECT_EQ(value, "affinity");
            }
            if (key == "outcome")
                has_outcome = true;
        }
        EXPECT_TRUE(has_shard && has_policy && has_outcome);
    }
    EXPECT_EQ(routes, 8u);
    EXPECT_EQ(legs, 8u);
}

TEST_F(ClusterFixture, StitchedHedgedTraceAttributesAllLatency)
{
    // The acceptance contract for trace stitching: a hedged cluster
    // query's flight-recorded trace must attribute 100% of its
    // end-to-end latency — the critical-path segments sum to the root
    // route span within 1 µs, and the winning arm is identified.
    auto config = smallCluster(2, RoutingPolicy::RoundRobin);
    config.shard.workers = 2;
    config.shard.traceSampleRate = 1.0;
    config.hedgeSeconds = 1e-4; // every query hedges

    FlightRecorderConfig flight_config;
    flight_config.slowestCapacity = 64;
    flight_config.byteBudget = 32 << 20;
    FlightRecorder flight(flight_config);
    config.flight = &flight;

    ClusterRouter router(*pipeline_, config);
    const size_t clients = 2, per_client = 4;
    const auto result = runClosedLoop(router, clients, per_client);
    ASSERT_EQ(result.completed, clients * per_client);

    const auto traces = flight.snapshot();
    ASSERT_GE(traces.size(), clients * per_client)
        << "every completed query must be flight-recorded at this "
           "capacity";
    size_t analyzed = 0, hedged = 0;
    for (const auto &trace : traces) {
        const auto report = analyzeCriticalPath(trace.spans);
        ASSERT_TRUE(report.valid) << "trace " << trace.traceId;
        ASSERT_TRUE(report.stitched) << "trace " << trace.traceId;
        ++analyzed;
        hedged += report.hedged ? 1 : 0;
        EXPECT_FALSE(report.winnerArm.empty());
        EXPECT_FALSE(report.winnerShard.empty());
        EXPECT_GT(report.totalSeconds, 0.0);
        EXPECT_GT(report.segments.size(), 1u)
            << "stitching must expose the winning leg's segments, not "
               "one opaque route slice";
        EXPECT_NEAR(report.sumSeconds(), report.totalSeconds, 1e-6)
            << "trace " << trace.traceId
            << " leaks latency out of the partition";
    }
    EXPECT_EQ(analyzed, traces.size());
    EXPECT_GT(hedged, 0u)
        << "a 100 µs hedge trigger must hedge at least one query";
}

TEST_F(ClusterFixture, TraceDroppedCounterIsExportedAndZeroHere)
{
    auto config = smallCluster(2, RoutingPolicy::RoundRobin);
    config.shard.traceSampleRate = 1.0;
    ClusterRouter router(*pipeline_, config);
    const auto &queries = standardQuerySet();
    for (size_t i = 0; i < 8; ++i)
        router.handle(queries[i]);

    const auto stats = router.snapshot();
    EXPECT_EQ(stats.traceDropped, 0u);
    MetricsRegistry registry;
    router.exportMetrics(registry, {});
    const std::string prom = registry.renderPrometheus();
    EXPECT_NE(prom.find("sirius_trace_dropped_total"),
              std::string::npos);
}

TEST_F(ClusterFixture, PerShardCachesStayWarmUnderAffinity)
{
    auto config = smallCluster(2, RoutingPolicy::AffinityHash);
    config.shard.cache.enabled = true;
    ClusterRouter router(*pipeline_, config);
    const auto &queries = standardQuerySet();
    for (size_t round = 0; round < 3; ++round)
        for (const auto &query : queries)
            router.handle(query);
    // Affinity sends every repeat to the shard that cached it, so the
    // answer cache hits from round 2 on.
    const auto stats = router.snapshot();
    EXPECT_GT(stats.caches.answers.hits, 0u);
}

TEST(ClusterConfigValidation, ZeroShardsIsFatal)
{
    SiriusConfig config;
    config.qa.fillerDocs = 60;
    const auto pipeline = SiriusPipeline::build(config);
    ClusterConfig cluster;
    cluster.shards = 0;
    EXPECT_EXIT(ClusterRouter(pipeline, cluster),
                ::testing::ExitedWithCode(1), "shards");
}

TEST(FaultInjectorKillSwitch, SetEnabledArmsAndDisarms)
{
    FaultConfig config;
    config.failureRate = 1.0;
    FaultInjector injector(config);
    EXPECT_TRUE(injector.enabled());
    EXPECT_EQ(injector.draw("qa"), StageFault::Failure);

    injector.setEnabled(false);
    EXPECT_FALSE(injector.enabled());
    EXPECT_EQ(injector.draw("qa"), StageFault::None);

    injector.setEnabled(true);
    EXPECT_TRUE(injector.enabled());
    EXPECT_EQ(injector.draw("qa"), StageFault::Failure);

    // A zero-rate injector can never be armed into injecting.
    FaultInjector idle;
    idle.setEnabled(true);
    EXPECT_FALSE(idle.enabled());
    EXPECT_EQ(idle.draw("qa"), StageFault::None);
}

TEST(FleetProjection, CapacityAddsLinearlyAcrossShards)
{
    // Deterministic virtual-time replay: with one client per shard
    // there is no queueing, so qps scales exactly with shards and the
    // per-query sojourn equals the service time.
    const std::vector<double> service = {0.010, 0.020, 0.015, 0.012,
                                         0.018, 0.011};
    const auto one = projectClosedLoopFleet(service, 1, 1, 1, 60);
    const auto two = projectClosedLoopFleet(service, 2, 1, 1, 60);
    const auto four = projectClosedLoopFleet(service, 4, 1, 1, 60);
    ASSERT_GT(one.aggregateQps, 0.0);
    EXPECT_NEAR(two.aggregateQps / one.aggregateQps, 2.0, 1e-9);
    EXPECT_NEAR(four.aggregateQps / one.aggregateQps, 4.0, 1e-9);
    EXPECT_EQ(four.completed, 4u * 60u);
    // No queueing: mean sojourn equals the mean service time.
    EXPECT_NEAR(one.meanSojournSeconds, 0.0143333333, 1e-6);
    EXPECT_NEAR(four.meanSojournSeconds, one.meanSojournSeconds, 1e-9);
}

TEST(FleetProjection, OversubscribedClientsQueue)
{
    const std::vector<double> service = {0.010};
    // 4 blocking clients on 1 worker: at steady state each waits
    // behind 3 others (sojourn 4x the service time); the first round's
    // shorter waits (10/20/30 ms) pull the 100-query mean down by
    // exactly 0.06/100 s. Throughput stays at the worker's capacity.
    const auto result = projectClosedLoopFleet(service, 1, 1, 4, 25);
    EXPECT_NEAR(result.meanSojournSeconds, 0.040 - 0.0006, 1e-9);
    EXPECT_NEAR(result.aggregateQps, 100.0, 1e-6);
    const auto idle = projectClosedLoopFleet(service, 1, 4, 4, 25);
    EXPECT_NEAR(idle.meanSojournSeconds, 0.010, 1e-9);
}

TEST(ShardedQueueing, ModelMatchesSingleShardAndScales)
{
    using namespace sirius::dcsim;
    const double mu = 50.0, lambda = 30.0;
    EXPECT_DOUBLE_EQ(shardedMm1Latency(lambda, mu, 1),
                     mm1Latency(lambda, mu));
    // Splitting the same arrivals across more shards strictly shrinks
    // queueing delay toward the bare service time 1/mu.
    EXPECT_LT(shardedMm1Latency(lambda, mu, 2),
              shardedMm1Latency(lambda, mu, 1));
    EXPECT_LT(shardedMm1Latency(lambda, mu, 4),
              shardedMm1Latency(lambda, mu, 2));
    EXPECT_GT(shardedMm1Latency(lambda, mu, 4), 1.0 / mu);
    // Capacity adds linearly.
    EXPECT_DOUBLE_EQ(shardedMm1MaxArrival(mu, 0.1, 4),
                     4.0 * mm1MaxArrival(mu, 0.1));
    // An overloaded single shard becomes feasible once split wide
    // enough.
    EXPECT_TRUE(std::isinf(shardedMm1Latency(60.0, mu, 1)));
    EXPECT_FALSE(std::isinf(shardedMm1Latency(60.0, mu, 2)));
}

} // namespace
