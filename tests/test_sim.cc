/**
 * Tests for the deterministic simulation harness: the VirtualExecutor
 * event loop, the whole-stack SimCluster model, the canonical chaos
 * drill, the trial oracles, and the virtual-clock seams on the real
 * serving components (BatchScheduler, ConcurrentServer,
 * ClusterRouter). Everything here runs on virtual time — no test may
 * sleep on the wall clock.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "core/batch_scheduler.h"
#include "core/cluster.h"
#include "core/concurrent_server.h"
#include "sim/sim_cluster.h"
#include "sim/trial_run.h"
#include "sim/virtual_executor.h"

namespace {

using namespace sirius;
using namespace sirius::core;
using namespace sirius::sim;

// ---------------------------------------------------------------------------
// VirtualExecutor: the event loop itself.

TEST(VirtualExecutor, RunsEventsInDueOrder)
{
    ManualTime clock;
    VirtualExecutor exec(clock);
    std::vector<int> order;
    exec.schedule(0.3, [&] { order.push_back(3); });
    exec.schedule(0.1, [&] { order.push_back(1); });
    exec.schedule(0.2, [&] { order.push_back(2); });
    EXPECT_EQ(exec.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(exec.now(), 0.3);
    EXPECT_TRUE(exec.empty());
}

TEST(VirtualExecutor, TiesBreakInScheduleOrder)
{
    ManualTime clock;
    VirtualExecutor exec(clock);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        exec.schedule(0.5, [&order, i] { order.push_back(i); });
    exec.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(VirtualExecutor, CancelPreventsExecution)
{
    ManualTime clock;
    VirtualExecutor exec(clock);
    bool ran = false;
    const uint64_t id = exec.schedule(0.1, [&] { ran = true; });
    EXPECT_TRUE(exec.cancel(id));
    EXPECT_FALSE(exec.cancel(id)); // second cancel: already gone
    exec.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(exec.executed(), 0u);
}

TEST(VirtualExecutor, RunUntilLeavesLaterEventsPending)
{
    ManualTime clock;
    VirtualExecutor exec(clock);
    int ran = 0;
    exec.schedule(0.1, [&] { ++ran; });
    exec.schedule(0.2, [&] { ++ran; });
    exec.schedule(0.9, [&] { ++ran; });
    EXPECT_EQ(exec.runUntil(0.5), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_DOUBLE_EQ(exec.now(), 0.5); // advances to the boundary
    EXPECT_EQ(exec.pending(), 1u);
    exec.run();
    EXPECT_EQ(ran, 3);
}

TEST(VirtualExecutor, TasksCanScheduleFurtherTasks)
{
    ManualTime clock;
    VirtualExecutor exec(clock);
    int depth = 0;
    std::function<void()> cascade = [&] {
        if (++depth < 5)
            exec.schedule(0.01, cascade);
    };
    exec.schedule(0.01, cascade);
    exec.run();
    EXPECT_EQ(depth, 5);
    EXPECT_NEAR(exec.now(), 0.05, 1e-12);
}

TEST(VirtualExecutor, PastDueTimesClampToNow)
{
    ManualTime clock;
    clock.advance(10.0);
    VirtualExecutor exec(clock);
    double seen = 0.0;
    exec.at(3.0, [&] { seen = exec.now(); }); // 3.0 is in the past
    exec.run();
    EXPECT_DOUBLE_EQ(seen, 10.0); // never rewound
}

// ---------------------------------------------------------------------------
// SimCluster: whole-stack model invariants.

SimConfig
smallSim(uint64_t seed)
{
    SimConfig cfg;
    cfg.seed = seed;
    return cfg;
}

TEST(SimCluster, AccountingBalancesExactly)
{
    SimWorkload load;
    load.queries = 200;
    const SimResult r = runSimulation(smallSim(7), load);
    EXPECT_EQ(r.stats.offered, 200u);
    EXPECT_EQ(r.stats.offered, r.stats.admitted + r.stats.shed);
    EXPECT_EQ(r.stats.admitted,
              r.stats.completedOk + r.stats.failed);
    EXPECT_EQ(r.stats.doubleDeliveries, 0u);
}

TEST(SimCluster, SameSeedIsByteForByteReproducible)
{
    SimWorkload load;
    const SimResult a = runSimulation(smallSim(1234), load);
    const SimResult b = runSimulation(smallSim(1234), load);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.eventLogText, b.eventLogText);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (size_t i = 0; i < a.queries.size(); ++i) {
        EXPECT_EQ(a.queries[i].answer, b.queries[i].answer);
        EXPECT_EQ(a.queries[i].deliveredSeconds,
                  b.queries[i].deliveredSeconds);
        EXPECT_EQ(a.queries[i].servedBy, b.queries[i].servedBy);
    }
}

TEST(SimCluster, DifferentSeedsDiverge)
{
    SimWorkload load;
    const SimResult a = runSimulation(smallSim(1), load);
    const SimResult b = runSimulation(smallSim(2), load);
    EXPECT_NE(a.digest, b.digest);
}

TEST(SimCluster, EveryOkAnswerMatchesTheReferenceFunction)
{
    SimWorkload load;
    load.queries = 150;
    const SimResult r = runSimulation(smallSim(9), load);
    for (const auto &q : r.queries)
        if (!q.shed && !q.failed)
            EXPECT_EQ(q.answer, expectedAnswer(q.textId))
                << "query " << q.id;
}

TEST(SimCluster, DeliveryIsExactlyOnce)
{
    SimConfig cfg = smallSim(21);
    cfg.hedgeSeconds = 0.003; // hedges are the risky path
    cfg.faults.failRate = 0.05;
    SimWorkload load;
    load.queries = 300;
    const SimResult r = runSimulation(cfg, load);
    EXPECT_GT(r.stats.hedgesFired, 0u);
    EXPECT_EQ(r.stats.doubleDeliveries, 0u);
    for (const auto &q : r.queries)
        EXPECT_EQ(q.deliveries, q.shed ? 0 : 1) << "query " << q.id;
}

TEST(SimCluster, CriticalPathSegmentsSumToTheSpan)
{
    SimWorkload load;
    load.queries = 120;
    const SimResult r = runSimulation(smallSim(33), load);
    for (const auto &q : r.queries) {
        if (q.shed)
            continue;
        const double span = q.deliveredSeconds - q.submittedSeconds;
        const double parts = q.dispatchLagSeconds +
            q.queueBatchSeconds + q.serviceSeconds;
        EXPECT_NEAR(parts, span, 1e-9) << "query " << q.id;
    }
}

TEST(SimCluster, CacheStaysWithinBudgetAndActuallyHits)
{
    SimConfig cfg = smallSim(5);
    cfg.cacheBudgetBytes = 512; // room for 8 entries of 64 bytes
    SimWorkload load;
    load.queries = 300;
    load.distinctTexts = 12;
    load.zipfSkew = 1.0;
    const SimResult r = runSimulation(cfg, load);
    uint64_t hits = 0;
    for (const auto &cache : r.stats.shardCaches) {
        EXPECT_LE(cache.bytes, 512u);
        hits += cache.hits;
    }
    EXPECT_GT(hits, 0u);
    bool winner_hit = false;
    for (const auto &q : r.queries)
        winner_hit = winner_hit || q.cacheHit;
    EXPECT_TRUE(winner_hit);
}

TEST(SimCluster, TinyQueuesShedButNeverLoseQueries)
{
    SimConfig cfg = smallSim(11);
    cfg.shards = 2;
    cfg.workersPerShard = 1;
    cfg.queueCapacity = 1;
    SimWorkload load;
    load.queries = 250;
    load.arrivalRateQps = 5000.0; // far past capacity
    const SimResult r = runSimulation(cfg, load);
    EXPECT_GT(r.stats.shed, 0u);
    EXPECT_EQ(r.stats.offered, r.stats.admitted + r.stats.shed);
    EXPECT_EQ(r.stats.admitted,
              r.stats.completedOk + r.stats.failed);
}

TEST(SimCluster, FailoverRescuesFaultedQueries)
{
    SimConfig cfg = smallSim(17);
    cfg.faults.failRate = 0.2;
    cfg.failoverRetries = 2;
    SimWorkload load;
    load.queries = 300;
    const SimResult r = runSimulation(cfg, load);
    EXPECT_GT(r.stats.failovers, 0u);
    // With 4 shards and two retries most faulted queries must recover.
    EXPECT_GT(r.stats.completedOk, r.stats.failed);
}

TEST(SimCluster, PlaneToggleChangesNoOutcome)
{
    SimConfig on = smallSim(29);
    on.planeEnabled = true;
    SimConfig off = on;
    off.planeEnabled = false;
    SimWorkload load;
    load.queries = 150;
    const SimResult a = runSimulation(on, load);
    const SimResult b = runSimulation(off, load);
    ASSERT_EQ(a.queries.size(), b.queries.size());
    for (size_t i = 0; i < a.queries.size(); ++i) {
        EXPECT_EQ(a.queries[i].answer, b.queries[i].answer);
        EXPECT_EQ(a.queries[i].shed, b.queries[i].shed);
        EXPECT_EQ(a.queries[i].failed, b.queries[i].failed);
        EXPECT_EQ(a.queries[i].servedBy, b.queries[i].servedBy);
        EXPECT_EQ(a.queries[i].deliveredSeconds,
                  b.queries[i].deliveredSeconds);
    }
    EXPECT_TRUE(b.stats.events.empty()); // plane off: nothing logged
}

// ---------------------------------------------------------------------------
// The canonical chaos drill.

TEST(ChaosDrill, FullKillReviveArcOnVirtualTime)
{
    const ChaosDrillReport report = runChaosDrill(42);
    EXPECT_TRUE(report.ejected) << "killed shard was never ejected";
    EXPECT_TRUE(report.alertFired) << "SLO burn alert never fired";
    EXPECT_TRUE(report.recovered) << "shard never probed back";
    EXPECT_TRUE(report.alertCleared) << "alert still firing at end";
    EXPECT_EQ(report.result.stats.healthyShardsAtEnd, 4u);
    EXPECT_GT(report.result.stats.probes, 0u);
    // The outage is survivable: failover keeps most queries OK.
    EXPECT_GT(report.result.stats.completedOk,
              report.result.stats.failed);
}

TEST(ChaosDrill, IdenticalEventLogsAcrossRuns)
{
    const ChaosDrillReport a = runChaosDrill(77);
    const ChaosDrillReport b = runChaosDrill(77);
    EXPECT_EQ(a.result.digest, b.result.digest);
    EXPECT_EQ(a.result.eventLogText, b.result.eventLogText);
    EXPECT_FALSE(a.result.eventLogText.empty());
}

TEST(ChaosDrill, RunsInUnderASecondOfWallTime)
{
    const auto start = std::chrono::steady_clock::now();
    (void)runChaosDrill(3);
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed, 1.0)
        << "virtual-time drill must never wait on the wall clock";
}

// ---------------------------------------------------------------------------
// runTrial: the oracle battery stays quiet on the healthy build.

TEST(TrialOracles, DefaultConfigPassesEveryOracle)
{
    const TrialReport report = runTrial(TrialConfig{});
    EXPECT_TRUE(report.ok);
    for (const auto &v : report.violations)
        ADD_FAILURE() << v.oracle << ": " << v.detail;
}

TEST(TrialOracles, AllRoutingPoliciesPass)
{
    for (uint32_t policy = 0; policy < 4; ++policy) {
        TrialConfig t;
        t.policy = policy;
        t.seed = 100 + policy;
        const TrialReport report = runTrial(t);
        EXPECT_TRUE(report.ok) << "policy " << policy;
    }
}

TEST(TrialOracles, DrillWithHedgingAndFaultsPasses)
{
    TrialConfig t;
    t.seed = 555;
    t.drill = true;
    t.hedgeSeconds = 0.005;
    t.faultRate = 0.05;
    t.queries = 150;
    const TrialReport report = runTrial(t);
    EXPECT_TRUE(report.ok);
    for (const auto &v : report.violations)
        ADD_FAILURE() << v.oracle << ": " << v.detail;
}

TEST(TrialConfigLine, FormatParsesBackIdentically)
{
    TrialConfig t;
    t.seed = 987654321;
    t.shards = 3;
    t.policy = 2;
    t.hedgeSeconds = 0.0125;
    t.batch = false;
    t.cacheTtlSeconds = 0.05;
    t.drill = true;
    t.arrivalQps = 1234.5;
    const std::string line = formatTrialConfig(t);
    TrialConfig parsed;
    ASSERT_TRUE(parseTrialConfig(line, parsed));
    EXPECT_EQ(formatTrialConfig(parsed), line);
    EXPECT_EQ(parsed.seed, t.seed);
    EXPECT_EQ(parsed.shards, t.shards);
    EXPECT_DOUBLE_EQ(parsed.hedgeSeconds, t.hedgeSeconds);
    EXPECT_EQ(parsed.batch, false);
    EXPECT_EQ(parsed.drill, true);
}

TEST(TrialConfigLine, RejectsMalformedInput)
{
    TrialConfig out;
    EXPECT_FALSE(parseTrialConfig("", out));
    EXPECT_FALSE(parseTrialConfig("seed", out));
    EXPECT_FALSE(parseTrialConfig("bogus_key=1", out));
    EXPECT_FALSE(parseTrialConfig("seed=notanumber", out));
    EXPECT_FALSE(parseTrialConfig("seed=1,,shards=2", out));
}

// ---------------------------------------------------------------------------
// Virtual-clock seams on the real components: the production code
// paths the simulation's model mirrors must themselves run on
// ManualTime with zero wall-clock waits.

/** Deterministic scorer (same shape as test_batching's). */
class SeamScorer : public speech::AcousticScorer
{
  public:
    std::vector<float>
    scoreAll(const audio::FeatureVector &f) const override
    {
        return {f[0] * 2.0f, f[0] + 1.0f};
    }
    size_t stateCount() const override { return 2; }
    const char *name() const override { return "SEAM"; }
};

TEST(ClockSeams, BatchSchedulerTimeoutFlushIsPumpDriven)
{
    SeamScorer scorer;
    ManualTime clock;
    BatchConfig config;
    config.maxBatchSize = 8;      // never fills
    config.maxWaitSeconds = 0.05; // virtual seconds
    config.clock = &clock;
    BatchScheduler scheduler(&scorer, nullptr, config);

    const std::vector<audio::FeatureVector> frames{
        audio::FeatureVector{3.0f}};
    auto pending = std::async(std::launch::async, [&] {
        return scheduler.scoreFrames(frames, {});
    });
    // Progress loop, not a timing assumption: each pass advances
    // virtual time past the window and pumps; it exits as soon as the
    // enqueued item has been flushed and scored.
    while (pending.wait_for(std::chrono::milliseconds(1)) !=
           std::future_status::ready) {
        clock.advance(0.1);
        scheduler.flushTimedOut();
    }
    const auto outcome = pending.get();
    EXPECT_EQ(outcome.batchSize, 1u);
    EXPECT_STREQ(outcome.flushReason, "timeout");
    ASSERT_EQ(outcome.scores.size(), 1u);
    EXPECT_EQ(outcome.scores[0], scorer.scoreAll(frames[0]));
}

class SeamFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SiriusConfig config;
        config.qa.fillerDocs = 60;
        pipeline_ = new SiriusPipeline(SiriusPipeline::build(config));
    }

    static void
    TearDownTestSuite()
    {
        delete pipeline_;
        pipeline_ = nullptr;
    }

    static SiriusPipeline *pipeline_;
};

SiriusPipeline *SeamFixture::pipeline_ = nullptr;

TEST_F(SeamFixture, ConcurrentServerDeadlineRunsOnManualTime)
{
    ManualTime clock;
    ConcurrentServerConfig config;
    config.workers = 2;
    // On the wall clock this budget would expire mid-pipeline almost
    // every time; frozen virtual time means it can never expire.
    config.deadlineSeconds = 1e-6;
    config.clock = &clock;
    ConcurrentServer server(*pipeline_, config);
    const auto result = server.handle(standardQuerySet()[0]);
    EXPECT_FALSE(result.deadlineExpired);
    EXPECT_EQ(result.degradation, Degradation::None);
}

TEST_F(SeamFixture, ClusterRouterClockModeServesAndPumpsHedges)
{
    ManualTime clock;
    ClusterConfig config;
    config.shards = 2;
    config.shard.workers = 1;
    config.hedgeSeconds = 0.01; // armed, but fired only by the pump
    config.clock = &clock;
    ClusterRouter router(*pipeline_, config);

    // In clock mode neither the hedge thread nor the batch
    // schedulers' wall-time wake-ups exist: queries make progress
    // only while a driver advances the clock and pumps. Same progress
    // loop a sim executor would run.
    const auto &queries = standardQuerySet();
    auto pending = std::async(std::launch::async, [&] {
        for (size_t i = 0; i < 6; ++i)
            router.handle(queries[i % queries.size()]);
    });
    while (pending.wait_for(std::chrono::milliseconds(1)) !=
           std::future_status::ready) {
        clock.advance(0.005);
        router.pollBatches();
        router.pollHedges();
    }
    pending.get();
    // handle() returns when the winning leg delivers, but a losing
    // hedge leg can still sit in a shard's partial batch — and only
    // the pump can close it. Drain on a helper thread while this one
    // keeps driving the clock, so destruction finds the router idle.
    auto drained = std::async(std::launch::async, [&] { router.drain(); });
    while (drained.wait_for(std::chrono::milliseconds(1)) !=
           std::future_status::ready) {
        clock.advance(0.005);
        router.pollBatches();
        router.pollHedges();
    }
    drained.get();
    const auto snap = router.snapshot();
    EXPECT_EQ(snap.accepted, 6u);
    EXPECT_EQ(snap.rejected, 0u);
    // Hedge legs may or may not have fired depending on how far the
    // clock moved while each query was in flight; either way every
    // query must have been served exactly once at the cluster level.
    uint64_t outcomes = 0;
    for (const auto count : snap.outcomes)
        outcomes += count;
    EXPECT_EQ(outcomes, 6u);
}

} // namespace
