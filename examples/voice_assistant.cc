/**
 * @file
 * Voice assistant scenario: run the complete 42-query input set
 * (Table 1's taxonomy) through the pipeline, as the paper's
 * characterization experiments do, and report per-class accuracy and
 * latency — a miniature of Section 3's real-system analysis.
 *
 * Usage: ./build/examples/voice_assistant [--backend gmm|dnn]
 */

#include <cstdio>
#include <cstring>

#include "common/stats.h"
#include "common/strings.h"
#include "core/pipeline.h"
#include "core/query_set.h"

using namespace sirius;
using namespace sirius::core;

int
main(int argc, char **argv)
{
    SiriusConfig config;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
            config.asrBackend = std::strcmp(argv[i + 1], "dnn") == 0
                ? speech::AsrBackend::Dnn : speech::AsrBackend::Gmm;
            ++i;
        }
    }

    std::printf("building Sirius pipeline (%s acoustic backend)...\n",
                config.asrBackend == speech::AsrBackend::Dnn ? "DNN"
                                                             : "GMM");
    const SiriusPipeline sirius = SiriusPipeline::build(config);

    SampleStats latency[3];
    size_t correct[3] = {0, 0, 0};
    size_t total[3] = {0, 0, 0};

    for (const auto &query : standardQuerySet()) {
        const auto result = sirius.process(query);
        const int c = static_cast<int>(query.type);
        latency[c].add(result.timings.total());
        ++total[c];

        bool ok = false;
        if (query.type == QueryType::VoiceCommand) {
            ok = result.queryClass == QueryClass::Action &&
                toLower(result.action) == toLower(query.text);
        } else {
            ok = toLower(result.answer).find(query.expectedAnswer) !=
                std::string::npos;
        }
        correct[c] += ok;

        std::printf("[%-3s] %-52s -> %s%s\n",
                    queryTypeName(query.type), query.text.c_str(),
                    query.type == QueryType::VoiceCommand
                        ? result.action.c_str() : result.answer.c_str(),
                    ok ? "" : "   (MISS)");
    }

    std::printf("\n%-5s %8s %14s %14s\n", "class", "accuracy",
                "mean latency", "p95 latency");
    for (int c = 0; c < 3; ++c) {
        std::printf("%-5s %7.0f%% %12.2f ms %12.2f ms\n",
                    queryTypeName(static_cast<QueryType>(c)),
                    100.0 * static_cast<double>(correct[c]) /
                        static_cast<double>(total[c]),
                    latency[c].mean() * 1e3,
                    latency[c].percentile(95) * 1e3);
    }
    return 0;
}
