/**
 * @file
 * Quickstart: build the full Sirius pipeline and push one query of each
 * class (voice command, voice query, voice-image query) through it.
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pipeline.h"
#include "core/query_set.h"

int
main()
{
    using namespace sirius::core;

    // Construction trains every model: the ASR acoustic model on
    // synthesized speech, the QA CRF tagger on the tagged corpus, and
    // pre-extracts SURF descriptors for the landmark database.
    std::printf("training Sirius (ASR + QA + IMM)...\n");
    const SiriusPipeline sirius = SiriusPipeline::build();

    // 1. A voice command: recognized speech is classified as an action
    //    and returned to the device.
    const Query command{QueryType::VoiceCommand,
                        "set my alarm for 8 am", -1, ""};
    const auto vc = sirius.process(command);
    std::printf("\n[VC ] heard: \"%s\"\n", vc.transcript.c_str());
    std::printf("      -> device action: \"%s\"\n", vc.action.c_str());

    // 2. A voice query: ASR -> question answering over the corpus.
    const Query question{QueryType::VoiceQuery,
                         "who was elected 44th president", -1, "obama"};
    const auto vq = sirius.process(question);
    std::printf("\n[VQ ] heard: \"%s\"\n", vq.transcript.c_str());
    std::printf("      -> answer: \"%s\"\n", vq.answer.c_str());

    // 3. A voice-image query: the camera image identifies the entity
    //    the spoken question refers to.
    const Query image_query{QueryType::VoiceImageQuery,
                            "when does this restaurant close", 0,
                            "9 pm"};
    const auto viq = sirius.process(image_query);
    std::printf("\n[VIQ] heard: \"%s\"\n", viq.transcript.c_str());
    std::printf("      image matched landmark #%d\n",
                viq.matchedLandmark);
    std::printf("      question became: \"%s\"\n",
                viq.augmentedQuestion.c_str());
    std::printf("      -> answer: \"%s\"\n", viq.answer.c_str());

    std::printf("\nper-stage latency of the VIQ query: ASR %.1f ms, "
                "IMM %.1f ms, QA %.1f ms\n",
                viq.timings.asr.total() * 1e3,
                viq.timings.imm.total() * 1e3,
                viq.timings.qa.total() * 1e3);
    return 0;
}
