/**
 * @file
 * Leaf-server load test: the Section-3 characterization from the
 * operator's seat. Builds one Sirius leaf node, measures its capacity,
 * then sweeps offered load and reports latency inflation — the lived
 * experience of the queueing model behind Figure 17.
 *
 * Two modes:
 *   replay (default) — service times measured once, queue evolution by a
 *       virtual-time Lindley recursion (fast, deterministic);
 *   real — a core::ConcurrentServer executes every request on worker
 *       threads while the open-loop generator submits Poisson arrivals
 *       in real time (slow, but actually concurrent).
 *
 * Usage: ./build/examples/load_test [options] [max-load-fraction]
 *   --real          drive real pipeline executions (default: replay)
 *   --workers N     worker threads in --real mode        (default 4)
 *   --queue N       request-queue capacity in --real mode (default 64)
 *   --requests N    requests per load level in --real mode (default 150)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/concurrent_server.h"
#include "core/server.h"

using namespace sirius;
using namespace sirius::core;

namespace {

void
replaySweep(SiriusServer &server, double capacity, double max_load)
{
    std::printf("%-12s %12s %14s %14s %14s\n", "load", "offered qps",
                "mean latency", "p95 latency", "p99 latency");
    for (double rho = 0.1; rho <= max_load + 1e-9; rho += 0.2) {
        const auto result = loadTest(server, rho * capacity);
        std::printf("%-12.1f %12.1f %12.2fms %12.2fms %12.2fms\n", rho,
                    result.offeredQps,
                    result.sojournSeconds.mean() * 1e3,
                    result.sojournSeconds.percentile(95) * 1e3,
                    result.sojournSeconds.percentile(99) * 1e3);
    }
}

void
realSweep(const SiriusPipeline &pipeline, double capacity,
          double max_load, const ConcurrentServerConfig &config,
          size_t requests)
{
    std::printf("real executions: %zu workers, queue capacity %zu, %zu "
                "requests per level\n", config.workers,
                config.queueCapacity, requests);
    std::printf("%-12s %12s %14s %14s %14s %8s\n", "load", "offered qps",
                "mean sojourn", "p95 sojourn", "p99 sojourn", "shed");
    for (double rho = 0.1; rho <= max_load + 1e-9; rho += 0.2) {
        // Load is per worker: rho * capacity saturates one worker.
        const double lambda =
            rho * capacity * static_cast<double>(config.workers);
        ConcurrentServer server(pipeline, config);
        const auto result = runOpenLoop(server, lambda, requests);
        const auto stats = server.snapshot();
        std::printf("%-12.1f %12.1f %12.2fms %12.2fms %12.2fms %8llu\n",
                    rho, result.offeredQps,
                    result.sojournSeconds.mean() * 1e3,
                    result.sojournSeconds.percentile(95) * 1e3,
                    result.sojournSeconds.percentile(99) * 1e3,
                    static_cast<unsigned long long>(stats.rejected));
    }

    // One closed-loop run for contrast: per-session latency when every
    // user waits for their answer before asking again.
    ConcurrentServer server(pipeline, config);
    const auto closed =
        runClosedLoop(server, config.workers, requests / config.workers);
    std::printf("\nclosed loop (%zu blocking clients): %.1f qps served, "
                "mean latency %.2f ms\n", config.workers,
                closed.achievedQps, closed.sojournSeconds.mean() * 1e3);

    const auto stats = server.snapshot();
    std::printf("per-stage p50/p95/p99 (ms): asr %.1f/%.1f/%.1f   "
                "qa %.1f/%.1f/%.1f   imm %.1f/%.1f/%.1f\n",
                stats.server.asrSeconds.p50() * 1e3,
                stats.server.asrSeconds.p95() * 1e3,
                stats.server.asrSeconds.p99() * 1e3,
                stats.server.qaSeconds.p50() * 1e3,
                stats.server.qaSeconds.p95() * 1e3,
                stats.server.qaSeconds.p99() * 1e3,
                stats.server.immSeconds.p50() * 1e3,
                stats.server.immSeconds.p95() * 1e3,
                stats.server.immSeconds.p99() * 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    bool real = false;
    ConcurrentServerConfig config;
    size_t requests = 150;
    double max_load = 0.9;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--real") == 0)
            real = true;
        else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
            config.workers = static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc)
            config.queueCapacity =
                static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
            requests = static_cast<size_t>(std::atoi(argv[++i]));
        else
            max_load = std::atof(argv[i]);
    }

    std::printf("training the pipeline and starting a leaf server...\n");
    const SiriusPipeline pipeline = SiriusPipeline::build();
    SiriusServer server(pipeline);

    // Warm measurement pass so the capacity estimate is grounded.
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const double capacity = server.serviceRate();
    std::printf("measured capacity: %.1f queries/s per worker (mean "
                "service %.2f ms)\n\n", capacity, 1e3 / capacity);

    if (real)
        realSweep(pipeline, capacity, max_load, config, requests);
    else
        replaySweep(server, capacity, max_load);

    std::printf("\nlatency blows up as load approaches capacity — the "
                "headroom acceleration buys (Figure 17) is exactly this "
                "curve pushed right by 10-100x\n");
    return 0;
}
