/**
 * @file
 * Leaf-server load test: the Section-3 characterization from the
 * operator's seat. Builds one Sirius leaf node, measures its real
 * per-query service times over the 42-query input set, then sweeps
 * offered load and reports latency inflation — the lived experience of
 * the queueing model behind Figure 17.
 *
 * Usage: ./build/examples/load_test [max-load-fraction]
 */

#include <cstdio>
#include <cstdlib>

#include "core/server.h"

using namespace sirius;
using namespace sirius::core;

int
main(int argc, char **argv)
{
    const double max_load = argc > 1 ? std::atof(argv[1]) : 0.9;

    std::printf("training the pipeline and starting a leaf server...\n");
    const SiriusPipeline pipeline = SiriusPipeline::build();
    SiriusServer server(pipeline);

    // Warm measurement pass so the capacity estimate is grounded.
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const double capacity = server.serviceRate();
    std::printf("measured capacity: %.1f queries/s (mean service %.2f "
                "ms)\n\n", capacity,
                1e3 / capacity);

    std::printf("%-12s %12s %14s %14s %14s\n", "load", "offered qps",
                "mean latency", "p95 latency", "p99 latency");
    for (double rho = 0.1; rho <= max_load + 1e-9; rho += 0.2) {
        const auto result = loadTest(server, rho * capacity);
        std::printf("%-12.1f %12.1f %12.2fms %12.2fms %12.2fms\n", rho,
                    result.offeredQps,
                    result.sojournSeconds.mean() * 1e3,
                    result.sojournSeconds.percentile(95) * 1e3,
                    result.sojournSeconds.percentile(99) * 1e3);
    }
    std::printf("\nlatency blows up as load approaches capacity — the "
                "headroom acceleration buys (Figure 17) is exactly this "
                "curve pushed right by 10-100x\n");
    return 0;
}
