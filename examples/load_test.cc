/**
 * @file
 * Leaf-server load test: the Section-3 characterization from the
 * operator's seat. Builds one Sirius leaf node, measures its capacity,
 * then sweeps offered load and reports latency inflation — the lived
 * experience of the queueing model behind Figure 17.
 *
 * Two modes:
 *   replay (default) — service times measured once, queue evolution by a
 *       virtual-time Lindley recursion (fast, deterministic);
 *   real — a core::ConcurrentServer executes every request on worker
 *       threads while the open-loop generator submits Poisson arrivals
 *       in real time (slow, but actually concurrent).
 *
 * Real mode optionally applies the robustness policy: a per-query
 * deadline anchored at admission (queueing burns the budget) and a
 * seeded fault injector, with shed/degraded/deadline-miss counts
 * reported per load level. Try:
 *
 *   load_test --real --deadline-ms 200 --fault-rate 0.05
 *
 * Usage: ./build/examples/load_test [options] [max-load-fraction]
 *   --real            drive real pipeline executions (default: replay)
 *   --workers N       worker threads in --real mode        (default 4)
 *   --queue N         request-queue capacity in --real mode (default 64)
 *   --requests N      requests per load level in --real mode (default 150)
 *   --deadline-ms D   per-query latency budget from admission (default off)
 *   --fault-rate R    per-stage failure probability in [0,1] (default 0)
 *   --fault-seed S    fault-injector seed     (default: FaultConfig's)
 *   --retries N       stage retries before degrading        (default 1
 *                     when faults are on, else 0)
 *
 * Batching (--real mode; see docs/ARCHITECTURE.md "Batching"):
 *   --batch-size N    close a kernel batch at N items       (default 8)
 *   --batch-wait-us U close a partial batch after U µs      (default 200)
 *   --no-batching     serial kernels, for a before/after baseline
 *
 * Caching (--real mode; see docs/CACHING.md):
 *   --cache           enable the per-layer result caches (default off)
 *   --cache-bytes N   byte budget per cache            (default 64 MiB)
 *   --cache-ttl-ms T  entry time-to-live in ms          (default: none)
 *   --cache-shards N  mutex stripes per cache               (default 8)
 *   --no-cache        force caching off (overrides other cache flags)
 *   --zipf S          Zipf(S)-skewed query selection instead of round
 *                     robin (S = 1.0 is the classic skew; caches need
 *                     repetition to hit, and skew is what real
 *                     assistant traffic looks like)
 *
 * Observability (--real mode):
 *   --trace-out F     append per-query spans to F as JSONL
 *   --trace-sample R  head sampling rate in [0,1] (default 1 when
 *                     --trace-out is given, else 0)
 *   --metrics-out F   write the merged metrics registry to F in
 *                     Prometheus text exposition format
 *   --metrics-csv F   write the merged metrics registry to F as CSV
 *   --log-level L     log threshold: debug|info|warn|error
 *
 * SLO engine + flight recorder (--real mode; docs/OBSERVABILITY.md):
 *   --slo             track SLOs — availability 99.9% plus latency p99
 *                     under the deadline (250 ms when no deadline is
 *                     set) — with multi-window burn-rate alerts
 *   --slo-scale S     multiply every alert window by S, shrinking the
 *                     production 5m/1h + 6h/3d pairs to drill scale
 *                     (default 1; implies --slo)
 *   --slo-report      print the per-objective SLO report at the end
 *                     (windows, burn rates, alert transitions;
 *                     implies --slo)
 *   --events-out F    write the structured event log (alert fire and
 *                     clear, shard eject/recover/kill/revive, drill
 *                     switches, flight dumps) to F as JSONL
 *   --flight-out F    keep whole traces of the slowest + sampled
 *                     queries in the flight recorder and dump them to
 *                     F as JSONL on every alert fire and at exit
 *   --kill-mode M     what --kill-shard-at does: admin (clean drain,
 *                     the default) or fault (the shard stays routable
 *                     and fails queries loudly, so ejection and the
 *                     SLO burn-rate alerts see the outage)
 *
 * Scale-out (implies --real; see docs/SCALING.md):
 *   --shards M        route across M replicated shards, each its own
 *                     queue + workers + batcher + caches (default: the
 *                     single-server sweeps above)
 *   --policy P        routing policy: rr|least|p2c|affinity
 *                     (default least)
 *   --hedge-ms H      send a hedged copy of a query still outstanding
 *                     after H ms to a second shard (default off)
 *   --kill-shard-at K outage drill: administratively kill a shard just
 *                     before closed-loop request K (1-based; default off)
 *   --kill-shard I    which shard the drill kills (default 0)
 *   --revive-shard-at R revive the killed shard before request R
 *                     (default: stays dead)
 *
 * Feed the trace to the analyzer:
 *   load_test --real --trace-out t.jsonl --metrics-out m.prom
 *   trace_report t.jsonl
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/fault_injection.h"
#include "common/flight_recorder.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/slo.h"
#include "common/trace.h"
#include "core/cluster.h"
#include "core/concurrent_server.h"
#include "core/server.h"

using namespace sirius;
using namespace sirius::core;

namespace {

/** Exporter destinations shared by every server the sweep creates. */
struct Observability
{
    std::string traceOut;
    std::string metricsOut;
    std::string metricsCsv;
    std::string eventsOut;
    std::string flightOut;
    double sampleRate = 0.0;
    MetricsRegistry registry;
    bool traceFileStarted = false;

    /** The SLO plane; null members mean the feature is off. */
    SloTracker *slo = nullptr;
    EventLog *events = nullptr;
    FlightRecorder *flight = nullptr;

    /** Drain one server's collector and registry into the sinks. */
    void
    collect(const ConcurrentServer &server)
    {
        server.exportMetrics(registry);
        if (traceOut.empty())
            return;
        const auto spans = server.traces().snapshot();
        if (spans.empty())
            return;
        // First write truncates any stale file; later levels append.
        writeTraceJsonl(traceOut, spans, traceFileStarted);
        traceFileStarted = true;
    }

    /** Cluster variant: fleet metrics plus router and shard spans. */
    void
    collect(const ClusterRouter &router)
    {
        router.exportMetrics(registry);
        if (traceOut.empty())
            return;
        std::vector<SpanRecord> spans = router.traces().snapshot();
        for (size_t i = 0; i < router.shardCount(); ++i) {
            const auto leaf =
                router.shard(i).server().traces().snapshot();
            spans.insert(spans.end(), leaf.begin(), leaf.end());
        }
        if (spans.empty())
            return;
        writeTraceJsonl(traceOut, spans, traceFileStarted);
        traceFileStarted = true;
    }

    void
    flush()
    {
        // The single-server sweeps never export the SLO plane through a
        // router, so fold it into the registry here (the delta-add
        // export idiom makes re-export after a cluster sweep a no-op).
        if (slo != nullptr)
            slo->exportTo(registry);
        if (events != nullptr)
            events->exportTo(registry);
        if (flight != nullptr)
            flight->exportTo(registry);
        if (!metricsOut.empty()) {
            std::FILE *f = std::fopen(metricsOut.c_str(), "w");
            if (f != nullptr) {
                const std::string text = registry.renderPrometheus();
                std::fwrite(text.data(), 1, text.size(), f);
                std::fclose(f);
                std::printf("wrote metrics to %s\n", metricsOut.c_str());
            }
        }
        if (!metricsCsv.empty()) {
            std::FILE *f = std::fopen(metricsCsv.c_str(), "w");
            if (f != nullptr) {
                const std::string text = registry.renderCsv();
                std::fwrite(text.data(), 1, text.size(), f);
                std::fclose(f);
                std::printf("wrote metrics CSV to %s\n",
                            metricsCsv.c_str());
            }
        }
        if (!traceOut.empty())
            std::printf("wrote trace spans to %s (analyze with "
                        "trace_report %s)\n", traceOut.c_str(),
                        traceOut.c_str());
        if (events != nullptr && !eventsOut.empty() &&
            events->writeJsonl(eventsOut))
            std::printf("wrote %zu events to %s\n",
                        events->snapshot().size(), eventsOut.c_str());
        if (flight != nullptr) {
            const auto stats = flight->stats();
            std::printf("flight: offered %llu, kept %llu (slowest %zu, "
                        "sample %zu retained), merged %llu, evicted "
                        "%llu, %.1f KiB\n",
                        static_cast<unsigned long long>(stats.offered),
                        static_cast<unsigned long long>(stats.kept),
                        stats.slowestCount, stats.sampleCount,
                        static_cast<unsigned long long>(stats.merged),
                        static_cast<unsigned long long>(stats.evicted),
                        static_cast<double>(stats.bytes) / 1024.0);
            if (!flightOut.empty() && flight->dumpJsonl(flightOut))
                std::printf("wrote flight traces to %s (analyze with "
                            "trace_report %s)\n", flightOut.c_str(),
                            flightOut.c_str());
        }
    }
};

/** The --slo-report body: every objective, window, and alert. */
void
printSloReport(const SloTracker &tracker)
{
    const SloSnapshot snap = tracker.snapshot();
    std::printf("\nslo report:\n");
    for (const SloObjectiveStatus &objective : snap.objectives) {
        const double lifetime = objective.total > 0
            ? static_cast<double>(objective.good) /
                static_cast<double>(objective.total)
            : 1.0;
        std::printf("slo[%s]: target %.4f%%, lifetime good %llu/%llu "
                    "(%.4f%%)\n", objective.objective.c_str(),
                    objective.target * 100.0,
                    static_cast<unsigned long long>(objective.good),
                    static_cast<unsigned long long>(objective.total),
                    lifetime * 100.0);
        for (const SloWindowStatus &window : objective.windows)
            std::printf("slo[%s] window %s: good %.4f%%, burn %.2f\n",
                        objective.objective.c_str(),
                        window.window.c_str(), window.goodRatio * 100.0,
                        window.burnRate);
        for (const SloAlertStatus &alert : objective.alerts)
            std::printf("slo[%s] alert %s: %s, fires %llu, clears "
                        "%llu\n", objective.objective.c_str(),
                        alert.alert.c_str(),
                        alert.firing ? "FIRING" : "ok",
                        static_cast<unsigned long long>(alert.fires),
                        static_cast<unsigned long long>(alert.clears));
    }
}

void
replaySweep(SiriusServer &server, double capacity, double max_load)
{
    std::printf("%-12s %12s %14s %14s %14s\n", "load", "offered qps",
                "mean latency", "p95 latency", "p99 latency");
    for (double rho = 0.1; rho <= max_load + 1e-9; rho += 0.2) {
        const auto result = loadTest(server, rho * capacity);
        std::printf("%-12.1f %12.1f %12.2fms %12.2fms %12.2fms\n", rho,
                    result.offeredQps,
                    result.sojournSeconds.mean() * 1e3,
                    result.sojournSeconds.percentile(95) * 1e3,
                    result.sojournSeconds.percentile(99) * 1e3);
    }
}

/** One per-layer line of the cache summary. */
void
printCacheLine(const char *name, const CacheStats &stats)
{
    std::printf("cache[%s]: %llu lookups, %llu hits (%.0f%% hit rate), "
                "%llu insertions, %llu evictions, %llu entries, "
                "%.1f KiB\n", name,
                static_cast<unsigned long long>(stats.lookups()),
                static_cast<unsigned long long>(stats.hits),
                stats.hitRate() * 100.0,
                static_cast<unsigned long long>(stats.insertions),
                static_cast<unsigned long long>(stats.evictedLru +
                                                stats.evictedExpired),
                static_cast<unsigned long long>(stats.entries),
                static_cast<double>(stats.bytes) / 1024.0);
}

void
realSweep(const SiriusPipeline &pipeline, double capacity,
          double max_load, ConcurrentServerConfig config,
          size_t requests, double zipf_skew, Observability &obs)
{
    config.traceSampleRate = obs.sampleRate;
    std::printf("real executions: %zu workers, queue capacity %zu, %zu "
                "requests per level\n", config.workers,
                config.queueCapacity, requests);
    if (config.batching.enabled)
        std::printf("batching: up to %zu queries per kernel call, "
                    "%.0f us window (--no-batching for the serial "
                    "baseline)\n", config.batching.maxBatchSize,
                    config.batching.maxWaitSeconds * 1e6);
    else
        std::printf("batching: disabled (serial kernels)\n");
    if (config.cache.enabled)
        std::printf("caching: %zu shards, %.0f MiB budget per cache%s "
                    "(--no-cache for the uncached baseline)\n",
                    config.cache.shards,
                    static_cast<double>(config.cache.byteBudget) /
                        (1024.0 * 1024.0),
                    config.cache.ttlSeconds > 0.0 ? ", TTL on" : "");
    if (zipf_skew > 0.0)
        std::printf("queries: Zipf(%.2f)-skewed over the standard set\n",
                    zipf_skew);
    if (config.deadlineSeconds > 0.0)
        std::printf("deadline: %.0f ms per query from admission\n",
                    config.deadlineSeconds * 1e3);
    if (config.faults != nullptr && config.faults->enabled())
        std::printf("faults: stage failure rate %.2f, seed %llu, "
                    "%d retr%s before degrading\n",
                    config.faults->config().failureRate,
                    static_cast<unsigned long long>(
                        config.faults->config().seed),
                    config.retry.maxRetries,
                    config.retry.maxRetries == 1 ? "y" : "ies");
    std::printf("%-8s %10s %12s %12s %12s %6s %9s %7s\n", "load",
                "offered", "mean sojrn", "p95 sojrn", "p99 sojrn",
                "shed", "degraded", "missed");
    size_t level = 0;
    for (double rho = 0.1; rho <= max_load + 1e-9; rho += 0.2) {
        // Load is per worker: rho * capacity saturates one worker.
        const double lambda =
            rho * capacity * static_cast<double>(config.workers);
        // Distinct id blocks per level keep the shared JSONL unambiguous.
        config.traceIdOffset = 1000000 * static_cast<uint64_t>(++level);
        ConcurrentServer server(pipeline, config);
        const auto result =
            runOpenLoop(server, lambda, requests, 31337, zipf_skew);
        obs.collect(server);
        std::printf("%-8.1f %8.1fqps %10.2fms %10.2fms %10.2fms %6llu "
                    "%9llu %7llu\n",
                    rho, result.offeredQps,
                    result.sojournSeconds.mean() * 1e3,
                    result.sojournSeconds.percentile(95) * 1e3,
                    result.sojournSeconds.percentile(99) * 1e3,
                    static_cast<unsigned long long>(result.rejected),
                    static_cast<unsigned long long>(result.degraded),
                    static_cast<unsigned long long>(
                        result.deadlineMisses));
    }

    // One closed-loop run for contrast: per-session latency when every
    // user waits for their answer before asking again.
    config.traceIdOffset = 1000000 * static_cast<uint64_t>(level + 1);
    ConcurrentServer server(pipeline, config);
    const auto closed = runClosedLoop(
        server, config.workers, requests / config.workers, zipf_skew);
    std::printf("\nclosed loop (%zu blocking clients): %.1f qps served, "
                "mean latency %.2f ms\n", config.workers,
                closed.achievedQps, closed.sojournSeconds.mean() * 1e3);
    obs.collect(server);

    const auto stats = server.snapshot();
    std::printf("per-stage p50/p95/p99 (ms): asr %.1f/%.1f/%.1f   "
                "qa %.1f/%.1f/%.1f   imm %.1f/%.1f/%.1f\n",
                stats.server.asrSeconds.p50() * 1e3,
                stats.server.asrSeconds.p95() * 1e3,
                stats.server.asrSeconds.p99() * 1e3,
                stats.server.qaSeconds.p50() * 1e3,
                stats.server.qaSeconds.p95() * 1e3,
                stats.server.qaSeconds.p99() * 1e3,
                stats.server.immSeconds.p50() * 1e3,
                stats.server.immSeconds.p95() * 1e3,
                stats.server.immSeconds.p99() * 1e3);
    if (config.batching.enabled) {
        for (size_t k = 0; k < kBatchKernels; ++k) {
            const auto &batch = stats.batching.kernels[k];
            if (batch.batches == 0)
                continue;
            std::printf("batch[%s]: %llu batches, %llu items, mean "
                        "occupancy %.2f, mean wait %.0f us\n",
                        batchKernelName(static_cast<BatchKernel>(k)),
                        static_cast<unsigned long long>(batch.batches),
                        static_cast<unsigned long long>(batch.items),
                        batch.meanOccupancy(),
                        batch.waitSeconds.mean() * 1e6);
        }
    }
    if (config.cache.enabled) {
        printCacheLine("acoustic_scores", stats.caches.acousticScores);
        printCacheLine("answers", stats.caches.answers);
        printCacheLine("matches", stats.caches.matches);
    }
    if (stats.server.degraded + stats.server.failed +
            stats.server.deadlineMisses > 0) {
        std::printf("degradation ladder: viq->vq %llu, vq->vc %llu, "
                    "viq->vc %llu, failed %llu; %llu deadline misses, "
                    "%llu stage retries\n",
                    static_cast<unsigned long long>(
                        stats.server.degradationCounts[1]),
                    static_cast<unsigned long long>(
                        stats.server.degradationCounts[2]),
                    static_cast<unsigned long long>(
                        stats.server.degradationCounts[3]),
                    static_cast<unsigned long long>(
                        stats.server.degradationCounts[4]),
                    static_cast<unsigned long long>(
                        stats.server.deadlineMisses),
                    static_cast<unsigned long long>(
                        stats.server.stageRetries));
    }
}

/**
 * Scale-out sweep: the realSweep shape against a ClusterRouter, then a
 * closed-loop run carrying the optional outage drill, then the fleet
 * summary the smoke script greps ("fleet: ... failed N ...").
 */
void
clusterSweep(const SiriusPipeline &pipeline, double capacity,
             double max_load, ConcurrentServerConfig shard_config,
             ClusterConfig cluster, size_t requests, double zipf_skew,
             const ClusterLoadOptions &drill, Observability &obs)
{
    shard_config.traceSampleRate = obs.sampleRate;
    cluster.shard = shard_config;
    std::printf("cluster: %zu shards x %zu workers each, policy %s, "
                "hedge %s, failover retries %d\n", cluster.shards,
                shard_config.workers,
                routingPolicyName(cluster.policy),
                cluster.hedgeSeconds > 0.0 ? "on" : "off",
                cluster.failoverRetries);
    if (zipf_skew > 0.0)
        std::printf("queries: Zipf(%.2f)-skewed over the standard set\n",
                    zipf_skew);
    std::printf("%-8s %10s %12s %12s %12s %6s %9s %7s\n", "load",
                "offered", "mean sojrn", "p95 sojrn", "p99 sojrn",
                "shed", "degraded", "missed");
    size_t level = 0;
    for (double rho = 0.1; rho <= max_load + 1e-9; rho += 0.2) {
        // Load is per fleet: rho scales the whole fleet's capacity.
        const double lambda = rho * capacity *
            static_cast<double>(shard_config.workers) *
            static_cast<double>(cluster.shards);
        // Distinct id blocks per level (the router further offsets each
        // shard by 10^7 within the block).
        cluster.shard.traceIdOffset =
            1000000000ULL * static_cast<uint64_t>(++level);
        ClusterRouter router(pipeline, cluster);
        ClusterLoadOptions options;
        options.zipfSkew = zipf_skew;
        const auto result = runOpenLoop(router, lambda, requests, options);
        obs.collect(router);
        std::printf("%-8.1f %8.1fqps %10.2fms %10.2fms %10.2fms %6llu "
                    "%9llu %7llu\n",
                    rho, result.offeredQps,
                    result.sojournSeconds.mean() * 1e3,
                    result.sojournSeconds.percentile(95) * 1e3,
                    result.sojournSeconds.percentile(99) * 1e3,
                    static_cast<unsigned long long>(result.rejected),
                    static_cast<unsigned long long>(result.degraded),
                    static_cast<unsigned long long>(
                        result.deadlineMisses));
    }

    // Closed loop across the fleet; the outage drill (if any) runs here
    // so failover/ejection/recovery all happen under live traffic.
    cluster.shard.traceIdOffset =
        1000000000ULL * static_cast<uint64_t>(level + 1);
    ClusterRouter router(pipeline, cluster);
    const size_t clients = cluster.shards * shard_config.workers;
    const size_t per_client = std::max<size_t>(1, requests / clients);
    ClusterLoadOptions options = drill;
    options.zipfSkew = zipf_skew;
    if (drill.killShardAt != 0)
        std::printf("\ndrill: killing shard %zu (%s mode) before "
                    "request %zu%s\n", drill.killShard,
                    drill.killByFault ? "fault" : "admin",
                    drill.killShardAt,
                    drill.reviveShardAt != 0 ? " (revived later)" : "");
    const auto closed = runClosedLoop(router, clients, per_client,
                                      options);
    std::printf("\nclosed loop (%zu blocking clients): %.1f qps served, "
                "mean latency %.2f ms\n", clients, closed.achievedQps,
                closed.sojournSeconds.mean() * 1e3);
    obs.collect(router);

    const auto stats = router.snapshot();
    std::printf("fleet: accepted %llu, rejected %llu, failovers %llu, "
                "hedges %llu (won %llu), ejections %llu, probes %llu, "
                "recoveries %llu, healthy %zu/%zu, failed %llu\n",
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.failovers),
                static_cast<unsigned long long>(stats.hedgesFired),
                static_cast<unsigned long long>(stats.hedgeWins),
                static_cast<unsigned long long>(stats.ejections),
                static_cast<unsigned long long>(stats.probes),
                static_cast<unsigned long long>(stats.recoveries),
                stats.healthyShards, router.shardCount(),
                static_cast<unsigned long long>(
                    stats.outcomes[static_cast<size_t>(
                        Degradation::Failed)]));
    for (size_t i = 0; i < router.shardCount(); ++i) {
        const auto &shard = router.shard(i);
        std::printf("shard %zu: served %llu, healthy %s, ejections "
                    "%llu, admin %s\n", i,
                    static_cast<unsigned long long>(
                        stats.shards[i].server.served),
                    shard.healthy() ? "yes" : "no",
                    static_cast<unsigned long long>(shard.ejections()),
                    shard.adminDown() ? "down" : "up");
    }
    if (shard_config.cache.enabled) {
        printCacheLine("acoustic_scores", stats.caches.acousticScores);
        printCacheLine("answers", stats.caches.answers);
        printCacheLine("matches", stats.caches.matches);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool real = false;
    ConcurrentServerConfig config;
    ClusterConfig cluster;
    cluster.shards = 0; // 0: single-server mode (no cluster)
    ClusterLoadOptions drill;
    FaultConfig fault_config;
    bool faults_requested = false;
    int retries = -1; // -1: pick a default after parsing
    size_t requests = 150;
    double max_load = 0.9;
    double zipf_skew = 0.0;
    bool no_cache = false;
    Observability obs;
    double trace_sample = -1.0; // -1: pick a default after parsing
    bool slo_enabled = false;
    bool slo_report = false;
    double slo_scale = 1.0;
    std::string kill_mode = "admin";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--real") == 0)
            real = true;
        else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
            config.workers = static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc)
            config.queueCapacity =
                static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
            requests = static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--deadline-ms") == 0 &&
                 i + 1 < argc)
            config.deadlineSeconds = std::atof(argv[++i]) * 1e-3;
        else if (std::strcmp(argv[i], "--fault-rate") == 0 &&
                 i + 1 < argc) {
            fault_config.failureRate = std::atof(argv[++i]);
            faults_requested = fault_config.failureRate > 0.0;
        } else if (std::strcmp(argv[i], "--fault-seed") == 0 &&
                   i + 1 < argc)
            fault_config.seed =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc)
            retries = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc)
            config.batching.maxBatchSize =
                static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--batch-wait-us") == 0 &&
                 i + 1 < argc)
            config.batching.maxWaitSeconds = std::atof(argv[++i]) * 1e-6;
        else if (std::strcmp(argv[i], "--no-batching") == 0)
            config.batching.enabled = false;
        else if (std::strcmp(argv[i], "--cache") == 0)
            config.cache.enabled = true;
        else if (std::strcmp(argv[i], "--cache-bytes") == 0 &&
                 i + 1 < argc) {
            config.cache.byteBudget =
                static_cast<size_t>(std::atoll(argv[++i]));
            config.cache.enabled = true;
        } else if (std::strcmp(argv[i], "--cache-ttl-ms") == 0 &&
                   i + 1 < argc) {
            config.cache.ttlSeconds = std::atof(argv[++i]) * 1e-3;
            config.cache.enabled = true;
        } else if (std::strcmp(argv[i], "--cache-shards") == 0 &&
                   i + 1 < argc) {
            config.cache.shards =
                static_cast<size_t>(std::atoi(argv[++i]));
            config.cache.enabled = true;
        } else if (std::strcmp(argv[i], "--no-cache") == 0)
            no_cache = true;
        else if (std::strcmp(argv[i], "--zipf") == 0 && i + 1 < argc)
            zipf_skew = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
            cluster.shards = static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
            if (!routingPolicyFromName(argv[++i], cluster.policy))
                fatal(std::string("unknown --policy '") + argv[i] +
                      "' (want rr|least|p2c|affinity)");
        } else if (std::strcmp(argv[i], "--hedge-ms") == 0 &&
                   i + 1 < argc)
            cluster.hedgeSeconds = std::atof(argv[++i]) * 1e-3;
        else if (std::strcmp(argv[i], "--kill-shard-at") == 0 &&
                 i + 1 < argc)
            drill.killShardAt = static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--kill-shard") == 0 &&
                 i + 1 < argc)
            drill.killShard = static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--revive-shard-at") == 0 &&
                 i + 1 < argc)
            drill.reviveShardAt =
                static_cast<size_t>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
            obs.traceOut = argv[++i];
        else if (std::strcmp(argv[i], "--trace-sample") == 0 &&
                 i + 1 < argc)
            trace_sample = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--metrics-out") == 0 &&
                 i + 1 < argc)
            obs.metricsOut = argv[++i];
        else if (std::strcmp(argv[i], "--metrics-csv") == 0 &&
                 i + 1 < argc)
            obs.metricsCsv = argv[++i];
        else if (std::strcmp(argv[i], "--slo") == 0)
            slo_enabled = true;
        else if (std::strcmp(argv[i], "--slo-scale") == 0 && i + 1 < argc) {
            slo_scale = std::atof(argv[++i]);
            slo_enabled = true;
        } else if (std::strcmp(argv[i], "--slo-report") == 0) {
            slo_report = true;
            slo_enabled = true;
        } else if (std::strcmp(argv[i], "--events-out") == 0 &&
                   i + 1 < argc)
            obs.eventsOut = argv[++i];
        else if (std::strcmp(argv[i], "--flight-out") == 0 &&
                 i + 1 < argc)
            obs.flightOut = argv[++i];
        else if (std::strcmp(argv[i], "--kill-mode") == 0 &&
                 i + 1 < argc) {
            kill_mode = argv[++i];
            if (kill_mode != "admin" && kill_mode != "fault")
                fatal("unknown --kill-mode '" + kill_mode +
                      "' (want admin|fault)");
        }
        else if (std::strcmp(argv[i], "--log-level") == 0 &&
                 i + 1 < argc) {
            LogLevel level;
            if (logLevelFromName(argv[++i], level))
                setLogLevel(level);
            else
                std::fprintf(stderr, "unknown --log-level '%s' "
                             "(want debug|info|warn|error)\n", argv[i]);
        } else
            max_load = std::atof(argv[i]);
    }
    if (cluster.shards > 0)
        real = true; // the cluster tier only exists in real mode
    config.retry.maxRetries = retries >= 0 ? retries
        : (faults_requested ? 1 : 0);
    if (no_cache)
        config.cache.enabled = false;
    // Tracing defaults on (keep everything) once a sink is named; the
    // flight recorder rides on traced spans, so --flight-out counts.
    obs.sampleRate = trace_sample >= 0.0
        ? trace_sample
        : (obs.traceOut.empty() && obs.flightOut.empty() ? 0.0 : 1.0);
    if (!real && (!obs.traceOut.empty() || !obs.metricsOut.empty() ||
                  !obs.metricsCsv.empty()))
        std::fprintf(stderr, "note: --trace-out/--metrics-out need "
                     "--real (replay mode executes nothing)\n");

    FaultInjector injector(fault_config);
    if (injector.enabled())
        config.faults = &injector;

    // The observability plane. All three outlive every server/router
    // the sweeps create; the drill injector stays disarmed until the
    // drill's kill point flips it.
    EventLog events(1024);
    FlightRecorderConfig flight_config;
    std::unique_ptr<FlightRecorder> flight;
    if (!obs.flightOut.empty()) {
        flight = std::make_unique<FlightRecorder>(flight_config);
        obs.flight = flight.get();
    }
    std::unique_ptr<SloTracker> slo;
    if (slo_enabled) {
        SloConfig slo_config = defaultSloConfig(
            config.deadlineSeconds > 0.0 ? config.deadlineSeconds
                                         : 0.25);
        slo_config.windowScale = slo_scale;
        slo = std::make_unique<SloTracker>(slo_config, &events);
        obs.slo = slo.get();
        if (obs.flight != nullptr) {
            // Alert-triggered dump: capture the slow traces the moment
            // the burn rate says something is wrong.
            SloTracker *tracker = slo.get();
            FlightRecorder *recorder = obs.flight;
            EventLog *log = &events;
            const std::string path = obs.flightOut;
            tracker->setOnFire([tracker, recorder, log, path]() {
                recorder->dumpJsonl(path);
                log->note(tracker->nowSeconds(), "flight_dump",
                          "flight recorder dumped on alert fire",
                          {{"path", path}});
            });
        }
    }
    obs.events = &events;
    FaultConfig drill_fault_config;
    drill_fault_config.failureRate = 1.0;
    FaultInjector drill_injector(drill_fault_config);
    drill_injector.setEnabled(false);
    if (kill_mode == "fault") {
        drill.killByFault = true;
        if (cluster.shards == 0)
            fatal("--kill-mode fault needs --shards (the drill is a "
                  "cluster exercise)");
        cluster.shardFaults.assign(cluster.shards, nullptr);
        cluster.shardFaults[drill.killShard] = &drill_injector;
    }
    cluster.slo = obs.slo;
    cluster.flight = obs.flight;
    cluster.events = &events;
    // Single-server mode feeds the same plane directly; the router
    // overrides these on its shards (it owns the fleet-level feeds).
    config.slo = obs.slo;
    config.flight = obs.flight;

    std::printf("training the pipeline and starting a leaf server...\n");
    const SiriusPipeline pipeline = SiriusPipeline::build();
    SiriusServer server(pipeline);

    // Warm measurement pass so the capacity estimate is grounded.
    for (const auto &query : standardQuerySet())
        server.handle(query);
    const double capacity = server.serviceRate();
    std::printf("measured capacity: %.1f queries/s per worker (mean "
                "service %.2f ms)\n\n", capacity, 1e3 / capacity);

    if (cluster.shards > 0)
        clusterSweep(pipeline, capacity, max_load, config, cluster,
                     requests, zipf_skew, drill, obs);
    else if (real)
        realSweep(pipeline, capacity, max_load, config, requests,
                  zipf_skew, obs);
    else
        replaySweep(server, capacity, max_load);
    if (slo_report && obs.slo != nullptr)
        printSloReport(*obs.slo);
    if (real)
        obs.flush();

    std::printf("\nlatency blows up as load approaches capacity — the "
                "headroom acceleration buys (Figure 17) is exactly this "
                "curve pushed right by 10-100x\n");
    if (real && config.deadlineSeconds <= 0.0)
        std::printf("(add --deadline-ms 200 to see the degradation "
                    "ladder bound the tail instead)\n");
    return 0;
}
