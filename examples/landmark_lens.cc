/**
 * @file
 * Landmark lens scenario: the smart-glasses use case from the paper's
 * introduction. A user looks at a storefront and asks questions about
 * it; the image-matching service identifies the landmark and the QA
 * service answers with its knowledge about that entity.
 *
 * Demonstrates the vision API directly (detect/describe/match) before
 * running the fused voice+image pathway, and exports one landmark and
 * one query view as PGM images for inspection.
 *
 * Usage: ./build/examples/landmark_lens [landmark-id 0..9]
 */

#include <cstdio>
#include <cstdlib>

#include "core/pipeline.h"
#include "search/corpus.h"
#include "vision/imm_service.h"
#include "vision/landmarks.h"

using namespace sirius;
using namespace sirius::vision;

int
main(int argc, char **argv)
{
    const int landmark = argc > 1 ? std::atoi(argv[1]) % 10 : 0;

    // --- The vision stack on its own: what the IMM service does.
    std::printf("building the landmark descriptor database...\n");
    const ImmService imm = ImmService::build(10);

    const Image view = generateQueryView(landmark);
    view.savePgm("/tmp/sirius_query_view.pgm");
    generateLandmark(landmark).savePgm("/tmp/sirius_db_image.pgm");
    std::printf("wrote /tmp/sirius_db_image.pgm and "
                "/tmp/sirius_query_view.pgm\n");

    const IntegralImage integral(view);
    auto keypoints = detectKeypoints(integral);
    const auto descriptors = describeKeypoints(integral, keypoints);
    std::printf("query view: %zu keypoints, %zu descriptors\n",
                keypoints.size(), descriptors.size());

    const auto match = imm.match(view);
    std::printf("matched database image #%d (\"%s\") with %zu "
                "ratio-test matches\n",
                match.bestId,
                search::landmarkName(match.bestId).c_str(),
                match.bestMatches);

    // --- The fused pathway: voice question + camera image.
    std::printf("\ntraining the full pipeline for the fused "
                "voice+image query...\n");
    const auto sirius = core::SiriusPipeline::build();
    const core::Query query{core::QueryType::VoiceImageQuery,
                            "when does this restaurant close", landmark,
                            ""};
    const auto result = sirius.process(query);
    std::printf("user said:  \"%s\" (while looking at landmark #%d)\n",
                query.text.c_str(), landmark);
    std::printf("understood: \"%s\"\n", result.augmentedQuestion.c_str());
    std::printf("answer:     \"%s\"\n", result.answer.c_str());
    return 0;
}
