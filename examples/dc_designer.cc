/**
 * @file
 * Datacenter designer scenario: Section 5 of the paper as a tool.
 *
 * Given a target IPA query load, explore accelerator options per
 * service, print the resulting homogeneous/heterogeneous designs, the
 * fleet size, and the yearly TCO under the Table 7 cost model.
 *
 * Usage: ./build/examples/dc_designer [target-qps]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "accel/latency.h"
#include "accel/model.h"
#include "dcsim/designer.h"
#include "dcsim/queueing.h"
#include "dcsim/tco.h"

using namespace sirius;
using namespace sirius::accel;
using namespace sirius::dcsim;

int
main(int argc, char **argv)
{
    const double target_qps = argc > 1 ? std::atof(argv[1]) : 10000.0;

    const CalibratedModel model;
    const auto profiles = defaultServiceProfiles();
    const DatacenterDesigner designer(profiles, model);
    const TcoParams params;

    std::printf("designing a datacenter for %.0f IPA queries/s\n\n",
                target_qps);

    std::printf("%-11s %-10s %14s %12s %16s\n", "service", "platform",
                "latency", "servers", "yearly TCO");
    double total_tco = 0.0;
    CandidateSet all;
    for (const auto &[service, platform] :
         designer.heterogeneousDesign(Objective::MinTcoWithLatency,
                                      all)) {
        const ServiceProfile *profile = nullptr;
        for (const auto &p : profiles) {
            if (p.kind == service)
                profile = &p;
        }
        const double latency = serviceLatency(*profile, model, platform);
        // Keep each server below 70% load so queueing delay stays low.
        const double server_qps = 0.7 / latency;
        const double servers = std::ceil(target_qps / server_qps);
        const double tco = servers *
            serverYearlyTco(acceleratedServer(platform, params), params);
        total_tco += tco;
        std::printf("%-11s %-10s %12.3f s %12.0f %15.0f$\n",
                    serviceKindName(service), platformName(platform),
                    latency, servers, tco);
    }
    std::printf("\ntotal fleet yearly TCO: $%.0f\n", total_tco);

    // Compare against the unaccelerated fleet: a CMP server runs one
    // query per core at the serial latency (query-level parallelism).
    double cmp_tco = 0.0;
    for (const auto &profile : profiles) {
        const double latency = serviceLatency(profile, model,
                                              Platform::Cmp);
        const double server_qps = 0.7 * 4.0 / latency;
        const double servers = std::ceil(target_qps / server_qps);
        cmp_tco += servers * serverYearlyTco(baselineServer(params),
                                             params);
    }
    std::printf("CMP-only fleet yearly TCO: $%.0f (%.1fx more)\n",
                cmp_tco, cmp_tco / total_tco);
    return 0;
}
