/**
 * @file
 * Trace analyzer: turns a JSONL trace dump (load_test --trace-out, or
 * any TraceCollector snapshot) back into the paper's tables — a
 * Figure-9-style per-component breakdown from the kernel spans, a
 * queue-wait / service / retry attribution table from the root and
 * queue_wait spans, and the slowest-N exemplar queries with their
 * budgets itemized.
 *
 * Usage: ./build/examples/trace_report TRACE.jsonl [--slowest N]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/trace.h"

using namespace sirius;

namespace {

/** Everything we aggregate about one traced query. */
struct TraceSummary
{
    uint64_t id = 0;
    double totalSeconds = 0.0;     ///< root query span duration
    double queueWaitSeconds = 0.0;
    std::map<std::string, double> stageSeconds;
    int retries = 0;
    int faults = 0;
    std::string degradation = "none";
    std::string text;
    bool hasRoot = false;
};

struct ComponentAgg
{
    double seconds = 0.0;
    uint64_t calls = 0;
    double maxSeconds = 0.0;
};

std::string
attrValue(const SpanRecord &span, const char *key,
          const std::string &fallback = "")
{
    for (const auto &[k, v] : span.attrs) {
        if (k == key)
            return v;
    }
    return fallback;
}

std::string
bar(double pct, double per_char = 2.0)
{
    std::string out;
    for (double p = per_char; p <= pct; p += per_char)
        out += '#';
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    size_t slowest = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--slowest") == 0 && i + 1 < argc)
            slowest = static_cast<size_t>(std::atoi(argv[++i]));
        else
            path = argv[i];
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: trace_report TRACE.jsonl [--slowest N]\n");
        return 2;
    }

    size_t malformed = 0;
    const auto spans = readTraceJsonl(path, &malformed);
    if (spans.empty()) {
        std::fprintf(stderr,
                     "trace_report: no parseable spans in %s "
                     "(%zu malformed lines)\n", path, malformed);
        return 1;
    }

    // Fold spans into per-trace summaries and per-component totals.
    std::map<uint64_t, TraceSummary> traces;
    std::map<std::string, ComponentAgg> kernels;
    std::map<std::string, ComponentAgg> stages;
    for (const auto &span : spans) {
        TraceSummary &trace = traces[span.traceId];
        trace.id = span.traceId;
        switch (span.kind) {
          case SpanKind::Query:
            trace.hasRoot = true;
            trace.totalSeconds = span.durationSeconds;
            trace.degradation =
                attrValue(span, "degradation", "none");
            trace.text = attrValue(span, "text");
            trace.retries =
                std::atoi(attrValue(span, "retries", "0").c_str());
            break;
          case SpanKind::QueueWait:
            trace.queueWaitSeconds += span.durationSeconds;
            break;
          case SpanKind::Stage: {
            trace.stageSeconds[span.name] += span.durationSeconds;
            ComponentAgg &agg = stages[span.name];
            agg.seconds += span.durationSeconds;
            agg.calls += 1;
            agg.maxSeconds =
                std::max(agg.maxSeconds, span.durationSeconds);
            break;
          }
          case SpanKind::Kernel: {
            ComponentAgg &agg = kernels[span.name];
            agg.seconds += span.durationSeconds;
            agg.calls += 1;
            agg.maxSeconds =
                std::max(agg.maxSeconds, span.durationSeconds);
            break;
          }
          case SpanKind::Retry:
            ++trace.retries;
            break;
          case SpanKind::Fault:
            ++trace.faults;
            break;
          case SpanKind::Degradation:
            break;
          case SpanKind::Route:
            // Cluster-tier spans have their own ids (per-router offset
            // blocks), so they aggregate as distinct traces; the
            // per-query report keys on the leaf spans.
            break;
        }
    }

    size_t complete = 0;
    for (const auto &[id, trace] : traces)
        complete += trace.hasRoot ? 1 : 0;
    std::printf("trace_report: %zu spans, %zu traces (%zu with a root "
                "query span), %zu malformed lines\n\n",
                spans.size(), traces.size(), complete, malformed);

    // --- Figure-9-style per-component breakdown (kernel spans) ---
    double kernel_total = 0.0;
    for (const auto &[name, agg] : kernels)
        kernel_total += agg.seconds;
    if (kernel_total > 0.0) {
        std::printf("per-component breakdown (kernel spans, cf. "
                    "Figure 9)\n");
        std::printf("  %-20s %8s %7s %10s %10s\n", "component",
                    "percent", "calls", "mean ms", "max ms");
        std::vector<std::pair<std::string, ComponentAgg>> rows(
            kernels.begin(), kernels.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.seconds > b.second.seconds;
                  });
        for (const auto &[name, agg] : rows) {
            const double pct = agg.seconds / kernel_total * 100.0;
            std::printf("  %-20s %7.1f%% %7llu %10.3f %10.3f  %s\n",
                        name.c_str(), pct,
                        static_cast<unsigned long long>(agg.calls),
                        agg.seconds /
                            static_cast<double>(agg.calls) * 1e3,
                        agg.maxSeconds * 1e3, bar(pct).c_str());
        }
        std::printf("\n");
    }

    // --- queue-wait / service / retry attribution ---
    double queue_total = 0.0, service_total = 0.0, root_total = 0.0;
    std::map<std::string, double> stage_totals;
    uint64_t retries_total = 0, faults_total = 0;
    for (const auto &[id, trace] : traces) {
        if (!trace.hasRoot)
            continue;
        queue_total += trace.queueWaitSeconds;
        root_total += trace.totalSeconds;
        service_total +=
            trace.totalSeconds - trace.queueWaitSeconds;
        for (const auto &[stage, secs] : trace.stageSeconds)
            stage_totals[stage] += secs;
        retries_total += static_cast<uint64_t>(trace.retries);
        faults_total += static_cast<uint64_t>(trace.faults);
    }
    if (complete > 0) {
        const double n = static_cast<double>(complete);
        std::printf("sojourn attribution over %zu complete traces\n",
                    complete);
        std::printf("  %-26s %12s %10s %8s\n", "bucket", "total s",
                    "mean ms", "share");
        const auto row = [&](const char *name, double secs) {
            std::printf("  %-26s %12.4f %10.3f %7.1f%%\n", name, secs,
                        secs / n * 1e3,
                        root_total > 0 ? secs / root_total * 100.0
                                       : 0.0);
        };
        row("queue wait", queue_total);
        double staged = 0.0;
        for (const auto &[stage, secs] : stage_totals) {
            row(("service: " + stage).c_str(), secs);
            staged += secs;
        }
        row("service: other", std::max(0.0, service_total - staged));
        row("sojourn (total)", root_total);
        std::printf("  retries: %llu, injected faults observed: %llu\n\n",
                    static_cast<unsigned long long>(retries_total),
                    static_cast<unsigned long long>(faults_total));
    }

    // --- slowest-N exemplar queries ---
    std::vector<const TraceSummary *> order;
    order.reserve(traces.size());
    for (const auto &[id, trace] : traces) {
        if (trace.hasRoot)
            order.push_back(&trace);
    }
    std::sort(order.begin(), order.end(),
              [](const TraceSummary *a, const TraceSummary *b) {
                  return a->totalSeconds > b->totalSeconds;
              });
    if (!order.empty() && slowest > 0) {
        std::printf("slowest %zu queries\n",
                    std::min(slowest, order.size()));
        std::printf("  %-10s %10s %10s %8s %8s %8s %4s %-9s %s\n",
                    "trace", "total ms", "queue ms", "asr ms", "qa ms",
                    "imm ms", "rtry", "rung", "text");
        for (size_t i = 0; i < order.size() && i < slowest; ++i) {
            const TraceSummary &t = *order[i];
            const auto stage = [&t](const char *name) {
                auto it = t.stageSeconds.find(name);
                return it == t.stageSeconds.end() ? 0.0 : it->second;
            };
            std::printf("  %-10llu %10.2f %10.2f %8.2f %8.2f %8.2f "
                        "%4d %-9s %s\n",
                        static_cast<unsigned long long>(t.id),
                        t.totalSeconds * 1e3,
                        t.queueWaitSeconds * 1e3, stage("asr") * 1e3,
                        stage("qa") * 1e3, stage("imm") * 1e3,
                        t.retries, t.degradation.c_str(),
                        t.text.c_str());
        }
    }
    return 0;
}
