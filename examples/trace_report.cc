/**
 * @file
 * Trace analyzer: turns a JSONL trace dump (load_test --trace-out, or
 * any TraceCollector snapshot) back into the paper's tables — a
 * Figure-9-style per-component breakdown from the kernel spans, a
 * queue-wait / service / retry attribution table from the root and
 * queue_wait spans, and the slowest-N exemplar queries with their
 * budgets itemized.
 *
 * Stitched cluster dumps (load_test --shards N --trace-out or
 * --flight-out) group by the shared trace id: router route/route_leg
 * spans and the shard-side spans of every leg land in one trace, so
 * the report labels hedged/failover arms, names the winning arm and
 * shard, and runs the exact critical-path partition
 * (common/critical_path.h) per query — segment durations sum to the
 * root span to within float addition error.
 *
 * Usage: ./build/examples/trace_report TRACE.jsonl [--slowest N]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/critical_path.h"
#include "common/trace.h"

using namespace sirius;

namespace {

/** Everything we aggregate about one traced query. */
struct TraceSummary
{
    uint64_t id = 0;
    double totalSeconds = 0.0;     ///< root query span duration
    double queueWaitSeconds = 0.0;
    std::map<std::string, double> stageSeconds;
    int retries = 0;
    int faults = 0;
    std::string degradation = "none";
    std::string text;
    bool hasRoot = false;
    // Cluster stitching: filled from route / route_leg spans.
    bool stitched = false;
    bool hedged = false;
    int failovers = 0;
    int legs = 0;
    double routeSeconds = 0.0; ///< router summary span (outermost root)
    std::string winnerArm;
    std::string winnerShard;
};

struct ComponentAgg
{
    double seconds = 0.0;
    uint64_t calls = 0;
    double maxSeconds = 0.0;
};

std::string
attrValue(const SpanRecord &span, const char *key,
          const std::string &fallback = "")
{
    for (const auto &[k, v] : span.attrs) {
        if (k == key)
            return v;
    }
    return fallback;
}

std::string
bar(double pct, double per_char = 2.0)
{
    std::string out;
    for (double p = per_char; p <= pct; p += per_char)
        out += '#';
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    size_t slowest = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--slowest") == 0 && i + 1 < argc)
            slowest = static_cast<size_t>(std::atoi(argv[++i]));
        else
            path = argv[i];
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: trace_report TRACE.jsonl [--slowest N]\n");
        return 2;
    }

    size_t malformed = 0;
    const auto spans = readTraceJsonl(path, &malformed);
    if (spans.empty()) {
        std::fprintf(stderr,
                     "trace_report: no parseable spans in %s "
                     "(%zu malformed lines)\n", path, malformed);
        return 1;
    }

    // Fold spans into per-trace summaries and per-component totals.
    std::map<uint64_t, TraceSummary> traces;
    std::map<std::string, ComponentAgg> kernels;
    std::map<std::string, ComponentAgg> stages;
    for (const auto &span : spans) {
        TraceSummary &trace = traces[span.traceId];
        trace.id = span.traceId;
        switch (span.kind) {
          case SpanKind::Query:
            trace.hasRoot = true;
            trace.totalSeconds = span.durationSeconds;
            trace.degradation =
                attrValue(span, "degradation", "none");
            trace.text = attrValue(span, "text");
            trace.retries =
                std::atoi(attrValue(span, "retries", "0").c_str());
            break;
          case SpanKind::QueueWait:
            trace.queueWaitSeconds += span.durationSeconds;
            break;
          case SpanKind::Stage: {
            trace.stageSeconds[span.name] += span.durationSeconds;
            ComponentAgg &agg = stages[span.name];
            agg.seconds += span.durationSeconds;
            agg.calls += 1;
            agg.maxSeconds =
                std::max(agg.maxSeconds, span.durationSeconds);
            break;
          }
          case SpanKind::Kernel: {
            ComponentAgg &agg = kernels[span.name];
            agg.seconds += span.durationSeconds;
            agg.calls += 1;
            agg.maxSeconds =
                std::max(agg.maxSeconds, span.durationSeconds);
            break;
          }
          case SpanKind::Retry:
            ++trace.retries;
            break;
          case SpanKind::Fault:
            ++trace.faults;
            break;
          case SpanKind::Degradation:
            break;
          case SpanKind::Route:
            // Stitched cluster traces share one id across the router
            // and every shard leg, so route spans fold into the same
            // TraceSummary as the leaf spans they cover.
            if (span.name == "route") {
                trace.stitched = true;
                trace.routeSeconds = span.durationSeconds;
                trace.degradation =
                    attrValue(span, "outcome", trace.degradation);
            } else if (span.name == "route_leg") {
                ++trace.legs;
                const std::string arm = attrValue(span, "arm");
                if (arm == "hedge")
                    trace.hedged = true;
                else if (arm == "failover")
                    ++trace.failovers;
                if (attrValue(span, "won") == "1") {
                    trace.winnerArm = arm;
                    trace.winnerShard = attrValue(span, "shard");
                }
            }
            break;
        }
    }

    // A stitched trace's end-to-end root is the router summary span,
    // which encloses the winning leg's query span.
    size_t complete = 0, stitched_count = 0;
    for (auto &[id, trace] : traces) {
        if (trace.stitched) {
            trace.hasRoot = true;
            trace.totalSeconds = trace.routeSeconds;
            ++stitched_count;
        }
        complete += trace.hasRoot ? 1 : 0;
    }
    std::printf("trace_report: %zu spans, %zu traces (%zu with a root "
                "span, %zu stitched across the cluster tier), "
                "%zu malformed lines\n\n",
                spans.size(), traces.size(), complete, stitched_count,
                malformed);

    // --- Figure-9-style per-component breakdown (kernel spans) ---
    double kernel_total = 0.0;
    for (const auto &[name, agg] : kernels)
        kernel_total += agg.seconds;
    if (kernel_total > 0.0) {
        std::printf("per-component breakdown (kernel spans, cf. "
                    "Figure 9)\n");
        std::printf("  %-20s %8s %7s %10s %10s\n", "component",
                    "percent", "calls", "mean ms", "max ms");
        std::vector<std::pair<std::string, ComponentAgg>> rows(
            kernels.begin(), kernels.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.seconds > b.second.seconds;
                  });
        for (const auto &[name, agg] : rows) {
            const double pct = agg.seconds / kernel_total * 100.0;
            std::printf("  %-20s %7.1f%% %7llu %10.3f %10.3f  %s\n",
                        name.c_str(), pct,
                        static_cast<unsigned long long>(agg.calls),
                        agg.seconds /
                            static_cast<double>(agg.calls) * 1e3,
                        agg.maxSeconds * 1e3, bar(pct).c_str());
        }
        std::printf("\n");
    }

    // --- queue-wait / service / retry attribution ---
    double queue_total = 0.0, service_total = 0.0, root_total = 0.0;
    std::map<std::string, double> stage_totals;
    uint64_t retries_total = 0, faults_total = 0;
    for (const auto &[id, trace] : traces) {
        if (!trace.hasRoot)
            continue;
        queue_total += trace.queueWaitSeconds;
        root_total += trace.totalSeconds;
        service_total +=
            trace.totalSeconds - trace.queueWaitSeconds;
        for (const auto &[stage, secs] : trace.stageSeconds)
            stage_totals[stage] += secs;
        retries_total += static_cast<uint64_t>(trace.retries);
        faults_total += static_cast<uint64_t>(trace.faults);
    }
    if (complete > 0) {
        const double n = static_cast<double>(complete);
        std::printf("sojourn attribution over %zu complete traces\n",
                    complete);
        std::printf("  %-26s %12s %10s %8s\n", "bucket", "total s",
                    "mean ms", "share");
        const auto row = [&](const char *name, double secs) {
            std::printf("  %-26s %12.4f %10.3f %7.1f%%\n", name, secs,
                        secs / n * 1e3,
                        root_total > 0 ? secs / root_total * 100.0
                                       : 0.0);
        };
        row("queue wait", queue_total);
        double staged = 0.0;
        for (const auto &[stage, secs] : stage_totals) {
            row(("service: " + stage).c_str(), secs);
            staged += secs;
        }
        row("service: other", std::max(0.0, service_total - staged));
        row("sojourn (total)", root_total);
        std::printf("  retries: %llu, injected faults observed: %llu\n\n",
                    static_cast<unsigned long long>(retries_total),
                    static_cast<unsigned long long>(faults_total));
    }

    // --- slowest-N exemplar queries ---
    std::vector<const TraceSummary *> order;
    order.reserve(traces.size());
    for (const auto &[id, trace] : traces) {
        if (trace.hasRoot)
            order.push_back(&trace);
    }
    std::sort(order.begin(), order.end(),
              [](const TraceSummary *a, const TraceSummary *b) {
                  return a->totalSeconds > b->totalSeconds;
              });
    if (!order.empty() && slowest > 0) {
        std::printf("slowest %zu queries\n",
                    std::min(slowest, order.size()));
        std::printf("  %-10s %10s %10s %8s %8s %8s %4s %-9s %-12s %s\n",
                    "trace", "total ms", "queue ms", "asr ms", "qa ms",
                    "imm ms", "rtry", "rung", "arm", "text");
        for (size_t i = 0; i < order.size() && i < slowest; ++i) {
            const TraceSummary &t = *order[i];
            const auto stage = [&t](const char *name) {
                auto it = t.stageSeconds.find(name);
                return it == t.stageSeconds.end() ? 0.0 : it->second;
            };
            std::string arm = "-";
            if (t.stitched) {
                arm = t.winnerArm.empty() ? "?" : t.winnerArm;
                if (!t.winnerShard.empty())
                    arm += "@" + t.winnerShard;
                if (t.hedged && t.winnerArm != "hedge")
                    arm += "+h";
                if (t.failovers > 0)
                    arm += "+f" + std::to_string(t.failovers);
            }
            std::printf("  %-10llu %10.2f %10.2f %8.2f %8.2f %8.2f "
                        "%4d %-9s %-12s %s\n",
                        static_cast<unsigned long long>(t.id),
                        t.totalSeconds * 1e3,
                        t.queueWaitSeconds * 1e3, stage("asr") * 1e3,
                        stage("qa") * 1e3, stage("imm") * 1e3,
                        t.retries, t.degradation.c_str(), arm.c_str(),
                        t.text.c_str());
        }
        std::printf("\n");
    }

    // --- exact critical-path attribution over stitched traces ---
    const auto grouped = groupByTrace(spans);
    std::vector<CriticalPathReport> reports;
    size_t hedged_count = 0, failover_count = 0;
    double residual_max = 0.0;
    std::map<std::string, ComponentAgg> segment_agg;
    for (const auto &[id, trace_spans] : grouped) {
        CriticalPathReport report = analyzeCriticalPath(trace_spans);
        if (!report.valid || !report.stitched)
            continue;
        hedged_count += report.hedged ? 1 : 0;
        failover_count += report.failovers > 0 ? 1 : 0;
        residual_max =
            std::max(residual_max, std::abs(report.sumSeconds() -
                                            report.totalSeconds));
        for (const auto &seg : report.segments) {
            ComponentAgg &agg = segment_agg[seg.name];
            agg.seconds += seg.durationSeconds;
            agg.calls += 1;
            agg.maxSeconds =
                std::max(agg.maxSeconds, seg.durationSeconds);
        }
        reports.push_back(std::move(report));
    }
    if (!reports.empty()) {
        double path_total = 0.0;
        for (const auto &[name, agg] : segment_agg)
            path_total += agg.seconds;
        std::printf("critical-path attribution over %zu stitched "
                    "traces (%zu hedged, %zu with failover; max "
                    "|segments - root| = %.3f us)\n",
                    reports.size(), hedged_count, failover_count,
                    residual_max * 1e6);
        std::printf("  %-26s %12s %10s %8s\n", "segment", "total s",
                    "mean ms", "share");
        std::vector<std::pair<std::string, ComponentAgg>> rows(
            segment_agg.begin(), segment_agg.end());
        std::sort(rows.begin(), rows.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.seconds > b.second.seconds;
                  });
        for (const auto &[name, agg] : rows) {
            std::printf("  %-26s %12.4f %10.3f %7.1f%%\n", name.c_str(),
                        agg.seconds,
                        agg.seconds /
                            static_cast<double>(agg.calls) * 1e3,
                        path_total > 0.0
                            ? agg.seconds / path_total * 100.0
                            : 0.0);
        }

        std::sort(reports.begin(), reports.end(),
                  [](const CriticalPathReport &a,
                     const CriticalPathReport &b) {
                      return a.totalSeconds > b.totalSeconds;
                  });
        std::printf("\n  slowest stitched queries, itemized\n");
        for (size_t i = 0; i < reports.size() && i < slowest; ++i) {
            const CriticalPathReport &r = reports[i];
            std::printf("  trace %llu: %.2f ms via %s arm on shard %s "
                        "(%d leg%s%s%s, rung %s)\n",
                        static_cast<unsigned long long>(r.traceId),
                        r.totalSeconds * 1e3,
                        r.winnerArm.empty() ? "?" : r.winnerArm.c_str(),
                        r.winnerShard.empty() ? "?"
                                              : r.winnerShard.c_str(),
                        r.legs, r.legs == 1 ? "" : "s",
                        r.hedged ? ", hedged" : "",
                        r.failovers > 0 ? ", failover" : "",
                        r.degradation.c_str());
            for (const auto &seg : r.segments) {
                std::printf("    %-24s %10.3f ms %6.1f%%\n",
                            seg.name.c_str(),
                            seg.durationSeconds * 1e3,
                            r.totalSeconds > 0.0
                                ? seg.durationSeconds /
                                      r.totalSeconds * 100.0
                                : 0.0);
            }
        }
    }
    return 0;
}
