#!/bin/sh
# Repo check: the tier-1 suite plus a TSan pass over the concurrent
# tests. This is the command CI (and a pre-push human) should run.
#
#   scripts/check.sh            # tier-1 + TSan concurrent tests
#   SKIP_TSAN=1 scripts/check.sh  # tier-1 only
#
# Trees match CMakePresets.json: build/ (default) and build-tsan/.
set -eu

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> tier-1: configure + build + full test suite (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [ "${SKIP_TSAN:-0}" = "1" ]; then
    echo "==> SKIP_TSAN=1: skipping the ThreadSanitizer pass"
    exit 0
fi

echo "==> TSan: concurrent server + robustness tests (build-tsan/)"
cmake -B build-tsan -S . -DSIRIUS_SANITIZE=thread >/dev/null
# Only the binaries the TSan gate needs — a full sanitized build of the
# bench/example targets would double the check's wall time for no
# additional thread coverage.
cmake --build build-tsan -j "$jobs" \
    --target test_server test_robustness test_common
(cd build-tsan &&
     ctest --output-on-failure -j "$jobs" \
           -R "Server|Robustness|Deadline|FaultInjector|LatencyHistogram|Profiler|ThreadPool|ParallelFor")

echo "==> all checks passed"
