#!/bin/sh
# Repo check: the tier-1 suite plus a TSan pass over the concurrent
# tests. This is the command CI (and a pre-push human) should run.
#
#   scripts/check.sh            # tier-1 + TSan concurrent tests
#   SKIP_TSAN=1 scripts/check.sh  # tier-1 only
#
# Trees match CMakePresets.json: build/ (default) and build-tsan/.
set -eu

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"

echo "==> lint: metric naming conventions (scripts/lint_metrics.sh)"
scripts/lint_metrics.sh

echo "==> lint: docs links + documented metrics (scripts/lint_docs.sh)"
scripts/lint_docs.sh

echo "==> tier-1: configure + build + full test suite (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "==> goldens: end-to-end fixtures are in sync (tests/golden/)"
# The golden test itself ran under ctest above; this catches the other
# drift direction — a regenerated fixture that was never committed, or
# local edits to tests/golden/ that no code change explains.
if command -v git >/dev/null 2>&1 && [ -d .git ]; then
    if ! git diff --quiet -- tests/golden/; then
        echo "tests/golden/ differs from the committed fixtures:"
        git --no-pager diff --stat -- tests/golden/
        echo "(commit the regenerated goldens with the change that"
        echo " caused them, or revert them — see scripts/regen_goldens.sh)"
        exit 1
    fi
fi
echo "goldens: OK"

echo "==> exporters: trace_report smoke run on a generated trace"
trace_tmp="$(mktemp /tmp/sirius_trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_tmp"' EXIT
# A hand-written three-span trace (root + queue wait + one stage) in
# the writeTraceJsonl format; trace_report must parse it and print the
# attribution table.
cat > "$trace_tmp" <<'EOF'
{"trace":1,"span":2,"parent":1,"kind":"queue_wait","name":"queue_wait","start_s":0.000000000,"dur_s":0.010000000,"attrs":{}}
{"trace":1,"span":3,"parent":1,"kind":"stage","name":"asr","start_s":0.010000000,"dur_s":0.080000000,"attrs":{"cut_short":"0"}}
{"trace":1,"span":1,"parent":0,"kind":"query","name":"query","start_s":0.000000000,"dur_s":0.100000000,"attrs":{"type":"vq","degradation":"none","text":"smoke test"}}
EOF
report="$(./build/examples/trace_report "$trace_tmp" --slowest 1)"
echo "$report" | grep -q "1 traces (1 with a root span" || {
    echo "trace_report smoke run failed:"; echo "$report"; exit 1; }
echo "$report" | grep -q "queue wait" || {
    echo "trace_report printed no attribution table"; exit 1; }
echo "trace_report smoke run: OK"

echo "==> sim: virtual-time chaos drill + fuzz corpus replay (scripts/sim_drill.sh)"
scripts/sim_drill.sh

echo "==> cluster: shard-outage smoke drill (scripts/cluster_smoke.sh)"
scripts/cluster_smoke.sh

echo "==> slo: fault-injection drill with burn-rate alerts (scripts/slo_smoke.sh)"
scripts/slo_smoke.sh

if [ "${SKIP_TSAN:-0}" = "1" ]; then
    echo "==> SKIP_TSAN=1: skipping the ThreadSanitizer pass"
    exit 0
fi

echo "==> TSan: concurrent server + robustness tests (build-tsan/)"
cmake -B build-tsan -S . -DSIRIUS_SANITIZE=thread >/dev/null
# Only the binaries the TSan gate needs — a full sanitized build of the
# bench/example targets would double the check's wall time for no
# additional thread coverage.
cmake --build build-tsan -j "$jobs" \
    --target test_server test_robustness test_common test_observability \
             test_batching test_cache test_cluster test_slo \
             test_sim test_fuzzer
(cd build-tsan &&
     ctest --output-on-failure -j "$jobs" \
           -R "Server|Robustness|Deadline|FaultInjector|LatencyHistogram|Profiler|ThreadPool|ParallelFor|Trace|Metrics|Observability|Batch|ManualTime|Cache|Zipf|ShardedLru|Cluster|RoutingPolicy|FleetProjection|ShardedQueueing|Slo|EventLog|FlightRecorder|CriticalPath|VirtualExecutor|SimCluster|ChaosDrill|Trial|PropertyFuzzer|ClockSeams|SeamFixture")

echo "==> all checks passed"
