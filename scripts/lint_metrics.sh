#!/bin/sh
# Metric-name lint: every metric registered in src/ must be snake_case
# (the convention docs/ARCHITECTURE.md documents and MetricsRegistry
# enforces at runtime) and must carry at least one label — unlabeled
# instances cannot be told apart once several servers merge into one
# registry.
#
# Checked call sites: registry.counter("name", {labels}),
# .gauge(...), .histogram(...) with a string-literal name.
set -eu

cd "$(dirname "$0")/.."
status=0

# Literal metric names that are not snake_case (uppercase, dashes, or a
# leading non-letter).
bad_names="$(grep -rnE \
    '\.(counter|gauge|histogram)\("[^"]*[^a-z0-9_"][^"]*"' \
    --include='*.cc' --include='*.h' src/ || true)"
if [ -n "$bad_names" ]; then
    echo "lint_metrics: metric names must be snake_case ([a-z0-9_]):"
    echo "$bad_names"
    status=1
fi
lead_digit="$(grep -rnE '\.(counter|gauge|histogram)\("[0-9_]' \
    --include='*.cc' --include='*.h' src/ || true)"
if [ -n "$lead_digit" ]; then
    echo "lint_metrics: metric names must start with a letter:"
    echo "$lead_digit"
    status=1
fi

# A name argument followed directly by `)` registers an instance with
# no labels at all.
unlabeled="$(grep -rnE '\.(counter|gauge|histogram)\("[a-z0-9_]+"\)' \
    --include='*.cc' --include='*.h' src/ || true)"
if [ -n "$unlabeled" ]; then
    echo "lint_metrics: metric instances must carry >= 1 label" \
         "(pass a base label set):"
    echo "$unlabeled"
    status=1
fi

if [ "$status" = "0" ]; then
    echo "lint_metrics: OK"
fi
exit "$status"
