#!/usr/bin/env bash
# Regenerate the end-to-end golden fixtures under tests/golden/.
#
# The goldens pin the pipeline's per-query discrete outputs (type,
# degradation, class, landmark, transcript, answer) for the standard
# 42-query set. Run this after an *intentional* behaviour change, review
# the diff, and commit the updated fixture together with the change that
# caused it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target test_batching

SIRIUS_REGEN_GOLDENS=1 "$BUILD_DIR"/tests/test_batching \
    --gtest_filter='BatchingE2E.GoldenEndToEndOutputs'

echo "--- regenerated fixtures ---"
git -c color.status=always status --short tests/golden/ || true
