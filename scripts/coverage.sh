#!/bin/sh
# Coverage report for the substrate and serving core: configure an
# instrumented tree (SIRIUS_COVERAGE=1, see the root CMakeLists.txt),
# run the tier-1 suite in it, and print per-directory line/branch
# coverage for src/common and src/core.
#
# Report-only by design: the numbers are printed for a human (and for
# the CI log), never turned into a pass/fail gate — see
# docs/TESTING.md. Uses gcovr when installed, else falls back to a
# plain gcov summary.
#
#   scripts/coverage.sh              # build build-cov/, run, report
#   SKIP_BUILD=1 scripts/coverage.sh # re-report an existing run
set -eu

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"
tree=build-cov

if [ "${SKIP_BUILD:-0}" != "1" ]; then
    echo "==> coverage: configure + build ($tree/)"
    cmake -B "$tree" -S . -DSIRIUS_COVERAGE=1 >/dev/null
    cmake --build "$tree" -j "$jobs"
    echo "==> coverage: tier-1 suite in the instrumented tree"
    (cd "$tree" && ctest --output-on-failure -j "$jobs")
fi

echo "==> coverage: per-directory report (src/common, src/core)"
if command -v gcovr >/dev/null 2>&1; then
    # One filtered run per directory gives the per-directory rollup;
    # the TOTAL line of each is the number a reader wants.
    for dir in src/common src/core; do
        echo "--- $dir"
        gcovr --root . --object-directory "$tree" \
              --filter "$dir/" --print-summary 2>/dev/null |
            grep -E '^(lines|branches):' |
            sed "s|^|$dir |"
    done
else
    echo "(gcovr not installed — falling back to a gcov summary)"
    # gcov -n prints a File/"Lines executed" block per contributing
    # source (headers included); keep only the blocks whose file lives
    # under the directory being summarised and aggregate the absolute
    # line counts. The object files for src/common live under the
    # matching build-cov/src/<dir> tree, so the find is scoped there.
    for dir in src/common src/core; do
        find "$tree/$dir" -name '*.gcda' 2>/dev/null | sort |
            while read -r gcda; do
                gcov -n "$gcda" 2>/dev/null
            done |
            awk -v dir="/$dir/" '
                /^File / {
                    file = $0
                    sub(/^File .\.?\.?/, "", file)
                    keep = index(file, dir) > 0
                    next
                }
                keep && /^Lines executed:/ {
                    split($0, f, /[:% ]+/)
                    # "Lines executed:P% of N" -> f[3] = P, f[5] = N
                    total += f[5]
                    covered += f[3] * f[5] / 100
                    keep = 0
                }
                END {
                    if (total > 0)
                        printf "%s lines: %.1f%% (%d out of %d)\n",
                               dir, 100 * covered / total, covered, total
                    else
                        printf "%s: no coverage data found\n", dir
                }'
    done
fi
echo "==> coverage: done (report-only; no gate)"
