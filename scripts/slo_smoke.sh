#!/bin/sh
# SLO smoke drill: run the load generator against a 4-shard cluster,
# inject a *fault-mode* outage on one shard mid-run (the shard stays
# routable and fails queries loudly — unlike the clean admin kill in
# cluster_smoke.sh, this is the outage shape the SLO engine exists
# for), revive it, and assert the observability-plane invariants
# docs/OBSERVABILITY.md promises:
#
#   1. the fleet absorbs the outage: zero Failed queries (failover
#      rescues every answer) and 4/4 shards healthy at the end,
#   2. the availability burn-rate alert *fires* during the outage and
#      *clears* after the revival — the fast (short-window) rule, whose
#      scaled windows fit inside the run,
#   3. the ejection/recovery and drill switches land in the structured
#      event log as machine-readable events,
#   4. the flight recorder captured whole stitched traces (router
#      route spans and shard legs sharing one trace id) and dumped
#      them on alert fire.
#
# CI runs this after cluster_smoke (see scripts/check.sh). It greps
# load_test's humane output, so the "slo[...]", "fleet:", "flight:"
# summary lines there are load-bearing.
set -eu

cd "$(dirname "$0")/.."
bin=./build/examples/load_test
if [ ! -x "$bin" ]; then
    echo "slo_smoke: $bin not built (run cmake --build build first)"
    exit 1
fi

out="$(mktemp /tmp/sirius_slo_smoke.XXXXXX)"
events="$(mktemp /tmp/sirius_slo_events.XXXXXX.jsonl)"
flight="$(mktemp /tmp/sirius_slo_flight.XXXXXX.jsonl)"
trap 'rm -f "$out" "$events" "$flight"' EXIT

# 4 shards x 2 workers, 80 open-loop requests at 0.3 load. Shard 1's
# fault injector arms before request 20 (100% failure rate: ejection
# after consecutive failures, failovers rescue the answers) and
# disarms before request 60 (probe recovery). --slo-scale 2e-4 shrinks
# the production alert windows to sub-second so the fast rule can both
# fire and clear inside the run.
"$bin" --shards 4 --workers 2 --requests 80 \
       --slo-report --slo-scale 0.0002 \
       --kill-mode fault --kill-shard 1 --kill-shard-at 20 \
       --revive-shard-at 60 \
       --events-out "$events" --flight-out "$flight" 0.3 | tee "$out"

status=0

# --- invariant 1: the outage never reached a client -------------------
fleet="$(grep '^fleet:' "$out" || true)"
case "$fleet" in
*"failed 0"*) ;;
*)
    echo "slo_smoke: FAIL — queries failed during the fault drill:"
    echo "  ${fleet:-<no fleet line>}"
    status=1
    ;;
esac
case "$fleet" in
*"healthy 4/4"*) ;;
*)
    echo "slo_smoke: FAIL — shard 1 did not recover by the end:"
    echo "  ${fleet:-<no fleet line>}"
    status=1
    ;;
esac

# --- invariant 2: the fast availability alert fired and cleared -------
alert="$(grep '^slo\[availability\] alert fast:' "$out" || true)"
if [ -z "$alert" ]; then
    echo "slo_smoke: FAIL — no fast availability alert line in the" \
         "SLO report"
    status=1
else
    fires="$(echo "$alert" | sed -n 's/.*fires \([0-9]*\).*/\1/p')"
    clears="$(echo "$alert" | sed -n 's/.*clears \([0-9]*\).*/\1/p')"
    if [ "${fires:-0}" -lt 1 ]; then
        echo "slo_smoke: FAIL — the availability burn-rate alert never" \
             "fired during the outage:"
        echo "  $alert"
        status=1
    fi
    if [ "${clears:-0}" -lt 1 ]; then
        echo "slo_smoke: FAIL — the alert never cleared after the" \
             "revival:"
        echo "  $alert"
        status=1
    fi
    case "$alert" in
    *": ok,"*) ;;
    *)
        echo "slo_smoke: FAIL — the alert is still firing at the end" \
             "of the run:"
        echo "  $alert"
        status=1
        ;;
    esac
fi

# --- invariant 3: structured events tell the story --------------------
for kind in drill shard_eject shard_recover alert_fire alert_clear; do
    if ! grep -q "\"kind\":\"$kind\"" "$events"; then
        echo "slo_smoke: FAIL — no '$kind' event in the event log" \
             "($events)"
        status=1
    fi
done

# --- invariant 4: the flight recorder holds stitched traces -----------
if ! [ -s "$flight" ]; then
    echo "slo_smoke: FAIL — the flight recorder dumped no traces"
    status=1
elif ! grep -q '"name":"route"' "$flight"; then
    echo "slo_smoke: FAIL — flight traces hold no router route spans" \
         "(stitching broken?)"
    status=1
elif ! grep -q '"name":"queue_wait"' "$flight"; then
    echo "slo_smoke: FAIL — flight traces hold no shard-side spans" \
         "(legs not merged into the trace?)"
    status=1
fi

if [ "$status" = "0" ]; then
    echo "slo_smoke: OK (alert fired and cleared across the fault" \
         "drill, zero failed queries, stitched flight traces captured)"
fi
exit "$status"
