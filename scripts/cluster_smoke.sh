#!/bin/sh
# Cluster smoke drill: run the load generator against a 4-shard
# cluster with caching on, kill one shard mid-run, and assert the
# operator-visible invariants the docs promise:
#
#   1. zero Failed queries — the router re-routes around the dead
#      shard instead of surfacing its loss to clients,
#   2. the killed shard ends the run administratively down and the
#      other three healthy (3/4 in the fleet line),
#   3. the per-layer caches report hits — traffic re-homed onto the
#      survivors re-warms their caches rather than running cold.
#
# CI runs this after the tier-1 build (see scripts/check.sh); it greps
# the humane output of examples/load_test, so the summary lines there
# are load-bearing ("fleet: ...", "shard N: ...", "cache[...]: ...").
set -eu

cd "$(dirname "$0")/.."
bin=./build/examples/load_test
if [ ! -x "$bin" ]; then
    echo "cluster_smoke: $bin not built (run cmake --build build first)"
    exit 1
fi

out="$(mktemp /tmp/sirius_cluster_smoke.XXXXXX)"
trap 'rm -f "$out"' EXIT

# 4 shards x 1 worker, 160 closed-loop requests, shard 0 killed before
# request 80 — capacity drops by a quarter mid-run while clients keep
# issuing. --cache turns the per-layer caches on so invariant 3 is
# observable.
"$bin" --shards 4 --workers 1 --requests 160 --kill-shard-at 80 \
       --cache | tee "$out"

fleet="$(grep '^fleet:' "$out" || true)"
if [ -z "$fleet" ]; then
    echo "cluster_smoke: FAIL — no fleet summary line in the output"
    exit 1
fi

status=0
case "$fleet" in
*"failed 0"*) ;;
*)
    echo "cluster_smoke: FAIL — queries failed during the shard outage:"
    echo "  $fleet"
    status=1
    ;;
esac
case "$fleet" in
*"healthy 3/4"*) ;;
*)
    echo "cluster_smoke: FAIL — expected 3/4 shards healthy after the" \
         "kill:"
    echo "  $fleet"
    status=1
    ;;
esac
if ! grep -q '^shard 0: .*admin down' "$out"; then
    echo "cluster_smoke: FAIL — shard 0 is not administratively down"
    status=1
fi
for layer in acoustic_scores answers matches; do
    line="$(grep "^cache\[$layer\]" "$out" || true)"
    case "$line" in
    *" 0 hits "*| "")
        echo "cluster_smoke: FAIL — cache[$layer] reported no hits" \
             "after the re-route (caches did not re-warm)"
        status=1
        ;;
    esac
done

if [ "$status" = "0" ]; then
    echo "cluster_smoke: OK (shard killed mid-run, zero failed" \
         "queries, caches warm on the survivors)"
fi
exit "$status"
