#!/bin/sh
# Docs lint:
#
#   1. Every relative markdown link in the repo's docs resolves to a
#      file or directory that exists (fragments are stripped first;
#      http(s)/mailto/pure-#anchor targets are skipped).
#   2. Every `sirius_*` metric name the docs mention exists in src/ —
#      docs that describe metrics nobody exports are worse than no
#      docs. A name must be the prefix of a registered metric literal,
#      so family mentions like `sirius_cache...` pass while a typo'd
#      full name fails. Tokens ending in `_` (wildcard shorthand like
#      `sirius_batch_*` after stripping) are skipped.
#   3. The observability-plane surface is documented in the other
#      direction too: every `sirius_slo_*`, `sirius_trace_*`,
#      `sirius_flight_*`, and `sirius_events_*` metric *registered in
#      src/* must be mentioned in docs/OBSERVABILITY.md — these are the
#      families an on-call reads during an incident, so an undocumented
#      one is a runbook hole, not just missing prose.
#   4. The operator surface is documented: every public field of
#      ConcurrentServerConfig and ClusterConfig, and every `--flag`
#      examples/load_test.cc accepts, must be mentioned somewhere in
#      docs/ or README.md. Field names are parsed out of the struct
#      bodies, flags out of the argv loop, so adding a knob without
#      documenting it fails this script (and CI).
#   5. The SIMD dispatch surface is accurate both ways: every
#      `SIRIUS_SIMD=<value>` the docs show is a spelling
#      src/common/simd.cc accepts, and every registered `sirius_simd_*`
#      metric is documented in docs/KERNELS.md.
#
# Scaffolding files that quote external material verbatim (ISSUE.md,
# PAPER.md, PAPERS.md, SNIPPETS.md) are excluded.
set -eu

cd "$(dirname "$0")/.."
status=0

docs="$(find . -name '*.md' \
        -not -path './build*' -not -path './.git/*' \
        -not -path './related/*' |
    grep -vE '/(ISSUE|PAPER|PAPERS|SNIPPETS)\.md$' | sort)"

# --- gate 1: relative links resolve -----------------------------------
for doc in $docs; do
    dir="$(dirname "$doc")"
    # Inline links: the (target) part of ](target). Reference-style
    # links are not used in this repo.
    targets="$(grep -oE '\]\([^)]+\)' "$doc" 2>/dev/null |
        sed 's/^](//; s/)$//' || true)"
    [ -n "$targets" ] || continue
    for target in $targets; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}" # strip any fragment
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "lint_docs: $doc: broken link -> $target"
            status=1
        fi
    done
done

# --- gate 2: mentioned sirius_* metrics exist in src/ ------------------
# shellcheck disable=SC2086
metrics="$(grep -ohE 'sirius_[a-z0-9_]+' $docs | sort -u || true)"
for metric in $metrics; do
    case "$metric" in
    *_) continue ;; # wildcard/family shorthand, e.g. sirius_batch_*
    esac
    # Registered names are string literals ("sirius_..."), so a doc
    # mention must open one (prefix match keeps family mentions legal).
    if ! grep -rqF "\"$metric" --include='*.cc' --include='*.h' src/; then
        echo "lint_docs: metric '$metric' is documented but not" \
             "registered anywhere in src/"
        status=1
    fi
done

# --- gate 3: registered observability metrics are documented -----------
# The exporters register full names as string literals; every literal
# in the SLO/trace/flight/event families must appear in the inventory
# doc. (Gate 2 checks the reverse: documented names must exist.)
observability_doc="docs/OBSERVABILITY.md"
plane_metrics="$(grep -rhoE \
        '"sirius_(slo|trace|flight|events)_[a-z0-9_]+"' \
        --include='*.cc' --include='*.h' src/ | tr -d '"' | sort -u ||
    true)"
for metric in $plane_metrics; do
    if [ ! -f "$observability_doc" ] ||
        ! grep -qF "$metric" "$observability_doc"; then
        echo "lint_docs: metric '$metric' is registered in src/ but" \
             "not documented in $observability_doc"
        status=1
    fi
done

# --- gate 4: config fields + load_test flags are documented ------------
# Only operator-facing docs count as documentation; a field mentioned
# nowhere but a test would still fail here.
operator_docs="README.md docs/*.md"

# Print the public field names of `struct <name>` in <file>: take each
# declaration line inside the struct body (skipping comment blocks),
# strip the initializer, and keep the last identifier — the field.
struct_fields() {
    awk -v want="struct $2" '
        !in_body { if (index($0, want) == 1) in_body = 1; next }
        /^};/ { exit }
        in_comment { if (/\*\//) in_comment = 0; next }
        /^[[:space:]]*\/\*/ { if (!/\*\//) in_comment = 1; next }
        {
            line = $0
            sub(/\/\/.*/, "", line)
            if (line !~ /;/) next
            sub(/[=;].*/, "", line)
            n = split(line, w, /[^A-Za-z0-9_]+/)
            for (i = n; i >= 1; i--)
                if (w[i] != "") { print w[i]; break }
        }' "$1"
}

for spec in \
    "src/core/concurrent_server.h ConcurrentServerConfig" \
    "src/core/cluster.h ClusterConfig"; do
    file="${spec%% *}"
    name="${spec##* }"
    fields="$(struct_fields "$file" "$name")"
    if [ -z "$fields" ]; then
        echo "lint_docs: could not parse any fields of $name from $file"
        status=1
        continue
    fi
    for field in $fields; do
        # shellcheck disable=SC2086
        if ! grep -qE "(^|[^A-Za-z0-9_])$field([^A-Za-z0-9_]|$)" \
                $operator_docs; then
            echo "lint_docs: $name::$field ($file) is not documented" \
                 "in README.md or docs/"
            status=1
        fi
    done
done

# --- gate 5: the SIMD dispatch surface is documented accurately --------
# (a) Every `SIRIUS_SIMD=<value>` a doc shows must be a value
#     parseIsa()/resolveEnvironment() actually accept — a doc teaching
#     an operator a rejected spelling is a support ticket. The accepted
#     set is parsed out of src/common/simd.cc, not hardcoded here.
# (b) Every `sirius_simd_*` metric registered in src/ must be mentioned
#     in docs/KERNELS.md, mirroring gate 3 for the kernel layer.
#     (Gate 2 already checks the docs -> src direction.)
simd_values="$(grep -hoE '"(scalar|sse[0-9.]*|avx[0-9]*|neon|native)"' \
        src/common/simd.cc | tr -d '"' | sort -u || true)"
# shellcheck disable=SC2086
doc_simd="$(grep -ohE 'SIRIUS_SIMD=[a-z0-9.|]+' $docs | sed 's/^SIRIUS_SIMD=//' |
    tr '|' '\n' | sort -u || true)"
for value in $doc_simd; do
    if ! echo "$simd_values" | grep -qxF "$value"; then
        echo "lint_docs: docs show SIRIUS_SIMD=$value but" \
             "src/common/simd.cc does not accept '$value'"
        status=1
    fi
done

kernels_doc="docs/KERNELS.md"
simd_metrics="$(grep -rhoE '"sirius_simd_[a-z0-9_]+"' \
        --include='*.cc' --include='*.h' src/ | tr -d '"' | sort -u ||
    true)"
for metric in $simd_metrics; do
    if [ ! -f "$kernels_doc" ] || ! grep -qF "$metric" "$kernels_doc"; then
        echo "lint_docs: metric '$metric' is registered in src/ but" \
             "not documented in $kernels_doc"
        status=1
    fi
done

flags="$(grep -oE '"--[a-z-]+"' examples/load_test.cc | tr -d '"' | sort -u)"
for flag in $flags; do
    # shellcheck disable=SC2086
    if ! grep -qF -e "$flag" $operator_docs; then
        echo "lint_docs: load_test flag '$flag' is not documented" \
             "in README.md or docs/"
        status=1
    fi
done

if [ "$status" = "0" ]; then
    echo "lint_docs: OK ($(echo "$docs" | wc -l | tr -d ' ') files)"
fi
exit "$status"
