#!/bin/sh
# Docs lint, two gates:
#
#   1. Every relative markdown link in the repo's docs resolves to a
#      file or directory that exists (fragments are stripped first;
#      http(s)/mailto/pure-#anchor targets are skipped).
#   2. Every `sirius_*` metric name the docs mention exists in src/ —
#      docs that describe metrics nobody exports are worse than no
#      docs. A name must be the prefix of a registered metric literal,
#      so family mentions like `sirius_cache...` pass while a typo'd
#      full name fails. Tokens ending in `_` (wildcard shorthand like
#      `sirius_batch_*` after stripping) are skipped.
#
# Scaffolding files that quote external material verbatim (ISSUE.md,
# PAPER.md, PAPERS.md, SNIPPETS.md) are excluded.
set -eu

cd "$(dirname "$0")/.."
status=0

docs="$(find . -name '*.md' \
        -not -path './build*' -not -path './.git/*' \
        -not -path './related/*' |
    grep -vE '/(ISSUE|PAPER|PAPERS|SNIPPETS)\.md$' | sort)"

# --- gate 1: relative links resolve -----------------------------------
for doc in $docs; do
    dir="$(dirname "$doc")"
    # Inline links: the (target) part of ](target). Reference-style
    # links are not used in this repo.
    targets="$(grep -oE '\]\([^)]+\)' "$doc" 2>/dev/null |
        sed 's/^](//; s/)$//' || true)"
    [ -n "$targets" ] || continue
    for target in $targets; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}" # strip any fragment
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
            echo "lint_docs: $doc: broken link -> $target"
            status=1
        fi
    done
done

# --- gate 2: mentioned sirius_* metrics exist in src/ ------------------
# shellcheck disable=SC2086
metrics="$(grep -ohE 'sirius_[a-z0-9_]+' $docs | sort -u || true)"
for metric in $metrics; do
    case "$metric" in
    *_) continue ;; # wildcard/family shorthand, e.g. sirius_batch_*
    esac
    # Registered names are string literals ("sirius_..."), so a doc
    # mention must open one (prefix match keeps family mentions legal).
    if ! grep -rqF "\"$metric" --include='*.cc' --include='*.h' src/; then
        echo "lint_docs: metric '$metric' is documented but not" \
             "registered anywhere in src/"
        status=1
    fi
done

if [ "$status" = "0" ]; then
    echo "lint_docs: OK ($(echo "$docs" | wc -l | tr -d ' ') files)"
fi
exit "$status"
