#!/bin/sh
# Deterministic port of the cluster_smoke.sh / slo_smoke.sh drill arc
# onto the virtual-time simulation (src/sim): the same 4-shard
# kill -> eject -> alert fire -> revive -> probe recover -> alert clear
# story, but on a manual clock — no wall sleeps, no scaled alert
# windows racing a scheduler, byte-for-byte reproducible from one
# seed, and finished in milliseconds instead of seconds.
#
# The wall-clock smokes still run in CI (they exercise the real
# binary end to end); this is the flake-free version of the same
# invariants, plus a replay of the checked-in fuzz corpus so every
# pinned regression stays fixed:
#
#   1. chaos drill (fuzz_driver --drill): zero failed queries, the
#      full eject/alert/recover/clear event arc, 4/4 shards healthy
#      at the end, and an identical event-log digest on every run,
#   2. corpus replay (fuzz_driver --corpus tests/corpus): every
#      repro line runs clean through all differential oracles and
#      global invariants.
set -eu

cd "$(dirname "$0")/.."
bin=./build/tests/fuzz_driver
if [ ! -x "$bin" ]; then
    echo "sim_drill: $bin not built (run cmake --build build first)"
    exit 1
fi

"$bin" --drill
"$bin" --corpus tests/corpus
echo "sim_drill: OK (virtual-time chaos drill + corpus replay clean)"
