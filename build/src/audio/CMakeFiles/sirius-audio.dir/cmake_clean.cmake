file(REMOVE_RECURSE
  "CMakeFiles/sirius-audio.dir/codec.cc.o"
  "CMakeFiles/sirius-audio.dir/codec.cc.o.d"
  "CMakeFiles/sirius-audio.dir/delta.cc.o"
  "CMakeFiles/sirius-audio.dir/delta.cc.o.d"
  "CMakeFiles/sirius-audio.dir/mfcc.cc.o"
  "CMakeFiles/sirius-audio.dir/mfcc.cc.o.d"
  "CMakeFiles/sirius-audio.dir/phoneme.cc.o"
  "CMakeFiles/sirius-audio.dir/phoneme.cc.o.d"
  "CMakeFiles/sirius-audio.dir/synthesizer.cc.o"
  "CMakeFiles/sirius-audio.dir/synthesizer.cc.o.d"
  "libsirius-audio.a"
  "libsirius-audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
