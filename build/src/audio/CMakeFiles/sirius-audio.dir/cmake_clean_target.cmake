file(REMOVE_RECURSE
  "libsirius-audio.a"
)
