
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/codec.cc" "src/audio/CMakeFiles/sirius-audio.dir/codec.cc.o" "gcc" "src/audio/CMakeFiles/sirius-audio.dir/codec.cc.o.d"
  "/root/repo/src/audio/delta.cc" "src/audio/CMakeFiles/sirius-audio.dir/delta.cc.o" "gcc" "src/audio/CMakeFiles/sirius-audio.dir/delta.cc.o.d"
  "/root/repo/src/audio/mfcc.cc" "src/audio/CMakeFiles/sirius-audio.dir/mfcc.cc.o" "gcc" "src/audio/CMakeFiles/sirius-audio.dir/mfcc.cc.o.d"
  "/root/repo/src/audio/phoneme.cc" "src/audio/CMakeFiles/sirius-audio.dir/phoneme.cc.o" "gcc" "src/audio/CMakeFiles/sirius-audio.dir/phoneme.cc.o.d"
  "/root/repo/src/audio/synthesizer.cc" "src/audio/CMakeFiles/sirius-audio.dir/synthesizer.cc.o" "gcc" "src/audio/CMakeFiles/sirius-audio.dir/synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
