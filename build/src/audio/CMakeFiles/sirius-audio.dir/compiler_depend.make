# Empty compiler generated dependencies file for sirius-audio.
# This may be replaced when dependencies are built.
