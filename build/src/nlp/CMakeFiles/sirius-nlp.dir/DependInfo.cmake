
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nlp/crf.cc" "src/nlp/CMakeFiles/sirius-nlp.dir/crf.cc.o" "gcc" "src/nlp/CMakeFiles/sirius-nlp.dir/crf.cc.o.d"
  "/root/repo/src/nlp/porter_stemmer.cc" "src/nlp/CMakeFiles/sirius-nlp.dir/porter_stemmer.cc.o" "gcc" "src/nlp/CMakeFiles/sirius-nlp.dir/porter_stemmer.cc.o.d"
  "/root/repo/src/nlp/pos_corpus.cc" "src/nlp/CMakeFiles/sirius-nlp.dir/pos_corpus.cc.o" "gcc" "src/nlp/CMakeFiles/sirius-nlp.dir/pos_corpus.cc.o.d"
  "/root/repo/src/nlp/regex.cc" "src/nlp/CMakeFiles/sirius-nlp.dir/regex.cc.o" "gcc" "src/nlp/CMakeFiles/sirius-nlp.dir/regex.cc.o.d"
  "/root/repo/src/nlp/tokenizer.cc" "src/nlp/CMakeFiles/sirius-nlp.dir/tokenizer.cc.o" "gcc" "src/nlp/CMakeFiles/sirius-nlp.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
