# Empty compiler generated dependencies file for sirius-nlp.
# This may be replaced when dependencies are built.
