file(REMOVE_RECURSE
  "CMakeFiles/sirius-nlp.dir/crf.cc.o"
  "CMakeFiles/sirius-nlp.dir/crf.cc.o.d"
  "CMakeFiles/sirius-nlp.dir/porter_stemmer.cc.o"
  "CMakeFiles/sirius-nlp.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/sirius-nlp.dir/pos_corpus.cc.o"
  "CMakeFiles/sirius-nlp.dir/pos_corpus.cc.o.d"
  "CMakeFiles/sirius-nlp.dir/regex.cc.o"
  "CMakeFiles/sirius-nlp.dir/regex.cc.o.d"
  "CMakeFiles/sirius-nlp.dir/tokenizer.cc.o"
  "CMakeFiles/sirius-nlp.dir/tokenizer.cc.o.d"
  "libsirius-nlp.a"
  "libsirius-nlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
