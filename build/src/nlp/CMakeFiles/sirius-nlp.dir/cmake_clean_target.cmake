file(REMOVE_RECURSE
  "libsirius-nlp.a"
)
