file(REMOVE_RECURSE
  "CMakeFiles/sirius-vision.dir/image.cc.o"
  "CMakeFiles/sirius-vision.dir/image.cc.o.d"
  "CMakeFiles/sirius-vision.dir/imm_service.cc.o"
  "CMakeFiles/sirius-vision.dir/imm_service.cc.o.d"
  "CMakeFiles/sirius-vision.dir/integral_image.cc.o"
  "CMakeFiles/sirius-vision.dir/integral_image.cc.o.d"
  "CMakeFiles/sirius-vision.dir/landmarks.cc.o"
  "CMakeFiles/sirius-vision.dir/landmarks.cc.o.d"
  "CMakeFiles/sirius-vision.dir/matcher.cc.o"
  "CMakeFiles/sirius-vision.dir/matcher.cc.o.d"
  "CMakeFiles/sirius-vision.dir/surf.cc.o"
  "CMakeFiles/sirius-vision.dir/surf.cc.o.d"
  "libsirius-vision.a"
  "libsirius-vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
