# Empty compiler generated dependencies file for sirius-vision.
# This may be replaced when dependencies are built.
