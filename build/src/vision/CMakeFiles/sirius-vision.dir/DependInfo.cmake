
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/image.cc" "src/vision/CMakeFiles/sirius-vision.dir/image.cc.o" "gcc" "src/vision/CMakeFiles/sirius-vision.dir/image.cc.o.d"
  "/root/repo/src/vision/imm_service.cc" "src/vision/CMakeFiles/sirius-vision.dir/imm_service.cc.o" "gcc" "src/vision/CMakeFiles/sirius-vision.dir/imm_service.cc.o.d"
  "/root/repo/src/vision/integral_image.cc" "src/vision/CMakeFiles/sirius-vision.dir/integral_image.cc.o" "gcc" "src/vision/CMakeFiles/sirius-vision.dir/integral_image.cc.o.d"
  "/root/repo/src/vision/landmarks.cc" "src/vision/CMakeFiles/sirius-vision.dir/landmarks.cc.o" "gcc" "src/vision/CMakeFiles/sirius-vision.dir/landmarks.cc.o.d"
  "/root/repo/src/vision/matcher.cc" "src/vision/CMakeFiles/sirius-vision.dir/matcher.cc.o" "gcc" "src/vision/CMakeFiles/sirius-vision.dir/matcher.cc.o.d"
  "/root/repo/src/vision/surf.cc" "src/vision/CMakeFiles/sirius-vision.dir/surf.cc.o" "gcc" "src/vision/CMakeFiles/sirius-vision.dir/surf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
