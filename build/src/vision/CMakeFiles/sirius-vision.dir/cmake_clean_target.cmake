file(REMOVE_RECURSE
  "libsirius-vision.a"
)
