
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/crf_kernel.cc" "src/suite/CMakeFiles/sirius-suite.dir/crf_kernel.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/crf_kernel.cc.o.d"
  "/root/repo/src/suite/dnn_kernel.cc" "src/suite/CMakeFiles/sirius-suite.dir/dnn_kernel.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/dnn_kernel.cc.o.d"
  "/root/repo/src/suite/fd_kernel.cc" "src/suite/CMakeFiles/sirius-suite.dir/fd_kernel.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/fd_kernel.cc.o.d"
  "/root/repo/src/suite/fe_kernel.cc" "src/suite/CMakeFiles/sirius-suite.dir/fe_kernel.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/fe_kernel.cc.o.d"
  "/root/repo/src/suite/gmm_kernel.cc" "src/suite/CMakeFiles/sirius-suite.dir/gmm_kernel.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/gmm_kernel.cc.o.d"
  "/root/repo/src/suite/regex_kernel.cc" "src/suite/CMakeFiles/sirius-suite.dir/regex_kernel.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/regex_kernel.cc.o.d"
  "/root/repo/src/suite/stemmer_kernel.cc" "src/suite/CMakeFiles/sirius-suite.dir/stemmer_kernel.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/stemmer_kernel.cc.o.d"
  "/root/repo/src/suite/suite.cc" "src/suite/CMakeFiles/sirius-suite.dir/suite.cc.o" "gcc" "src/suite/CMakeFiles/sirius-suite.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sirius-nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/speech/CMakeFiles/sirius-speech.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/sirius-vision.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/sirius-audio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
