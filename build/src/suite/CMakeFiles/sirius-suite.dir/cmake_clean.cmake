file(REMOVE_RECURSE
  "CMakeFiles/sirius-suite.dir/crf_kernel.cc.o"
  "CMakeFiles/sirius-suite.dir/crf_kernel.cc.o.d"
  "CMakeFiles/sirius-suite.dir/dnn_kernel.cc.o"
  "CMakeFiles/sirius-suite.dir/dnn_kernel.cc.o.d"
  "CMakeFiles/sirius-suite.dir/fd_kernel.cc.o"
  "CMakeFiles/sirius-suite.dir/fd_kernel.cc.o.d"
  "CMakeFiles/sirius-suite.dir/fe_kernel.cc.o"
  "CMakeFiles/sirius-suite.dir/fe_kernel.cc.o.d"
  "CMakeFiles/sirius-suite.dir/gmm_kernel.cc.o"
  "CMakeFiles/sirius-suite.dir/gmm_kernel.cc.o.d"
  "CMakeFiles/sirius-suite.dir/regex_kernel.cc.o"
  "CMakeFiles/sirius-suite.dir/regex_kernel.cc.o.d"
  "CMakeFiles/sirius-suite.dir/stemmer_kernel.cc.o"
  "CMakeFiles/sirius-suite.dir/stemmer_kernel.cc.o.d"
  "CMakeFiles/sirius-suite.dir/suite.cc.o"
  "CMakeFiles/sirius-suite.dir/suite.cc.o.d"
  "libsirius-suite.a"
  "libsirius-suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
