# Empty compiler generated dependencies file for sirius-suite.
# This may be replaced when dependencies are built.
