file(REMOVE_RECURSE
  "libsirius-suite.a"
)
