# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("audio")
subdirs("nlp")
subdirs("speech")
subdirs("vision")
subdirs("search")
subdirs("qa")
subdirs("suite")
subdirs("accel")
subdirs("dcsim")
subdirs("core")
