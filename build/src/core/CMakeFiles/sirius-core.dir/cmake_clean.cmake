file(REMOVE_RECURSE
  "CMakeFiles/sirius-core.dir/intent.cc.o"
  "CMakeFiles/sirius-core.dir/intent.cc.o.d"
  "CMakeFiles/sirius-core.dir/pipeline.cc.o"
  "CMakeFiles/sirius-core.dir/pipeline.cc.o.d"
  "CMakeFiles/sirius-core.dir/query_classifier.cc.o"
  "CMakeFiles/sirius-core.dir/query_classifier.cc.o.d"
  "CMakeFiles/sirius-core.dir/query_set.cc.o"
  "CMakeFiles/sirius-core.dir/query_set.cc.o.d"
  "CMakeFiles/sirius-core.dir/server.cc.o"
  "CMakeFiles/sirius-core.dir/server.cc.o.d"
  "libsirius-core.a"
  "libsirius-core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
