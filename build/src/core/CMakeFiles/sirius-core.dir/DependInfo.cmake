
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/intent.cc" "src/core/CMakeFiles/sirius-core.dir/intent.cc.o" "gcc" "src/core/CMakeFiles/sirius-core.dir/intent.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/sirius-core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/sirius-core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/query_classifier.cc" "src/core/CMakeFiles/sirius-core.dir/query_classifier.cc.o" "gcc" "src/core/CMakeFiles/sirius-core.dir/query_classifier.cc.o.d"
  "/root/repo/src/core/query_set.cc" "src/core/CMakeFiles/sirius-core.dir/query_set.cc.o" "gcc" "src/core/CMakeFiles/sirius-core.dir/query_set.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/sirius-core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/sirius-core.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/sirius-audio.dir/DependInfo.cmake"
  "/root/repo/build/src/speech/CMakeFiles/sirius-speech.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/sirius-vision.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/sirius-search.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/sirius-qa.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sirius-nlp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
