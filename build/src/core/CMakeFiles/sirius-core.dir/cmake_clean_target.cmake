file(REMOVE_RECURSE
  "libsirius-core.a"
)
