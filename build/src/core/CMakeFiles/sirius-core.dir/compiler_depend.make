# Empty compiler generated dependencies file for sirius-core.
# This may be replaced when dependencies are built.
