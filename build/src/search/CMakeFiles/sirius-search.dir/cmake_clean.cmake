file(REMOVE_RECURSE
  "CMakeFiles/sirius-search.dir/corpus.cc.o"
  "CMakeFiles/sirius-search.dir/corpus.cc.o.d"
  "CMakeFiles/sirius-search.dir/inverted_index.cc.o"
  "CMakeFiles/sirius-search.dir/inverted_index.cc.o.d"
  "CMakeFiles/sirius-search.dir/web_search.cc.o"
  "CMakeFiles/sirius-search.dir/web_search.cc.o.d"
  "libsirius-search.a"
  "libsirius-search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
