# Empty dependencies file for sirius-search.
# This may be replaced when dependencies are built.
