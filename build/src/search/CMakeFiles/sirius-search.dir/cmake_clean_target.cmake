file(REMOVE_RECURSE
  "libsirius-search.a"
)
