file(REMOVE_RECURSE
  "CMakeFiles/sirius-dcsim.dir/designer.cc.o"
  "CMakeFiles/sirius-dcsim.dir/designer.cc.o.d"
  "CMakeFiles/sirius-dcsim.dir/queueing.cc.o"
  "CMakeFiles/sirius-dcsim.dir/queueing.cc.o.d"
  "CMakeFiles/sirius-dcsim.dir/scalability.cc.o"
  "CMakeFiles/sirius-dcsim.dir/scalability.cc.o.d"
  "CMakeFiles/sirius-dcsim.dir/simulation.cc.o"
  "CMakeFiles/sirius-dcsim.dir/simulation.cc.o.d"
  "CMakeFiles/sirius-dcsim.dir/tco.cc.o"
  "CMakeFiles/sirius-dcsim.dir/tco.cc.o.d"
  "libsirius-dcsim.a"
  "libsirius-dcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-dcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
