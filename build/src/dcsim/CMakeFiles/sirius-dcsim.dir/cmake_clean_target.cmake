file(REMOVE_RECURSE
  "libsirius-dcsim.a"
)
