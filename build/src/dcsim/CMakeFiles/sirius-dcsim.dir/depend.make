# Empty dependencies file for sirius-dcsim.
# This may be replaced when dependencies are built.
