
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dcsim/designer.cc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/designer.cc.o" "gcc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/designer.cc.o.d"
  "/root/repo/src/dcsim/queueing.cc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/queueing.cc.o" "gcc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/queueing.cc.o.d"
  "/root/repo/src/dcsim/scalability.cc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/scalability.cc.o" "gcc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/scalability.cc.o.d"
  "/root/repo/src/dcsim/simulation.cc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/simulation.cc.o" "gcc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/simulation.cc.o.d"
  "/root/repo/src/dcsim/tco.cc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/tco.cc.o" "gcc" "src/dcsim/CMakeFiles/sirius-dcsim.dir/tco.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/sirius-accel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
