
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/fft.cc" "src/common/CMakeFiles/sirius-common.dir/fft.cc.o" "gcc" "src/common/CMakeFiles/sirius-common.dir/fft.cc.o.d"
  "/root/repo/src/common/matrix.cc" "src/common/CMakeFiles/sirius-common.dir/matrix.cc.o" "gcc" "src/common/CMakeFiles/sirius-common.dir/matrix.cc.o.d"
  "/root/repo/src/common/profiler.cc" "src/common/CMakeFiles/sirius-common.dir/profiler.cc.o" "gcc" "src/common/CMakeFiles/sirius-common.dir/profiler.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/sirius-common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/sirius-common.dir/stats.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/common/CMakeFiles/sirius-common.dir/strings.cc.o" "gcc" "src/common/CMakeFiles/sirius-common.dir/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/sirius-common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/sirius-common.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
