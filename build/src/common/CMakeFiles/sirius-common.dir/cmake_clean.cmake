file(REMOVE_RECURSE
  "CMakeFiles/sirius-common.dir/fft.cc.o"
  "CMakeFiles/sirius-common.dir/fft.cc.o.d"
  "CMakeFiles/sirius-common.dir/matrix.cc.o"
  "CMakeFiles/sirius-common.dir/matrix.cc.o.d"
  "CMakeFiles/sirius-common.dir/profiler.cc.o"
  "CMakeFiles/sirius-common.dir/profiler.cc.o.d"
  "CMakeFiles/sirius-common.dir/stats.cc.o"
  "CMakeFiles/sirius-common.dir/stats.cc.o.d"
  "CMakeFiles/sirius-common.dir/strings.cc.o"
  "CMakeFiles/sirius-common.dir/strings.cc.o.d"
  "CMakeFiles/sirius-common.dir/thread_pool.cc.o"
  "CMakeFiles/sirius-common.dir/thread_pool.cc.o.d"
  "libsirius-common.a"
  "libsirius-common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
