file(REMOVE_RECURSE
  "libsirius-common.a"
)
