# Empty compiler generated dependencies file for sirius-common.
# This may be replaced when dependencies are built.
