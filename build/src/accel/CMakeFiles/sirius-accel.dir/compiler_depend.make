# Empty compiler generated dependencies file for sirius-accel.
# This may be replaced when dependencies are built.
