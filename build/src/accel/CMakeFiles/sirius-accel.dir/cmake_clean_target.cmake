file(REMOVE_RECURSE
  "libsirius-accel.a"
)
