file(REMOVE_RECURSE
  "CMakeFiles/sirius-accel.dir/fpga_sim.cc.o"
  "CMakeFiles/sirius-accel.dir/fpga_sim.cc.o.d"
  "CMakeFiles/sirius-accel.dir/latency.cc.o"
  "CMakeFiles/sirius-accel.dir/latency.cc.o.d"
  "CMakeFiles/sirius-accel.dir/model.cc.o"
  "CMakeFiles/sirius-accel.dir/model.cc.o.d"
  "CMakeFiles/sirius-accel.dir/platform.cc.o"
  "CMakeFiles/sirius-accel.dir/platform.cc.o.d"
  "CMakeFiles/sirius-accel.dir/uarch.cc.o"
  "CMakeFiles/sirius-accel.dir/uarch.cc.o.d"
  "libsirius-accel.a"
  "libsirius-accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
