
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/fpga_sim.cc" "src/accel/CMakeFiles/sirius-accel.dir/fpga_sim.cc.o" "gcc" "src/accel/CMakeFiles/sirius-accel.dir/fpga_sim.cc.o.d"
  "/root/repo/src/accel/latency.cc" "src/accel/CMakeFiles/sirius-accel.dir/latency.cc.o" "gcc" "src/accel/CMakeFiles/sirius-accel.dir/latency.cc.o.d"
  "/root/repo/src/accel/model.cc" "src/accel/CMakeFiles/sirius-accel.dir/model.cc.o" "gcc" "src/accel/CMakeFiles/sirius-accel.dir/model.cc.o.d"
  "/root/repo/src/accel/platform.cc" "src/accel/CMakeFiles/sirius-accel.dir/platform.cc.o" "gcc" "src/accel/CMakeFiles/sirius-accel.dir/platform.cc.o.d"
  "/root/repo/src/accel/uarch.cc" "src/accel/CMakeFiles/sirius-accel.dir/uarch.cc.o" "gcc" "src/accel/CMakeFiles/sirius-accel.dir/uarch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
