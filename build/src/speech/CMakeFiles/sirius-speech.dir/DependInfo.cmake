
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/speech/asr_service.cc" "src/speech/CMakeFiles/sirius-speech.dir/asr_service.cc.o" "gcc" "src/speech/CMakeFiles/sirius-speech.dir/asr_service.cc.o.d"
  "/root/repo/src/speech/decoder.cc" "src/speech/CMakeFiles/sirius-speech.dir/decoder.cc.o" "gcc" "src/speech/CMakeFiles/sirius-speech.dir/decoder.cc.o.d"
  "/root/repo/src/speech/dnn.cc" "src/speech/CMakeFiles/sirius-speech.dir/dnn.cc.o" "gcc" "src/speech/CMakeFiles/sirius-speech.dir/dnn.cc.o.d"
  "/root/repo/src/speech/gmm.cc" "src/speech/CMakeFiles/sirius-speech.dir/gmm.cc.o" "gcc" "src/speech/CMakeFiles/sirius-speech.dir/gmm.cc.o.d"
  "/root/repo/src/speech/language_model.cc" "src/speech/CMakeFiles/sirius-speech.dir/language_model.cc.o" "gcc" "src/speech/CMakeFiles/sirius-speech.dir/language_model.cc.o.d"
  "/root/repo/src/speech/trigram_lm.cc" "src/speech/CMakeFiles/sirius-speech.dir/trigram_lm.cc.o" "gcc" "src/speech/CMakeFiles/sirius-speech.dir/trigram_lm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/sirius-audio.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
