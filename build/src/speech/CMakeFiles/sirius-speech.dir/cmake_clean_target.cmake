file(REMOVE_RECURSE
  "libsirius-speech.a"
)
