# Empty compiler generated dependencies file for sirius-speech.
# This may be replaced when dependencies are built.
