file(REMOVE_RECURSE
  "CMakeFiles/sirius-speech.dir/asr_service.cc.o"
  "CMakeFiles/sirius-speech.dir/asr_service.cc.o.d"
  "CMakeFiles/sirius-speech.dir/decoder.cc.o"
  "CMakeFiles/sirius-speech.dir/decoder.cc.o.d"
  "CMakeFiles/sirius-speech.dir/dnn.cc.o"
  "CMakeFiles/sirius-speech.dir/dnn.cc.o.d"
  "CMakeFiles/sirius-speech.dir/gmm.cc.o"
  "CMakeFiles/sirius-speech.dir/gmm.cc.o.d"
  "CMakeFiles/sirius-speech.dir/language_model.cc.o"
  "CMakeFiles/sirius-speech.dir/language_model.cc.o.d"
  "CMakeFiles/sirius-speech.dir/trigram_lm.cc.o"
  "CMakeFiles/sirius-speech.dir/trigram_lm.cc.o.d"
  "libsirius-speech.a"
  "libsirius-speech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-speech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
