
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qa/answer.cc" "src/qa/CMakeFiles/sirius-qa.dir/answer.cc.o" "gcc" "src/qa/CMakeFiles/sirius-qa.dir/answer.cc.o.d"
  "/root/repo/src/qa/filters.cc" "src/qa/CMakeFiles/sirius-qa.dir/filters.cc.o" "gcc" "src/qa/CMakeFiles/sirius-qa.dir/filters.cc.o.d"
  "/root/repo/src/qa/qa_service.cc" "src/qa/CMakeFiles/sirius-qa.dir/qa_service.cc.o" "gcc" "src/qa/CMakeFiles/sirius-qa.dir/qa_service.cc.o.d"
  "/root/repo/src/qa/question.cc" "src/qa/CMakeFiles/sirius-qa.dir/question.cc.o" "gcc" "src/qa/CMakeFiles/sirius-qa.dir/question.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sirius-common.dir/DependInfo.cmake"
  "/root/repo/build/src/nlp/CMakeFiles/sirius-nlp.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/sirius-search.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
