file(REMOVE_RECURSE
  "CMakeFiles/sirius-qa.dir/answer.cc.o"
  "CMakeFiles/sirius-qa.dir/answer.cc.o.d"
  "CMakeFiles/sirius-qa.dir/filters.cc.o"
  "CMakeFiles/sirius-qa.dir/filters.cc.o.d"
  "CMakeFiles/sirius-qa.dir/qa_service.cc.o"
  "CMakeFiles/sirius-qa.dir/qa_service.cc.o.d"
  "CMakeFiles/sirius-qa.dir/question.cc.o"
  "CMakeFiles/sirius-qa.dir/question.cc.o.d"
  "libsirius-qa.a"
  "libsirius-qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sirius-qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
