# Empty compiler generated dependencies file for sirius-qa.
# This may be replaced when dependencies are built.
