file(REMOVE_RECURSE
  "libsirius-qa.a"
)
