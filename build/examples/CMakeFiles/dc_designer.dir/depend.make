# Empty dependencies file for dc_designer.
# This may be replaced when dependencies are built.
