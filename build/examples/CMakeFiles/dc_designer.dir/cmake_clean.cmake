file(REMOVE_RECURSE
  "CMakeFiles/dc_designer.dir/dc_designer.cc.o"
  "CMakeFiles/dc_designer.dir/dc_designer.cc.o.d"
  "dc_designer"
  "dc_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dc_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
