# Empty compiler generated dependencies file for voice_assistant.
# This may be replaced when dependencies are built.
