file(REMOVE_RECURSE
  "CMakeFiles/voice_assistant.dir/voice_assistant.cc.o"
  "CMakeFiles/voice_assistant.dir/voice_assistant.cc.o.d"
  "voice_assistant"
  "voice_assistant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_assistant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
