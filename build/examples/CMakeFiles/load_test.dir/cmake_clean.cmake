file(REMOVE_RECURSE
  "CMakeFiles/load_test.dir/load_test.cc.o"
  "CMakeFiles/load_test.dir/load_test.cc.o.d"
  "load_test"
  "load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
