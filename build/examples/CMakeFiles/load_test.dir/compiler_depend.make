# Empty compiler generated dependencies file for load_test.
# This may be replaced when dependencies are built.
