# Empty compiler generated dependencies file for landmark_lens.
# This may be replaced when dependencies are built.
