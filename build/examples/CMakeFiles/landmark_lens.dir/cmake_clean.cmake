file(REMOVE_RECURSE
  "CMakeFiles/landmark_lens.dir/landmark_lens.cc.o"
  "CMakeFiles/landmark_lens.dir/landmark_lens.cc.o.d"
  "landmark_lens"
  "landmark_lens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landmark_lens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
