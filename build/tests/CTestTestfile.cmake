# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_nlp[1]_include.cmake")
include("/root/repo/build/tests/test_audio[1]_include.cmake")
include("/root/repo/build/tests/test_speech[1]_include.cmake")
include("/root/repo/build/tests/test_vision[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_qa[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_suite[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_dcsim[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_more[1]_include.cmake")
include("/root/repo/build/tests/test_extensions2[1]_include.cmake")
include("/root/repo/build/tests/test_server[1]_include.cmake")
include("/root/repo/build/tests/test_extensions3[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweeps[1]_include.cmake")
