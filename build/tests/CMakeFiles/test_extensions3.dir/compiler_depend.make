# Empty compiler generated dependencies file for test_extensions3.
# This may be replaced when dependencies are built.
