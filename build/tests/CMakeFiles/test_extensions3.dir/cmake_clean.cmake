file(REMOVE_RECURSE
  "CMakeFiles/test_extensions3.dir/test_extensions3.cc.o"
  "CMakeFiles/test_extensions3.dir/test_extensions3.cc.o.d"
  "test_extensions3"
  "test_extensions3.pdb"
  "test_extensions3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
