file(REMOVE_RECURSE
  "CMakeFiles/test_dcsim.dir/test_dcsim.cc.o"
  "CMakeFiles/test_dcsim.dir/test_dcsim.cc.o.d"
  "test_dcsim"
  "test_dcsim.pdb"
  "test_dcsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
