# Empty dependencies file for test_dcsim.
# This may be replaced when dependencies are built.
