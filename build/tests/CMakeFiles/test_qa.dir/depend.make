# Empty dependencies file for test_qa.
# This may be replaced when dependencies are built.
