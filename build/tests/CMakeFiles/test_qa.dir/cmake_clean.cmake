file(REMOVE_RECURSE
  "CMakeFiles/test_qa.dir/test_qa.cc.o"
  "CMakeFiles/test_qa.dir/test_qa.cc.o.d"
  "test_qa"
  "test_qa.pdb"
  "test_qa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
