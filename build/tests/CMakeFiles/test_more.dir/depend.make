# Empty dependencies file for test_more.
# This may be replaced when dependencies are built.
