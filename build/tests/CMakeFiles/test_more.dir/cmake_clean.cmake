file(REMOVE_RECURSE
  "CMakeFiles/test_more.dir/test_more.cc.o"
  "CMakeFiles/test_more.dir/test_more.cc.o.d"
  "test_more"
  "test_more.pdb"
  "test_more[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_more.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
