# Empty compiler generated dependencies file for test_nlp.
# This may be replaced when dependencies are built.
