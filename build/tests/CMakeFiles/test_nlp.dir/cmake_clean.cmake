file(REMOVE_RECURSE
  "CMakeFiles/test_nlp.dir/test_nlp.cc.o"
  "CMakeFiles/test_nlp.dir/test_nlp.cc.o.d"
  "test_nlp"
  "test_nlp.pdb"
  "test_nlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
