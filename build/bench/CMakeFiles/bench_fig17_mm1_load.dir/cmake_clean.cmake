file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mm1_load.dir/bench_fig17_mm1_load.cc.o"
  "CMakeFiles/bench_fig17_mm1_load.dir/bench_fig17_mm1_load.cc.o.d"
  "bench_fig17_mm1_load"
  "bench_fig17_mm1_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mm1_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
