# Empty compiler generated dependencies file for bench_fig17_mm1_load.
# This may be replaced when dependencies are built.
