# Empty dependencies file for bench_fig10_ipc_bottlenecks.
# This may be replaced when dependencies are built.
