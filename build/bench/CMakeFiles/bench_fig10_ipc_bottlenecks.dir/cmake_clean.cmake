file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ipc_bottlenecks.dir/bench_fig10_ipc_bottlenecks.cc.o"
  "CMakeFiles/bench_fig10_ipc_bottlenecks.dir/bench_fig10_ipc_bottlenecks.cc.o.d"
  "bench_fig10_ipc_bottlenecks"
  "bench_fig10_ipc_bottlenecks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ipc_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
