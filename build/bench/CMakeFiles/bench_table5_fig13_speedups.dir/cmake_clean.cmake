file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fig13_speedups.dir/bench_table5_fig13_speedups.cc.o"
  "CMakeFiles/bench_table5_fig13_speedups.dir/bench_table5_fig13_speedups.cc.o.d"
  "bench_table5_fig13_speedups"
  "bench_table5_fig13_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fig13_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
