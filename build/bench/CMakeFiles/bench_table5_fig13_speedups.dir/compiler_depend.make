# Empty compiler generated dependencies file for bench_table5_fig13_speedups.
# This may be replaced when dependencies are built.
