file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_asr_backend.dir/bench_ablation_asr_backend.cc.o"
  "CMakeFiles/bench_ablation_asr_backend.dir/bench_ablation_asr_backend.cc.o.d"
  "bench_ablation_asr_backend"
  "bench_ablation_asr_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_asr_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
