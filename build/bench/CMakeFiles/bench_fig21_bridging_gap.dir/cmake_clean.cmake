file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_bridging_gap.dir/bench_fig21_bridging_gap.cc.o"
  "CMakeFiles/bench_fig21_bridging_gap.dir/bench_fig21_bridging_gap.cc.o.d"
  "bench_fig21_bridging_gap"
  "bench_fig21_bridging_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_bridging_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
