# Empty compiler generated dependencies file for bench_fig21_bridging_gap.
# This may be replaced when dependencies are built.
