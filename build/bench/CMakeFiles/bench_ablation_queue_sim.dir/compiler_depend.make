# Empty compiler generated dependencies file for bench_ablation_queue_sim.
# This may be replaced when dependencies are built.
