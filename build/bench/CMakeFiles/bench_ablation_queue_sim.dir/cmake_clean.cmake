file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_queue_sim.dir/bench_ablation_queue_sim.cc.o"
  "CMakeFiles/bench_ablation_queue_sim.dir/bench_ablation_queue_sim.cc.o.d"
  "bench_ablation_queue_sim"
  "bench_ablation_queue_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_queue_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
