# Empty dependencies file for bench_ablation_accel_model.
# This may be replaced when dependencies are built.
