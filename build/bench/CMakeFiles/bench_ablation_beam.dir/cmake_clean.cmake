file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_beam.dir/bench_ablation_beam.cc.o"
  "CMakeFiles/bench_ablation_beam.dir/bench_ablation_beam.cc.o.d"
  "bench_ablation_beam"
  "bench_ablation_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
