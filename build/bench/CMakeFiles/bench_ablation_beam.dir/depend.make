# Empty dependencies file for bench_ablation_beam.
# This may be replaced when dependencies are built.
