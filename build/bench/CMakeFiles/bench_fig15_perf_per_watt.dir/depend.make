# Empty dependencies file for bench_fig15_perf_per_watt.
# This may be replaced when dependencies are built.
