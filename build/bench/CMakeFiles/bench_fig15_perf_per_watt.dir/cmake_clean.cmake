file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_perf_per_watt.dir/bench_fig15_perf_per_watt.cc.o"
  "CMakeFiles/bench_fig15_perf_per_watt.dir/bench_fig15_perf_per_watt.cc.o.d"
  "bench_fig15_perf_per_watt"
  "bench_fig15_perf_per_watt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_perf_per_watt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
