file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_variability.dir/bench_fig08_variability.cc.o"
  "CMakeFiles/bench_fig08_variability.dir/bench_fig08_variability.cc.o.d"
  "bench_fig08_variability"
  "bench_fig08_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
