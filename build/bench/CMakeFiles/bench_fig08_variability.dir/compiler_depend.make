# Empty compiler generated dependencies file for bench_fig08_variability.
# This may be replaced when dependencies are built.
