file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ann.dir/bench_ablation_ann.cc.o"
  "CMakeFiles/bench_ablation_ann.dir/bench_ablation_ann.cc.o.d"
  "bench_ablation_ann"
  "bench_ablation_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
