# Empty compiler generated dependencies file for bench_ablation_ann.
# This may be replaced when dependencies are built.
