# Empty dependencies file for bench_table8_table9_dc_design.
# This may be replaced when dependencies are built.
