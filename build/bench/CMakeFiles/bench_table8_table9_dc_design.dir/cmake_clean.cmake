file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_table9_dc_design.dir/bench_table8_table9_dc_design.cc.o"
  "CMakeFiles/bench_table8_table9_dc_design.dir/bench_table8_table9_dc_design.cc.o.d"
  "bench_table8_table9_dc_design"
  "bench_table8_table9_dc_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_table9_dc_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
