file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_tco_latency_tradeoff.dir/bench_fig19_tco_latency_tradeoff.cc.o"
  "CMakeFiles/bench_fig19_tco_latency_tradeoff.dir/bench_fig19_tco_latency_tradeoff.cc.o.d"
  "bench_fig19_tco_latency_tradeoff"
  "bench_fig19_tco_latency_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_tco_latency_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
