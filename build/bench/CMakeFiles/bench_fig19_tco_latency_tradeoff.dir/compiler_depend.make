# Empty compiler generated dependencies file for bench_fig19_tco_latency_tradeoff.
# This may be replaced when dependencies are built.
