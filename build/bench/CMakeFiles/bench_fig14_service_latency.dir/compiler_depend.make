# Empty compiler generated dependencies file for bench_fig14_service_latency.
# This may be replaced when dependencies are built.
