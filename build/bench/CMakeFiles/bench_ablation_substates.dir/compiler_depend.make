# Empty compiler generated dependencies file for bench_ablation_substates.
# This may be replaced when dependencies are built.
