file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_substates.dir/bench_ablation_substates.cc.o"
  "CMakeFiles/bench_ablation_substates.dir/bench_ablation_substates.cc.o.d"
  "bench_ablation_substates"
  "bench_ablation_substates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_substates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
