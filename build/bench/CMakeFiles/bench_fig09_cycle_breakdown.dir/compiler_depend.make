# Empty compiler generated dependencies file for bench_fig09_cycle_breakdown.
# This may be replaced when dependencies are built.
