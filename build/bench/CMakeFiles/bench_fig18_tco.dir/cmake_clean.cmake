file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_tco.dir/bench_fig18_tco.cc.o"
  "CMakeFiles/bench_fig18_tco.dir/bench_fig18_tco.cc.o.d"
  "bench_fig18_tco"
  "bench_fig18_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
