# Empty compiler generated dependencies file for bench_fig20_query_level.
# This may be replaced when dependencies are built.
