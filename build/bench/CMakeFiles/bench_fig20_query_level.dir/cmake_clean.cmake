file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_query_level.dir/bench_fig20_query_level.cc.o"
  "CMakeFiles/bench_fig20_query_level.dir/bench_fig20_query_level.cc.o.d"
  "bench_fig20_query_level"
  "bench_fig20_query_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_query_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
