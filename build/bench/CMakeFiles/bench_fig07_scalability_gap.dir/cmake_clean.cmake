file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_scalability_gap.dir/bench_fig07_scalability_gap.cc.o"
  "CMakeFiles/bench_fig07_scalability_gap.dir/bench_fig07_scalability_gap.cc.o.d"
  "bench_fig07_scalability_gap"
  "bench_fig07_scalability_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_scalability_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
