# Empty compiler generated dependencies file for bench_fig07_scalability_gap.
# This may be replaced when dependencies are built.
