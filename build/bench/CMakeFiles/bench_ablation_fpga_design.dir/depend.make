# Empty dependencies file for bench_ablation_fpga_design.
# This may be replaced when dependencies are built.
