/**
 * @file
 * SURF-style feature extraction (FE) and feature description (FD).
 *
 * Follows the structure of Bay et al.'s Speeded-Up Robust Features as the
 * paper's image-matching pipeline does (Figure 5): a fast-Hessian
 * scale-space detector built on integral-image box filters, then an
 * orientation-assigned 64-dimensional Haar-wavelet descriptor per
 * keypoint. The two stages are separate public entry points because the
 * Sirius Suite times them as distinct kernels (FE and FD).
 */

#ifndef SIRIUS_VISION_SURF_H
#define SIRIUS_VISION_SURF_H

#include <array>
#include <vector>

#include "vision/integral_image.h"

namespace sirius::vision {

/** A detected interest point. */
struct Keypoint
{
    float x = 0.0f;
    float y = 0.0f;
    float scale = 0.0f;       ///< SURF scale (filter_size * 1.2 / 9)
    float response = 0.0f;    ///< Hessian determinant at the peak
    bool laplacianPositive = false;
    float orientation = 0.0f; ///< radians, set by the descriptor stage
};

/** 64-dimensional SURF descriptor. */
using Descriptor = std::array<float, 64>;

/** Detector tuning. */
struct SurfConfig
{
    int octaves = 3;
    double hessianThreshold = 5e-4;
    int initStep = 2;          ///< sampling step at octave 0
    bool upright = false;      ///< skip orientation assignment if true
};

/**
 * Feature Extraction: detect fast-Hessian keypoints over the scale space.
 * This is the FE kernel of the Sirius Suite.
 */
std::vector<Keypoint> detectKeypoints(const IntegralImage &integral,
                                      const SurfConfig &config = {});

/**
 * Feature Description: assign orientations and compute 64-d descriptors.
 * This is the FD kernel of the Sirius Suite. Keypoints are updated with
 * their orientation in place.
 */
std::vector<Descriptor> describeKeypoints(const IntegralImage &integral,
                                          std::vector<Keypoint> &keypoints,
                                          const SurfConfig &config = {});

/** Squared Euclidean distance between two descriptors. */
float descriptorDistanceSq(const Descriptor &a, const Descriptor &b);

} // namespace sirius::vision

#endif // SIRIUS_VISION_SURF_H
