/**
 * @file
 * Approximate-nearest-neighbour descriptor matching and the image
 * database.
 *
 * The paper's IMM service matches query descriptors against pre-clustered
 * database descriptors with an ANN search. We implement a k-d tree over
 * the 64-d descriptor space with best-bin-first bounded backtracking (the
 * standard ANN construction) plus an exact brute-force reference used by
 * tests and as a baseline.
 */

#ifndef SIRIUS_VISION_MATCHER_H
#define SIRIUS_VISION_MATCHER_H

#include <cstddef>
#include <vector>

#include "vision/surf.h"

namespace sirius::vision {

/** Result of a nearest-neighbour query. */
struct NnResult
{
    int index = -1;        ///< index into the indexed descriptor set
    float distanceSq = 0.0f;
    int secondIndex = -1;
    float secondDistanceSq = 0.0f;
};

/** k-d tree over descriptors with bounded-backtracking ANN lookups. */
class KdTree
{
  public:
    /** Build over @p descriptors (copied). */
    explicit KdTree(std::vector<Descriptor> descriptors);

    /**
     * Approximate two-nearest-neighbour query.
     * @param max_leaves bound on leaf visits (the "approximate" in ANN);
     *        higher is more exact.
     */
    NnResult nearest2(const Descriptor &query,
                      size_t max_leaves = 32) const;

    /** Exact two-nearest-neighbour scan (reference implementation). */
    NnResult nearest2Exact(const Descriptor &query) const;

    size_t size() const { return descriptors_.size(); }

  private:
    struct Node
    {
        int splitDim = -1;    ///< -1 marks a leaf
        float splitValue = 0.0f;
        int left = -1;
        int right = -1;
        int begin = 0;        ///< leaf: range into order_
        int end = 0;
    };

    std::vector<Descriptor> descriptors_;
    std::vector<int> order_;
    std::vector<Node> nodes_;

    int build(int begin, int end, int depth);
    void searchNode(int node, const Descriptor &query, NnResult &best,
                    size_t &leaves_left) const;
    static void consider(int index, float dist, NnResult &best);
};

/** Ratio-test matching statistics between one query and one database set. */
struct MatchStats
{
    size_t goodMatches = 0;   ///< matches passing the ratio test
    size_t totalQueries = 0;
};

/**
 * Count query descriptors whose ANN match in @p tree passes the Lowe
 * ratio test (nearest < ratio * second-nearest).
 */
MatchStats matchDescriptors(const std::vector<Descriptor> &query,
                            const KdTree &tree, float ratio = 0.85f,
                            size_t max_leaves = 32);

/**
 * Match several query descriptor sets against one tree in a single
 * call. Result i is bitwise-identical to matchDescriptors(*queries[i],
 * tree, ratio, max_leaves) — the point of batching is keeping the
 * tree's nodes and descriptors hot in cache across the whole batch
 * instead of re-faulting them per query.
 */
std::vector<MatchStats> matchDescriptorsBatch(
    const std::vector<const std::vector<Descriptor> *> &queries,
    const KdTree &tree, float ratio = 0.85f, size_t max_leaves = 32);

} // namespace sirius::vision

#endif // SIRIUS_VISION_MATCHER_H
