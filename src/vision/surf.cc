#include "vision/surf.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "common/simd.h"

namespace sirius::vision {

namespace {

constexpr double kPi = 3.141592653589793238462643;

/** One scale-space layer of Hessian responses sampled on a grid. */
struct ResponseLayer
{
    int step;        ///< image pixels between samples
    int filterSize;
    int width;       ///< samples per row
    int height;
    std::vector<float> responses;
    std::vector<uint8_t> laplacians;

    float
    response(int row, int col) const
    {
        if (row < 0 || row >= height || col < 0 || col >= width)
            return 0.0f;
        return responses[static_cast<size_t>(row) * width +
                         static_cast<size_t>(col)];
    }

    bool
    laplacian(int row, int col) const
    {
        return laplacians[static_cast<size_t>(row) * width +
                          static_cast<size_t>(col)] != 0;
    }
};

ResponseLayer
buildLayer(const IntegralImage &integral, int step, int filter_size)
{
    ResponseLayer layer;
    layer.step = step;
    layer.filterSize = filter_size;
    layer.width = integral.width() / step;
    layer.height = integral.height() / step;
    layer.responses.assign(
        static_cast<size_t>(layer.width) * layer.height, 0.0f);
    layer.laplacians.assign(
        static_cast<size_t>(layer.width) * layer.height, 0);

    const int b = (filter_size - 1) / 2;
    const int l = filter_size / 3;
    const double inv = 1.0 / (static_cast<double>(filter_size) *
                              static_cast<double>(filter_size));

    for (int ar = 0; ar < layer.height; ++ar) {
        const int r = ar * step;
        if (r <= b || r >= integral.height() - b)
            continue;
        // Interior samples c = ac * step with b < c < width - b form one
        // contiguous ac run; the dispatched kernel sweeps it with sample
        // columns as lanes. Border samples keep their zero fill, exactly
        // as the per-sample `continue` used to leave them.
        const int ac_lo = b / step + 1;
        const int ac_hi = std::min(layer.width - 1,
                                   (integral.width() - b - 1) / step);
        const int count = ac_hi - ac_lo + 1;
        if (count <= 0)
            continue;
        const size_t idx =
            static_cast<size_t>(ar) * layer.width +
            static_cast<size_t>(ac_lo);
        simd::kernels().hessianRowF64(
            integral.table(), integral.tableStride(), r, ac_lo * step,
            step, count, filter_size, l, inv, &layer.responses[idx],
            &layer.laplacians[idx]);
    }
    return layer;
}

/**
 * True if the middle layer's (row, col) response is a strict maximum over
 * its 3x3x3 neighborhood. All layers share a sampling grid here because we
 * build every interval of an octave at the same step.
 */
bool
isLocalMaximum(const ResponseLayer &bottom, const ResponseLayer &middle,
               const ResponseLayer &top, int row, int col)
{
    const float candidate = middle.response(row, col);
    for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
            if (top.response(row + dr, col + dc) >= candidate)
                return false;
            if (bottom.response(row + dr, col + dc) >= candidate &&
                !(dr == 0 && dc == 0)) {
                return false;
            }
            if (!(dr == 0 && dc == 0) &&
                middle.response(row + dr, col + dc) >= candidate) {
                return false;
            }
        }
    }
    return true;
}

double
gaussianWeight(double x, double y, double sigma)
{
    return std::exp(-(x * x + y * y) / (2.0 * sigma * sigma)) /
        (2.0 * kPi * sigma * sigma);
}

} // namespace

std::vector<Keypoint>
detectKeypoints(const IntegralImage &integral, const SurfConfig &config)
{
    std::vector<Keypoint> keypoints;
    for (int octave = 0; octave < config.octaves; ++octave) {
        const int step = config.initStep << octave;
        const int base = 9 + 6 * ((1 << octave) - 1);
        const int delta = 6 << octave;
        // Four intervals per octave: sizes base, base+delta, ...
        std::vector<ResponseLayer> layers;
        layers.reserve(4);
        for (int i = 0; i < 4; ++i)
            layers.push_back(buildLayer(integral, step,
                                        base + delta * i));

        for (int mid = 1; mid <= 2; ++mid) {
            const auto &bottom = layers[static_cast<size_t>(mid) - 1];
            const auto &middle = layers[static_cast<size_t>(mid)];
            const auto &top = layers[static_cast<size_t>(mid) + 1];
            for (int row = 1; row < middle.height - 1; ++row) {
                for (int col = 1; col < middle.width - 1; ++col) {
                    const float resp = middle.response(row, col);
                    if (resp <= config.hessianThreshold)
                        continue;
                    if (!isLocalMaximum(bottom, middle, top, row, col))
                        continue;
                    Keypoint kp;
                    kp.x = static_cast<float>(col * step);
                    kp.y = static_cast<float>(row * step);
                    kp.scale = static_cast<float>(
                        1.2 * middle.filterSize / 9.0);
                    kp.response = resp;
                    kp.laplacianPositive = middle.laplacian(row, col);
                    keypoints.push_back(kp);
                }
            }
        }
    }
    return keypoints;
}

namespace {

/** Dominant orientation by sliding-window Haar response voting. */
float
assignOrientation(const IntegralImage &integral, const Keypoint &kp)
{
    const int s = std::max(1, static_cast<int>(std::lround(kp.scale)));
    const int r = static_cast<int>(std::lround(kp.y));
    const int c = static_cast<int>(std::lround(kp.x));

    // The 13x13 circular-window weights only depend on the (i, j) grid
    // offsets, so hoist the exp() calls into a one-time table. Entries
    // are gaussianWeight(i, j, 2.5) verbatim.
    static const std::array<double, 169> kOrientationGauss = [] {
        std::array<double, 169> table{};
        for (int i = -6; i <= 6; ++i) {
            for (int j = -6; j <= 6; ++j) {
                table[static_cast<size_t>((i + 6) * 13 + (j + 6))] =
                    gaussianWeight(i, j, 2.5);
            }
        }
        return table;
    }();

    std::vector<double> res_x, res_y, angles;
    for (int i = -6; i <= 6; ++i) {
        for (int j = -6; j <= 6; ++j) {
            if (i * i + j * j >= 36)
                continue;
            const double g = kOrientationGauss[
                static_cast<size_t>((i + 6) * 13 + (j + 6))];
            const double hx = g * integral.haarX(r + j * s, c + i * s,
                                                 4 * s);
            const double hy = g * integral.haarY(r + j * s, c + i * s,
                                                 4 * s);
            if (hx == 0.0 && hy == 0.0)
                continue;
            res_x.push_back(hx);
            res_y.push_back(hy);
            angles.push_back(std::atan2(hy, hx));
        }
    }
    if (angles.empty())
        return 0.0f;

    // pi/3-wide sliding windows; keep the strongest summed vector.
    double best_mag = 0.0, best_ori = 0.0;
    for (double window = 0.0; window < 2.0 * kPi; window += 0.15) {
        const double lo = window;
        const double hi = window + kPi / 3.0;
        double sum_x = 0.0, sum_y = 0.0;
        for (size_t k = 0; k < angles.size(); ++k) {
            double a = angles[k];
            if (a < 0)
                a += 2.0 * kPi;
            const bool inside = (a > lo && a < hi) ||
                (hi > 2.0 * kPi && a < hi - 2.0 * kPi);
            if (inside) {
                sum_x += res_x[k];
                sum_y += res_y[k];
            }
        }
        const double mag = sum_x * sum_x + sum_y * sum_y;
        if (mag > best_mag) {
            best_mag = mag;
            best_ori = std::atan2(sum_y, sum_x);
        }
    }
    return static_cast<float>(best_ori);
}

/** 20x20 grid of descriptor sample weights for one keypoint scale. */
using DescGaussTable = std::array<double, 400>;

/**
 * Weight table for @p scale, memoized in @p cache since keypoint scales
 * come from the small discrete set 1.2 * filterSize / 9. Entries are
 * computed with the descriptor loop's exact expressions — including the
 * (rx * scale) / scale round trip, which is not always bitwise `rx` —
 * so table lookups reproduce the inline gaussianWeight calls exactly.
 */
const DescGaussTable &
descriptorGaussTable(double scale,
                     std::vector<std::pair<double, DescGaussTable>> &cache)
{
    for (const auto &entry : cache) {
        if (entry.first == scale)
            return entry.second;
    }
    cache.emplace_back(scale, DescGaussTable{});
    DescGaussTable &table = cache.back().second;
    for (int iy = 0; iy < 20; ++iy) {
        for (int ix = 0; ix < 20; ++ix) {
            const double rx = (ix - 10 + 0.5) * scale;
            const double ry = (iy - 10 + 0.5) * scale;
            table[static_cast<size_t>(iy * 20 + ix)] =
                gaussianWeight(rx / scale, ry / scale, 3.3);
        }
    }
    return table;
}

/** 64-d descriptor: 4x4 subregions of (sum dx, sum dy, sum|dx|, sum|dy|). */
Descriptor
computeDescriptor(const IntegralImage &integral, const Keypoint &kp,
                  std::vector<std::pair<double, DescGaussTable>> &cache)
{
    Descriptor desc{};
    const double scale = std::max(1.0f, kp.scale);
    const DescGaussTable &gauss = descriptorGaussTable(scale, cache);
    const int s = std::max(1, static_cast<int>(std::lround(scale)));
    const double co = std::cos(kp.orientation);
    const double si = std::sin(kp.orientation);

    size_t out = 0;
    for (int sy = 0; sy < 4; ++sy) {
        for (int sx = 0; sx < 4; ++sx) {
            double sum_dx = 0.0, sum_dy = 0.0;
            double sum_adx = 0.0, sum_ady = 0.0;
            for (int v = 0; v < 5; ++v) {
                for (int u = 0; u < 5; ++u) {
                    // Sample position in the rotated keypoint frame.
                    const double rx = (sx * 5 + u - 10 + 0.5) * scale;
                    const double ry = (sy * 5 + v - 10 + 0.5) * scale;
                    const int px = static_cast<int>(std::lround(
                        kp.x + rx * co - ry * si));
                    const int py = static_cast<int>(std::lround(
                        kp.y + rx * si + ry * co));
                    const double gx = integral.haarX(py, px, 2 * s);
                    const double gy = integral.haarY(py, px, 2 * s);
                    // Rotate the gradient into the keypoint frame.
                    const double dx = gx * co + gy * si;
                    const double dy = -gx * si + gy * co;
                    const double g = gauss[static_cast<size_t>(
                        (sy * 5 + v) * 20 + (sx * 5 + u))];
                    sum_dx += g * dx;
                    sum_dy += g * dy;
                    sum_adx += g * std::fabs(dx);
                    sum_ady += g * std::fabs(dy);
                }
            }
            desc[out++] = static_cast<float>(sum_dx);
            desc[out++] = static_cast<float>(sum_dy);
            desc[out++] = static_cast<float>(sum_adx);
            desc[out++] = static_cast<float>(sum_ady);
        }
    }

    // L2 normalization for illumination invariance.
    double norm = 0.0;
    for (float v : desc)
        norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
        simd::kernels().descNormalizeF32(desc.data(), desc.size(),
                                         norm);
    }
    return desc;
}

} // namespace

std::vector<Descriptor>
describeKeypoints(const IntegralImage &integral,
                  std::vector<Keypoint> &keypoints,
                  const SurfConfig &config)
{
    std::vector<Descriptor> descriptors;
    descriptors.reserve(keypoints.size());
    std::vector<std::pair<double, DescGaussTable>> gauss_cache;
    for (auto &kp : keypoints) {
        kp.orientation = config.upright
            ? 0.0f : assignOrientation(integral, kp);
        descriptors.push_back(
            computeDescriptor(integral, kp, gauss_cache));
    }
    return descriptors;
}

float
descriptorDistanceSq(const Descriptor &a, const Descriptor &b)
{
    float acc = 0.0f;
    for (size_t i = 0; i < a.size(); ++i) {
        const float d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace sirius::vision
