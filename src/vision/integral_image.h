/**
 * @file
 * Summed-area table enabling O(1) box sums, the workhorse of SURF's box
 * filters and Haar wavelets.
 */

#ifndef SIRIUS_VISION_INTEGRAL_IMAGE_H
#define SIRIUS_VISION_INTEGRAL_IMAGE_H

#include <cstdint>
#include <vector>

#include "vision/image.h"

namespace sirius::vision {

/** Summed-area table over a grayscale image (values scaled to [0,1]). */
class IntegralImage
{
  public:
    /** Build from @p image. */
    explicit IntegralImage(const Image &image);

    int width() const { return width_; }
    int height() const { return height_; }

    /**
     * Sum of the pixel rectangle with top-left (col, row) spanning
     * @p cols x @p rows. Out-of-range regions clamp to the image,
     * matching OpenSURF semantics.
     */
    double boxSum(int row, int col, int rows, int cols) const;

    /** Haar wavelet response in x at (row, col) with side @p size. */
    double haarX(int row, int col, int size) const;

    /** Haar wavelet response in y at (row, col) with side @p size. */
    double haarY(int row, int col, int size) const;

    /** Raw summed-area table, (width+1) x (height+1) row-major — the
     *  hot-path view the SIMD Hessian kernel sweeps. Entries are NOT
     *  clamped; callers must stay within rows 0..height and cols
     *  0..width (see KernelTable::hessianRowF64). */
    const double *table() const { return table_.data(); }

    /** Row stride of table(), i.e. width() + 1. */
    size_t tableStride() const
    {
        return static_cast<size_t>(width_) + 1;
    }

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<double> table_; ///< (width+1) x (height+1) cumulative sums

    double tableAt(int row, int col) const;
};

} // namespace sirius::vision

#endif // SIRIUS_VISION_INTEGRAL_IMAGE_H
