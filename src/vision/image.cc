#include "vision/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.h"

namespace sirius::vision {

Image::Image(int width, int height, uint8_t fill)
    : width_(width), height_(height),
      data_(static_cast<size_t>(width) * static_cast<size_t>(height), fill)
{
}

uint8_t
Image::atClamped(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

void
Image::fillRect(int x, int y, int w, int h, uint8_t value)
{
    const int x0 = std::max(0, x);
    const int y0 = std::max(0, y);
    const int x1 = std::min(width_, x + w);
    const int y1 = std::min(height_, y + h);
    for (int yy = y0; yy < y1; ++yy) {
        for (int xx = x0; xx < x1; ++xx)
            set(xx, yy, value);
    }
}

void
Image::fillCircle(int cx, int cy, int radius, uint8_t value)
{
    const int x0 = std::max(0, cx - radius);
    const int y0 = std::max(0, cy - radius);
    const int x1 = std::min(width_ - 1, cx + radius);
    const int y1 = std::min(height_ - 1, cy + radius);
    const int r2 = radius * radius;
    for (int yy = y0; yy <= y1; ++yy) {
        for (int xx = x0; xx <= x1; ++xx) {
            const int dx = xx - cx;
            const int dy = yy - cy;
            if (dx * dx + dy * dy <= r2)
                set(xx, yy, value);
        }
    }
}

void
Image::checkerboard(int x, int y, int w, int h, int cell, uint8_t dark,
                    uint8_t light)
{
    if (cell <= 0)
        return;
    const int x0 = std::max(0, x);
    const int y0 = std::max(0, y);
    const int x1 = std::min(width_, x + w);
    const int y1 = std::min(height_, y + h);
    for (int yy = y0; yy < y1; ++yy) {
        for (int xx = x0; xx < x1; ++xx) {
            const bool odd = (((xx - x) / cell) + ((yy - y) / cell)) & 1;
            set(xx, yy, odd ? dark : light);
        }
    }
}

void
Image::addNoise(Rng &rng, int amp)
{
    for (auto &p : data_) {
        const int delta = static_cast<int>(rng.range(-amp, amp));
        p = static_cast<uint8_t>(std::clamp(static_cast<int>(p) + delta,
                                            0, 255));
    }
}

void
Image::scaleBrightness(double gain)
{
    for (auto &p : data_) {
        p = static_cast<uint8_t>(std::clamp(
            static_cast<int>(p * gain + 0.5), 0, 255));
    }
}

Image
Image::translated(int dx, int dy, uint8_t fill) const
{
    Image out(width_, height_, fill);
    for (int y = 0; y < height_; ++y) {
        const int sy = y - dy;
        if (sy < 0 || sy >= height_)
            continue;
        for (int x = 0; x < width_; ++x) {
            const int sx = x - dx;
            if (sx < 0 || sx >= width_)
                continue;
            out.set(x, y, at(sx, sy));
        }
    }
    return out;
}

Image
Image::resized(int new_width, int new_height) const
{
    Image out(new_width, new_height);
    if (width_ <= 0 || height_ <= 0)
        return out;
    for (int y = 0; y < new_height; ++y) {
        const double sy = (y + 0.5) * height_ / new_height - 0.5;
        const int y0 = static_cast<int>(std::floor(sy));
        const double fy = sy - y0;
        for (int x = 0; x < new_width; ++x) {
            const double sx = (x + 0.5) * width_ / new_width - 0.5;
            const int x0 = static_cast<int>(std::floor(sx));
            const double fx = sx - x0;
            const double top = atClamped(x0, y0) * (1.0 - fx) +
                atClamped(x0 + 1, y0) * fx;
            const double bottom = atClamped(x0, y0 + 1) * (1.0 - fx) +
                atClamped(x0 + 1, y0 + 1) * fx;
            const double v = top * (1.0 - fy) + bottom * fy;
            out.set(x, y, static_cast<uint8_t>(
                std::clamp(v + 0.5, 0.0, 255.0)));
        }
    }
    return out;
}

bool
Image::savePgm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P5\n%d %d\n255\n", width_, height_);
    const size_t written = std::fwrite(data_.data(), 1, data_.size(), f);
    std::fclose(f);
    return written == data_.size();
}

Image
Image::loadPgm(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    char magic[3] = {};
    int w = 0, h = 0, maxval = 0;
    if (std::fscanf(f, "%2s %d %d %d", magic, &w, &h, &maxval) != 4 ||
        std::string(magic) != "P5" || maxval != 255 || w <= 0 || h <= 0) {
        std::fclose(f);
        return {};
    }
    std::fgetc(f); // single whitespace after header
    Image img(w, h);
    std::vector<uint8_t> buf(static_cast<size_t>(w) *
                             static_cast<size_t>(h));
    const size_t read = std::fread(buf.data(), 1, buf.size(), f);
    std::fclose(f);
    if (read != buf.size())
        return {};
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            img.set(x, y, buf[static_cast<size_t>(y) * w + x]);
    }
    return img;
}

} // namespace sirius::vision
