/**
 * @file
 * Procedural landmark image generator.
 *
 * Substitution note (see DESIGN.md): stands in for the Stanford Mobile
 * Visual Search database the paper matches against. Every landmark id maps
 * to a deterministic, richly textured image; query variants apply small
 * translations, brightness changes and noise so matching is non-trivial
 * but ground truth stays known.
 */

#ifndef SIRIUS_VISION_LANDMARKS_H
#define SIRIUS_VISION_LANDMARKS_H

#include <cstdint>

#include "vision/image.h"

namespace sirius::vision {

/** Parameters describing a perturbed query view of a landmark. */
struct QueryPerturbation
{
    int translateX = 3;
    int translateY = -2;
    double brightnessGain = 1.08;
    int noiseAmplitude = 6;
    uint64_t noiseSeed = 1234;
};

/** Deterministic database image for landmark @p id. */
Image generateLandmark(int id, int width = 256, int height = 256);

/** A perturbed camera view of landmark @p id. */
Image generateQueryView(int id, const QueryPerturbation &perturb = {},
                        int width = 256, int height = 256);

} // namespace sirius::vision

#endif // SIRIUS_VISION_LANDMARKS_H
