/**
 * @file
 * 8-bit grayscale image container with PGM I/O and drawing helpers.
 */

#ifndef SIRIUS_VISION_IMAGE_H
#define SIRIUS_VISION_IMAGE_H

#include <cstdint>
#include <string>
#include <vector>

namespace sirius {
class Rng;
}

namespace sirius::vision {

/** Row-major 8-bit grayscale image. */
class Image
{
  public:
    Image() = default;

    /** width x height image filled with @p fill. */
    Image(int width, int height, uint8_t fill = 0);

    int width() const { return width_; }
    int height() const { return height_; }

    /** Pixel accessors; coordinates must be in range. */
    uint8_t at(int x, int y) const
    {
        return data_[static_cast<size_t>(y) * width_ +
                     static_cast<size_t>(x)];
    }

    void
    set(int x, int y, uint8_t v)
    {
        data_[static_cast<size_t>(y) * width_ +
              static_cast<size_t>(x)] = v;
    }

    /** Clamped read: out-of-range coordinates clamp to the border. */
    uint8_t atClamped(int x, int y) const;

    const std::vector<uint8_t> &pixels() const { return data_; }

    /** Fill an axis-aligned rectangle (clipped to the image). */
    void fillRect(int x, int y, int w, int h, uint8_t value);

    /** Fill a disc (clipped). */
    void fillCircle(int cx, int cy, int radius, uint8_t value);

    /** Overlay a checkerboard patch of @p cell-sized squares. */
    void checkerboard(int x, int y, int w, int h, int cell,
                      uint8_t dark, uint8_t light);

    /** Add uniform noise in [-amp, amp] to every pixel (clamped). */
    void addNoise(Rng &rng, int amp);

    /** Multiply every pixel by @p gain (clamped to [0, 255]). */
    void scaleBrightness(double gain);

    /** Translate content by (dx, dy); vacated pixels take @p fill. */
    Image translated(int dx, int dy, uint8_t fill = 0) const;

    /** Bilinear resize to new_width x new_height (both >= 1). */
    Image resized(int new_width, int new_height) const;

    /** Serialize as binary PGM (P5). */
    bool savePgm(const std::string &path) const;

    /** Load a binary PGM (P5); returns an empty image on failure. */
    static Image loadPgm(const std::string &path);

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<uint8_t> data_;
};

} // namespace sirius::vision

#endif // SIRIUS_VISION_IMAGE_H
