#include "vision/matcher.h"

#include <algorithm>
#include <limits>

#include "common/simd.h"

namespace sirius::vision {

namespace {
constexpr int kLeafSize = 8;
} // namespace

KdTree::KdTree(std::vector<Descriptor> descriptors)
    : descriptors_(std::move(descriptors))
{
    order_.resize(descriptors_.size());
    for (size_t i = 0; i < order_.size(); ++i)
        order_[i] = static_cast<int>(i);
    if (!descriptors_.empty())
        build(0, static_cast<int>(descriptors_.size()), 0);
}

int
KdTree::build(int begin, int end, int depth)
{
    const int node_idx = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{});

    if (end - begin <= kLeafSize) {
        nodes_[static_cast<size_t>(node_idx)].begin = begin;
        nodes_[static_cast<size_t>(node_idx)].end = end;
        return node_idx;
    }

    // Pick the dimension with maximum spread over this range.
    int best_dim = 0;
    float best_spread = -1.0f;
    for (int d = 0; d < 64; ++d) {
        float lo = std::numeric_limits<float>::max();
        float hi = std::numeric_limits<float>::lowest();
        for (int i = begin; i < end; ++i) {
            const float v =
                descriptors_[static_cast<size_t>(order_[
                    static_cast<size_t>(i)])][static_cast<size_t>(d)];
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        if (hi - lo > best_spread) {
            best_spread = hi - lo;
            best_dim = d;
        }
    }

    const int mid = (begin + end) / 2;
    std::nth_element(
        order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
        [this, best_dim](int a, int b) {
            return descriptors_[static_cast<size_t>(a)]
                       [static_cast<size_t>(best_dim)] <
                   descriptors_[static_cast<size_t>(b)]
                       [static_cast<size_t>(best_dim)];
        });

    const float split = descriptors_[static_cast<size_t>(
        order_[static_cast<size_t>(mid)])][static_cast<size_t>(best_dim)];

    const int left = build(begin, mid, depth + 1);
    const int right = build(mid, end, depth + 1);
    Node &node = nodes_[static_cast<size_t>(node_idx)];
    node.splitDim = best_dim;
    node.splitValue = split;
    node.left = left;
    node.right = right;
    return node_idx;
}

void
KdTree::consider(int index, float dist, NnResult &best)
{
    if (best.index < 0 || dist < best.distanceSq) {
        best.secondIndex = best.index;
        best.secondDistanceSq = best.distanceSq;
        best.index = index;
        best.distanceSq = dist;
    } else if (best.secondIndex < 0 || dist < best.secondDistanceSq) {
        best.secondIndex = index;
        best.secondDistanceSq = dist;
    }
}

void
KdTree::searchNode(int node_idx, const Descriptor &query, NnResult &best,
                   size_t &leaves_left) const
{
    if (leaves_left == 0)
        return;
    const Node &node = nodes_[static_cast<size_t>(node_idx)];
    if (node.splitDim < 0) {
        --leaves_left;
        // One SIMD sweep distances the whole leaf (candidate lanes);
        // consider() then folds them in the original i-ascending order
        // so best/second tie-breaking is untouched.
        const int count = node.end - node.begin;
        const float *cands[kLeafSize];
        float dists[kLeafSize];
        for (int i = 0; i < count; ++i) {
            cands[i] = descriptors_[static_cast<size_t>(
                order_[static_cast<size_t>(node.begin + i)])].data();
        }
        simd::kernels().descDistF32(query.data(), cands,
                                    static_cast<size_t>(count),
                                    query.size(), dists);
        for (int i = 0; i < count; ++i) {
            consider(order_[static_cast<size_t>(node.begin + i)],
                     dists[i], best);
        }
        return;
    }
    const float diff =
        query[static_cast<size_t>(node.splitDim)] - node.splitValue;
    const int near = diff < 0.0f ? node.left : node.right;
    const int far = diff < 0.0f ? node.right : node.left;
    searchNode(near, query, best, leaves_left);
    // Bounded backtracking: explore the far side only while the splitting
    // plane could still hide a better (second-)nearest neighbour.
    if (leaves_left > 0 &&
        (best.secondIndex < 0 || diff * diff < best.secondDistanceSq)) {
        searchNode(far, query, best, leaves_left);
    }
}

NnResult
KdTree::nearest2(const Descriptor &query, size_t max_leaves) const
{
    NnResult best;
    if (descriptors_.empty())
        return best;
    size_t leaves_left = std::max<size_t>(1, max_leaves);
    searchNode(0, query, best, leaves_left);
    return best;
}

NnResult
KdTree::nearest2Exact(const Descriptor &query) const
{
    NnResult best;
    constexpr size_t kBlock = 64;
    const float *cands[kBlock];
    float dists[kBlock];
    for (size_t base = 0; base < descriptors_.size(); base += kBlock) {
        const size_t count =
            std::min(kBlock, descriptors_.size() - base);
        for (size_t i = 0; i < count; ++i)
            cands[i] = descriptors_[base + i].data();
        simd::kernels().descDistF32(query.data(), cands, count,
                                    query.size(), dists);
        for (size_t i = 0; i < count; ++i)
            consider(static_cast<int>(base + i), dists[i], best);
    }
    return best;
}

MatchStats
matchDescriptors(const std::vector<Descriptor> &query, const KdTree &tree,
                 float ratio, size_t max_leaves)
{
    MatchStats stats;
    stats.totalQueries = query.size();
    if (tree.size() < 2)
        return stats;
    const float ratio_sq = ratio * ratio;
    for (const auto &desc : query) {
        const auto nn = tree.nearest2(desc, max_leaves);
        if (nn.index >= 0 && nn.secondIndex >= 0 &&
            nn.distanceSq < ratio_sq * nn.secondDistanceSq) {
            ++stats.goodMatches;
        }
    }
    return stats;
}

std::vector<MatchStats>
matchDescriptorsBatch(
    const std::vector<const std::vector<Descriptor> *> &queries,
    const KdTree &tree, float ratio, size_t max_leaves)
{
    std::vector<MatchStats> stats;
    stats.reserve(queries.size());
    for (const std::vector<Descriptor> *query : queries)
        stats.push_back(matchDescriptors(*query, tree, ratio, max_leaves));
    return stats;
}

} // namespace sirius::vision
