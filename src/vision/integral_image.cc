#include "vision/integral_image.h"

#include <algorithm>

namespace sirius::vision {

IntegralImage::IntegralImage(const Image &image)
    : width_(image.width()), height_(image.height()),
      table_(static_cast<size_t>(width_ + 1) *
             static_cast<size_t>(height_ + 1), 0.0)
{
    const auto stride = static_cast<size_t>(width_ + 1);
    for (int y = 0; y < height_; ++y) {
        double row_sum = 0.0;
        for (int x = 0; x < width_; ++x) {
            row_sum += image.at(x, y) / 255.0;
            table_[static_cast<size_t>(y + 1) * stride +
                   static_cast<size_t>(x + 1)] =
                table_[static_cast<size_t>(y) * stride +
                       static_cast<size_t>(x + 1)] + row_sum;
        }
    }
}

double
IntegralImage::tableAt(int row, int col) const
{
    row = std::clamp(row, 0, height_);
    col = std::clamp(col, 0, width_);
    return table_[static_cast<size_t>(row) *
                  static_cast<size_t>(width_ + 1) +
                  static_cast<size_t>(col)];
}

double
IntegralImage::boxSum(int row, int col, int rows, int cols) const
{
    const double a = tableAt(row, col);
    const double b = tableAt(row, col + cols);
    const double c = tableAt(row + rows, col);
    const double d = tableAt(row + rows, col + cols);
    return std::max(0.0, d - b - c + a);
}

double
IntegralImage::haarX(int row, int col, int size) const
{
    // Right half minus left half.
    return boxSum(row - size / 2, col, size, size / 2) -
        boxSum(row - size / 2, col - size / 2, size, size / 2);
}

double
IntegralImage::haarY(int row, int col, int size) const
{
    // Bottom half minus top half.
    return boxSum(row, col - size / 2, size / 2, size) -
        boxSum(row - size / 2, col - size / 2, size / 2, size);
}

} // namespace sirius::vision
