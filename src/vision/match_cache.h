/**
 * @file
 * Image-match caching: the vision layer's slice of the cross-layer
 * result cache (docs/CACHING.md).
 *
 * IMM's cost is SURF extraction plus the ANN database scan, and both
 * are pure functions of the input image — the landmark database is
 * immutable after build. Repeated images (the same landmark photographed
 * or re-sent) therefore reuse the full match outcome, keyed by a
 * 128-bit hash of the raw pixel content. A hit bypasses the entire
 * FE -> FD -> ANN pipeline including the batch queue; a miss computes
 * as before (batched or serial) and stores the clean outcome.
 *
 * Like the batching hooks, this header keeps vision/ free of any
 * dependency on core/: the cache type lives in common/ and the server
 * (core::PipelineCaches) owns the instance.
 */

#ifndef SIRIUS_VISION_MATCH_CACHE_H
#define SIRIUS_VISION_MATCH_CACHE_H

#include "common/cache.h"
#include "vision/image.h"

namespace sirius::vision {

/** The reusable part of an ImmResult (timings are per-execution). */
struct CachedMatch
{
    int bestId = -1;
    size_t bestMatches = 0;
    size_t queryKeypoints = 0;
};

/** Image-content key -> match outcome. */
using MatchCache = ShardedLruCache<CacheKey128, CachedMatch>;

/**
 * Content key of one query image: exact pixel bytes plus dimensions
 * (two images with equal pixel streams but different shapes must not
 * collide).
 */
inline CacheKey128
imageCacheKey(const Image &image)
{
    const auto &pixels = image.pixels();
    return mixKey(hashBytes128(pixels.data(), pixels.size()),
                  (static_cast<uint64_t>(
                       static_cast<uint32_t>(image.width()))
                   << 32) |
                      static_cast<uint32_t>(image.height()));
}

/** Declared byte cost of one cached match outcome. */
inline size_t
matchCacheBytes()
{
    return sizeof(CachedMatch) + 64;
}

} // namespace sirius::vision

#endif // SIRIUS_VISION_MATCH_CACHE_H
