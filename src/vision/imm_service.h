/**
 * @file
 * The Image Matching (IMM) service: Figure 5's pipeline end to end.
 *
 * An input image flows through SURF feature extraction, feature
 * description, and ANN matching against every database image; the database
 * entry with the most ratio-test matches wins.
 */

#ifndef SIRIUS_VISION_IMM_SERVICE_H
#define SIRIUS_VISION_IMM_SERVICE_H

#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "vision/landmarks.h"
#include "vision/match_cache.h"
#include "vision/matcher.h"
#include "vision/surf.h"

namespace sirius::vision {

/** Per-stage wall time of one match, in seconds. */
struct ImmTimings
{
    double featureExtraction = 0.0; ///< FE kernel
    double featureDescription = 0.0; ///< FD kernel
    double matching = 0.0;          ///< ANN database search

    double total() const
    {
        return featureExtraction + featureDescription + matching;
    }
};

/** Result of matching one image against the database. */
struct ImmResult
{
    int bestId = -1;             ///< database image id, -1 if no match
    size_t bestMatches = 0;      ///< ratio-test matches of the winner
    size_t queryKeypoints = 0;
    /**
     * True when the deadline expired mid-match: bestId is the winner
     * over the database entries searched before the budget ran out
     * (possibly -1 if none were reached).
     */
    bool cutShort = false;
    ImmTimings timings;
};

/** Outcome of one item of a batched database match. */
struct DatabaseMatchOutcome
{
    int bestId = -1;
    size_t bestMatches = 0;
    bool cutShort = false;
};

/**
 * Cross-query batching hook for the ANN database scan.
 *
 * ImmService::match hands its query descriptors to a batcher (when one
 * is supplied) instead of scanning the database itself; the batcher —
 * core::BatchScheduler in the server — groups concurrent queries and
 * runs one entry-outer scan for the whole batch. The split keeps
 * vision/ free of any dependency on core/.
 */
class DescriptorMatchBatcher
{
  public:
    /** What the batcher hands back to one waiting query. */
    struct Outcome
    {
        DatabaseMatchOutcome match;
        size_t batchSize = 0;            ///< items in the executed batch
        const char *flushReason = "none"; ///< size|timeout|deadline|shutdown
    };

    virtual ~DescriptorMatchBatcher() = default;

    /**
     * Enqueue @p descriptors and block until the batch containing them
     * executes. @p descriptors must stay alive until this returns.
     */
    virtual Outcome
    matchAgainstDatabase(const std::vector<Descriptor> &descriptors,
                         const Deadline &deadline) = 0;
};

/** Image-matching service over a landmark database. */
class ImmService
{
  public:
    /**
     * Build a database of @p num_landmarks procedurally generated
     * landmark images with pre-extracted descriptors (mirroring the
     * paper's pre-clustered descriptor database).
     */
    static ImmService build(int num_landmarks, SurfConfig config = {});

    /**
     * Match @p image against the database. A bounded @p deadline cuts
     * the search short cooperatively: the budget is checked between
     * extraction, description and each database entry, and on expiry
     * the best match found so far is returned (`cutShort`).
     *
     * When @p batcher is non-null the database scan is delegated to it
     * (cross-query batching); SURF detection/description stay local
     * because they are per-image. Results are bitwise-identical either
     * way.
     *
     * When @p cache is non-null and enabled, the match outcome is
     * looked up by a hash of the exact pixel content first: a hit skips
     * the whole FE -> FD -> ANN pipeline (including the batch queue)
     * and returns the previously computed outcome with zero timings; a
     * miss computes as before and stores the clean (non-cut-short)
     * outcome. The database is immutable after build, so cached
     * outcomes never go stale.
     */
    ImmResult match(const Image &image, const Deadline &deadline = {},
                    DescriptorMatchBatcher *batcher = nullptr,
                    MatchCache *cache = nullptr) const;

    /**
     * Scan the database once for a batch of descriptor sets. Item i is
     * identical to what the serial loop in match() computes for
     * deadlines[i]: entries are visited in database order, the budget
     * is checked before each entry, and the best-so-far stands on
     * expiry (cutShort). Batching flips the loop nest entry-outer so
     * each k-d tree stays cache-hot across the whole batch.
     */
    std::vector<DatabaseMatchOutcome> matchDatabaseBatch(
        const std::vector<const std::vector<Descriptor> *> &queries,
        const std::vector<Deadline> &deadlines) const;

    /** Database size. */
    size_t databaseSize() const { return database_.size(); }

    /** Descriptors stored for database entry @p id (for benchmarks). */
    const std::vector<Descriptor> &descriptorsOf(int id) const;

    const SurfConfig &config() const { return config_; }

  private:
    struct Entry
    {
        int id;
        std::unique_ptr<KdTree> tree;
        std::vector<Descriptor> descriptors;
    };

    SurfConfig config_;
    std::vector<Entry> database_;
};

} // namespace sirius::vision

#endif // SIRIUS_VISION_IMM_SERVICE_H
