#include "vision/imm_service.h"

#include "common/logging.h"
#include "common/timer.h"
#include "common/trace.h"

namespace sirius::vision {

ImmService
ImmService::build(int num_landmarks, SurfConfig config)
{
    ImmService service;
    service.config_ = config;
    service.database_.reserve(static_cast<size_t>(num_landmarks));
    for (int id = 0; id < num_landmarks; ++id) {
        const Image img = generateLandmark(id);
        const IntegralImage integral(img);
        auto keypoints = detectKeypoints(integral, config);
        auto descriptors = describeKeypoints(integral, keypoints, config);
        Entry entry;
        entry.id = id;
        entry.descriptors = descriptors;
        entry.tree = std::make_unique<KdTree>(std::move(descriptors));
        service.database_.push_back(std::move(entry));
    }
    return service;
}

ImmResult
ImmService::match(const Image &image, const Deadline &deadline,
                  DescriptorMatchBatcher *batcher,
                  MatchCache *cache) const
{
    ImmResult result;

    const bool caching = cache != nullptr && cache->enabled();
    CacheKey128 cache_key{};
    if (caching) {
        Span span("imm_cache_lookup", SpanKind::Kernel);
        cache_key = imageCacheKey(image);
        CachedMatch cached;
        if (cache->get(cache_key, cached, deadline)) {
            span.attr("outcome", "hit");
            result.bestId = cached.bestId;
            result.bestMatches = cached.bestMatches;
            result.queryKeypoints = cached.queryKeypoints;
            return result;
        }
        span.attr("outcome", "miss");
    }

    std::vector<Keypoint> keypoints;
    std::unique_ptr<IntegralImage> integral;
    {
        Span span("surf_detect", SpanKind::Kernel);
        ScopedTimer timer(result.timings.featureExtraction);
        integral = std::make_unique<IntegralImage>(image);
        keypoints = detectKeypoints(*integral, config_);
    }
    result.queryKeypoints = keypoints.size();
    if (deadline.expired()) {
        result.cutShort = true;
        return result;
    }

    std::vector<Descriptor> descriptors;
    {
        Span span("surf_describe", SpanKind::Kernel);
        ScopedTimer timer(result.timings.featureDescription);
        descriptors = describeKeypoints(*integral, keypoints, config_);
    }
    if (deadline.expired()) {
        result.cutShort = true;
        return result;
    }

    {
        Span span("ann_matching", SpanKind::Kernel);
        ScopedTimer timer(result.timings.matching);
        if (batcher != nullptr) {
            const auto outcome =
                batcher->matchAgainstDatabase(descriptors, deadline);
            span.attr("batch_size", std::to_string(outcome.batchSize));
            span.attr("flush_reason", outcome.flushReason);
            result.bestId = outcome.match.bestId;
            result.bestMatches = outcome.match.bestMatches;
            result.cutShort = outcome.match.cutShort;
        } else {
            for (const auto &entry : database_) {
                // The database scan is the open-ended part of IMM, so
                // the budget is checked per entry; the best match over
                // the entries reached so far still stands.
                if (deadline.bounded() && deadline.expired()) {
                    result.cutShort = true;
                    break;
                }
                const auto stats =
                    matchDescriptors(descriptors, *entry.tree);
                if (stats.goodMatches > result.bestMatches ||
                    result.bestId < 0) {
                    result.bestMatches = stats.goodMatches;
                    result.bestId = entry.id;
                }
            }
        }
    }
    // Only complete outcomes are cached: a cut-short scan saw part of
    // the database, and serving it from cache later would freeze that
    // partial answer for inputs whose budget would have allowed more.
    if (caching && !result.cutShort) {
        cache->put(cache_key,
                   CachedMatch{result.bestId, result.bestMatches,
                               result.queryKeypoints},
                   matchCacheBytes());
    }
    return result;
}

std::vector<DatabaseMatchOutcome>
ImmService::matchDatabaseBatch(
    const std::vector<const std::vector<Descriptor> *> &queries,
    const std::vector<Deadline> &deadlines) const
{
    if (queries.size() != deadlines.size())
        panic("matchDatabaseBatch: queries/deadlines size mismatch");
    std::vector<DatabaseMatchOutcome> out(queries.size());
    std::vector<char> done(queries.size(), 0);
    size_t remaining = queries.size();
    // Entry-outer: each k-d tree is walked by every live query while
    // its nodes are hot, instead of every query re-faulting the whole
    // database. Per item the visit order, deadline checks, and
    // best-match update are exactly the serial loop's.
    for (const auto &entry : database_) {
        if (remaining == 0)
            break;
        for (size_t i = 0; i < queries.size(); ++i) {
            if (done[i])
                continue;
            if (deadlines[i].bounded() && deadlines[i].expired()) {
                out[i].cutShort = true;
                done[i] = 1;
                --remaining;
                continue;
            }
            const auto stats = matchDescriptors(*queries[i], *entry.tree);
            if (stats.goodMatches > out[i].bestMatches ||
                out[i].bestId < 0) {
                out[i].bestMatches = stats.goodMatches;
                out[i].bestId = entry.id;
            }
        }
    }
    return out;
}

const std::vector<Descriptor> &
ImmService::descriptorsOf(int id) const
{
    for (const auto &entry : database_) {
        if (entry.id == id)
            return entry.descriptors;
    }
    panic("ImmService::descriptorsOf: unknown database id");
}

} // namespace sirius::vision
