#include "vision/landmarks.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace sirius::vision {

Image
generateLandmark(int id, int width, int height)
{
    Rng rng(0xfacade + static_cast<uint64_t>(id) * 7919);
    Image img(width, height);

    // Smooth background gradient unique to the landmark.
    const double gx = rng.uniform(-0.3, 0.3);
    const double gy = rng.uniform(-0.3, 0.3);
    const double base = rng.uniform(90.0, 150.0);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const double v = base + gx * x + gy * y;
            img.set(x, y, static_cast<uint8_t>(
                std::clamp(v, 0.0, 255.0)));
        }
    }

    // Structural elements: rectangles, discs and checkerboard facades.
    const int num_shapes = 14 + static_cast<int>(rng.below(8));
    for (int s = 0; s < num_shapes; ++s) {
        const int x = static_cast<int>(rng.below(
            static_cast<uint64_t>(width)));
        const int y = static_cast<int>(rng.below(
            static_cast<uint64_t>(height)));
        const int w = 12 + static_cast<int>(rng.below(50));
        const int h = 12 + static_cast<int>(rng.below(50));
        const auto shade = static_cast<uint8_t>(rng.range(20, 235));
        switch (rng.below(3)) {
          case 0:
            img.fillRect(x, y, w, h, shade);
            break;
          case 1:
            img.fillCircle(x, y, w / 2, shade);
            break;
          default:
            img.checkerboard(x, y, w, h, 4 + static_cast<int>(
                rng.below(6)), shade,
                static_cast<uint8_t>(255 - shade));
            break;
        }
    }

    // Light texture so flat regions still carry gradient energy.
    img.addNoise(rng, 3);
    return img;
}

Image
generateQueryView(int id, const QueryPerturbation &perturb, int width,
                  int height)
{
    Image img = generateLandmark(id, width, height);
    img = img.translated(perturb.translateX, perturb.translateY, 128);
    img.scaleBrightness(perturb.brightnessGain);
    Rng rng(perturb.noiseSeed);
    img.addNoise(rng, perturb.noiseAmplitude);
    return img;
}

} // namespace sirius::vision
