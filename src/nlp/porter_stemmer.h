/**
 * @file
 * The Porter (1980) suffix-stripping stemmer.
 *
 * This is a from-scratch C++ port of the classic algorithm, the same one
 * OpenEphyra uses for query and document normalization. The implementation
 * follows the structure of Porter's reference code: a mutable word buffer,
 * the measure function m(), and the five rule steps.
 */

#ifndef SIRIUS_NLP_PORTER_STEMMER_H
#define SIRIUS_NLP_PORTER_STEMMER_H

#include <string>
#include <vector>

namespace sirius::nlp {

/**
 * Stateless-per-call Porter stemmer.
 *
 * A single instance may be reused across words; it is NOT thread-safe,
 * so concurrent kernels create one per thread (as the Suite does).
 */
class PorterStemmer
{
  public:
    /**
     * Stem one word. Input should be lower-case ASCII letters; any
     * word shorter than 3 characters is returned unchanged, per Porter.
     */
    std::string stem(const std::string &word);

    /** Stem every word in place. */
    void stemAll(std::vector<std::string> &words);

  private:
    // The word buffer being edited and the index of its last character.
    std::string b_;
    int k_ = 0;
    int j_ = 0;

    bool isConsonant(int i) const;
    int measure() const;
    bool vowelInStem() const;
    bool doubleConsonant(int i) const;
    bool cvc(int i) const;
    bool ends(const char *s);
    void setTo(const char *s);
    void replaceIf(const char *s);

    void step1ab();
    void step1c();
    void step2();
    void step3();
    void step4();
    void step5();
};

} // namespace sirius::nlp

#endif // SIRIUS_NLP_PORTER_STEMMER_H
