#include "nlp/tokenizer.h"

#include <cctype>

namespace sirius::nlp {

namespace {

bool
isWordChar(char c)
{
    const auto u = static_cast<unsigned char>(c);
    return std::isalnum(u) || c == '\'';
}

} // namespace

std::vector<std::string>
tokenize(const std::string &text, bool lower)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : text) {
        if (isWordChar(c)) {
            current.push_back(lower
                ? static_cast<char>(std::tolower(
                      static_cast<unsigned char>(c)))
                : c);
        } else if (!current.empty()) {
            tokens.push_back(current);
            current.clear();
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

std::vector<std::string>
tokenizeKeepPunct(const std::string &text, bool lower)
{
    std::vector<std::string> tokens;
    std::string current;
    auto flush = [&] {
        if (!current.empty()) {
            tokens.push_back(current);
            current.clear();
        }
    };
    for (char c : text) {
        if (isWordChar(c)) {
            current.push_back(lower
                ? static_cast<char>(std::tolower(
                      static_cast<unsigned char>(c)))
                : c);
        } else {
            flush();
            if (c == '.' || c == '?' || c == '!' || c == ',')
                tokens.push_back(std::string(1, c));
        }
    }
    flush();
    return tokens;
}

} // namespace sirius::nlp
