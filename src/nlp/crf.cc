#include "nlp/crf.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/simd.h"

namespace sirius::nlp {

const char *
tagName(PosTag tag)
{
    switch (tag) {
      case PosTag::Noun: return "NOUN";
      case PosTag::Verb: return "VERB";
      case PosTag::Adj: return "ADJ";
      case PosTag::Adv: return "ADV";
      case PosTag::Pron: return "PRON";
      case PosTag::Det: return "DET";
      case PosTag::Adp: return "ADP";
      case PosTag::Num: return "NUM";
      case PosTag::Conj: return "CONJ";
      case PosTag::Prt: return "PRT";
      case PosTag::Punct: return "PUNCT";
      case PosTag::Other: return "X";
    }
    return "?";
}

CrfTagger::CrfTagger(size_t feature_dim)
    : featureDim_(feature_dim),
      emitW_(feature_dim * kNumTags, 0.0),
      transW_(kNumTags * kNumTags, 0.0),
      initW_(kNumTags, 0.0)
{
    if (feature_dim == 0)
        fatal("CrfTagger: feature_dim must be nonzero");
}

uint32_t
CrfTagger::hashFeature(const std::string &text) const
{
    // FNV-1a, folded into the feature space.
    uint64_t h = 1469598103934665603ULL;
    for (char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return static_cast<uint32_t>(h % featureDim_);
}

void
CrfTagger::extractFeatures(const std::vector<std::string> &words, size_t i,
                           std::vector<uint32_t> &out) const
{
    out.clear();
    const std::string &w = words[i];
    std::string lower;
    lower.reserve(w.size());
    bool has_digit = false, has_upper = false, all_digit = !w.empty();
    for (char c : w) {
        const auto u = static_cast<unsigned char>(c);
        if (std::isdigit(u))
            has_digit = true;
        else
            all_digit = false;
        if (std::isupper(u))
            has_upper = true;
        lower.push_back(static_cast<char>(std::tolower(u)));
    }

    out.push_back(hashFeature("bias"));
    out.push_back(hashFeature("w=" + lower));
    const size_t n = lower.size();
    out.push_back(hashFeature("suf1=" + lower.substr(n - std::min<size_t>(1, n))));
    out.push_back(hashFeature("suf2=" + lower.substr(n - std::min<size_t>(2, n))));
    out.push_back(hashFeature("suf3=" + lower.substr(n - std::min<size_t>(3, n))));
    out.push_back(hashFeature("pre2=" + lower.substr(0, 2)));
    if (has_digit)
        out.push_back(hashFeature("hasdigit"));
    if (all_digit)
        out.push_back(hashFeature("alldigit"));
    if (has_upper)
        out.push_back(hashFeature("hasupper"));
    if (i == 0)
        out.push_back(hashFeature("first"));
    if (i + 1 == words.size())
        out.push_back(hashFeature("last"));
    if (i > 0)
        out.push_back(hashFeature("w-1=" + words[i - 1]));
    if (i + 1 < words.size())
        out.push_back(hashFeature("w+1=" + words[i + 1]));
}

void
CrfTagger::emissionScores(const std::vector<std::string> &words,
                          std::vector<std::vector<double>> &scores) const
{
    scores.assign(words.size(), std::vector<double>(kNumTags, 0.0));
    std::vector<uint32_t> feats;
    for (size_t i = 0; i < words.size(); ++i) {
        extractFeatures(words, i, feats);
        auto &row = scores[i];
        for (uint32_t f : feats) {
            simd::kernels().addRowF64(
                row.data(), &emitW_[static_cast<size_t>(f) * kNumTags],
                kNumTags);
        }
    }
}

double
CrfTagger::pathScore(const std::vector<std::vector<double>> &emit,
                     const std::vector<PosTag> &tags) const
{
    double score = initW_[static_cast<size_t>(tags[0])] +
        emit[0][static_cast<size_t>(tags[0])];
    for (size_t i = 1; i < tags.size(); ++i) {
        score += transW_[static_cast<size_t>(tags[i - 1]) * kNumTags +
                         static_cast<size_t>(tags[i])];
        score += emit[i][static_cast<size_t>(tags[i])];
    }
    return score;
}

void
CrfTagger::forward(const std::vector<std::vector<double>> &emit,
                   std::vector<std::vector<double>> &alpha) const
{
    const size_t n = emit.size();
    alpha.assign(n, std::vector<double>(kNumTags, 0.0));
    for (size_t t = 0; t < kNumTags; ++t)
        alpha[0][t] = initW_[t] + emit[0][t];
    std::vector<double> terms(kNumTags);
    for (size_t i = 1; i < n; ++i) {
        for (size_t t = 0; t < kNumTags; ++t) {
            for (size_t p = 0; p < kNumTags; ++p)
                terms[p] = alpha[i - 1][p] + transW_[p * kNumTags + t];
            alpha[i][t] = logSumExp(terms) + emit[i][t];
        }
    }
}

void
CrfTagger::backward(const std::vector<std::vector<double>> &emit,
                    std::vector<std::vector<double>> &beta) const
{
    const size_t n = emit.size();
    beta.assign(n, std::vector<double>(kNumTags, 0.0));
    std::vector<double> terms(kNumTags);
    for (size_t i = n - 1; i-- > 0; ) {
        for (size_t p = 0; p < kNumTags; ++p) {
            for (size_t t = 0; t < kNumTags; ++t) {
                terms[t] = transW_[p * kNumTags + t] + emit[i + 1][t] +
                    beta[i + 1][t];
            }
            beta[i][p] = logSumExp(terms);
        }
    }
}

double
CrfTagger::logPartitionForward(const std::vector<std::string> &words) const
{
    if (words.empty())
        return 0.0;
    std::vector<std::vector<double>> emit, alpha;
    emissionScores(words, emit);
    forward(emit, alpha);
    return logSumExp(alpha.back());
}

double
CrfTagger::logPartitionBackward(const std::vector<std::string> &words) const
{
    if (words.empty())
        return 0.0;
    std::vector<std::vector<double>> emit, beta;
    emissionScores(words, emit);
    backward(emit, beta);
    std::vector<double> terms(kNumTags);
    for (size_t t = 0; t < kNumTags; ++t)
        terms[t] = initW_[t] + emit[0][t] + beta[0][t];
    return logSumExp(terms);
}

double
CrfTagger::logLikelihood(const TaggedSentence &sentence) const
{
    if (sentence.words.empty())
        return 0.0;
    std::vector<std::vector<double>> emit, alpha;
    emissionScores(sentence.words, emit);
    forward(emit, alpha);
    return pathScore(emit, sentence.tags) - logSumExp(alpha.back());
}

std::vector<PosTag>
CrfTagger::tag(const std::vector<std::string> &words) const
{
    if (words.empty())
        return {};
    std::vector<std::vector<double>> emit;
    emissionScores(words, emit);
    const size_t n = words.size();
    std::vector<std::vector<double>> delta(n,
        std::vector<double>(kNumTags, 0.0));
    std::vector<std::vector<int>> back(n, std::vector<int>(kNumTags, -1));
    for (size_t t = 0; t < kNumTags; ++t)
        delta[0][t] = initW_[t] + emit[0][t];
    // Each Viterbi step maximizes over predecessors p with target tags
    // t as SIMD lanes; the kernel keeps the scalar strict ">" so ties
    // still break to the lowest p.
    std::array<double, kNumTags> best;
    std::array<int32_t, kNumTags> arg;
    for (size_t i = 1; i < n; ++i) {
        simd::kernels().viterbiStepF64(delta[i - 1].data(),
                                       transW_.data(), kNumTags,
                                       best.data(), arg.data());
        for (size_t t = 0; t < kNumTags; ++t) {
            delta[i][t] = best[t] + emit[i][t];
            back[i][t] = static_cast<int>(arg[t]);
        }
    }
    size_t best_t = 0;
    for (size_t t = 1; t < kNumTags; ++t) {
        if (delta[n - 1][t] > delta[n - 1][best_t])
            best_t = t;
    }
    std::vector<PosTag> tags(n);
    size_t cur = best_t;
    for (size_t i = n; i-- > 0; ) {
        tags[i] = static_cast<PosTag>(cur);
        if (i > 0)
            cur = static_cast<size_t>(back[i][cur]);
    }
    return tags;
}

double
CrfTagger::train(const std::vector<TaggedSentence> &data,
                 const TrainOptions &opts)
{
    if (data.empty())
        return 0.0;
    Rng rng(opts.shuffleSeed);
    std::vector<size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<std::vector<double>> emit, alpha, beta;
    std::vector<uint32_t> feats;
    double last_epoch_ll = 0.0;

    for (size_t epoch = 0; epoch < opts.epochs; ++epoch) {
        // Fisher-Yates shuffle with our deterministic RNG.
        for (size_t i = order.size(); i-- > 1; )
            std::swap(order[i], order[rng.below(i + 1)]);
        const double lr = opts.learningRate /
            (1.0 + 0.3 * static_cast<double>(epoch));
        double epoch_ll = 0.0;

        for (size_t idx : order) {
            const TaggedSentence &s = data[idx];
            const size_t n = s.words.size();
            if (n == 0 || s.tags.size() != n)
                continue;
            emissionScores(s.words, emit);
            forward(emit, alpha);
            backward(emit, beta);
            const double log_z = logSumExp(alpha.back());
            epoch_ll += pathScore(emit, s.tags) - log_z;

            // Node marginals p(t_i = t | x) and the gradient step.
            for (size_t i = 0; i < n; ++i) {
                extractFeatures(s.words, i, feats);
                const auto gold = static_cast<size_t>(s.tags[i]);
                for (size_t t = 0; t < kNumTags; ++t) {
                    const double marg =
                        std::exp(alpha[i][t] + beta[i][t] - log_z);
                    const double grad = (t == gold ? 1.0 : 0.0) - marg;
                    if (grad == 0.0)
                        continue;
                    for (uint32_t f : feats) {
                        double &w =
                            emitW_[static_cast<size_t>(f) * kNumTags + t];
                        w += lr * (grad - opts.l2 * w);
                    }
                }
                if (i == 0) {
                    for (size_t t = 0; t < kNumTags; ++t) {
                        const double marg =
                            std::exp(alpha[0][t] + beta[0][t] - log_z);
                        initW_[t] += lr * ((t == gold ? 1.0 : 0.0) - marg);
                    }
                }
            }
            // Edge marginals p(t_{i-1}=p, t_i=t | x).
            for (size_t i = 1; i < n; ++i) {
                const auto gp = static_cast<size_t>(s.tags[i - 1]);
                const auto gt = static_cast<size_t>(s.tags[i]);
                for (size_t p = 0; p < kNumTags; ++p) {
                    for (size_t t = 0; t < kNumTags; ++t) {
                        const double lp = alpha[i - 1][p] +
                            transW_[p * kNumTags + t] + emit[i][t] +
                            beta[i][t] - log_z;
                        const double marg = std::exp(lp);
                        const double empirical =
                            (p == gp && t == gt) ? 1.0 : 0.0;
                        transW_[p * kNumTags + t] +=
                            lr * (empirical - marg);
                    }
                }
            }
        }
        last_epoch_ll = epoch_ll / static_cast<double>(data.size());
    }
    return last_epoch_ll;
}

double
CrfTagger::accuracy(const std::vector<TaggedSentence> &data) const
{
    size_t correct = 0, total = 0;
    for (const auto &s : data) {
        const auto predicted = tag(s.words);
        for (size_t i = 0; i < s.tags.size() && i < predicted.size(); ++i) {
            ++total;
            if (predicted[i] == s.tags[i])
                ++correct;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
}

} // namespace sirius::nlp
