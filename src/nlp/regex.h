/**
 * @file
 * A small regular-expression engine (SLRE stand-in).
 *
 * OpenEphyra's question analysis runs a suite of regex patterns over every
 * query and retrieved document. The Sirius Suite regex kernel matches 100
 * expressions against 400 sentences. We implement the engine from scratch:
 * patterns parse to an AST, compile to a Thompson NFA program, and matching
 * runs the Pike VM (breadth-first NFA simulation) — linear time in
 * pattern-size x text-size, no backtracking blow-ups.
 *
 * Supported syntax: literals, '.', escapes (\d \D \w \W \s \S \n \t \r and
 * escaped metacharacters), character classes with ranges and negation
 * ([a-z0-9], [^abc]), anchors ^ and $, grouping (...), alternation |, and
 * the quantifiers * + ?.
 */

#ifndef SIRIUS_NLP_REGEX_H
#define SIRIUS_NLP_REGEX_H

#include <bitset>
#include <cstdint>
#include <string>
#include <vector>

namespace sirius::nlp {

/** A compiled regular expression. */
class Regex
{
  public:
    /** Compile @p pattern; check ok() before matching. */
    explicit Regex(const std::string &pattern);

    /** True if the pattern compiled. */
    bool ok() const { return error_.empty(); }

    /** Parse error description, empty when ok(). */
    const std::string &error() const { return error_; }

    /** The original pattern string. */
    const std::string &pattern() const { return pattern_; }

    /** True if any substring of @p text matches (unanchored). */
    bool search(const std::string &text) const;

    /** True if the whole of @p text matches (anchored both ends). */
    bool fullMatch(const std::string &text) const;

    /**
     * Count of distinct starting offsets at which a match begins.
     * Used by the QA document filters to count filter hits.
     */
    size_t countMatches(const std::string &text) const;

    /**
     * Leftmost-longest match extraction.
     * @param text input to scan
     * @param start output: offset of the leftmost match
     * @param length output: length of the longest match at that offset
     * @return true if any match exists
     */
    bool findFirst(const std::string &text, size_t &start,
                   size_t &length) const;

    /** Number of NFA instructions (for tests / complexity checks). */
    size_t programSize() const { return program_.size(); }

  private:
    enum class Op : uint8_t {
        Char,   ///< match one specific byte
        Class,  ///< match a byte in the instruction's class set
        Any,    ///< match any byte
        Split,  ///< fork to two successor pcs
        Jmp,    ///< unconditional jump
        Bol,    ///< assert beginning of text
        Eol,    ///< assert end of text
        Match   ///< accept
    };

    struct Inst
    {
        Op op;
        char ch = 0;
        int x = 0;          ///< primary successor / jump target
        int y = 0;          ///< secondary successor for Split
        int classIdx = -1;  ///< index into classes_ for Op::Class
    };

    std::string pattern_;
    std::string error_;
    std::vector<Inst> program_;
    std::vector<std::bitset<256>> classes_;

    // ---- Parser state ----
    size_t pos_ = 0;

    void compile();
    int emit(Op op, char ch = 0, int class_idx = -1);

    // Recursive-descent parse over pattern_, appending to program_ and
    // returning the [start,out) fragment. On error sets error_.
    int parseAlt(std::vector<int> &out_patches);
    int parseConcat(std::vector<int> &out_patches);
    int parseRepeat(std::vector<int> &out_patches);
    int parseAtom(std::vector<int> &out_patches);
    int parseClass();
    bool applyEscape(char c, std::bitset<256> &set) const;

    void patch(const std::vector<int> &patches, int target);

    bool runFrom(const std::string &text, size_t start,
                 bool anchored_end) const;

    /** Longest accepted length from @p start, or -1 when none. */
    long runLongest(const std::string &text, size_t start) const;
    void addThread(std::vector<int> &list, std::vector<bool> &on_list,
                   int pc, size_t text_pos, size_t text_len) const;
};

/**
 * The pattern set OpenEphyra-style question analysis uses: question-word
 * detection (who/what/when/where/which/how), number/date shapes, entity
 * shapes (capitalized sequences) and special-character filtering.
 * Returns compiled, ready-to-run expressions.
 */
std::vector<Regex> questionAnalysisPatterns();

} // namespace sirius::nlp

#endif // SIRIUS_NLP_REGEX_H
