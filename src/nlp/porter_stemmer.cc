#include "nlp/porter_stemmer.h"

#include <cstring>

namespace sirius::nlp {

bool
PorterStemmer::isConsonant(int i) const
{
    switch (b_[static_cast<size_t>(i)]) {
      case 'a': case 'e': case 'i': case 'o': case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !isConsonant(i - 1);
      default:
        return true;
    }
}

int
PorterStemmer::measure() const
{
    // Counts the VC sequences in b_[0..j_], Porter's m.
    int n = 0;
    int i = 0;
    for (;;) {
        if (i > j_)
            return n;
        if (!isConsonant(i))
            break;
        ++i;
    }
    ++i;
    for (;;) {
        for (;;) {
            if (i > j_)
                return n;
            if (isConsonant(i))
                break;
            ++i;
        }
        ++i;
        ++n;
        for (;;) {
            if (i > j_)
                return n;
            if (!isConsonant(i))
                break;
            ++i;
        }
        ++i;
    }
}

bool
PorterStemmer::vowelInStem() const
{
    for (int i = 0; i <= j_; ++i) {
        if (!isConsonant(i))
            return true;
    }
    return false;
}

bool
PorterStemmer::doubleConsonant(int i) const
{
    if (i < 1)
        return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)])
        return false;
    return isConsonant(i);
}

bool
PorterStemmer::cvc(int i) const
{
    // consonant-vowel-consonant ending at i, where the final consonant is
    // not w, x or y. Used to decide whether to restore a trailing 'e'.
    if (i < 2 || !isConsonant(i) || isConsonant(i - 1) ||
        !isConsonant(i - 2)) {
        return false;
    }
    const char ch = b_[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
}

bool
PorterStemmer::ends(const char *s)
{
    const int len = static_cast<int>(std::strlen(s));
    if (len > k_ + 1)
        return false;
    if (b_.compare(static_cast<size_t>(k_ - len + 1),
                   static_cast<size_t>(len), s) != 0) {
        return false;
    }
    j_ = k_ - len;
    return true;
}

void
PorterStemmer::setTo(const char *s)
{
    const int len = static_cast<int>(std::strlen(s));
    b_.replace(static_cast<size_t>(j_ + 1), std::string::npos, s);
    k_ = j_ + len;
}

void
PorterStemmer::replaceIf(const char *s)
{
    if (measure() > 0)
        setTo(s);
}

void
PorterStemmer::step1ab()
{
    // Step 1a: plurals.
    if (b_[static_cast<size_t>(k_)] == 's') {
        if (ends("sses")) {
            k_ -= 2;
        } else if (ends("ies")) {
            setTo("i");
        } else if (b_[static_cast<size_t>(k_ - 1)] != 's') {
            --k_;
        }
    }
    // Step 1b: -eed, -ed, -ing.
    if (ends("eed")) {
        if (measure() > 0)
            --k_;
    } else if ((ends("ed") || ends("ing")) && vowelInStem()) {
        k_ = j_;
        if (ends("at")) {
            setTo("ate");
        } else if (ends("bl")) {
            setTo("ble");
        } else if (ends("iz")) {
            setTo("ize");
        } else if (doubleConsonant(k_)) {
            const char ch = b_[static_cast<size_t>(k_)];
            if (ch != 'l' && ch != 's' && ch != 'z')
                --k_;
        } else if (measure() == 1 && cvc(k_)) {
            j_ = k_;
            setTo("e");
        }
    }
}

void
PorterStemmer::step1c()
{
    if (ends("y") && vowelInStem())
        b_[static_cast<size_t>(k_)] = 'i';
}

void
PorterStemmer::step2()
{
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (ends("ational")) { replaceIf("ate"); break; }
        if (ends("tional")) { replaceIf("tion"); break; }
        break;
      case 'c':
        if (ends("enci")) { replaceIf("ence"); break; }
        if (ends("anci")) { replaceIf("ance"); break; }
        break;
      case 'e':
        if (ends("izer")) { replaceIf("ize"); break; }
        break;
      case 'l':
        if (ends("bli")) { replaceIf("ble"); break; }
        if (ends("alli")) { replaceIf("al"); break; }
        if (ends("entli")) { replaceIf("ent"); break; }
        if (ends("eli")) { replaceIf("e"); break; }
        if (ends("ousli")) { replaceIf("ous"); break; }
        break;
      case 'o':
        if (ends("ization")) { replaceIf("ize"); break; }
        if (ends("ation")) { replaceIf("ate"); break; }
        if (ends("ator")) { replaceIf("ate"); break; }
        break;
      case 's':
        if (ends("alism")) { replaceIf("al"); break; }
        if (ends("iveness")) { replaceIf("ive"); break; }
        if (ends("fulness")) { replaceIf("ful"); break; }
        if (ends("ousness")) { replaceIf("ous"); break; }
        break;
      case 't':
        if (ends("aliti")) { replaceIf("al"); break; }
        if (ends("iviti")) { replaceIf("ive"); break; }
        if (ends("biliti")) { replaceIf("ble"); break; }
        break;
      case 'g':
        if (ends("logi")) { replaceIf("log"); break; }
        break;
      default:
        break;
    }
}

void
PorterStemmer::step3()
{
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (ends("icate")) { replaceIf("ic"); break; }
        if (ends("ative")) { replaceIf(""); break; }
        if (ends("alize")) { replaceIf("al"); break; }
        break;
      case 'i':
        if (ends("iciti")) { replaceIf("ic"); break; }
        break;
      case 'l':
        if (ends("ical")) { replaceIf("ic"); break; }
        if (ends("ful")) { replaceIf(""); break; }
        break;
      case 's':
        if (ends("ness")) { replaceIf(""); break; }
        break;
      default:
        break;
    }
}

void
PorterStemmer::step4()
{
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (ends("al")) break;
        return;
      case 'c':
        if (ends("ance")) break;
        if (ends("ence")) break;
        return;
      case 'e':
        if (ends("er")) break;
        return;
      case 'i':
        if (ends("ic")) break;
        return;
      case 'l':
        if (ends("able")) break;
        if (ends("ible")) break;
        return;
      case 'n':
        if (ends("ant")) break;
        if (ends("ement")) break;
        if (ends("ment")) break;
        if (ends("ent")) break;
        return;
      case 'o':
        if (ends("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
            break;
        }
        if (ends("ou")) break;
        return;
      case 's':
        if (ends("ism")) break;
        return;
      case 't':
        if (ends("ate")) break;
        if (ends("iti")) break;
        return;
      case 'u':
        if (ends("ous")) break;
        return;
      case 'v':
        if (ends("ive")) break;
        return;
      case 'z':
        if (ends("ize")) break;
        return;
      default:
        return;
    }
    if (measure() > 1)
        k_ = j_;
}

void
PorterStemmer::step5()
{
    // Step 5a: drop a final e.
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
        const int m = measure();
        if (m > 1 || (m == 1 && !cvc(k_ - 1)))
            --k_;
    }
    // Step 5b: -ll -> -l when m > 1.
    if (b_[static_cast<size_t>(k_)] == 'l' && doubleConsonant(k_) &&
        measure() > 1) {
        --k_;
    }
}

std::string
PorterStemmer::stem(const std::string &word)
{
    if (word.size() <= 2)
        return word;
    for (char c : word) {
        if (c < 'a' || c > 'z')
            return word;
    }
    b_ = word;
    k_ = static_cast<int>(b_.size()) - 1;
    j_ = 0;
    step1ab();
    if (k_ > 0) {
        step1c();
        step2();
        step3();
        step4();
        step5();
    }
    b_.resize(static_cast<size_t>(k_) + 1);
    return b_;
}

void
PorterStemmer::stemAll(std::vector<std::string> &words)
{
    for (auto &w : words)
        w = stem(w);
}

} // namespace sirius::nlp
