/**
 * @file
 * Word tokenizer used by the QA pipeline and the search substrate.
 */

#ifndef SIRIUS_NLP_TOKENIZER_H
#define SIRIUS_NLP_TOKENIZER_H

#include <string>
#include <vector>

namespace sirius::nlp {

/**
 * Split @p text into word tokens.
 *
 * A token is a maximal run of ASCII letters, digits or apostrophes.
 * Punctuation is dropped. Tokens are lower-cased when @p lower is true.
 */
std::vector<std::string> tokenize(const std::string &text,
                                  bool lower = true);

/**
 * Like tokenize() but keeps sentence-final punctuation as its own token,
 * which the CRF tagger wants to see.
 */
std::vector<std::string> tokenizeKeepPunct(const std::string &text,
                                           bool lower = false);

} // namespace sirius::nlp

#endif // SIRIUS_NLP_TOKENIZER_H
