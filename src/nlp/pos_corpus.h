/**
 * @file
 * Synthetic tagged-sentence corpus generator.
 *
 * Stands in for the CoNLL-2000 shared-task data the paper feeds the CRF
 * kernel (Table 4): sentences are generated from a template grammar over a
 * closed lexicon, so the gold tags are exact and generation is
 * deterministic per seed.
 */

#ifndef SIRIUS_NLP_POS_CORPUS_H
#define SIRIUS_NLP_POS_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "nlp/crf.h"

namespace sirius::nlp {

/** Closed lexicon: word lists per tag used by the generator. */
class PosLexicon
{
  public:
    /** Build the built-in English lexicon. */
    PosLexicon();

    /** Word list for @p tag. */
    const std::vector<std::string> &wordsFor(PosTag tag) const;

    /** Most likely tag of @p word, or PosTag::Other if unknown. */
    PosTag lookup(const std::string &word) const;

    /** Every (word, tag) pair, e.g. for building a big word list. */
    std::vector<std::pair<std::string, PosTag>> allEntries() const;

  private:
    std::vector<std::vector<std::string>> byTag_;
};

/**
 * Generate @p count template-grammar sentences with gold tags.
 * Templates cover declaratives, questions and noun-phrase-heavy
 * constructions so transitions are informative.
 */
std::vector<TaggedSentence> generatePosCorpus(size_t count, uint64_t seed);

/**
 * Generate a flat list of dictionary-like words (for the Stemmer kernel's
 * 4M-word-list input). Words are drawn from the lexicon with derivational
 * endings appended so the stemmer has real work to do.
 */
std::vector<std::string> generateWordList(size_t count, uint64_t seed);

} // namespace sirius::nlp

#endif // SIRIUS_NLP_POS_CORPUS_H
