#include "nlp/pos_corpus.h"

#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace sirius::nlp {

PosLexicon::PosLexicon() : byTag_(kNumTags)
{
    auto set = [this](PosTag tag, std::vector<std::string> words) {
        byTag_[static_cast<size_t>(tag)] = std::move(words);
    };
    set(PosTag::Noun,
        {"president", "capital", "author", "city", "country", "river",
         "mountain", "election", "restaurant", "university", "company",
         "movie", "book", "song", "painter", "scientist", "inventor",
         "language", "population", "currency", "island", "ocean", "bridge",
         "airport", "museum", "festival", "battle", "treaty", "planet",
         "satellite", "engine", "computer", "network", "question",
         "answer", "history", "winner", "teacher", "student", "doctor"});
    set(PosTag::Verb,
        {"is", "was", "are", "were", "elected", "wrote", "founded",
         "invented", "discovered", "built", "painted", "composed",
         "directed", "won", "lost", "opened", "closed", "borders",
         "contains", "flows", "lives", "speaks", "teaches", "studies",
         "runs", "makes", "holds", "became", "signed", "launched"});
    set(PosTag::Adj,
        {"first", "last", "largest", "smallest", "longest", "highest",
         "famous", "ancient", "modern", "national", "official", "popular",
         "northern", "southern", "eastern", "western", "current", "former",
         "great", "new", "old", "tall", "deep", "rich"});
    set(PosTag::Adv,
        {"quickly", "slowly", "recently", "currently", "originally",
         "officially", "approximately", "nearly", "famously", "widely"});
    set(PosTag::Pron,
        {"who", "what", "which", "it", "he", "she", "they", "whom",
         "whose", "that"});
    set(PosTag::Det, {"the", "a", "an", "this", "that", "these", "those",
                      "every", "some"});
    set(PosTag::Adp, {"of", "in", "on", "at", "by", "for", "from", "to",
                      "with", "about", "near", "between"});
    set(PosTag::Num,
        {"one", "two", "three", "four", "five", "ten", "hundred",
         "thousand", "million", "44th", "1969", "2015", "42", "7"});
    set(PosTag::Conj, {"and", "or", "but", "because", "while", "when"});
    set(PosTag::Prt, {"not", "also", "only", "just", "even", "up", "out"});
    set(PosTag::Punct, {".", ",", "?", "!"});
    set(PosTag::Other, {"etc", "eg", "ie"});
}

const std::vector<std::string> &
PosLexicon::wordsFor(PosTag tag) const
{
    return byTag_[static_cast<size_t>(tag)];
}

PosTag
PosLexicon::lookup(const std::string &word) const
{
    for (size_t t = 0; t < byTag_.size(); ++t) {
        for (const auto &w : byTag_[t]) {
            if (w == word)
                return static_cast<PosTag>(t);
        }
    }
    return PosTag::Other;
}

std::vector<std::pair<std::string, PosTag>>
PosLexicon::allEntries() const
{
    std::vector<std::pair<std::string, PosTag>> out;
    for (size_t t = 0; t < byTag_.size(); ++t) {
        for (const auto &w : byTag_[t])
            out.emplace_back(w, static_cast<PosTag>(t));
    }
    return out;
}

std::vector<TaggedSentence>
generatePosCorpus(size_t count, uint64_t seed)
{
    static const PosLexicon lexicon;
    Rng rng(seed);

    // Sentence templates as tag sequences. 'Adj?' optionality is expressed
    // by providing both variants.
    using T = PosTag;
    static const std::vector<std::vector<T>> templates = {
        {T::Det, T::Noun, T::Verb, T::Det, T::Noun, T::Punct},
        {T::Det, T::Adj, T::Noun, T::Verb, T::Det, T::Adj, T::Noun,
         T::Punct},
        {T::Pron, T::Verb, T::Det, T::Noun, T::Adp, T::Det, T::Noun,
         T::Punct},
        {T::Pron, T::Verb, T::Det, T::Adj, T::Noun, T::Punct},
        {T::Det, T::Noun, T::Adp, T::Det, T::Noun, T::Verb, T::Adj,
         T::Punct},
        {T::Noun, T::Conj, T::Noun, T::Verb, T::Adp, T::Det, T::Noun,
         T::Punct},
        {T::Det, T::Noun, T::Verb, T::Adv, T::Adp, T::Num, T::Punct},
        {T::Pron, T::Verb, T::Prt, T::Det, T::Noun, T::Punct},
        {T::Num, T::Noun, T::Verb, T::Det, T::Noun, T::Adp, T::Noun,
         T::Punct},
        {T::Det, T::Adj, T::Noun, T::Adp, T::Noun, T::Verb, T::Det,
         T::Noun, T::Conj, T::Det, T::Noun, T::Punct},
    };

    std::vector<TaggedSentence> corpus;
    corpus.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const auto &tmpl = templates[rng.below(templates.size())];
        TaggedSentence s;
        s.words.reserve(tmpl.size());
        s.tags.reserve(tmpl.size());
        for (PosTag tag : tmpl) {
            const auto &choices = lexicon.wordsFor(tag);
            s.words.push_back(choices[rng.below(choices.size())]);
            s.tags.push_back(tag);
        }
        corpus.push_back(std::move(s));
    }
    return corpus;
}

std::vector<std::string>
generateWordList(size_t count, uint64_t seed)
{
    static const PosLexicon lexicon;
    static const std::vector<std::string> endings = {
        "", "s", "ed", "ing", "er", "est", "ly", "ness", "ment", "ation",
        "ization", "fulness", "ousness", "ibility", "ical", "ative",
        "alize", "icate", "ize", "ional",
    };
    const auto entries = lexicon.allEntries();
    Rng rng(seed);
    std::vector<std::string> words;
    words.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const auto &base = entries[rng.below(entries.size())].first;
        if (base.size() < 3 || !isalpha(static_cast<unsigned char>(
                base[0]))) {
            words.push_back("question" + endings[rng.below(
                endings.size())]);
            continue;
        }
        words.push_back(base + endings[rng.below(endings.size())]);
    }
    return words;
}

} // namespace sirius::nlp
