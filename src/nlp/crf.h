/**
 * @file
 * Linear-chain Conditional Random Field part-of-speech tagger.
 *
 * OpenEphyra uses a CRF classifier to predict the part of speech of every
 * word in the query and in retrieved documents. This is a full from-scratch
 * implementation: hashed feature templates, log-domain forward/backward,
 * Viterbi decoding, and stochastic-gradient maximum-likelihood training
 * with L2 regularization.
 */

#ifndef SIRIUS_NLP_CRF_H
#define SIRIUS_NLP_CRF_H

#include <cstdint>
#include <string>
#include <vector>

namespace sirius::nlp {

/** Universal-style coarse part-of-speech tag set. */
enum class PosTag : uint8_t {
    Noun = 0,
    Verb,
    Adj,
    Adv,
    Pron,
    Det,
    Adp,
    Num,
    Conj,
    Prt,
    Punct,
    Other,
};

/** Number of tags in PosTag. */
constexpr size_t kNumTags = 12;

/** Human-readable tag name. */
const char *tagName(PosTag tag);

/** A sentence with gold-standard tags (training / evaluation unit). */
struct TaggedSentence
{
    std::vector<std::string> words;
    std::vector<PosTag> tags;
};

/**
 * Linear-chain CRF over PosTag with hashed lexical features.
 *
 * Scores factorize as sum_i emit(x, i, t_i) + init(t_0)
 * + sum_{i>0} trans(t_{i-1}, t_i). All inference is in log space.
 */
class CrfTagger
{
  public:
    /** Training hyper-parameters. */
    struct TrainOptions
    {
        size_t epochs = 8;
        double learningRate = 0.15;
        double l2 = 1e-6;
        uint64_t shuffleSeed = 12345;
    };

    /**
     * @param feature_dim size of the hashed feature space; larger reduces
     *        collisions at the cost of memory (weights use dim * kNumTags
     *        doubles).
     */
    explicit CrfTagger(size_t feature_dim = size_t{1} << 17);

    /**
     * Extract the hashed feature ids for position @p i of @p words.
     * Deterministic; exposed publicly because the Sirius Suite CRF kernel
     * times exactly this plus decoding.
     */
    void extractFeatures(const std::vector<std::string> &words, size_t i,
                         std::vector<uint32_t> &out) const;

    /**
     * Maximum-likelihood SGD training.
     * @return average per-sentence log-likelihood of the final epoch.
     */
    double train(const std::vector<TaggedSentence> &data,
                 const TrainOptions &opts);

    /** Viterbi-decode the most likely tag sequence. */
    std::vector<PosTag> tag(const std::vector<std::string> &words) const;

    /** Log-likelihood log p(tags | words) of a labeled sentence. */
    double logLikelihood(const TaggedSentence &sentence) const;

    /** log Z(words) computed with the forward recursion. */
    double logPartitionForward(const std::vector<std::string> &words) const;

    /** log Z(words) computed with the backward recursion (for testing). */
    double logPartitionBackward(const std::vector<std::string> &words) const;

    /** Token-level tagging accuracy over a labeled corpus, in [0, 1]. */
    double accuracy(const std::vector<TaggedSentence> &data) const;

    /** Hashed feature-space size. */
    size_t featureDim() const { return featureDim_; }

  private:
    size_t featureDim_;
    // Emission weights, laid out [feature][tag].
    std::vector<double> emitW_;
    // trans_[prev * kNumTags + next].
    std::vector<double> transW_;
    std::vector<double> initW_;

    /** Per-position emission score table: scores[i][t]. */
    void emissionScores(const std::vector<std::string> &words,
                        std::vector<std::vector<double>> &scores) const;

    /** Unnormalized log score of a full path. */
    double pathScore(const std::vector<std::vector<double>> &emit,
                     const std::vector<PosTag> &tags) const;

    void forward(const std::vector<std::vector<double>> &emit,
                 std::vector<std::vector<double>> &alpha) const;
    void backward(const std::vector<std::vector<double>> &emit,
                  std::vector<std::vector<double>> &beta) const;

    uint32_t hashFeature(const std::string &text) const;
};

} // namespace sirius::nlp

#endif // SIRIUS_NLP_CRF_H
