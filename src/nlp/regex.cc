#include "nlp/regex.h"

#include <cctype>

namespace sirius::nlp {

Regex::Regex(const std::string &pattern) : pattern_(pattern)
{
    compile();
}

int
Regex::emit(Op op, char ch, int class_idx)
{
    program_.push_back(Inst{op, ch, -1, -1, class_idx});
    return static_cast<int>(program_.size()) - 1;
}

void
Regex::patch(const std::vector<int> &patches, int target)
{
    for (int enc : patches) {
        Inst &inst = program_[static_cast<size_t>(enc >> 1)];
        if (enc & 1)
            inst.y = target;
        else
            inst.x = target;
    }
}

bool
Regex::applyEscape(char c, std::bitset<256> &set) const
{
    auto add_range = [&set](unsigned char lo, unsigned char hi) {
        for (int b = lo; b <= hi; ++b)
            set.set(static_cast<size_t>(b));
    };
    switch (c) {
      case 'd':
        add_range('0', '9');
        return true;
      case 'D':
        add_range('0', '9');
        set.flip();
        return true;
      case 'w':
        add_range('a', 'z');
        add_range('A', 'Z');
        add_range('0', '9');
        set.set('_');
        return true;
      case 'W':
        add_range('a', 'z');
        add_range('A', 'Z');
        add_range('0', '9');
        set.set('_');
        set.flip();
        return true;
      case 's':
        set.set(' ');
        set.set('\t');
        set.set('\n');
        set.set('\r');
        set.set('\f');
        set.set('\v');
        return true;
      case 'S':
        set.set(' ');
        set.set('\t');
        set.set('\n');
        set.set('\r');
        set.set('\f');
        set.set('\v');
        set.flip();
        return true;
      default:
        return false;
    }
}

int
Regex::parseClass()
{
    std::bitset<256> set;
    bool negate = false;
    if (pos_ < pattern_.size() && pattern_[pos_] == '^') {
        negate = true;
        ++pos_;
    }
    bool saw_any = false;
    while (pos_ < pattern_.size() && pattern_[pos_] != ']') {
        char c = pattern_[pos_++];
        if (c == '\\') {
            if (pos_ >= pattern_.size()) {
                error_ = "dangling escape in class";
                return -1;
            }
            const char esc = pattern_[pos_++];
            if (!applyEscape(esc, set)) {
                switch (esc) {
                  case 'n': set.set('\n'); break;
                  case 't': set.set('\t'); break;
                  case 'r': set.set('\r'); break;
                  default:
                    set.set(static_cast<unsigned char>(esc));
                    break;
                }
            }
            saw_any = true;
            continue;
        }
        if (pos_ + 1 < pattern_.size() && pattern_[pos_] == '-' &&
            pattern_[pos_ + 1] != ']') {
            const char hi = pattern_[pos_ + 1];
            pos_ += 2;
            if (static_cast<unsigned char>(hi) <
                static_cast<unsigned char>(c)) {
                error_ = "inverted range in class";
                return -1;
            }
            for (int b = static_cast<unsigned char>(c);
                 b <= static_cast<unsigned char>(hi); ++b) {
                set.set(static_cast<size_t>(b));
            }
        } else {
            set.set(static_cast<unsigned char>(c));
        }
        saw_any = true;
    }
    if (pos_ >= pattern_.size()) {
        error_ = "unterminated character class";
        return -1;
    }
    ++pos_; // consume ']'
    if (!saw_any) {
        error_ = "empty character class";
        return -1;
    }
    if (negate)
        set.flip();
    classes_.push_back(set);
    return static_cast<int>(classes_.size()) - 1;
}

int
Regex::parseAtom(std::vector<int> &out_patches)
{
    if (pos_ >= pattern_.size()) {
        error_ = "expected atom";
        return -1;
    }
    const char c = pattern_[pos_];
    switch (c) {
      case '(': {
        ++pos_;
        const int start = parseAlt(out_patches);
        if (start < 0)
            return -1;
        if (pos_ >= pattern_.size() || pattern_[pos_] != ')') {
            error_ = "missing )";
            return -1;
        }
        ++pos_;
        return start;
      }
      case '[': {
        ++pos_;
        const int cls = parseClass();
        if (cls < 0)
            return -1;
        const int pc = emit(Op::Class, 0, cls);
        out_patches.push_back(pc << 1);
        return pc;
      }
      case '.': {
        ++pos_;
        const int pc = emit(Op::Any);
        out_patches.push_back(pc << 1);
        return pc;
      }
      case '^': {
        ++pos_;
        const int pc = emit(Op::Bol);
        out_patches.push_back(pc << 1);
        return pc;
      }
      case '$': {
        ++pos_;
        const int pc = emit(Op::Eol);
        out_patches.push_back(pc << 1);
        return pc;
      }
      case '\\': {
        ++pos_;
        if (pos_ >= pattern_.size()) {
            error_ = "dangling escape";
            return -1;
        }
        const char esc = pattern_[pos_++];
        std::bitset<256> set;
        if (applyEscape(esc, set)) {
            classes_.push_back(set);
            const int pc = emit(Op::Class, 0,
                                static_cast<int>(classes_.size()) - 1);
            out_patches.push_back(pc << 1);
            return pc;
        }
        char lit = esc;
        if (esc == 'n')
            lit = '\n';
        else if (esc == 't')
            lit = '\t';
        else if (esc == 'r')
            lit = '\r';
        const int pc = emit(Op::Char, lit);
        out_patches.push_back(pc << 1);
        return pc;
      }
      case '*': case '+': case '?':
        error_ = "quantifier with nothing to repeat";
        return -1;
      case ')': case '|': case ']':
        error_ = "unexpected metacharacter";
        return -1;
      default: {
        ++pos_;
        const int pc = emit(Op::Char, c);
        out_patches.push_back(pc << 1);
        return pc;
      }
    }
}

int
Regex::parseRepeat(std::vector<int> &out_patches)
{
    std::vector<int> atom_out;
    int start = parseAtom(atom_out);
    if (start < 0)
        return -1;
    while (pos_ < pattern_.size()) {
        const char q = pattern_[pos_];
        if (q != '*' && q != '+' && q != '?')
            break;
        ++pos_;
        if (q == '*') {
            const int split = emit(Op::Split);
            program_[static_cast<size_t>(split)].x = start;
            patch(atom_out, split);
            atom_out.clear();
            atom_out.push_back((split << 1) | 1);
            start = split;
        } else if (q == '+') {
            const int split = emit(Op::Split);
            program_[static_cast<size_t>(split)].x = start;
            patch(atom_out, split);
            atom_out.clear();
            atom_out.push_back((split << 1) | 1);
        } else { // '?'
            const int split = emit(Op::Split);
            program_[static_cast<size_t>(split)].x = start;
            atom_out.push_back((split << 1) | 1);
            start = split;
        }
    }
    out_patches.insert(out_patches.end(), atom_out.begin(), atom_out.end());
    return start;
}

int
Regex::parseConcat(std::vector<int> &out_patches)
{
    // Empty concatenation (e.g. "a|" or "()") becomes a bare jump.
    if (pos_ >= pattern_.size() || pattern_[pos_] == '|' ||
        pattern_[pos_] == ')') {
        const int pc = emit(Op::Jmp);
        out_patches.push_back(pc << 1);
        return pc;
    }
    std::vector<int> prev_out;
    int start = parseRepeat(prev_out);
    if (start < 0)
        return -1;
    while (pos_ < pattern_.size() && pattern_[pos_] != '|' &&
           pattern_[pos_] != ')') {
        std::vector<int> next_out;
        const int next = parseRepeat(next_out);
        if (next < 0)
            return -1;
        patch(prev_out, next);
        prev_out = std::move(next_out);
    }
    out_patches.insert(out_patches.end(), prev_out.begin(), prev_out.end());
    return start;
}

int
Regex::parseAlt(std::vector<int> &out_patches)
{
    int start = parseConcat(out_patches);
    if (start < 0)
        return -1;
    while (pos_ < pattern_.size() && pattern_[pos_] == '|') {
        ++pos_;
        std::vector<int> rhs_out;
        const int rhs = parseConcat(rhs_out);
        if (rhs < 0)
            return -1;
        const int split = emit(Op::Split);
        program_[static_cast<size_t>(split)].x = start;
        program_[static_cast<size_t>(split)].y = rhs;
        start = split;
        out_patches.insert(out_patches.end(), rhs_out.begin(),
                           rhs_out.end());
    }
    return start;
}

void
Regex::compile()
{
    pos_ = 0;
    std::vector<int> out_patches;
    const int start = parseAlt(out_patches);
    if (start < 0)
        return;
    if (pos_ != pattern_.size()) {
        error_ = "trailing characters after pattern";
        return;
    }
    const int match = emit(Op::Match);
    patch(out_patches, match);
    // Rotate so that the entry point is instruction 0 by prepending a jump.
    program_.push_back(Inst{Op::Jmp, 0, start, -1, -1});
    std::swap(program_.front(), program_.back());
    // The swap moved the first instruction to the back; fix every pc
    // reference: indices 0 and size-1 exchanged.
    const int last = static_cast<int>(program_.size()) - 1;
    auto remap = [last](int &pc) {
        if (pc == 0)
            pc = last;
        else if (pc == last)
            pc = 0;
    };
    for (auto &inst : program_) {
        remap(inst.x);
        remap(inst.y);
    }
}

void
Regex::addThread(std::vector<int> &list, std::vector<bool> &on_list,
                 int pc, size_t text_pos, size_t text_len) const
{
    if (pc < 0 || on_list[static_cast<size_t>(pc)])
        return;
    on_list[static_cast<size_t>(pc)] = true;
    const Inst &inst = program_[static_cast<size_t>(pc)];
    switch (inst.op) {
      case Op::Jmp:
        addThread(list, on_list, inst.x, text_pos, text_len);
        return;
      case Op::Split:
        addThread(list, on_list, inst.x, text_pos, text_len);
        addThread(list, on_list, inst.y, text_pos, text_len);
        return;
      case Op::Bol:
        if (text_pos == 0)
            addThread(list, on_list, inst.x, text_pos, text_len);
        return;
      case Op::Eol:
        if (text_pos == text_len)
            addThread(list, on_list, inst.x, text_pos, text_len);
        return;
      default:
        list.push_back(pc);
        return;
    }
}

bool
Regex::runFrom(const std::string &text, size_t start,
               bool anchored_end) const
{
    if (!ok())
        return false;
    const size_t n = program_.size();
    std::vector<int> clist, nlist;
    std::vector<bool> on_clist(n, false), on_nlist(n, false);
    addThread(clist, on_clist, 0, start, text.size());

    for (size_t pos = start; ; ++pos) {
        // Check for acceptance at this position.
        for (int pc : clist) {
            if (program_[static_cast<size_t>(pc)].op == Op::Match) {
                if (!anchored_end || pos == text.size())
                    return true;
            }
        }
        if (pos >= text.size() || clist.empty())
            break;
        const auto c = static_cast<unsigned char>(text[pos]);
        nlist.clear();
        std::fill(on_nlist.begin(), on_nlist.end(), false);
        for (int pc : clist) {
            const Inst &inst = program_[static_cast<size_t>(pc)];
            bool matches = false;
            switch (inst.op) {
              case Op::Char:
                matches = static_cast<unsigned char>(inst.ch) == c;
                break;
              case Op::Any:
                matches = true;
                break;
              case Op::Class:
                matches =
                    classes_[static_cast<size_t>(inst.classIdx)].test(c);
                break;
              default:
                break;
            }
            if (matches)
                addThread(nlist, on_nlist, inst.x, pos + 1, text.size());
        }
        clist.swap(nlist);
        on_clist.swap(on_nlist);
    }
    // The in-loop acceptance check already covered pos == text.size().
    return false;
}

long
Regex::runLongest(const std::string &text, size_t start) const
{
    if (!ok())
        return -1;
    const size_t n = program_.size();
    std::vector<int> clist, nlist;
    std::vector<bool> on_clist(n, false), on_nlist(n, false);
    addThread(clist, on_clist, 0, start, text.size());

    long longest = -1;
    for (size_t pos = start; ; ++pos) {
        for (int pc : clist) {
            if (program_[static_cast<size_t>(pc)].op == Op::Match)
                longest = static_cast<long>(pos - start);
        }
        if (pos >= text.size() || clist.empty())
            break;
        const auto c = static_cast<unsigned char>(text[pos]);
        nlist.clear();
        std::fill(on_nlist.begin(), on_nlist.end(), false);
        for (int pc : clist) {
            const Inst &inst = program_[static_cast<size_t>(pc)];
            bool matches = false;
            switch (inst.op) {
              case Op::Char:
                matches = static_cast<unsigned char>(inst.ch) == c;
                break;
              case Op::Any:
                matches = true;
                break;
              case Op::Class:
                matches =
                    classes_[static_cast<size_t>(inst.classIdx)].test(c);
                break;
              default:
                break;
            }
            if (matches)
                addThread(nlist, on_nlist, inst.x, pos + 1, text.size());
        }
        clist.swap(nlist);
        on_clist.swap(on_nlist);
    }
    return longest;
}

bool
Regex::findFirst(const std::string &text, size_t &start,
                 size_t &length) const
{
    if (!ok())
        return false;
    for (size_t s = 0; s <= text.size(); ++s) {
        const long len = runLongest(text, s);
        if (len >= 0) {
            start = s;
            length = static_cast<size_t>(len);
            return true;
        }
    }
    return false;
}

bool
Regex::search(const std::string &text) const
{
    if (!ok())
        return false;
    for (size_t s = 0; s <= text.size(); ++s) {
        if (runFrom(text, s, false))
            return true;
    }
    return false;
}

bool
Regex::fullMatch(const std::string &text) const
{
    return runFrom(text, 0, true);
}

size_t
Regex::countMatches(const std::string &text) const
{
    if (!ok())
        return 0;
    size_t count = 0;
    for (size_t s = 0; s <= text.size(); ++s) {
        if (runFrom(text, s, false))
            ++count;
    }
    return count;
}

std::vector<Regex>
questionAnalysisPatterns()
{
    const char *patterns[] = {
        "^(who|whom|whose)\\s",
        "^what\\s",
        "^when\\s",
        "^where\\s",
        "^which\\s",
        "^(how)\\s(many|much|long|far|old)",
        "^(is|are|was|were|do|does|did|can|could)\\s",
        "\\d+(st|nd|rd|th)",
        "\\d\\d\\d\\d",
        "\\d+",
        "[A-Z][a-z]+(\\s[A-Z][a-z]+)+",
        "(january|february|march|april|may|june|july|august|september"
            "|october|november|december)",
        "(president|capital|author|inventor|founder|city|country"
            "|river|mountain|king|queen)",
        "[^a-zA-Z0-9\\s]",
        "(what|when|where)('s| is| was)",
    };
    std::vector<Regex> out;
    for (const char *p : patterns)
        out.emplace_back(p);
    return out;
}

} // namespace sirius::nlp
