/**
 * @file
 * The Web Search baseline workload (Apache Nutch stand-in).
 *
 * The paper compares IPA query latency against a traditional browser-based
 * Web Search query served from memory (Figure 7a). This service wraps the
 * inverted index behind the same query-in/results-out interface and is the
 * baseline side of every scalability-gap experiment.
 */

#ifndef SIRIUS_SEARCH_WEB_SEARCH_H
#define SIRIUS_SEARCH_WEB_SEARCH_H

#include <memory>
#include <string>
#include <vector>

#include "search/inverted_index.h"

namespace sirius::search {

/** One formatted search result. */
struct WebResult
{
    int docId;
    std::string title;
    std::string snippet;
    double score;
};

/** Memory-resident web-search service. */
class WebSearch
{
  public:
    /** Build over the standard encyclopedia corpus. */
    static WebSearch build(size_t filler_docs = 220, uint64_t seed = 31);

    /** Build over a caller-provided corpus. */
    explicit WebSearch(std::vector<Document> docs);

    /** Execute a query; returns formatted results with snippets. */
    std::vector<WebResult> query(const std::string &text,
                                 size_t k = 10) const;

    /** The underlying index (shared with the QA service). */
    const InvertedIndex &index() const { return *index_; }

  private:
    std::unique_ptr<InvertedIndex> index_;
};

} // namespace sirius::search

#endif // SIRIUS_SEARCH_WEB_SEARCH_H
