#include "search/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "nlp/porter_stemmer.h"
#include "nlp/tokenizer.h"

namespace sirius::search {

InvertedIndex::InvertedIndex(const std::vector<Document> &docs, bool stem,
                             Bm25Params params)
    : docs_(docs), stem_(stem), params_(params)
{
    docLengths_.resize(docs_.size(), 0);
    uint64_t total_len = 0;
    for (size_t i = 0; i < docs_.size(); ++i) {
        const auto terms = normalize(docs_[i].title + " " +
                                     docs_[i].text);
        docLengths_[i] = static_cast<uint32_t>(terms.size());
        total_len += terms.size();
        std::map<std::string, uint32_t> tf;
        for (const auto &t : terms)
            ++tf[t];
        for (const auto &[term, freq] : tf) {
            postings_[term].push_back(
                Posting{static_cast<int>(i), freq});
        }
    }
    avgDocLength_ = docs_.empty()
        ? 1.0 : static_cast<double>(total_len) /
                    static_cast<double>(docs_.size());
}

std::vector<std::string>
InvertedIndex::normalize(const std::string &text) const
{
    auto tokens = nlp::tokenize(text);
    if (stem_) {
        nlp::PorterStemmer stemmer;
        stemmer.stemAll(tokens);
    }
    return tokens;
}

std::vector<SearchHit>
InvertedIndex::search(const std::string &query, size_t k) const
{
    const auto terms = normalize(query);
    std::unordered_map<int, double> scores;
    const double n = static_cast<double>(docs_.size());

    for (const auto &term : terms) {
        auto it = postings_.find(term);
        if (it == postings_.end())
            continue;
        const auto &postings = it->second;
        const double df = static_cast<double>(postings.size());
        const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
        for (const auto &posting : postings) {
            const double tf = posting.termFrequency;
            const double len =
                docLengths_[static_cast<size_t>(posting.docId)];
            const double denom = tf + params_.k1 *
                (1.0 - params_.b + params_.b * len / avgDocLength_);
            scores[posting.docId] +=
                idf * tf * (params_.k1 + 1.0) / denom;
        }
    }

    std::vector<SearchHit> hits;
    hits.reserve(scores.size());
    for (const auto &[doc, score] : scores)
        hits.push_back(SearchHit{doc, score});
    std::sort(hits.begin(), hits.end(),
              [](const SearchHit &a, const SearchHit &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.docId < b.docId;
              });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

const Document &
InvertedIndex::document(int doc_id) const
{
    if (doc_id < 0 || static_cast<size_t>(doc_id) >= docs_.size())
        panic("InvertedIndex::document: id out of range");
    return docs_[static_cast<size_t>(doc_id)];
}

size_t
InvertedIndex::documentFrequency(const std::string &term) const
{
    const auto normalized = normalize(term);
    if (normalized.empty())
        return 0;
    auto it = postings_.find(normalized.front());
    return it == postings_.end() ? 0 : it->second.size();
}

} // namespace sirius::search
