/**
 * @file
 * Inverted index with BM25 ranking — the search substrate behind both the
 * QA service's retrieval stage and the Web Search baseline workload.
 */

#ifndef SIRIUS_SEARCH_INVERTED_INDEX_H
#define SIRIUS_SEARCH_INVERTED_INDEX_H

#include <string>
#include <unordered_map>
#include <vector>

#include "search/corpus.h"

namespace sirius::search {

/** A ranked retrieval hit. */
struct SearchHit
{
    int docId = -1;
    double score = 0.0;
};

/** BM25 parameters. */
struct Bm25Params
{
    double k1 = 1.2;
    double b = 0.75;
};

/** In-memory inverted index over a document collection. */
class InvertedIndex
{
  public:
    /**
     * Build over @p docs. Terms are lower-cased tokens, optionally
     * Porter-stemmed (@p stem) so queries and documents normalize the
     * same way.
     */
    explicit InvertedIndex(const std::vector<Document> &docs,
                           bool stem = true, Bm25Params params = {});

    /** Top-@p k documents by BM25 for the free-text @p query. */
    std::vector<SearchHit> search(const std::string &query,
                                  size_t k = 10) const;

    /** The indexed document for @p doc_id. */
    const Document &document(int doc_id) const;

    size_t documentCount() const { return docs_.size(); }
    size_t termCount() const { return postings_.size(); }

    /** Document frequency of @p term after normalization. */
    size_t documentFrequency(const std::string &term) const;

  private:
    struct Posting
    {
        int docId;
        uint32_t termFrequency;
    };

    std::vector<Document> docs_;
    bool stem_;
    Bm25Params params_;
    std::unordered_map<std::string, std::vector<Posting>> postings_;
    std::vector<uint32_t> docLengths_;
    double avgDocLength_ = 0.0;

    std::vector<std::string> normalize(const std::string &text) const;
};

} // namespace sirius::search

#endif // SIRIUS_SEARCH_INVERTED_INDEX_H
