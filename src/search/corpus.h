/**
 * @file
 * Synthetic encyclopedic corpus: the QA service's knowledge source.
 *
 * Substitution note (see DESIGN.md): OpenEphyra issues live web-search
 * queries; we substitute a built-in corpus whose facts cover the Sirius
 * query input set (Table 2 of the paper) plus the landmark entities used
 * by voice-image queries, embedded in filler so retrieval and filtering do
 * real discriminative work.
 */

#ifndef SIRIUS_SEARCH_CORPUS_H
#define SIRIUS_SEARCH_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace sirius::search {

/** One retrievable document. */
struct Document
{
    int id = 0;
    std::string title;
    std::string text;
};

/** A (question-focus, answer) fact used to build the corpus. */
struct Fact
{
    std::string subject;  ///< e.g. "the capital of Italy"
    std::string answer;   ///< e.g. "Rome" (capitalized proper form)
    std::string sentence; ///< full sentence stating the fact
};

/** The built-in fact table covering the Sirius query input set. */
const std::vector<Fact> &knowledgeFacts();

/** Human-readable name of landmark @p id (voice-image queries). */
std::string landmarkName(int id);

/**
 * Build the encyclopedia: one core document per fact, several related
 * documents mixing facts, and @p filler_docs filler documents of
 * template-generated text. Deterministic per @p seed.
 */
std::vector<Document> buildEncyclopedia(size_t filler_docs = 220,
                                        uint64_t seed = 31);

} // namespace sirius::search

#endif // SIRIUS_SEARCH_CORPUS_H
