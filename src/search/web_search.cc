#include "search/web_search.h"

namespace sirius::search {

WebSearch
WebSearch::build(size_t filler_docs, uint64_t seed)
{
    return WebSearch(buildEncyclopedia(filler_docs, seed));
}

WebSearch::WebSearch(std::vector<Document> docs)
    : index_(std::make_unique<InvertedIndex>(docs))
{
}

std::vector<WebResult>
WebSearch::query(const std::string &text, size_t k) const
{
    std::vector<WebResult> results;
    for (const auto &hit : index_->search(text, k)) {
        const Document &doc = index_->document(hit.docId);
        WebResult result;
        result.docId = doc.id;
        result.title = doc.title;
        result.snippet = doc.text.substr(0, 120);
        result.score = hit.score;
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace sirius::search
