#include "search/corpus.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace sirius::search {

const std::vector<Fact> &
knowledgeFacts()
{
    static const std::vector<Fact> facts = {
        {"las vegas location",
         "Nevada",
         "Las Vegas is a city located in the state of Nevada."},
        {"capital of italy",
         "Rome",
         "The capital of Italy is Rome, its largest and oldest city."},
        {"author of harry potter",
         "Joanne Rowling",
         "The author of the Harry Potter books is Joanne Rowling."},
        {"elected 44th president",
         "Barack Obama",
         "Barack Obama was elected the 44th president of the "
         "United States."},
        {"capital of france",
         "Paris",
         "The capital of France is Paris, home of the Eiffel Tower."},
        {"invented the telephone",
         "Alexander Bell",
         "The telephone was invented by Alexander Bell in 1876."},
        {"longest river in the world",
         "Nile",
         "The longest river in the world is the Nile in Africa."},
        {"painted the mona lisa",
         "Leonardo Da Vinci",
         "The Mona Lisa was painted by Leonardo Da Vinci."},
        {"largest ocean on earth",
         "Pacific",
         "The largest ocean on Earth is the Pacific Ocean."},
        {"wrote romeo and juliet",
         "William Shakespeare",
         "The play Romeo and Juliet was written by "
         "William Shakespeare."},
        {"eiffel tower location",
         "Paris",
         "The Eiffel Tower stands in Paris on the Champ of Mars."},
        {"currency of japan",
         "Yen",
         "The official currency of Japan is the Yen."},
        {"discovered the law of gravity",
         "Isaac Newton",
         "The law of gravity was discovered by Isaac Newton."},
        {"highest mountain in the world",
         "Everest",
         "The highest mountain in the world is Everest in the "
         "Himalaya range."},
        {"capital of cuba",
         "Havana",
         "The capital of Cuba is Havana, a port city founded in 1519."},
        {"current president of the united states",
         "Barack Obama",
         "The current president of the United States is Barack Obama."},
        // Landmark facts for the voice-image query pathway.
        {"falcon restaurant close",
         "9 Pm",
         "Falcon Restaurant closes at 9 Pm on weekdays and serves "
         "dinner from 5 Pm."},
        {"golden dragon restaurant close",
         "11 Pm",
         "Golden Dragon Restaurant closes at 11 Pm and is famous for "
         "noodles."},
        {"liberty museum close",
         "6 Pm",
         "Liberty Museum closes at 6 Pm and opens every morning at "
         "10 Am."},
        {"central library close",
         "8 Pm",
         "Central Library closes at 8 Pm except on national holidays."},
        {"harbor cafe close",
         "7 Pm",
         "Harbor Cafe closes at 7 Pm after the last ferry arrives."},
        {"summit bakery close",
         "5 Pm",
         "Summit Bakery closes at 5 Pm once the bread sells out."},
        {"union theater close",
         "12 Pm",
         "Union Theater closes at 12 Pm after the midnight showing."},
        {"riverside hotel close",
         "10 Pm",
         "The front desk of Riverside Hotel closes at 10 Pm for "
         "walk-in guests."},
        {"maple pharmacy close",
         "9 Pm",
         "Maple Pharmacy closes at 9 Pm and is open seven days a "
         "week."},
        {"crystal gallery close",
         "4 Pm",
         "Crystal Gallery closes at 4 Pm so exhibits can be "
         "rearranged."},
    };
    return facts;
}

std::string
landmarkName(int id)
{
    static const char *names[] = {
        "Falcon Restaurant", "Golden Dragon Restaurant", "Liberty Museum",
        "Central Library",   "Harbor Cafe",              "Summit Bakery",
        "Union Theater",     "Riverside Hotel",          "Maple Pharmacy",
        "Crystal Gallery",
    };
    constexpr int count = static_cast<int>(std::size(names));
    if (id < 0)
        fatal("landmarkName: negative id");
    return names[id % count];
}

namespace {

/** Filler sentence fragments used to pad documents realistically. */
std::string
fillerSentence(Rng &rng)
{
    static const std::vector<std::string> subjects = {
        "the region", "the city", "the museum", "the river",
        "the university", "the market", "the harbor", "the old town",
        "the festival", "the railway",
    };
    static const std::vector<std::string> verbs = {
        "attracts", "hosts", "supports", "borders", "celebrates",
        "features", "maintains", "documents", "produces", "welcomes",
    };
    static const std::vector<std::string> objects = {
        "many visitors every year", "a large yearly market",
        "an ancient stone bridge", "several famous gardens",
        "a busy trading port", "a collection of rare maps",
        "a popular music festival", "hundreds of local artists",
        "an extensive tram network", "a historic lighthouse",
    };
    return subjects[rng.below(subjects.size())] + " " +
        verbs[rng.below(verbs.size())] + " " +
        objects[rng.below(objects.size())];
}

std::string
fillerParagraph(Rng &rng, size_t sentences)
{
    std::string out;
    for (size_t i = 0; i < sentences; ++i) {
        std::string s = fillerSentence(rng);
        s[0] = static_cast<char>(std::toupper(
            static_cast<unsigned char>(s[0])));
        out += s + ". ";
    }
    return out;
}

} // namespace

std::vector<Document>
buildEncyclopedia(size_t filler_docs, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Document> docs;
    int next_id = 0;

    // One core document per fact: the fact sentence surrounded by filler.
    for (const auto &fact : knowledgeFacts()) {
        Document doc;
        doc.id = next_id++;
        doc.title = fact.subject;
        doc.text = fillerParagraph(rng, 2) + fact.sentence + " " +
            fillerParagraph(rng, 3);
        docs.push_back(std::move(doc));
    }

    // Mixed documents each restating two facts (retrieval has to rank).
    const auto &facts = knowledgeFacts();
    for (size_t i = 0; i + 1 < facts.size(); i += 2) {
        Document doc;
        doc.id = next_id++;
        doc.title = "notes " + std::to_string(i);
        doc.text = fillerParagraph(rng, 1) + facts[i].sentence + " " +
            fillerParagraph(rng, 2) + facts[i + 1].sentence + " " +
            fillerParagraph(rng, 1);
        docs.push_back(std::move(doc));
    }

    // Pure filler documents.
    for (size_t i = 0; i < filler_docs; ++i) {
        Document doc;
        doc.id = next_id++;
        doc.title = "article " + std::to_string(i);
        doc.text = fillerParagraph(rng, 6 + rng.below(8));
        docs.push_back(std::move(doc));
    }
    return docs;
}

} // namespace sirius::search
