#include "dcsim/designer.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace sirius::dcsim {

const char *
objectiveName(Objective objective)
{
    switch (objective) {
      case Objective::MinLatency:
        return "min-latency";
      case Objective::MinTcoWithLatency:
        return "min-TCO (w/ latency constraint)";
      case Objective::MaxPowerEffWithLatency:
        return "max-power-eff (w/ latency constraint)";
    }
    return "?";
}

std::vector<accel::Platform>
CandidateSet::platforms() const
{
    std::vector<accel::Platform> out = {accel::Platform::CmpMulticore};
    if (allowGpu)
        out.push_back(accel::Platform::Gpu);
    if (allowPhi)
        out.push_back(accel::Platform::Phi);
    if (allowFpga)
        out.push_back(accel::Platform::Fpga);
    return out;
}

DatacenterDesigner::DatacenterDesigner(
    std::vector<accel::ServiceProfile> profiles,
    const accel::SpeedupModel &model, TcoParams params)
    : profiles_(std::move(profiles)), model_(model), params_(params)
{
    if (profiles_.empty())
        fatal("DatacenterDesigner: no service profiles");
}

const accel::ServiceProfile &
DatacenterDesigner::profileOf(accel::ServiceKind kind) const
{
    for (const auto &profile : profiles_) {
        if (profile.kind == kind)
            return profile;
    }
    panic("DatacenterDesigner: unknown service kind");
}

DesignPoint
DatacenterDesigner::evaluate(accel::ServiceKind service,
                             accel::Platform platform) const
{
    const auto &profile = profileOf(service);
    DesignPoint point;
    point.platform = platform;
    point.latencySeconds = accel::serviceLatency(profile, model_,
                                                 platform);
    const double base = accel::serviceLatency(profile, model_,
                                              accel::Platform::Cmp);
    point.latencyImprovement = base / point.latencySeconds;
    point.normalizedTco = normalizedTco(
        platform,
        accel::throughputImprovement(profile, model_, platform),
        params_);
    point.perfPerWatt = accel::perfPerWattVsMulticore(profile, model_,
                                                      platform);
    const double constraint = accel::serviceLatency(
        profile, model_, accel::Platform::CmpMulticore);
    point.meetsLatencyConstraint =
        point.latencySeconds <= constraint * (1.0 + 1e-9);
    return point;
}

double
DatacenterDesigner::score(Objective objective,
                          const DesignPoint &point) const
{
    switch (objective) {
      case Objective::MinLatency:
        return point.latencySeconds;
      case Objective::MinTcoWithLatency:
        if (!point.meetsLatencyConstraint)
            return std::numeric_limits<double>::infinity();
        return point.normalizedTco;
      case Objective::MaxPowerEffWithLatency:
        if (!point.meetsLatencyConstraint)
            return std::numeric_limits<double>::infinity();
        return -point.perfPerWatt;
    }
    return std::numeric_limits<double>::infinity();
}

accel::Platform
DatacenterDesigner::homogeneousDesign(Objective objective,
                                      const CandidateSet &set) const
{
    accel::Platform best = accel::Platform::CmpMulticore;
    double best_score = std::numeric_limits<double>::infinity();
    for (accel::Platform platform : set.platforms()) {
        // Aggregate the objective across every service.
        double aggregate = 0.0;
        bool feasible = true;
        for (const auto &profile : profiles_) {
            const DesignPoint point = evaluate(profile.kind, platform);
            const double s = score(objective, point);
            if (std::isinf(s)) {
                feasible = false;
                break;
            }
            // Latency/TCO aggregate additively in log space so one
            // service cannot dominate purely by magnitude.
            aggregate += objective == Objective::MinLatency
                ? s
                : std::log(objective == Objective::MinTcoWithLatency
                               ? s
                               : -1.0 / s);
        }
        if (!feasible)
            continue;
        if (aggregate < best_score) {
            best_score = aggregate;
            best = platform;
        }
    }
    return best;
}

std::vector<std::pair<accel::ServiceKind, accel::Platform>>
DatacenterDesigner::heterogeneousDesign(Objective objective,
                                        const CandidateSet &set) const
{
    std::vector<std::pair<accel::ServiceKind, accel::Platform>> out;
    for (const auto &profile : profiles_) {
        accel::Platform best = accel::Platform::CmpMulticore;
        double best_score = std::numeric_limits<double>::infinity();
        for (accel::Platform platform : set.platforms()) {
            const double s = score(objective,
                                   evaluate(profile.kind, platform));
            if (s < best_score) {
                best_score = s;
                best = platform;
            }
        }
        out.emplace_back(profile.kind, best);
    }
    return out;
}

double
DatacenterDesigner::heterogeneousGain(Objective objective,
                                      const CandidateSet &set,
                                      accel::ServiceKind service) const
{
    const accel::Platform homogeneous = homogeneousDesign(objective, set);
    accel::Platform hetero = homogeneous;
    for (const auto &[kind, platform] : heterogeneousDesign(objective,
                                                            set)) {
        if (kind == service)
            hetero = platform;
    }
    const DesignPoint h = evaluate(service, homogeneous);
    const DesignPoint p = evaluate(service, hetero);
    switch (objective) {
      case Objective::MinLatency:
        return h.latencySeconds / p.latencySeconds;
      case Objective::MinTcoWithLatency:
        return h.normalizedTco / p.normalizedTco;
      case Objective::MaxPowerEffWithLatency:
        return p.perfPerWatt / h.perfPerWatt;
    }
    return 1.0;
}

} // namespace sirius::dcsim
