/**
 * @file
 * Total-cost-of-ownership model (Table 7), after Barroso, Clidaras and
 * Hoelzle's "The Datacenter as a Computer" — the model the paper uses
 * for Figure 18 and the datacenter design tables.
 */

#ifndef SIRIUS_DCSIM_TCO_H
#define SIRIUS_DCSIM_TCO_H

#include "accel/platform.h"

namespace sirius::dcsim {

/** Table 7 parameters. */
struct TcoParams
{
    double dcDepreciationYears = 12.0;
    double serverDepreciationYears = 3.0;
    double averageUtilization = 0.45;
    double electricityPerKwh = 0.067;
    double dcPricePerWatt = 10.0;       ///< construction capex, $/W
    double dcOpexPerWattMonth = 0.04;   ///< $/W/month
    double serverOpexFraction = 0.05;   ///< of server capex, per year
    double serverPriceUsd = 2102.0;     ///< baseline server [44]
    double serverPowerWatts = 163.6;    ///< baseline server [44]
    double pue = 1.1;
};

/** One server configuration for costing. */
struct ServerConfig
{
    double priceUsd;    ///< server + accelerator purchase price
    double powerWatts;  ///< server + accelerator power draw
};

/** Baseline server from Table 7. */
ServerConfig baselineServer(const TcoParams &params = {});

/** Baseline server augmented with @p platform's accelerator card. */
ServerConfig acceleratedServer(accel::Platform platform,
                               const TcoParams &params = {});

/**
 * Yearly TCO of one server: amortized server capex, server opex,
 * amortized DC construction share, DC opex and energy.
 */
double serverYearlyTco(const ServerConfig &server,
                       const TcoParams &params = {});

/**
 * Datacenter TCO (per year) to serve @p target_qps given each server
 * sustains @p server_qps.
 */
double datacenterYearlyTco(const ServerConfig &server, double server_qps,
                           double target_qps,
                           const TcoParams &params = {});

/**
 * TCO of a @p platform-accelerated datacenter relative to the CMP
 * datacenter at equal throughput, where the accelerated server improves
 * per-server throughput by @p throughput_improvement.
 * @return normalized TCO (< 1 means cheaper than baseline).
 */
double normalizedTco(accel::Platform platform,
                     double throughput_improvement,
                     const TcoParams &params = {});

} // namespace sirius::dcsim

#endif // SIRIUS_DCSIM_TCO_H
