#include "dcsim/queueing.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace sirius::dcsim {

double
mm1Latency(double lambda, double mu)
{
    if (mu <= 0.0)
        fatal("mm1Latency: service rate must be positive");
    if (lambda < 0.0)
        fatal("mm1Latency: arrival rate must be non-negative");
    if (lambda >= mu)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (mu - lambda);
}

double
mm1MaxArrival(double mu, double latency_bound)
{
    if (mu <= 0.0 || latency_bound <= 0.0)
        fatal("mm1MaxArrival: arguments must be positive");
    return std::max(0.0, mu - 1.0 / latency_bound);
}

double
mm1Utilization(double lambda, double mu)
{
    if (mu <= 0.0)
        fatal("mm1Utilization: service rate must be positive");
    return std::clamp(lambda / mu, 0.0, 1.0);
}

double
throughputImprovementAtLoad(double speedup, double rho)
{
    if (speedup <= 0.0)
        fatal("throughputImprovementAtLoad: speedup must be positive");
    if (rho <= 0.0 || rho >= 1.0)
        fatal("throughputImprovementAtLoad: rho must be in (0, 1)");
    // Baseline: mu = 1, lambda = rho, latency L0 = 1 / (1 - rho).
    const double l0 = 1.0 / (1.0 - rho);
    // Accelerated: highest lambda with latency <= L0 given mu = speedup.
    const double lambda = mm1MaxArrival(speedup, l0);
    return lambda / rho;
}

double
shardedMm1Latency(double lambda, double mu, unsigned shards)
{
    if (shards == 0)
        fatal("shardedMm1Latency: shards must be >= 1");
    return mm1Latency(lambda / shards, mu);
}

double
shardedMm1MaxArrival(double mu, double latency_bound, unsigned shards)
{
    if (shards == 0)
        fatal("shardedMm1MaxArrival: shards must be >= 1");
    return shards * mm1MaxArrival(mu, latency_bound);
}

} // namespace sirius::dcsim
