#include "dcsim/simulation.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/logging.h"
#include "common/rng.h"

namespace sirius::dcsim {

namespace {

double
exponentialDraw(Rng &rng, double rate)
{
    double u = rng.uniform();
    while (u <= 1e-300)
        u = rng.uniform();
    return -std::log(u) / rate;
}

double
serviceDraw(Rng &rng, const QueueSimConfig &config)
{
    const double mean = 1.0 / config.serviceRate;
    switch (config.distribution) {
      case ServiceDistribution::Exponential:
        return exponentialDraw(rng, config.serviceRate);
      case ServiceDistribution::Deterministic:
        return mean;
      case ServiceDistribution::HeavyTailed: {
        // Two-point mixture with the same mean as the exponential case:
        // fast queries at f, slow at slowFactor * f, where
        // (1-p) * f + p * slowFactor * f = mean.
        const double f = mean /
            (1.0 - config.slowProbability +
             config.slowProbability * config.slowFactor);
        return rng.chance(config.slowProbability)
            ? f * config.slowFactor : f;
      }
    }
    return mean;
}

} // namespace

QueueSimResult
simulateQueue(const QueueSimConfig &config)
{
    if (config.arrivalRate <= 0.0 || config.serviceRate <= 0.0)
        fatal("simulateQueue: rates must be positive");
    if (config.arrivalRate >= config.serviceRate)
        fatal("simulateQueue: unstable queue (lambda >= mu)");

    Rng rng(config.seed);
    QueueSimResult result;

    // Lindley recursion for a single FIFO server: no event heap needed.
    // departure(n) = max(arrival(n), departure(n-1)) + service(n).
    const size_t total = config.warmupQueries + config.measuredQueries;
    double clock = 0.0;            // arrival time of the current query
    double last_departure = 0.0;
    double busy_time = 0.0;

    std::deque<double> in_system;  // departure times of queued queries

    for (size_t i = 0; i < total; ++i) {
        clock += exponentialDraw(rng, config.arrivalRate);
        const double service = serviceDraw(rng, config);
        const double start = std::max(clock, last_departure);
        const double departure = start + service;
        busy_time += service;
        last_departure = departure;

        while (!in_system.empty() && in_system.front() <= clock)
            in_system.pop_front();
        if (i >= config.warmupQueries) {
            result.sojournSeconds.add(departure - clock);
            result.queueDepth.add(
                static_cast<double>(in_system.size()));
        }
        in_system.push_back(departure);
    }

    result.simulatedSeconds = last_departure;
    result.utilization = busy_time / last_departure;
    return result;
}

QueueSimResult
simulateQueueEmpirical(const std::vector<double> &service_samples,
                       double arrival_rate, size_t measured_queries,
                       uint64_t seed)
{
    if (service_samples.empty())
        fatal("simulateQueueEmpirical: no service samples");
    if (arrival_rate <= 0.0)
        fatal("simulateQueueEmpirical: arrival rate must be positive");
    double mean_service = 0.0;
    for (double s : service_samples)
        mean_service += s;
    mean_service /= static_cast<double>(service_samples.size());
    if (arrival_rate * mean_service >= 1.0)
        fatal("simulateQueueEmpirical: unstable queue (load >= 1)");

    Rng rng(seed);
    QueueSimResult result;
    const size_t warmup = measured_queries / 10;
    const size_t total = warmup + measured_queries;
    double clock = 0.0, last_departure = 0.0, busy_time = 0.0;
    std::deque<double> in_system;

    for (size_t i = 0; i < total; ++i) {
        clock += exponentialDraw(rng, arrival_rate);
        const double service =
            service_samples[rng.below(service_samples.size())];
        const double start = std::max(clock, last_departure);
        const double departure = start + service;
        busy_time += service;
        last_departure = departure;

        while (!in_system.empty() && in_system.front() <= clock)
            in_system.pop_front();
        if (i >= warmup) {
            result.sojournSeconds.add(departure - clock);
            result.queueDepth.add(
                static_cast<double>(in_system.size()));
        }
        in_system.push_back(departure);
    }
    result.simulatedSeconds = last_departure;
    result.utilization = busy_time / last_departure;
    return result;
}

double
simulatedMaxArrival(double service_rate, double latency_bound,
                    ServiceDistribution distribution, uint64_t seed)
{
    if (latency_bound <= 1.0 / service_rate)
        return 0.0;
    double lo = 0.0;
    double hi = service_rate * 0.999;
    for (int iter = 0; iter < 18; ++iter) {
        const double mid = 0.5 * (lo + hi);
        QueueSimConfig config;
        config.arrivalRate = mid;
        config.serviceRate = service_rate;
        config.distribution = distribution;
        config.measuredQueries = 8000;
        config.warmupQueries = 1000;
        config.seed = seed + static_cast<uint64_t>(iter);
        const auto result = simulateQueue(config);
        if (result.sojournSeconds.mean() <= latency_bound)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace sirius::dcsim
