#include "dcsim/scalability.h"

#include <cmath>

#include "common/logging.h"

namespace sirius::dcsim {

double
scalabilityGap(double ipa_latency_seconds,
               double websearch_latency_seconds)
{
    if (ipa_latency_seconds <= 0.0 || websearch_latency_seconds <= 0.0)
        fatal("scalabilityGap: latencies must be positive");
    return ipa_latency_seconds / websearch_latency_seconds;
}

double
machinesRatio(double gap, double query_ratio)
{
    if (gap <= 0.0 || query_ratio < 0.0)
        fatal("machinesRatio: invalid arguments");
    // A fleet of 1.0 serves the Web Search load; IPA queries at
    // query_ratio x the search rate each cost `gap` x the compute.
    return 1.0 + gap * query_ratio;
}

double
bridgedGap(double gap, double end_to_end_speedup)
{
    if (end_to_end_speedup <= 0.0)
        fatal("bridgedGap: speedup must be positive");
    return gap / end_to_end_speedup;
}

ScalingCurve
scalingCurve(double gap, int steps)
{
    ScalingCurve curve;
    for (int i = 0; i < steps; ++i) {
        const double ratio = std::pow(10.0, i - 2);
        curve.queryRatios.push_back(ratio);
        curve.machineRatios.push_back(machinesRatio(gap, ratio));
    }
    return curve;
}

} // namespace sirius::dcsim
