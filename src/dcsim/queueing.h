/**
 * @file
 * M/M/1 queueing model used by the throughput-under-load analysis
 * (Figure 17): a leaf server is an exponential server with service rate
 * mu; latency includes queueing delay.
 */

#ifndef SIRIUS_DCSIM_QUEUEING_H
#define SIRIUS_DCSIM_QUEUEING_H

namespace sirius::dcsim {

/**
 * Mean sojourn (queue + service) time of an M/M/1 queue.
 * @param lambda arrival rate (queries/s), must be < mu
 * @param mu service rate (queries/s)
 * @return mean latency in seconds; +inf when lambda >= mu
 */
double mm1Latency(double lambda, double mu);

/**
 * Highest arrival rate an M/M/1 server sustains while keeping mean
 * latency <= @p latency_bound. Zero when the bound is below 1/mu.
 */
double mm1MaxArrival(double mu, double latency_bound);

/** Server utilization lambda/mu in [0, 1). */
double mm1Utilization(double lambda, double mu);

/**
 * Throughput improvement of an accelerated server over the baseline at
 * matched latency (Figure 17). The baseline server has service rate 1
 * (normalized) and operates at load @p rho in (0, 1); the accelerated
 * server's service rate is @p speedup. Both must meet the baseline's
 * mean latency at that load; the improvement is the ratio of their
 * highest compliant arrival rates.
 */
double throughputImprovementAtLoad(double speedup, double rho);

} // namespace sirius::dcsim

#endif // SIRIUS_DCSIM_QUEUEING_H
