/**
 * @file
 * M/M/1 queueing model used by the throughput-under-load analysis
 * (Figure 17): a leaf server is an exponential server with service rate
 * mu; latency includes queueing delay.
 */

#ifndef SIRIUS_DCSIM_QUEUEING_H
#define SIRIUS_DCSIM_QUEUEING_H

namespace sirius::dcsim {

/**
 * Mean sojourn (queue + service) time of an M/M/1 queue.
 * @param lambda arrival rate (queries/s), must be < mu
 * @param mu service rate (queries/s)
 * @return mean latency in seconds; +inf when lambda >= mu
 */
double mm1Latency(double lambda, double mu);

/**
 * Highest arrival rate an M/M/1 server sustains while keeping mean
 * latency <= @p latency_bound. Zero when the bound is below 1/mu.
 */
double mm1MaxArrival(double mu, double latency_bound);

/** Server utilization lambda/mu in [0, 1). */
double mm1Utilization(double lambda, double mu);

/**
 * Throughput improvement of an accelerated server over the baseline at
 * matched latency (Figure 17). The baseline server has service rate 1
 * (normalized) and operates at load @p rho in (0, 1); the accelerated
 * server's service rate is @p speedup. Both must meet the baseline's
 * mean latency at that load; the improvement is the ratio of their
 * highest compliant arrival rates.
 */
double throughputImprovementAtLoad(double speedup, double rho);

/**
 * Mean sojourn time of a fleet of @p shards independent M/M/1 servers
 * behind a balanced router: each shard sees lambda/shards and serves at
 * @p mu, so the fleet's mean latency is mm1Latency(lambda/shards, mu).
 * This is the analytic cross-check of the cluster tier's measured
 * scaling curves (bench_fig17_mm1_load --shards).
 * @param lambda aggregate arrival rate across the fleet (queries/s)
 * @param mu per-shard service rate (queries/s)
 * @param shards number of shards (>= 1)
 */
double shardedMm1Latency(double lambda, double mu, unsigned shards);

/**
 * Highest aggregate arrival rate a fleet of @p shards M/M/1 servers
 * sustains at mean latency <= @p latency_bound: capacity adds, so it is
 * shards * mm1MaxArrival(mu, latency_bound). The linear-scaling law the
 * cluster tier's throughput columns are validated against.
 */
double shardedMm1MaxArrival(double mu, double latency_bound,
                            unsigned shards);

} // namespace sirius::dcsim

#endif // SIRIUS_DCSIM_QUEUEING_H
