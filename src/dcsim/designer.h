/**
 * @file
 * Datacenter design-space exploration: homogeneous and partitioned-
 * heterogeneous designs under the paper's three objectives (Tables 8, 9)
 * and the latency/TCO trade-off data behind Figure 19.
 */

#ifndef SIRIUS_DCSIM_DESIGNER_H
#define SIRIUS_DCSIM_DESIGNER_H

#include <vector>

#include "accel/latency.h"
#include "dcsim/tco.h"

namespace sirius::dcsim {

/** Table 8/9 row objectives. */
enum class Objective
{
    MinLatency,              ///< Hmg-latency
    MinTcoWithLatency,       ///< Hmg-TCO (w/ latency constraint)
    MaxPowerEffWithLatency,  ///< Hmg-power eff. (w/ latency constraint)
};

/** Objective display name. */
const char *objectiveName(Objective objective);

/** Table 8/9 column groups: which accelerators may be used. */
struct CandidateSet
{
    bool allowGpu = true;
    bool allowPhi = true;
    bool allowFpga = true;

    /** The allowed platform list (always includes the CMP rows). */
    std::vector<accel::Platform> platforms() const;
};

/** Metrics of one (service, platform) cell. */
struct DesignPoint
{
    accel::Platform platform;
    double latencySeconds;
    double latencyImprovement;   ///< vs 1-thread CMP
    double normalizedTco;        ///< vs CMP datacenter (< 1 is better)
    double perfPerWatt;          ///< vs multicore CMP
    bool meetsLatencyConstraint; ///< <= CMP (sub-query) latency
};

/** Explores the design space over measured service profiles. */
class DatacenterDesigner
{
  public:
    DatacenterDesigner(std::vector<accel::ServiceProfile> profiles,
                       const accel::SpeedupModel &model,
                       TcoParams params = {});

    /** Metrics of one cell. */
    DesignPoint evaluate(accel::ServiceKind service,
                         accel::Platform platform) const;

    /**
     * Best single platform across all services (homogeneous DC).
     * Aggregation: mean latency for MinLatency; geometric-mean TCO or
     * mean perf/W under the latency constraint otherwise. Falls back to
     * the multicore CMP when no candidate meets the constraint.
     */
    accel::Platform homogeneousDesign(Objective objective,
                                      const CandidateSet &set) const;

    /** Best platform per service (partitioned heterogeneous DC). */
    std::vector<std::pair<accel::ServiceKind, accel::Platform>>
    heterogeneousDesign(Objective objective,
                        const CandidateSet &set) const;

    /**
     * Improvement of the heterogeneous choice for @p service over the
     * homogeneous design on the metric of @p objective (e.g. Table 9's
     * "GPU (3.6x)" latency or "FPGA (20%)" TCO cells).
     */
    double heterogeneousGain(Objective objective, const CandidateSet &set,
                             accel::ServiceKind service) const;

    const std::vector<accel::ServiceProfile> &profiles() const
    {
        return profiles_;
    }

  private:
    std::vector<accel::ServiceProfile> profiles_;
    const accel::SpeedupModel &model_;
    TcoParams params_;

    const accel::ServiceProfile &profileOf(accel::ServiceKind kind) const;

    /** Objective score (lower is better). */
    double score(Objective objective, const DesignPoint &point) const;
};

} // namespace sirius::dcsim

#endif // SIRIUS_DCSIM_DESIGNER_H
