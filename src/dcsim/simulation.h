/**
 * @file
 * Discrete-event simulation of a leaf server's queue.
 *
 * The paper models servers as M/M/1 queues (Figure 17). The analytic
 * formulas in queueing.h give the steady-state means; this event-driven
 * simulator generates actual arrival/service processes so the analytics
 * can be validated (tests assert agreement) and non-exponential service
 * distributions — like the heavy-tailed QA latencies of Figure 8 — can
 * be studied, which closed forms do not cover.
 */

#ifndef SIRIUS_DCSIM_SIMULATION_H
#define SIRIUS_DCSIM_SIMULATION_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.h"

namespace sirius::dcsim {

/** Service-time distribution choices. */
enum class ServiceDistribution
{
    Exponential,   ///< M/M/1
    Deterministic, ///< M/D/1
    HeavyTailed,   ///< two-point mix: mostly fast, occasionally very slow
};

/** Simulation parameters. */
struct QueueSimConfig
{
    double arrivalRate = 0.5;   ///< Poisson arrivals, queries/s
    double serviceRate = 1.0;   ///< mean service rate, queries/s
    ServiceDistribution distribution = ServiceDistribution::Exponential;
    /** HeavyTailed: probability of a slow query and its slowdown. */
    double slowProbability = 0.05;
    double slowFactor = 10.0;
    size_t warmupQueries = 2000;   ///< dropped from the statistics
    size_t measuredQueries = 20000;
    uint64_t seed = 421;
};

/** Simulation outcome. */
struct QueueSimResult
{
    SampleStats sojournSeconds;  ///< queue + service time per query
    SampleStats queueDepth;      ///< sampled at each arrival
    double utilization = 0.0;    ///< busy time / total time
    double simulatedSeconds = 0.0;
};

/** Run the single-server FIFO queue simulation. */
QueueSimResult simulateQueue(const QueueSimConfig &config);

/**
 * Simulate the queue with service times resampled from measured
 * @p service_samples (bootstrap), e.g. the per-query QA latencies of
 * Figure 8. Arrivals remain Poisson at @p arrival_rate. This connects
 * the real pipeline's latency distribution to the Figure-17 queueing
 * analysis without assuming exponential service.
 */
QueueSimResult simulateQueueEmpirical(
    const std::vector<double> &service_samples, double arrival_rate,
    size_t measured_queries = 20000, uint64_t seed = 77);

/**
 * Highest arrival rate (found by bisection on the simulator) that keeps
 * the mean sojourn time within @p latency_bound. The simulated
 * counterpart of mm1MaxArrival().
 */
double simulatedMaxArrival(double service_rate, double latency_bound,
                           ServiceDistribution distribution =
                               ServiceDistribution::Exponential,
                           uint64_t seed = 99);

} // namespace sirius::dcsim

#endif // SIRIUS_DCSIM_SIMULATION_H
