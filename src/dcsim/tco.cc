#include "dcsim/tco.h"

#include <cmath>

#include "common/logging.h"

namespace sirius::dcsim {

ServerConfig
baselineServer(const TcoParams &params)
{
    return ServerConfig{params.serverPriceUsd, params.serverPowerWatts};
}

ServerConfig
acceleratedServer(accel::Platform platform, const TcoParams &params)
{
    ServerConfig server = baselineServer(params);
    switch (platform) {
      case accel::Platform::Cmp:
      case accel::Platform::CmpMulticore:
        return server; // the CPU is already part of the server
      default:
        break;
    }
    const auto &spec = accel::platformSpec(platform);
    server.priceUsd += spec.costUsd;
    server.powerWatts += spec.tdpWatts;
    return server;
}

double
serverYearlyTco(const ServerConfig &server, const TcoParams &params)
{
    // Server capital, amortized over its depreciation window.
    const double server_capex =
        server.priceUsd / params.serverDepreciationYears;
    // Server operational expenditure: fraction of capex per year.
    const double server_opex =
        params.serverOpexFraction * server.priceUsd;
    // Datacenter construction is provisioned per watt of critical power
    // and amortized over the facility's life.
    const double provisioned_watts = server.powerWatts * params.pue;
    const double dc_capex = params.dcPricePerWatt * provisioned_watts /
        params.dcDepreciationYears;
    // Facility operations, billed monthly per provisioned watt.
    const double dc_opex =
        params.dcOpexPerWattMonth * provisioned_watts * 12.0;
    // Energy: average utilization of peak power, PUE overhead included.
    const double kwh_per_year = server.powerWatts *
        params.averageUtilization * params.pue * 8760.0 / 1000.0;
    const double energy = kwh_per_year * params.electricityPerKwh;

    return server_capex + server_opex + dc_capex + dc_opex + energy;
}

double
datacenterYearlyTco(const ServerConfig &server, double server_qps,
                    double target_qps, const TcoParams &params)
{
    if (server_qps <= 0.0 || target_qps <= 0.0)
        fatal("datacenterYearlyTco: rates must be positive");
    const double servers = std::ceil(target_qps / server_qps);
    return servers * serverYearlyTco(server, params);
}

double
normalizedTco(accel::Platform platform, double throughput_improvement,
              const TcoParams &params)
{
    if (throughput_improvement <= 0.0)
        fatal("normalizedTco: throughput improvement must be positive");
    // Large fleet limit: the ceil() granularity washes out, so compare
    // per-throughput costs directly.
    const double base_cost_per_qps =
        serverYearlyTco(baselineServer(params), params);
    const double accel_cost_per_qps =
        serverYearlyTco(acceleratedServer(platform, params), params) /
        throughput_improvement;
    return accel_cost_per_qps / base_cost_per_qps;
}

} // namespace sirius::dcsim
