/**
 * @file
 * Scalability-gap arithmetic behind Figures 1, 7a and 21: how many
 * machines a datacenter sized for Web Search must add to carry IPA
 * queries, and how far acceleration closes that gap.
 */

#ifndef SIRIUS_DCSIM_SCALABILITY_H
#define SIRIUS_DCSIM_SCALABILITY_H

#include <vector>

namespace sirius::dcsim {

/**
 * Resource (machine) scaling factor needed to serve one IPA query per
 * Web Search query: the ratio of per-query compute time.
 */
double scalabilityGap(double ipa_latency_seconds,
                      double websearch_latency_seconds);

/**
 * Machines (relative to the Web Search fleet) needed when IPA queries
 * arrive at @p query_ratio times the Web Search query rate.
 */
double machinesRatio(double gap, double query_ratio);

/** Gap remaining after accelerating the IPA pipeline by @p speedup. */
double bridgedGap(double gap, double end_to_end_speedup);

/** One (query_ratio, machines) curve for Figure 7a's right panel. */
struct ScalingCurve
{
    std::vector<double> queryRatios;
    std::vector<double> machineRatios;
};

/** Sample machinesRatio over ratios 10^-2 .. 10^(steps-3). */
ScalingCurve scalingCurve(double gap, int steps = 5);

} // namespace sirius::dcsim

#endif // SIRIUS_DCSIM_SCALABILITY_H
