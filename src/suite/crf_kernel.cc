#include "suite/crf_kernel.h"

#include <atomic>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "nlp/pos_corpus.h"

namespace sirius::suite {

CrfKernel::CrfKernel(size_t sentences, size_t train_sentences,
                     uint64_t seed)
{
    tagger_ = std::make_unique<nlp::CrfTagger>(size_t{1} << 15);
    nlp::CrfTagger::TrainOptions opts;
    opts.epochs = 3;
    opts.shuffleSeed = seed;
    tagger_->train(nlp::generatePosCorpus(train_sentences, seed), opts);

    for (const auto &s : nlp::generatePosCorpus(sentences, seed ^ 0x77))
        sentences_.push_back(s.words);
}

uint64_t
CrfKernel::tagRange(size_t begin, size_t end) const
{
    uint64_t checksum = 0;
    for (size_t i = begin; i < end; ++i) {
        const auto tags = tagger_->tag(sentences_[i]);
        uint64_t digest = 0;
        for (const auto tag : tags)
            digest = digest * 31 + static_cast<uint64_t>(tag);
        checksum += digest;
    }
    return checksum;
}

KernelResult
CrfKernel::runSerial() const
{
    KernelResult result;
    Stopwatch watch;
    result.checksum = tagRange(0, sentences_.size());
    result.seconds = watch.seconds();
    return result;
}

KernelResult
CrfKernel::runThreaded(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;
    std::atomic<uint64_t> checksum{0};
    parallelFor(sentences_.size(), threads,
                [this, &checksum](size_t begin, size_t end) {
                    checksum += tagRange(begin, end);
                });
    result.checksum = checksum.load();
    result.seconds = watch.seconds();
    return result;
}

} // namespace sirius::suite
