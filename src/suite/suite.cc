#include "suite/suite.h"

#include "suite/crf_kernel.h"
#include "suite/dnn_kernel.h"
#include "suite/fd_kernel.h"
#include "suite/fe_kernel.h"
#include "suite/gmm_kernel.h"
#include "suite/regex_kernel.h"
#include "suite/stemmer_kernel.h"

namespace sirius::suite {

const char *
serviceName(Service service)
{
    switch (service) {
      case Service::Asr: return "ASR";
      case Service::Qa: return "QA";
      case Service::Imm: return "IMM";
    }
    return "?";
}

std::vector<std::unique_ptr<SuiteKernel>>
makeSuite(SuiteScale scale, uint64_t seed)
{
    const bool full = scale == SuiteScale::Full;
    std::vector<std::unique_ptr<SuiteKernel>> kernels;
    // Table 4 order: GMM, DNN, Stemmer, Regex, CRF, FE, FD.
    kernels.push_back(std::make_unique<GmmKernel>(
        full ? 512 : 64,      // HMM states (senones)
        full ? 8 : 3,         // Gaussians per state
        full ? 256 : 32,      // frames
        full ? 32 : 13,       // feature dims
        seed));
    kernels.push_back(std::make_unique<DnnKernel>(
        full ? std::vector<size_t>{440, 1024, 1024, 1024, 512}
             : std::vector<size_t>{64, 128, 128, 64},
        full ? 128 : 32, seed + 1));
    kernels.push_back(std::make_unique<StemmerKernel>(
        full ? 4000000 : 20000, seed + 2));
    kernels.push_back(std::make_unique<RegexKernel>(
        full ? 100 : 30, full ? 400 : 60, seed + 3));
    kernels.push_back(std::make_unique<CrfKernel>(
        full ? 2000 : 100, full ? 300 : 120, seed + 4));
    kernels.push_back(std::make_unique<FeKernel>(
        full ? 1024 : 256, seed + 5));
    kernels.push_back(std::make_unique<FdKernel>(
        full ? 1024 : 256, seed + 6));
    return kernels;
}

} // namespace sirius::suite
