/**
 * @file
 * Sirius Suite Stemmer kernel: Porter-stemming a large word list
 * (Table 4, row 3). Input: a word list — full scale (makeSuite)
 * matches the paper's 4,000,000 words. Data granularity of the
 * threaded port: for each individual word.
 */

#ifndef SIRIUS_SUITE_STEMMER_KERNEL_H
#define SIRIUS_SUITE_STEMMER_KERNEL_H

#include "suite/suite.h"

namespace sirius::suite {

/** Porter-stemmer kernel. Parallel granularity: per individual word. */
class StemmerKernel : public SuiteKernel
{
  public:
    /** @param words word-list size (paper: 4,000,000). */
    StemmerKernel(size_t words, uint64_t seed);

    const char *name() const override { return "Stemmer"; }
    Service service() const override { return Service::Qa; }
    const char *granularity() const override
    {
        return "for each individual word";
    }

    KernelResult runSerial() const override;
    KernelResult runThreaded(size_t threads) const override;

    /**
     * Interlaced-access variant (the paper's Phi tuning: thread t takes
     * words t, t+T, t+2T, ...).
     */
    KernelResult runThreadedInterlaced(size_t threads) const;

    size_t wordCount() const { return words_.size(); }

  private:
    std::vector<std::string> words_;

    uint64_t stemRange(size_t begin, size_t end) const;
    uint64_t stemStrided(size_t start, size_t stride) const;
};

} // namespace sirius::suite

#endif // SIRIUS_SUITE_STEMMER_KERNEL_H
