#include "suite/fd_kernel.h"

#include <atomic>
#include <cmath>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "vision/landmarks.h"

namespace sirius::suite {

FdKernel::FdKernel(int image_size, uint64_t seed)
    : image_(vision::generateLandmark(static_cast<int>(seed % 89) + 1,
                                      image_size, image_size))
{
    integral_ = std::make_unique<vision::IntegralImage>(image_);
    keypoints_ = vision::detectKeypoints(*integral_);
}

uint64_t
FdKernel::describeRange(size_t begin, size_t end) const
{
    uint64_t checksum = 0;
    for (size_t i = begin; i < end; ++i) {
        // Copy: orientation assignment mutates the keypoint.
        std::vector<vision::Keypoint> one = {keypoints_[i]};
        const auto descriptors = vision::describeKeypoints(*integral_,
                                                           one);
        double digest = 0.0;
        for (float v : descriptors[0])
            digest += std::fabs(static_cast<double>(v));
        checksum += static_cast<uint64_t>(
            static_cast<int64_t>(std::llround(digest * 1024.0)));
    }
    return checksum;
}

KernelResult
FdKernel::runSerial() const
{
    KernelResult result;
    Stopwatch watch;
    result.checksum = describeRange(0, keypoints_.size());
    result.seconds = watch.seconds();
    return result;
}

KernelResult
FdKernel::runThreaded(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;
    std::atomic<uint64_t> checksum{0};
    parallelFor(keypoints_.size(), threads,
                [this, &checksum](size_t begin, size_t end) {
                    checksum += describeRange(begin, end);
                });
    result.checksum = checksum.load();
    result.seconds = watch.seconds();
    return result;
}

} // namespace sirius::suite
