/**
 * @file
 * Sirius Suite Regex kernel: matching a pattern battery against a
 * sentence set (Table 4, row 4). Input: regular expressions over
 * sentences — full scale (makeSuite) matches the paper's 100
 * expressions over 400 sentences (SLRE in the paper; our Pike-VM
 * engine here). Data granularity of the threaded port: for each
 * regex-sentence pair.
 */

#ifndef SIRIUS_SUITE_REGEX_KERNEL_H
#define SIRIUS_SUITE_REGEX_KERNEL_H

#include "nlp/regex.h"
#include "suite/suite.h"

namespace sirius::suite {

/** Regex battery kernel. Parallel granularity: per (regex, sentence). */
class RegexKernel : public SuiteKernel
{
  public:
    /**
     * @param expressions number of patterns (paper: 100)
     * @param sentences number of input sentences (paper: 400)
     */
    RegexKernel(size_t expressions, size_t sentences, uint64_t seed);

    const char *name() const override { return "Regex"; }
    Service service() const override { return Service::Qa; }
    const char *granularity() const override
    {
        return "for each regex-sentence pair";
    }

    KernelResult runSerial() const override;
    KernelResult runThreaded(size_t threads) const override;

    size_t pairCount() const
    {
        return patterns_.size() * sentences_.size();
    }

  private:
    std::vector<nlp::Regex> patterns_;
    std::vector<std::string> sentences_;

    uint64_t matchPairs(size_t begin, size_t end) const;
};

} // namespace sirius::suite

#endif // SIRIUS_SUITE_REGEX_KERNEL_H
