/**
 * @file
 * Sirius Suite FE kernel: SURF feature extraction over an input image
 * (Table 4, row 6). Input: an image — full scale (makeSuite) detects
 * over a 1024x1024 view. Data granularity of the threaded port: for
 * each image tile, with the paper's minimum tile size of 50x50 pixels
 * per thread.
 */

#ifndef SIRIUS_SUITE_FE_KERNEL_H
#define SIRIUS_SUITE_FE_KERNEL_H

#include "suite/suite.h"
#include "vision/surf.h"

namespace sirius::suite {

/** SURF detector kernel. Parallel granularity: per image tile. */
class FeKernel : public SuiteKernel
{
  public:
    /**
     * @param image_size square input-image side in pixels
     * @note checksum is the detected keypoint count; tiling changes
     *       border behaviour, so serial and threaded counts are close
     *       but not identical (the paper notes the same effect).
     */
    FeKernel(int image_size, uint64_t seed);

    const char *name() const override { return "FE"; }
    Service service() const override { return Service::Imm; }
    const char *granularity() const override
    {
        return "for each image tile";
    }

    KernelResult runSerial() const override;
    KernelResult runThreaded(size_t threads) const override;

    const vision::Image &image() const { return image_; }

  private:
    vision::Image image_;
    vision::SurfConfig config_;

    /** Minimum tile side, per the paper's porting methodology. */
    static constexpr int kMinTile = 50;
};

} // namespace sirius::suite

#endif // SIRIUS_SUITE_FE_KERNEL_H
