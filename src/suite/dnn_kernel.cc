#include "suite/dnn_kernel.h"

#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace sirius::suite {

DnnKernel::DnnKernel(std::vector<size_t> layer_sizes, size_t batch,
                     uint64_t seed)
{
    if (layer_sizes.size() < 2)
        fatal("DnnKernel: need at least two layers");
    Rng rng(seed);
    for (size_t l = 0; l + 1 < layer_sizes.size(); ++l) {
        Matrix w(layer_sizes[l], layer_sizes[l + 1]);
        w.fillGaussian(rng, 0.0f, 0.1f);
        weights_.push_back(std::move(w));
        std::vector<float> b(layer_sizes[l + 1]);
        for (auto &x : b)
            x = static_cast<float>(rng.gaussian(0.0, 0.05));
        biases_.push_back(std::move(b));
    }
    input_ = Matrix(batch, layer_sizes[0]);
    input_.fillGaussian(rng, 0.0f, 1.0f);
}

uint64_t
DnnKernel::forwardRows(size_t begin, size_t end) const
{
    uint64_t checksum = 0;
    std::vector<float> act, next;
    for (size_t r = begin; r < end; ++r) {
        act.assign(input_.row(r), input_.row(r) + input_.cols());
        for (size_t l = 0; l < weights_.size(); ++l) {
            const Matrix &w = weights_[l];
            next.assign(w.cols(), 0.0f);
            for (size_t i = 0; i < w.rows(); ++i) {
                const float a = act[i];
                if (a == 0.0f)
                    continue;
                const float *row = w.row(i);
                for (size_t j = 0; j < w.cols(); ++j)
                    next[j] += a * row[j];
            }
            for (size_t j = 0; j < next.size(); ++j)
                next[j] += biases_[l][j];
            if (l + 1 < weights_.size())
                reluInPlace(next);
            act.swap(next);
        }
        double digest = 0.0;
        for (float v : act)
            digest += v;
        checksum += static_cast<uint64_t>(
            static_cast<int64_t>(std::llround(digest * 64.0)));
    }
    return checksum;
}

KernelResult
DnnKernel::runSerial() const
{
    KernelResult result;
    Stopwatch watch;
    result.checksum = forwardRows(0, input_.rows());
    result.seconds = watch.seconds();
    return result;
}

KernelResult
DnnKernel::runThreaded(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;
    std::atomic<uint64_t> checksum{0};
    parallelFor(input_.rows(), threads,
                [this, &checksum](size_t begin, size_t end) {
                    checksum += forwardRows(begin, end);
                });
    result.checksum = checksum.load();
    result.seconds = watch.seconds();
    return result;
}

} // namespace sirius::suite
