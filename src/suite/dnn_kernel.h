/**
 * @file
 * Sirius Suite DNN kernel: batched feed-forward scoring (RASR-style),
 * dominated by dense matrix multiplication (Table 4, row 2).
 * Input: speech feature vectors — full scale (makeSuite) pushes a
 * 128-frame batch through a 440-1024-1024-1024-512 network. Data
 * granularity of the threaded port: for each matrix multiplication,
 * split over row blocks of the input batch.
 */

#ifndef SIRIUS_SUITE_DNN_KERNEL_H
#define SIRIUS_SUITE_DNN_KERNEL_H

#include "common/matrix.h"
#include "suite/suite.h"

namespace sirius::suite {

/** Batched DNN forward pass. Parallel granularity: per matrix block. */
class DnnKernel : public SuiteKernel
{
  public:
    /**
     * @param layer_sizes network layer sizes including input and output
     * @param batch number of feature frames scored per run
     */
    DnnKernel(std::vector<size_t> layer_sizes, size_t batch,
              uint64_t seed);

    const char *name() const override { return "DNN"; }
    Service service() const override { return Service::Asr; }
    const char *granularity() const override
    {
        return "for each matrix multiplication";
    }

    KernelResult runSerial() const override;
    KernelResult runThreaded(size_t threads) const override;

    size_t batchSize() const { return input_.rows(); }

  private:
    std::vector<Matrix> weights_; ///< weights_[l]: in x out (row-major)
    std::vector<std::vector<float>> biases_;
    Matrix input_;                ///< batch x input-dim

    /** Forward rows [begin, end) of the batch; returns their digest. */
    uint64_t forwardRows(size_t begin, size_t end) const;
};

} // namespace sirius::suite

#endif // SIRIUS_SUITE_DNN_KERNEL_H
