/**
 * @file
 * Sirius Suite: the seven compute-bottleneck kernels of Table 4.
 *
 * Each kernel ships a single-threaded baseline (the paper's CMP baseline)
 * and a threaded port using the paper's granularity of parallelism
 * (Table 4, column "Data Granularity"). Kernels return a checksum so
 * results can be verified across implementations and the compiler cannot
 * elide the work.
 */

#ifndef SIRIUS_SUITE_SUITE_H
#define SIRIUS_SUITE_SUITE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sirius::suite {

/** Outcome of one kernel run. */
struct KernelResult
{
    double seconds = 0.0;
    uint64_t checksum = 0; ///< implementation-independent work digest
};

/** Which Sirius service a kernel belongs to (Table 4). */
enum class Service { Asr, Qa, Imm };

/** Short service name ("ASR", "QA", "IMM"). */
const char *serviceName(Service service);

/** Interface shared by the seven kernels. */
class SuiteKernel
{
  public:
    virtual ~SuiteKernel() = default;

    /** Kernel name as in Table 4 (e.g. "GMM", "Stemmer"). */
    virtual const char *name() const = 0;

    /** Owning service. */
    virtual Service service() const = 0;

    /** Granularity-of-parallelism description (Table 4). */
    virtual const char *granularity() const = 0;

    /** Single-threaded baseline run. */
    virtual KernelResult runSerial() const = 0;

    /** Threaded run at the paper's granularity. */
    virtual KernelResult runThreaded(size_t threads) const = 0;
};

/** Suite input-scale knob: tests use Small, benchmarks use Full. */
enum class SuiteScale { Small, Full };

/**
 * Construct all seven kernels with deterministic inputs.
 * Order matches Table 4: GMM, DNN, Stemmer, Regex, CRF, FE, FD.
 */
std::vector<std::unique_ptr<SuiteKernel>>
makeSuite(SuiteScale scale = SuiteScale::Small, uint64_t seed = 2015);

} // namespace sirius::suite

#endif // SIRIUS_SUITE_SUITE_H
