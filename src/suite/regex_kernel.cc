#include "suite/regex_kernel.h"

#include <atomic>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "nlp/pos_corpus.h"

namespace sirius::suite {

RegexKernel::RegexKernel(size_t expressions, size_t sentences,
                         uint64_t seed)
{
    // Pattern battery: question-analysis patterns plus generated shape
    // and word patterns until the requested count is reached.
    for (auto &p : nlp::questionAnalysisPatterns())
        patterns_.push_back(std::move(p));

    Rng rng(seed);
    static const char *shapes[] = {
        "\\d+", "\\d\\d+", "[a-z]+ed(\\s|$)", "[a-z]+ing(\\s|$)",
        "^the\\s", "(\\s|^)of\\s", "[a-z]+tion", "[a-z]+ness",
        "\\d+(st|nd|rd|th)", "[A-Z][a-z]+",
    };
    const auto lexicon_words = nlp::generateWordList(256, seed ^ 0xabc);
    while (patterns_.size() < expressions) {
        if (rng.chance(0.4)) {
            patterns_.emplace_back(
                shapes[rng.below(std::size(shapes))]);
        } else {
            // Word-alternation pattern over lexicon words.
            const auto &a = lexicon_words[rng.below(
                lexicon_words.size())];
            const auto &b = lexicon_words[rng.below(
                lexicon_words.size())];
            patterns_.emplace_back("(\\s|^)(" + a + "|" + b +
                                   ")(\\s|$)");
        }
    }
    if (expressions > 0 && patterns_.size() > expressions) {
        patterns_.erase(patterns_.begin() +
                            static_cast<std::ptrdiff_t>(expressions),
                        patterns_.end());
    }

    // Sentence set from the POS corpus generator.
    for (const auto &s : nlp::generatePosCorpus(sentences, seed ^ 0x55))
        sentences_.push_back(join(s.words));
}

uint64_t
RegexKernel::matchPairs(size_t begin, size_t end) const
{
    uint64_t checksum = 0;
    const size_t n_sentences = sentences_.size();
    for (size_t pair = begin; pair < end; ++pair) {
        const size_t p = pair / n_sentences;
        const size_t s = pair % n_sentences;
        if (patterns_[p].search(sentences_[s]))
            checksum += pair * 2654435761ULL;
    }
    return checksum;
}

KernelResult
RegexKernel::runSerial() const
{
    KernelResult result;
    Stopwatch watch;
    result.checksum = matchPairs(0, pairCount());
    result.seconds = watch.seconds();
    return result;
}

KernelResult
RegexKernel::runThreaded(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;
    std::atomic<uint64_t> checksum{0};
    parallelFor(pairCount(), threads,
                [this, &checksum](size_t begin, size_t end) {
                    checksum += matchPairs(begin, end);
                });
    result.checksum = checksum.load();
    result.seconds = watch.seconds();
    return result;
}

} // namespace sirius::suite
