/**
 * @file
 * Sirius Suite CRF kernel: part-of-speech tagging a sentence set with a
 * trained linear-chain CRF (Table 4, row 5; the paper uses CRFsuite on
 * CoNLL-2000 — our stand-in corpus is the synthetic tagged corpus).
 * Input: sentences to tag — full scale (makeSuite) tags 2000 sentences
 * with a tagger trained on 300. Data granularity of the threaded port:
 * for each sentence.
 */

#ifndef SIRIUS_SUITE_CRF_KERNEL_H
#define SIRIUS_SUITE_CRF_KERNEL_H

#include <memory>

#include "nlp/crf.h"
#include "suite/suite.h"

namespace sirius::suite {

/** CRF tagging kernel. Parallel granularity: per sentence. */
class CrfKernel : public SuiteKernel
{
  public:
    /**
     * @param sentences number of sentences to tag per run
     * @param train_sentences training-set size for the tagger
     */
    CrfKernel(size_t sentences, size_t train_sentences, uint64_t seed);

    const char *name() const override { return "CRF"; }
    Service service() const override { return Service::Qa; }
    const char *granularity() const override
    {
        return "for each sentence";
    }

    KernelResult runSerial() const override;
    KernelResult runThreaded(size_t threads) const override;

    size_t sentenceCount() const { return sentences_.size(); }

  private:
    std::unique_ptr<nlp::CrfTagger> tagger_;
    std::vector<std::vector<std::string>> sentences_;

    uint64_t tagRange(size_t begin, size_t end) const;
};

} // namespace sirius::suite

#endif // SIRIUS_SUITE_CRF_KERNEL_H
