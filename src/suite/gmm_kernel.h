/**
 * @file
 * Sirius Suite GMM kernel: Sphinx-style acoustic scoring of feature
 * frames against every HMM state's Gaussian mixture (Table 4, row 1).
 * Input: speech feature vectors — full scale (makeSuite) scores 256
 * frames of 32-dim features against 512 states x 8 Gaussians. Data
 * granularity of the threaded port: for each HMM state.
 */

#ifndef SIRIUS_SUITE_GMM_KERNEL_H
#define SIRIUS_SUITE_GMM_KERNEL_H

#include "audio/mfcc.h"
#include "speech/gmm.h"
#include "suite/suite.h"

namespace sirius::suite {

/** GMM scoring kernel. Parallel granularity: per HMM state. */
class GmmKernel : public SuiteKernel
{
  public:
    /**
     * @param states number of HMM states (senones)
     * @param components Gaussians per state
     * @param frames feature vectors to score
     * @param dims feature dimensionality
     */
    GmmKernel(size_t states, size_t components, size_t frames,
              size_t dims, uint64_t seed);

    const char *name() const override { return "GMM"; }
    Service service() const override { return Service::Asr; }
    const char *granularity() const override
    {
        return "for each HMM state";
    }

    KernelResult runSerial() const override;
    KernelResult runThreaded(size_t threads) const override;

    size_t stateCount() const { return states_.size(); }
    size_t frameCount() const { return frames_.size(); }

  private:
    std::vector<speech::Gmm> states_;
    std::vector<audio::FeatureVector> frames_;

    uint64_t scoreRange(size_t state_begin, size_t state_end) const;
};

} // namespace sirius::suite

#endif // SIRIUS_SUITE_GMM_KERNEL_H
