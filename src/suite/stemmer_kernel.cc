#include "suite/stemmer_kernel.h"

#include <atomic>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "nlp/porter_stemmer.h"
#include "nlp/pos_corpus.h"

namespace sirius::suite {

namespace {

uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

StemmerKernel::StemmerKernel(size_t words, uint64_t seed)
    : words_(nlp::generateWordList(words, seed))
{
}

uint64_t
StemmerKernel::stemRange(size_t begin, size_t end) const
{
    nlp::PorterStemmer stemmer; // one stemmer per thread
    uint64_t checksum = 0;
    for (size_t i = begin; i < end; ++i)
        checksum += fnv1a(stemmer.stem(words_[i]));
    return checksum;
}

uint64_t
StemmerKernel::stemStrided(size_t start, size_t stride) const
{
    nlp::PorterStemmer stemmer;
    uint64_t checksum = 0;
    for (size_t i = start; i < words_.size(); i += stride)
        checksum += fnv1a(stemmer.stem(words_[i]));
    return checksum;
}

KernelResult
StemmerKernel::runSerial() const
{
    KernelResult result;
    Stopwatch watch;
    result.checksum = stemRange(0, words_.size());
    result.seconds = watch.seconds();
    return result;
}

KernelResult
StemmerKernel::runThreaded(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;
    std::atomic<uint64_t> checksum{0};
    parallelFor(words_.size(), threads,
                [this, &checksum](size_t begin, size_t end) {
                    checksum += stemRange(begin, end);
                });
    result.checksum = checksum.load();
    result.seconds = watch.seconds();
    return result;
}

KernelResult
StemmerKernel::runThreadedInterlaced(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;
    std::atomic<uint64_t> checksum{0};
    parallelForStrided(words_.size(), threads,
                       [this, &checksum](size_t start, size_t stride) {
                           checksum += stemStrided(start, stride);
                       });
    result.checksum = checksum.load();
    result.seconds = watch.seconds();
    return result;
}

} // namespace sirius::suite
