/**
 * @file
 * Sirius Suite FD kernel: SURF descriptor computation for a vector of
 * keypoints (Table 4, row 7). Input: image keypoints — full scale
 * (makeSuite) describes the keypoints detected on a 1024x1024 view.
 * Data granularity of the threaded port: for each keypoint.
 */

#ifndef SIRIUS_SUITE_FD_KERNEL_H
#define SIRIUS_SUITE_FD_KERNEL_H

#include <memory>

#include "suite/suite.h"
#include "vision/integral_image.h"
#include "vision/surf.h"

namespace sirius::suite {

/** SURF descriptor kernel. Parallel granularity: per keypoint. */
class FdKernel : public SuiteKernel
{
  public:
    /**
     * @param image_size square input-image side; keypoints are detected
     *        once at construction and described on every run.
     */
    FdKernel(int image_size, uint64_t seed);

    const char *name() const override { return "FD"; }
    Service service() const override { return Service::Imm; }
    const char *granularity() const override
    {
        return "for each keypoint";
    }

    KernelResult runSerial() const override;
    KernelResult runThreaded(size_t threads) const override;

    size_t keypointCount() const { return keypoints_.size(); }

  private:
    vision::Image image_;
    std::unique_ptr<vision::IntegralImage> integral_;
    std::vector<vision::Keypoint> keypoints_;

    uint64_t describeRange(size_t begin, size_t end) const;
};

} // namespace sirius::suite

#endif // SIRIUS_SUITE_FD_KERNEL_H
