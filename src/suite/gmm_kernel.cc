#include "suite/gmm_kernel.h"

#include <atomic>
#include <cmath>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace sirius::suite {

GmmKernel::GmmKernel(size_t states, size_t components, size_t frames,
                     size_t dims, uint64_t seed)
{
    Rng rng(seed);
    // Fit each state's mixture on a small cloud around a random center,
    // giving realistic (non-degenerate) mixtures without training audio.
    for (size_t s = 0; s < states; ++s) {
        std::vector<audio::FeatureVector> cloud;
        audio::FeatureVector center(dims);
        for (auto &c : center)
            c = static_cast<float>(rng.uniform(-4.0, 4.0));
        for (size_t i = 0; i < components * 8; ++i) {
            audio::FeatureVector point(dims);
            for (size_t d = 0; d < dims; ++d) {
                point[d] = center[d] +
                    static_cast<float>(rng.gaussian(0.0, 0.8));
            }
            cloud.push_back(std::move(point));
        }
        states_.push_back(speech::Gmm::fit(
            cloud, static_cast<int>(components), 2, rng));
    }
    for (size_t f = 0; f < frames; ++f) {
        audio::FeatureVector frame(dims);
        for (auto &v : frame)
            v = static_cast<float>(rng.uniform(-5.0, 5.0));
        frames_.push_back(std::move(frame));
    }
}

uint64_t
GmmKernel::scoreRange(size_t state_begin, size_t state_end) const
{
    // Quantize per-(state, frame) scores so the checksum is independent
    // of summation order (threaded runs must agree with serial).
    uint64_t checksum = 0;
    for (size_t s = state_begin; s < state_end; ++s) {
        for (const auto &frame : frames_) {
            const double score = states_[s].logLikelihood(frame);
            checksum += static_cast<uint64_t>(
                static_cast<int64_t>(std::llround(score * 64.0)));
        }
    }
    return checksum;
}

KernelResult
GmmKernel::runSerial() const
{
    KernelResult result;
    Stopwatch watch;
    result.checksum = scoreRange(0, states_.size());
    result.seconds = watch.seconds();
    return result;
}

KernelResult
GmmKernel::runThreaded(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;
    std::atomic<uint64_t> checksum{0};
    parallelFor(states_.size(), threads,
                [this, &checksum](size_t begin, size_t end) {
                    checksum += scoreRange(begin, end);
                });
    result.checksum = checksum.load();
    result.seconds = watch.seconds();
    return result;
}

} // namespace sirius::suite
