#include "suite/fe_kernel.h"

#include <algorithm>
#include <atomic>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "vision/landmarks.h"

namespace sirius::suite {

FeKernel::FeKernel(int image_size, uint64_t seed)
    : image_(vision::generateLandmark(static_cast<int>(seed % 97),
                                      image_size, image_size))
{
}

KernelResult
FeKernel::runSerial() const
{
    KernelResult result;
    Stopwatch watch;
    const vision::IntegralImage integral(image_);
    const auto keypoints = vision::detectKeypoints(integral, config_);
    result.seconds = watch.seconds();
    result.checksum = keypoints.size();
    return result;
}

KernelResult
FeKernel::runThreaded(size_t threads) const
{
    KernelResult result;
    Stopwatch watch;

    // Tile into horizontal bands, each at least kMinTile rows tall, with
    // an overlap margin so filters near band edges see full support.
    const int height = image_.height();
    const int bands = std::max(1, std::min<int>(
        static_cast<int>(threads), height / kMinTile));
    const int band_height = height / bands;
    constexpr int margin = 32;

    std::atomic<uint64_t> total{0};
    parallelFor(static_cast<size_t>(bands), threads,
                [this, band_height, bands, height, &total](
                    size_t begin, size_t end) {
        for (size_t band = begin; band < end; ++band) {
            const int core_y0 = static_cast<int>(band) * band_height;
            const int core_y1 = band + 1 == static_cast<size_t>(bands)
                ? height : core_y0 + band_height;
            const int y0 = std::max(0, core_y0 - margin);
            const int y1 = std::min(height, core_y1 + margin);

            vision::Image tile(image_.width(), y1 - y0);
            for (int y = y0; y < y1; ++y) {
                for (int x = 0; x < image_.width(); ++x)
                    tile.set(x, y - y0, image_.at(x, y));
            }
            const vision::IntegralImage integral(tile);
            const auto keypoints =
                vision::detectKeypoints(integral, config_);
            uint64_t in_core = 0;
            for (const auto &kp : keypoints) {
                const int y = static_cast<int>(kp.y) + y0;
                if (y >= core_y0 && y < core_y1)
                    ++in_core;
            }
            total += in_core;
        }
    });
    result.checksum = total.load();
    result.seconds = watch.seconds();
    return result;
}

} // namespace sirius::suite
