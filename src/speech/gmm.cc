#include "speech/gmm.h"

#include <algorithm>
#include <cmath>

#include "audio/phoneme.h"
#include "common/logging.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/simd.h"

namespace sirius::speech {

namespace {
constexpr double kLog2Pi = 1.8378770664093453;
constexpr float kVarFloor = 1e-2f;
} // namespace

void
DiagGaussian::refreshNorm()
{
    double acc = -0.5 * kLog2Pi * static_cast<double>(mean.size());
    for (float iv : invVar)
        acc += 0.5 * std::log(static_cast<double>(iv));
    logNorm = static_cast<float>(acc);
}

double
DiagGaussian::logDensity(const audio::FeatureVector &x) const
{
    double acc = logNorm;
    for (size_t d = 0; d < mean.size(); ++d) {
        const double diff = static_cast<double>(x[d]) - mean[d];
        acc -= 0.5 * diff * diff * invVar[d];
    }
    return acc;
}

double
Gmm::logLikelihood(const audio::FeatureVector &x) const
{
    std::vector<double> terms(comps_.size());
    for (size_t k = 0; k < comps_.size(); ++k)
        terms[k] = logWeights_[k] + comps_[k].logDensity(x);
    return logSumExp(terms);
}

Gmm
Gmm::fit(const std::vector<audio::FeatureVector> &data, int components,
         int iterations, Rng &rng)
{
    if (data.empty())
        fatal("Gmm::fit: empty training data");
    const size_t dim = data[0].size();
    const size_t k = std::max<size_t>(1,
        std::min<size_t>(static_cast<size_t>(components), data.size()));

    // Global variance, used to initialize every component.
    std::vector<double> gmean(dim, 0.0), gvar(dim, 0.0);
    for (const auto &x : data) {
        for (size_t d = 0; d < dim; ++d)
            gmean[d] += x[d];
    }
    for (auto &m : gmean)
        m /= static_cast<double>(data.size());
    for (const auto &x : data) {
        for (size_t d = 0; d < dim; ++d) {
            const double diff = x[d] - gmean[d];
            gvar[d] += diff * diff;
        }
    }
    for (auto &v : gvar) {
        v /= static_cast<double>(data.size());
        v = std::max<double>(v, kVarFloor);
    }

    Gmm gmm;
    gmm.comps_.resize(k);
    gmm.logWeights_.assign(k, static_cast<float>(-std::log(
        static_cast<double>(k))));
    for (size_t c = 0; c < k; ++c) {
        const auto &seed_point = data[rng.below(data.size())];
        auto &g = gmm.comps_[c];
        g.mean.assign(seed_point.begin(), seed_point.end());
        g.invVar.resize(dim);
        for (size_t d = 0; d < dim; ++d)
            g.invVar[d] = static_cast<float>(1.0 / gvar[d]);
        g.refreshNorm();
    }

    // EM.
    std::vector<std::vector<double>> resp(
        data.size(), std::vector<double>(k, 0.0));
    std::vector<double> terms(k);
    for (int iter = 0; iter < iterations; ++iter) {
        // E step: responsibilities in the log domain.
        for (size_t i = 0; i < data.size(); ++i) {
            for (size_t c = 0; c < k; ++c) {
                terms[c] = gmm.logWeights_[c] +
                    gmm.comps_[c].logDensity(data[i]);
            }
            const double lz = logSumExp(terms);
            for (size_t c = 0; c < k; ++c)
                resp[i][c] = std::exp(terms[c] - lz);
        }
        // M step.
        for (size_t c = 0; c < k; ++c) {
            double total = 1e-8;
            std::vector<double> mean(dim, 0.0), var(dim, 0.0);
            for (size_t i = 0; i < data.size(); ++i) {
                total += resp[i][c];
                for (size_t d = 0; d < dim; ++d)
                    mean[d] += resp[i][c] * data[i][d];
            }
            for (auto &m : mean)
                m /= total;
            for (size_t i = 0; i < data.size(); ++i) {
                for (size_t d = 0; d < dim; ++d) {
                    const double diff = data[i][d] - mean[d];
                    var[d] += resp[i][c] * diff * diff;
                }
            }
            auto &g = gmm.comps_[c];
            for (size_t d = 0; d < dim; ++d) {
                g.mean[d] = static_cast<float>(mean[d]);
                const double v = std::max<double>(var[d] / total,
                                                  kVarFloor);
                g.invVar[d] = static_cast<float>(1.0 / v);
            }
            g.refreshNorm();
            gmm.logWeights_[c] = static_cast<float>(std::log(
                total / static_cast<double>(data.size())));
        }
    }
    return gmm;
}

GmmAcousticModel
GmmAcousticModel::train(const std::vector<audio::FeatureVector> &features,
                        const std::vector<int> &labels, int components,
                        int em_iterations, uint64_t seed,
                        size_t num_states)
{
    if (features.size() != labels.size())
        fatal("GmmAcousticModel::train: features/labels size mismatch");
    if (num_states == 0)
        num_states = audio::kNumPhonemes;
    Rng rng(seed);

    // Bucket frames by acoustic state.
    std::vector<std::vector<audio::FeatureVector>> buckets(num_states);
    for (size_t i = 0; i < features.size(); ++i) {
        const int label = labels[i];
        if (label < 0 || static_cast<size_t>(label) >= num_states)
            fatal("GmmAcousticModel::train: label out of range");
        buckets[static_cast<size_t>(label)].push_back(features[i]);
    }

    GmmAcousticModel model;
    model.states_.reserve(num_states);
    for (size_t p = 0; p < num_states; ++p) {
        auto &bucket = buckets[p];
        if (bucket.empty()) {
            // Unseen phoneme: fall back to a wide mixture around zero so
            // scoring stays well-defined but unattractive.
            audio::FeatureVector zero(features.empty() ? 13
                                      : features[0].size(), 0.0f);
            bucket.push_back(zero);
        }
        // Cap the mixture size by the bucket's support so sparse
        // phonemes don't overfit to spiky singleton components.
        const int k = std::max(1, std::min<int>(
            components, static_cast<int>(bucket.size() / 8)));
        model.states_.push_back(
            Gmm::fit(bucket, k, em_iterations, rng));
    }
    return model;
}

std::vector<float>
GmmAcousticModel::scoreAll(const audio::FeatureVector &feature) const
{
    std::vector<float> scores(states_.size());
    if (states_.empty())
        return scores;

    // Flatten every (state, component) pair into one lane list so the
    // density kernel vectorizes across ALL components of the model —
    // per-state mixtures are tiny (1..3 after training caps them), too
    // narrow to fill vector lanes on their own. Each lane still runs
    // the exact DiagGaussian::logDensity chain, and the per-state
    // logWeight + logSumExp epilogue below is Gmm::logLikelihood
    // verbatim, so results match the old per-state path bit-for-bit.
    size_t total = 0;
    for (const auto &state : states_)
        total += state.components().size();
    std::vector<const float *> means(total), inv_vars(total);
    std::vector<float> log_norms(total);
    size_t i = 0;
    for (const auto &state : states_) {
        for (const auto &g : state.components()) {
            means[i] = g.mean.data();
            inv_vars[i] = g.invVar.data();
            log_norms[i] = g.logNorm;
            ++i;
        }
    }

    std::vector<double> densities(total);
    simd::kernels().gmmMixtureF64(feature.data(), feature.size(),
                                  means.data(), inv_vars.data(),
                                  log_norms.data(), total,
                                  densities.data());

    std::vector<double> terms;
    size_t offset = 0;
    for (size_t p = 0; p < states_.size(); ++p) {
        const auto &log_weights = states_[p].logWeights();
        const size_t k = log_weights.size();
        terms.resize(k);
        for (size_t c = 0; c < k; ++c)
            terms[c] = log_weights[c] + densities[offset + c];
        scores[p] = static_cast<float>(logSumExp(terms));
        offset += k;
    }
    return scores;
}

std::vector<std::vector<float>>
GmmAcousticModel::scoreBatch(
    const std::vector<const audio::FeatureVector *> &frames) const
{
    const size_t batch = frames.size();
    std::vector<std::vector<float>> out(batch);
    if (batch == 0)
        return out;
    const size_t dim = frames[0]->size();
    for (size_t j = 0; j < batch; ++j) {
        if (frames[j]->size() != dim)
            fatal("GmmAcousticModel::scoreBatch: ragged frame dims");
        out[j].assign(states_.size(), 0.0f);
    }

    // Transpose the batch so the frame-inner density loop reads
    // contiguous memory: x[d * batch + j] is dimension d of frame j.
    // The cast to double here matches the serial path's per-access
    // static_cast<double>(x[d]) exactly.
    std::vector<double> x(dim * batch);
    for (size_t j = 0; j < batch; ++j) {
        const audio::FeatureVector &frame = *frames[j];
        for (size_t d = 0; d < dim; ++d)
            x[d * batch + j] = static_cast<double>(frame[d]);
    }

    std::vector<double> acc(batch);
    std::vector<std::vector<double>> terms(batch);
    for (size_t p = 0; p < states_.size(); ++p) {
        const auto &comps = states_[p].components();
        const auto &log_weights = states_[p].logWeights();
        const size_t k = comps.size();
        for (size_t j = 0; j < batch; ++j)
            terms[j].resize(k);
        for (size_t c = 0; c < k; ++c) {
            const DiagGaussian &g = comps[c];
            // Same chain as DiagGaussian::logDensity: start at logNorm,
            // subtract 0.5 * diff^2 * invVar per dimension in ascending
            // d order; only the frame lanes run side by side (that is
            // exactly what the SIMD kernel vectorizes over).
            std::fill(acc.begin(), acc.end(),
                      static_cast<double>(g.logNorm));
            simd::kernels().gmmLanesF64(acc.data(), x.data(), batch,
                                        g.mean.data(), g.invVar.data(),
                                        dim);
            // Weight added after the density chain completes, exactly
            // like logLikelihood's terms[k] = logW[k] + logDensity(x).
            const float lw = log_weights[c];
            for (size_t j = 0; j < batch; ++j)
                terms[j][c] = lw + acc[j];
        }
        for (size_t j = 0; j < batch; ++j)
            out[j][p] = static_cast<float>(logSumExp(terms[j]));
    }
    return out;
}

} // namespace sirius::speech
