/**
 * @file
 * Feed-forward deep neural network and the DNN acoustic model.
 *
 * Mirrors the Kaldi/RASR hybrid approach: the network classifies each
 * feature frame into a phoneme state (softmax posteriors); dividing by the
 * state prior turns posteriors into the scaled likelihoods the HMM search
 * consumes. Training is plain SGD back-propagation with ReLU hiddens and a
 * cross-entropy loss.
 */

#ifndef SIRIUS_SPEECH_DNN_H
#define SIRIUS_SPEECH_DNN_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "speech/acoustic_model.h"

namespace sirius::speech {

/** Fully connected ReLU network with a log-softmax head. */
class FeedForwardNet
{
  public:
    /**
     * @param layer_sizes sizes including input and output, e.g.
     *        {13, 128, 128, 37}
     * @param seed weight-initialization seed
     */
    FeedForwardNet(std::vector<size_t> layer_sizes, uint64_t seed);

    /** Log-softmax class scores for @p input. */
    std::vector<float> forward(const std::vector<float> &input) const;

    /**
     * Forward a batch of inputs through one blocked GEMM per layer.
     *
     * Bitwise-identical to forward() per input: the GEMM's ikj loop
     * accumulates each output element over k in the same ascending
     * order as matvec's inner loop, so batching only adds SIMD lanes
     * across independent columns, never reassociates a single sum.
     */
    std::vector<std::vector<float>>
    forwardBatch(const std::vector<const std::vector<float> *> &inputs) const;

    /**
     * One SGD step on a single (input, label) pair.
     * @return the example's cross-entropy loss before the update.
     */
    double sgdStep(const std::vector<float> &input, int label, float lr);

    /**
     * Train for @p epochs full passes.
     * @return final-epoch mean cross-entropy.
     */
    double train(const std::vector<audio::FeatureVector> &inputs,
                 const std::vector<int> &labels, size_t epochs, float lr,
                 uint64_t shuffle_seed);

    /** Classification accuracy over a labeled set. */
    double accuracy(const std::vector<audio::FeatureVector> &inputs,
                    const std::vector<int> &labels) const;

    /** Total trainable parameter count. */
    size_t parameterCount() const;

    /** Number of hidden layers. */
    size_t depth() const { return weights_.size() - 1; }

    size_t inputSize() const { return layerSizes_.front(); }
    size_t outputSize() const { return layerSizes_.back(); }

  private:
    std::vector<size_t> layerSizes_;
    std::vector<Matrix> weights_;             ///< weights_[l]: out x in
    std::vector<std::vector<float>> biases_;

    /** Forward pass retaining activations for backprop. */
    void forwardInternal(const std::vector<float> &input,
                         std::vector<std::vector<float>> &acts) const;
};

/** DNN acoustic model: log p(x|s) = log p(s|x) - log p(s). */
class DnnAcousticModel : public AcousticScorer
{
  public:
    /**
     * Train the classifier and estimate state priors from label counts.
     * @param hidden hidden-layer sizes, e.g. {128, 128}
     */
    static DnnAcousticModel train(
        const std::vector<audio::FeatureVector> &features,
        const std::vector<int> &labels,
        std::vector<size_t> hidden = {128, 128}, size_t epochs = 6,
        float lr = 0.01f, uint64_t seed = 4242, size_t num_states = 0);

    std::vector<float>
    scoreAll(const audio::FeatureVector &feature) const override;

    /** Batched scoring through forwardBatch(); bitwise == scoreAll(). */
    std::vector<std::vector<float>>
    scoreBatch(const std::vector<const audio::FeatureVector *> &frames)
        const override;

    const char *name() const override { return "DNN"; }

    size_t stateCount() const override { return logPriors_.size(); }

    /** The underlying classifier network. */
    const FeedForwardNet &net() const { return net_; }

  private:
    DnnAcousticModel(FeedForwardNet net, std::vector<float> log_priors)
        : net_(std::move(net)), logPriors_(std::move(log_priors)) {}

    FeedForwardNet net_;
    std::vector<float> logPriors_;
};

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_DNN_H
