/**
 * @file
 * Acoustic-score caching: the speech layer's slice of the cross-layer
 * result cache (docs/CACHING.md).
 *
 * Acoustic scoring dominates ASR cost (Figure 9) and is a pure function
 * of one feature frame, so identical frames — which skewed traffic
 * produces in bulk, since repeated queries synthesize identical audio —
 * can reuse their per-state score vectors. The cache sits in front of
 * AcousticScorer inside AsrService::transcribe and composes with
 * cross-query batching: frames that hit bypass the batch queue
 * entirely, frames that miss still batch.
 *
 * Like the batching hooks, this header keeps speech/ free of any
 * dependency on core/: the cache type lives in common/ and the server
 * (core::PipelineCaches) owns the instance.
 */

#ifndef SIRIUS_SPEECH_SCORE_CACHE_H
#define SIRIUS_SPEECH_SCORE_CACHE_H

#include <cmath>
#include <vector>

#include "audio/mfcc.h"
#include "common/cache.h"

namespace sirius::speech {

/** Frame-content key -> per-state acoustic score vector. */
using AcousticScoreCache =
    ShardedLruCache<CacheKey128, std::vector<float>>;

/**
 * Content key of one feature frame.
 *
 * With @p grain == 0 (the default everywhere in the server) the key
 * hashes the frame's exact float bit patterns, so two frames share a
 * key only when scoreAll would produce bit-identical outputs — this is
 * what preserves the pipeline's bitwise-identical guarantee through the
 * cache. A positive @p grain buckets each coefficient to multiples of
 * grain before hashing, trading exactness for hit rate on near-equal
 * frames (an ASRPU-style approximation; see docs/CACHING.md before
 * turning it on).
 */
inline CacheKey128
frameScoreKey(const audio::FeatureVector &frame, double grain = 0.0)
{
    if (grain <= 0.0) {
        return mixKey(hashBytes128(frame.data(),
                                   frame.size() * sizeof(float)),
                      frame.size());
    }
    std::vector<int32_t> buckets;
    buckets.reserve(frame.size());
    for (const float v : frame) {
        buckets.push_back(static_cast<int32_t>(
            std::lround(static_cast<double>(v) / grain)));
    }
    return mixKey(hashBytes128(buckets.data(),
                               buckets.size() * sizeof(int32_t)),
                  frame.size());
}

/** Declared byte cost of one cached score vector. */
inline size_t
frameScoreBytes(const std::vector<float> &scores)
{
    // Vector payload plus a fixed estimate of node/map overhead, so the
    // byte budget tracks real memory, not just float counts.
    return scores.size() * sizeof(float) + 64;
}

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_SCORE_CACHE_H
