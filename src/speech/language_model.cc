#include "speech/language_model.h"

#include <cmath>

#include "common/logging.h"

namespace sirius::speech {

Vocabulary::Vocabulary()
{
    words_.push_back("<s>");
    ids_["<s>"] = 0;
}

int
Vocabulary::add(const std::string &word)
{
    auto it = ids_.find(word);
    if (it != ids_.end())
        return it->second;
    const int id = static_cast<int>(words_.size());
    words_.push_back(word);
    ids_[word] = id;
    return id;
}

int
Vocabulary::idOf(const std::string &word) const
{
    auto it = ids_.find(word);
    return it == ids_.end() ? -1 : it->second;
}

const std::string &
Vocabulary::wordOf(int id) const
{
    if (id < 0 || static_cast<size_t>(id) >= words_.size())
        panic("Vocabulary::wordOf: id out of range");
    return words_[static_cast<size_t>(id)];
}

BigramLm::BigramLm(const std::vector<std::vector<int>> &sentences,
                   size_t vocab_size, double add_k)
    : vocabSize_(vocab_size), addK_(add_k),
      counts_(vocab_size * vocab_size, 0.0),
      rowTotals_(vocab_size, 0.0)
{
    if (vocab_size == 0)
        fatal("BigramLm: empty vocabulary");
    for (const auto &sentence : sentences) {
        int prev = 0;
        for (int word : sentence) {
            if (word < 0 || static_cast<size_t>(word) >= vocab_size)
                fatal("BigramLm: word id out of range");
            counts_[static_cast<size_t>(prev) * vocabSize_ +
                    static_cast<size_t>(word)] += 1.0;
            rowTotals_[static_cast<size_t>(prev)] += 1.0;
            prev = word;
        }
        counts_[static_cast<size_t>(prev) * vocabSize_] += 1.0;
        rowTotals_[static_cast<size_t>(prev)] += 1.0;
    }
}

double
BigramLm::logProb(int prev, int next) const
{
    const auto p = static_cast<size_t>(prev);
    const auto n = static_cast<size_t>(next);
    const double numer = counts_[p * vocabSize_ + n] + addK_;
    const double denom = rowTotals_[p] +
        addK_ * static_cast<double>(vocabSize_);
    return std::log(numer / denom);
}

} // namespace sirius::speech
