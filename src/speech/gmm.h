/**
 * @file
 * Diagonal-covariance Gaussian mixture models and the GMM acoustic model.
 *
 * Mirrors CMU Sphinx's acoustic scoring: each HMM (phoneme) state owns a
 * small mixture of diagonal Gaussians; scoring a feature vector against a
 * state is the log-sum of per-component log densities — the triple loop
 * (states x components x dimensions) the paper extracts as the GMM kernel.
 */

#ifndef SIRIUS_SPEECH_GMM_H
#define SIRIUS_SPEECH_GMM_H

#include <cstdint>
#include <vector>

#include "speech/acoustic_model.h"

namespace sirius {
class Rng;
}

namespace sirius::speech {

/** One diagonal-covariance Gaussian in feature space. */
struct DiagGaussian
{
    std::vector<float> mean;
    std::vector<float> invVar;  ///< 1 / sigma^2 per dimension
    float logNorm = 0.0f;       ///< -0.5 * (d*log(2pi) + sum log sigma^2)

    /** Recompute logNorm from invVar. */
    void refreshNorm();

    /** log N(x; mean, diag(1/invVar)). */
    double logDensity(const audio::FeatureVector &x) const;
};

/** A mixture of diagonal Gaussians. */
class Gmm
{
  public:
    /** log p(x) = logsum_k (w_k * N_k(x)). */
    double logLikelihood(const audio::FeatureVector &x) const;

    /**
     * Fit by expectation-maximization.
     * @param data training vectors (must be non-empty)
     * @param components mixture size (clamped to data size)
     * @param iterations EM iterations
     * @param rng source for the initial component means
     */
    static Gmm fit(const std::vector<audio::FeatureVector> &data,
                   int components, int iterations, Rng &rng);

    const std::vector<DiagGaussian> &components() const { return comps_; }
    const std::vector<float> &logWeights() const { return logWeights_; }

  private:
    std::vector<DiagGaussian> comps_;
    std::vector<float> logWeights_;
};

/** Per-phoneme GMM acoustic model (Sphinx-style scoring). */
class GmmAcousticModel : public AcousticScorer
{
  public:
    /**
     * Train one GMM per acoustic state from labeled frames.
     * @param features frame feature vectors
     * @param labels per-frame state ids, same length as @p features
     * @param components per-state mixture size
     * @param em_iterations EM iterations per state
     * @param seed RNG seed for EM initialization
     * @param num_states acoustic state count (default: one per phoneme)
     */
    static GmmAcousticModel train(
        const std::vector<audio::FeatureVector> &features,
        const std::vector<int> &labels, int components = 3,
        int em_iterations = 6, uint64_t seed = 99, size_t num_states = 0);

    std::vector<float>
    scoreAll(const audio::FeatureVector &feature) const override;

    /**
     * Score a batch of frames with component parameters hoisted and the
     * per-call scratch reused across the whole batch. Bitwise-identical
     * to scoreAll() per frame: each (state, component) density is still
     * accumulated dimension-ascending starting from logNorm, and the
     * mixture weight is added after the chain, exactly as the serial
     * triple loop does.
     */
    std::vector<std::vector<float>>
    scoreBatch(const std::vector<const audio::FeatureVector *> &frames)
        const override;

    const char *name() const override { return "GMM"; }

    size_t stateCount() const override { return states_.size(); }

    /** Per-phoneme mixtures (indexed by phoneme id). */
    const std::vector<Gmm> &states() const { return states_; }

  private:
    std::vector<Gmm> states_;
};

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_GMM_H
