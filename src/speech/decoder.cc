#include "speech/decoder.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "audio/phoneme.h"
#include "common/logging.h"

namespace sirius::speech {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
} // namespace

int
Lexicon::addWord(const std::string &word)
{
    const int id = vocab.add(word);
    if (static_cast<size_t>(id) >= prons.size())
        prons.resize(static_cast<size_t>(id) + 1);
    if (prons[static_cast<size_t>(id)].empty())
        prons[static_cast<size_t>(id)] = audio::pronounce(word);
    return id;
}

ViterbiDecoder::ViterbiDecoder(const Lexicon &lexicon, const BigramLm &lm,
                               DecoderConfig config)
    : lexicon_(lexicon), lm_(lm), config_(config)
{
    const size_t vocab = lexicon_.vocab.size();
    const int sub_states = std::max(1, config_.statesPerPhoneme);
    wordStartState_.assign(vocab, -1);
    wordFinalState_.assign(vocab, -1);

    // Silence uses the middle sub-state of phoneme 0 (steady portion).
    const int silence_emission =
        audio::kSilencePhoneme * sub_states + sub_states / 2;

    // State 0: global leading-silence state, owned by the boundary word.
    states_.push_back(State{0, silence_emission, true});
    wordFinalState_[0] = 0;

    for (size_t w = 1; w < vocab; ++w) {
        const auto &pron = lexicon_.prons[w];
        if (pron.empty())
            continue;
        wordStartState_[w] = static_cast<int>(states_.size());
        for (int phoneme : pron) {
            // Left-to-right sub-phonetic chain (begin/middle/end when
            // statesPerPhoneme is 3, Sphinx-style).
            for (int sub = 0; sub < sub_states; ++sub) {
                states_.push_back(State{static_cast<int>(w),
                                        phoneme * sub_states + sub,
                                        false});
            }
        }
        // Word-final silence state (absorbs inter-word gaps).
        states_.push_back(State{static_cast<int>(w), silence_emission,
                                true});
        wordFinalState_[w] = static_cast<int>(states_.size()) - 1;
    }
}

DecodeResult
ViterbiDecoder::decode(
    const std::vector<std::vector<float>> &scores) const
{
    DecodeResult result;
    const size_t frames = scores.size();
    if (frames == 0)
        return result;
    const size_t num_states = states_.size();

    std::vector<double> prev(num_states, kNegInf), cur(num_states, kNegInf);
    std::vector<std::vector<int>> bp(
        frames, std::vector<int>(num_states, -1));

    auto emission = [&scores](size_t t, int acoustic_state) {
        return static_cast<double>(
            scores[t][static_cast<size_t>(acoustic_state)]);
    };

    // Frame 0: either in the global silence state or at a word start.
    prev[0] = emission(0, states_[0].emission);
    for (size_t w = 1; w < lexicon_.vocab.size(); ++w) {
        const int start = wordStartState_[w];
        if (start < 0)
            continue;
        prev[static_cast<size_t>(start)] =
            config_.lmWeight * lm_.logProbStart(static_cast<int>(w)) +
            config_.wordInsertionPenalty +
            emission(0, states_[static_cast<size_t>(start)].emission);
    }

    for (size_t t = 1; t < frames; ++t) {
        std::fill(cur.begin(), cur.end(), kNegInf);
        const double best_prev =
            *std::max_element(prev.begin(), prev.end());
        const double threshold = best_prev - config_.beam;

        auto relax = [&](size_t to, double score, int from) {
            if (score > cur[to]) {
                cur[to] = score;
                bp[t][to] = from;
            }
        };

        for (size_t s = 0; s < num_states; ++s) {
            if (prev[s] < threshold || prev[s] == kNegInf)
                continue;
            ++result.statesExpanded;
            const State &state = states_[s];

            // Self loop.
            relax(s, prev[s] + config_.selfLoopLogProb +
                      emission(t, state.emission), static_cast<int>(s));

            if (!state.wordEnd) {
                // Chain advance: next state of the same word is s + 1
                // (the final silence state follows the last phoneme).
                const size_t next = s + 1;
                relax(next, prev[s] + config_.advanceLogProb +
                          emission(t, states_[next].emission),
                      static_cast<int>(s));
            } else {
                // Word end (or leading silence): enter any word start.
                for (size_t w = 1; w < lexicon_.vocab.size(); ++w) {
                    const int start = wordStartState_[w];
                    if (start < 0)
                        continue;
                    const double score = prev[s] +
                        config_.advanceLogProb +
                        config_.lmWeight *
                            lm_.logProb(state.word, static_cast<int>(w)) +
                        config_.wordInsertionPenalty +
                        emission(t,
                                 states_[static_cast<size_t>(start)]
                                     .emission);
                    relax(static_cast<size_t>(start), score,
                          static_cast<int>(s));
                }
            }
        }
        prev.swap(cur);
    }

    // Pick the best final state and backtrack.
    size_t best_state = 0;
    for (size_t s = 1; s < num_states; ++s) {
        if (prev[s] > prev[best_state])
            best_state = s;
    }
    result.logProb = prev[best_state];
    result.framesProcessed = frames;
    if (result.logProb == kNegInf)
        return result;

    std::vector<int> path(frames);
    int cursor = static_cast<int>(best_state);
    for (size_t t = frames; t-- > 0; ) {
        path[t] = cursor;
        if (t > 0)
            cursor = bp[t][static_cast<size_t>(cursor)];
    }

    // Emit a word every time the path enters that word's start state from
    // outside the word (or from its own final-silence state, which covers
    // immediately repeated words).
    std::vector<std::string> words;
    for (size_t t = 0; t < frames; ++t) {
        const State &state = states_[static_cast<size_t>(path[t])];
        if (state.word == 0)
            continue;
        const bool is_start =
            path[t] == wordStartState_[static_cast<size_t>(state.word)];
        if (!is_start)
            continue;
        bool entered = false;
        if (t == 0) {
            entered = true;
        } else if (path[t - 1] != path[t]) {
            const State &prev_state =
                states_[static_cast<size_t>(path[t - 1])];
            entered = prev_state.word != state.word || prev_state.wordEnd;
        }
        if (entered)
            words.push_back(lexicon_.vocab.wordOf(state.word));
    }
    std::string text;
    for (size_t i = 0; i < words.size(); ++i) {
        if (i)
            text += ' ';
        text += words[i];
    }
    result.text = text;
    return result;
}

} // namespace sirius::speech
