#include "speech/asr_service.h"

#include <algorithm>

#include "audio/delta.h"
#include "audio/phoneme.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"
#include "common/trace.h"
#include "speech/dnn.h"
#include "speech/gmm.h"

namespace sirius::speech {

namespace {

/**
 * Expand per-frame phoneme labels to sub-phonetic state labels: each
 * contiguous run of one phoneme is split into @p sub_states equal
 * thirds (begin/middle/end for 3), mirroring the flat-start alignment
 * Sphinx uses before Baum-Welch refinement.
 */
std::vector<int>
expandLabels(const std::vector<int> &labels, int sub_states)
{
    if (sub_states <= 1)
        return labels;
    std::vector<int> out(labels.size(), 0);
    size_t run_start = 0;
    while (run_start < labels.size()) {
        size_t run_end = run_start;
        while (run_end < labels.size() &&
               labels[run_end] == labels[run_start]) {
            ++run_end;
        }
        const size_t run_len = run_end - run_start;
        for (size_t i = run_start; i < run_end; ++i) {
            const auto pos = static_cast<int>(
                (i - run_start) * static_cast<size_t>(sub_states) /
                run_len);
            out[i] = labels[run_start] * sub_states + pos;
        }
        run_start = run_end;
    }
    return out;
}

} // namespace

AsrService
AsrService::train(const std::vector<std::string> &sentences,
                  AsrConfig config)
{
    if (sentences.empty())
        fatal("AsrService::train: no training sentences");

    AsrService service;
    service.config_ = config;
    service.synthesizer_ = std::make_unique<audio::SpeechSynthesizer>(
        config.synth);
    service.mfcc_ = std::make_unique<audio::MfccExtractor>(
        config.mfcc, config.synth.sampleRate);

    // Lexicon + language model over the training sentences.
    service.lexicon_ = std::make_unique<Lexicon>();
    std::vector<std::vector<int>> id_sentences;
    for (const auto &sentence : sentences) {
        std::vector<int> ids;
        for (const auto &word : split(toLower(sentence)))
            ids.push_back(service.lexicon_->addWord(word));
        id_sentences.push_back(std::move(ids));
    }
    service.lm_ = std::make_unique<BigramLm>(
        id_sentences, service.lexicon_->vocab.size());

    // Acoustic training data: synthesize every sentence under a few noise
    // seeds and label frames with the synthesizer's ground truth.
    std::vector<audio::FeatureVector> features;
    std::vector<int> labels;
    for (const auto &sentence : sentences) {
        for (int variant = 0; variant < config.trainNoiseVariants;
             ++variant) {
            audio::SynthesizerConfig synth_cfg = config.synth;
            synth_cfg.noiseSeed = config.seed + 1000 *
                static_cast<uint64_t>(variant) + 1;
            const audio::SpeechSynthesizer synth(synth_cfg);
            auto wave = synth.synthesize(toLower(sentence));
            if (config.trainChannel)
                wave = config.trainChannel(wave);
            auto frames = service.mfcc_->extract(wave);
            if (config.useDeltaFeatures)
                frames = audio::appendDeltas(frames);
            const auto frame_labels = expandLabels(
                synth.frameLabels(toLower(sentence),
                                  config.mfcc.frameShift),
                config.statesPerPhoneme);
            const size_t n = std::min(frames.size(), frame_labels.size());
            for (size_t i = 0; i < n; ++i) {
                features.push_back(frames[i]);
                labels.push_back(frame_labels[i]);
            }
        }
    }

    const size_t num_states = static_cast<size_t>(audio::kNumPhonemes) *
        static_cast<size_t>(std::max(1, config.statesPerPhoneme));
    if (config.backend == AsrBackend::Gmm) {
        service.scorer_ = std::make_unique<GmmAcousticModel>(
            GmmAcousticModel::train(features, labels,
                                    config.gmmComponents,
                                    config.gmmEmIterations, config.seed,
                                    num_states));
    } else {
        service.scorer_ = std::make_unique<DnnAcousticModel>(
            DnnAcousticModel::train(features, labels, config.dnnHidden,
                                    config.dnnEpochs,
                                    config.dnnLearningRate, config.seed,
                                    num_states));
    }

    DecoderConfig decoder_config = config.decoder;
    decoder_config.statesPerPhoneme = config.statesPerPhoneme;
    // Sub-phonetic chains make the correct path dip further below the
    // frame-best hypothesis on transition frames (the begin/end states
    // score the blended boundary acoustics poorly), so the pruning beam
    // must widen with the chain depth.
    decoder_config.beam *= static_cast<double>(
        config.statesPerPhoneme * config.statesPerPhoneme);
    service.decoder_ = std::make_unique<ViterbiDecoder>(
        *service.lexicon_, *service.lm_, decoder_config);
    return service;
}

AsrResult
AsrService::transcribe(const audio::Waveform &wave,
                       const Deadline &deadline,
                       FrameScoreBatcher *batcher,
                       AcousticScoreCache *cache) const
{
    AsrResult result;

    std::vector<audio::FeatureVector> frames;
    {
        // Kernel spans mirror the ScopedTimer sinks: the same regions
        // VTune attributes in Figure 9, but per *query* in the trace.
        Span span("feature_extraction", SpanKind::Kernel);
        ScopedTimer timer(result.timings.featureExtraction);
        frames = mfcc_->extract(wave);
        if (config_.useDeltaFeatures)
            frames = audio::appendDeltas(frames);
    }
    result.frames = frames.size();

    std::vector<std::vector<float>> scores;
    {
        Span span("acoustic_scoring", SpanKind::Kernel);
        span.attr("backend", scorer_->name());
        ScopedTimer timer(result.timings.scoring);
        const bool caching = cache != nullptr && cache->enabled();
        if (caching && !frames.empty()) {
            // Cached path: probe every frame by its exact-content key,
            // then score only the misses. Hits bypass the batch queue
            // entirely — only the compacted miss set is handed to the
            // batcher (or the serial loop).
            scores.assign(frames.size(), {});
            std::vector<CacheKey128> keys(frames.size());
            std::vector<size_t> miss;
            for (size_t i = 0; i < frames.size(); ++i) {
                keys[i] = frameScoreKey(frames[i]);
                if (!cache->get(keys[i], scores[i], deadline))
                    miss.push_back(i);
            }
            span.attr("cache_hits",
                      std::to_string(frames.size() - miss.size()));
            span.attr("cache_misses", std::to_string(miss.size()));
            if (!miss.empty() && batcher != nullptr) {
                std::vector<audio::FeatureVector> miss_frames;
                miss_frames.reserve(miss.size());
                for (const size_t i : miss)
                    miss_frames.push_back(frames[i]);
                auto outcome =
                    batcher->scoreFrames(miss_frames, deadline);
                span.attr("batch_size",
                          std::to_string(outcome.batchSize));
                span.attr("flush_reason", outcome.flushReason);
                result.cutShort = outcome.cutShort;
                if (!outcome.cutShort) {
                    for (size_t j = 0; j < miss.size(); ++j)
                        scores[miss[j]] =
                            std::move(outcome.scores[j]);
                }
            } else if (!miss.empty()) {
                for (size_t j = 0; j < miss.size(); ++j) {
                    if (deadline.bounded() && (j & 7u) == 0 &&
                        deadline.expired()) {
                        result.cutShort = true;
                        break;
                    }
                    scores[miss[j]] = scorer_->scoreAll(frames[miss[j]]);
                }
            }
            // Store only complete, clean scorings: a cut-short
            // utterance leaves gaps, and gaps must never be cached.
            if (!result.cutShort) {
                for (const size_t i : miss)
                    cache->put(keys[i], scores[i],
                               frameScoreBytes(scores[i]));
            }
        } else if (batcher != nullptr && !frames.empty()) {
            // Cross-query path: block until the scheduler executes the
            // batch holding this utterance. A deadline that expires
            // before execution comes back as cutShort with no scores —
            // the same "abandon the decode" outcome the serial loop
            // reaches, minus the partial scores it would discard.
            auto outcome = batcher->scoreFrames(frames, deadline);
            span.attr("batch_size", std::to_string(outcome.batchSize));
            span.attr("flush_reason", outcome.flushReason);
            result.cutShort = outcome.cutShort;
            scores = std::move(outcome.scores);
        } else {
            scores.reserve(frames.size());
            for (size_t i = 0; i < frames.size(); ++i) {
                // Scoring dominates ASR cost (Figure 9), so this is
                // where a budget check pays: a handful of frames
                // between checks bounds the overshoot past an expired
                // deadline.
                if (deadline.bounded() && (i & 7u) == 0 &&
                    deadline.expired()) {
                    result.cutShort = true;
                    break;
                }
                scores.push_back(scorer_->scoreAll(frames[i]));
            }
        }
    }
    if (!result.cutShort && deadline.expired())
        result.cutShort = true;
    if (result.cutShort)
        return result; // no search: a prefix decode would misclassify

    {
        Span span("viterbi_search", SpanKind::Kernel);
        ScopedTimer timer(result.timings.search);
        const DecodeResult decode = decoder_->decode(scores);
        result.text = decode.text;
        result.logProb = decode.logProb;
    }
    return result;
}

audio::Waveform
AsrService::synthesize(const std::string &text) const
{
    return synthesizer_->synthesize(toLower(text));
}

AsrResult
AsrService::transcribeText(const std::string &text) const
{
    return transcribe(synthesize(text));
}

size_t
wordEditDistance(const std::string &reference,
                 const std::string &hypothesis)
{
    const auto ref = split(toLower(reference));
    const auto hyp = split(toLower(hypothesis));
    std::vector<size_t> prev(hyp.size() + 1), cur(hyp.size() + 1);
    for (size_t j = 0; j <= hyp.size(); ++j)
        prev[j] = j;
    for (size_t i = 1; i <= ref.size(); ++i) {
        cur[0] = i;
        for (size_t j = 1; j <= hyp.size(); ++j) {
            const size_t subst = prev[j - 1] +
                (ref[i - 1] == hyp[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        prev.swap(cur);
    }
    return prev[hyp.size()];
}

double
AsrService::wordErrorRate(const std::vector<std::string> &sentences) const
{
    size_t errors = 0, words = 0;
    for (const auto &sentence : sentences) {
        const auto result = transcribeText(sentence);
        errors += wordEditDistance(sentence, result.text);
        words += split(toLower(sentence)).size();
    }
    return words == 0 ? 0.0
                      : static_cast<double>(errors) /
                            static_cast<double>(words);
}

} // namespace sirius::speech
