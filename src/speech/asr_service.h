/**
 * @file
 * The Automatic Speech Recognition service: the full Figure-4 pipeline.
 *
 * Feature extraction (MFCC) -> acoustic scoring (GMM or DNN) -> Viterbi
 * search over the lexicon-compiled HMM. The service is trained on
 * synthesized speech for a sentence corpus and then transcribes arbitrary
 * waveforms over that vocabulary.
 */

#ifndef SIRIUS_SPEECH_ASR_SERVICE_H
#define SIRIUS_SPEECH_ASR_SERVICE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "audio/mfcc.h"
#include "audio/synthesizer.h"
#include "common/deadline.h"
#include "speech/acoustic_model.h"
#include "speech/decoder.h"
#include "speech/language_model.h"
#include "speech/score_cache.h"

namespace sirius::speech {

/** Which acoustic backend scores HMM states. */
enum class AsrBackend { Gmm, Dnn };

/** End-to-end ASR configuration. */
struct AsrConfig
{
    AsrBackend backend = AsrBackend::Gmm;
    // Production-scale acoustic models score thousands of Gaussians or
    // a multi-hundred-unit network per frame; these defaults keep
    // scoring the dominant ASR cost (Figure 9) while training in
    // seconds on synthesized speech.
    int gmmComponents = 32;
    int gmmEmIterations = 5;
    std::vector<size_t> dnnHidden = {256, 256};
    size_t dnnEpochs = 5;
    float dnnLearningRate = 0.01f;
    int trainNoiseVariants = 2;  ///< noise-seed variants per sentence
    bool useDeltaFeatures = false; ///< append delta / delta-delta MFCCs
    /**
     * Sub-states per phoneme: 1 = whole-phoneme models, 3 = Sphinx-style
     * begin/middle/end HMM states (larger acoustic model and decode
     * graph, finer temporal modeling).
     */
    int statesPerPhoneme = 1;
    audio::SynthesizerConfig synth;
    audio::MfccConfig mfcc;
    DecoderConfig decoder;
    /**
     * Optional channel applied to training waveforms (e.g. a codec
     * round-trip for codec-matched training, or additive noise for
     * noise-matched training). Identity when unset.
     */
    std::function<audio::Waveform(const audio::Waveform &)> trainChannel;
    uint64_t seed = 17;
};

/** Per-stage wall time of one transcription, in seconds. */
struct AsrTimings
{
    double featureExtraction = 0.0;
    double scoring = 0.0;  ///< GMM or DNN state scoring
    double search = 0.0;   ///< Viterbi over the scored trellis

    double total() const { return featureExtraction + scoring + search; }
};

/** Transcription output. */
struct AsrResult
{
    std::string text;
    double logProb = 0.0;
    size_t frames = 0;
    /**
     * True when the deadline expired mid-transcription and the decode
     * was abandoned (text is empty); the caller decides whether to
     * retry, fail, or degrade the query.
     */
    bool cutShort = false;
    AsrTimings timings;
};

/**
 * Cross-query batching hook for acoustic scoring.
 *
 * AsrService::transcribe hands a whole utterance's frames to a batcher
 * (when one is supplied) instead of scoring them itself; the batcher —
 * core::BatchScheduler in the server — groups concurrent utterances
 * and runs one AcousticScorer::scoreBatch call for all of them. The
 * split keeps speech/ free of any dependency on core/.
 */
class FrameScoreBatcher
{
  public:
    /** What the batcher hands back to one waiting query. */
    struct Outcome
    {
        /** Per-frame state scores; empty when cutShort. */
        std::vector<std::vector<float>> scores;
        /** True when the item's deadline expired before execution. */
        bool cutShort = false;
        size_t batchSize = 0;            ///< items in the executed batch
        const char *flushReason = "none"; ///< size|timeout|deadline|shutdown
    };

    virtual ~FrameScoreBatcher() = default;

    /**
     * Enqueue @p frames and block until the batch containing them
     * executes. @p frames must stay alive until this returns.
     */
    virtual Outcome
    scoreFrames(const std::vector<audio::FeatureVector> &frames,
                const Deadline &deadline) = 0;
};

/** Trained ASR service instance. */
class AsrService
{
  public:
    /**
     * Train an ASR service whose vocabulary and language model come from
     * @p sentences. Acoustic models are trained on synthesized renderings
     * of the same sentences.
     */
    static AsrService train(const std::vector<std::string> &sentences,
                            AsrConfig config = {});

    /**
     * Transcribe a waveform. A bounded @p deadline cuts the work short
     * cooperatively: the budget is checked between feature extraction,
     * scoring (every few frames), and search, and an expired deadline
     * abandons the decode (`cutShort`) rather than returning a partial
     * transcript.
     *
     * When @p batcher is non-null, acoustic scoring is delegated to it
     * (cross-query batching); feature extraction and Viterbi search
     * stay local because they are per-utterance. Results are
     * bitwise-identical either way.
     *
     * When @p cache is non-null and enabled, each frame's score vector
     * is looked up by its exact-content key first: frames that hit skip
     * scoring entirely (bypassing the batch queue), frames that miss
     * are scored as before — batched when a batcher is supplied, serial
     * otherwise — and stored for reuse. Since a key only matches a
     * bit-identical frame, cached results are bitwise-identical too.
     */
    AsrResult transcribe(const audio::Waveform &wave,
                         const Deadline &deadline = {},
                         FrameScoreBatcher *batcher = nullptr,
                         AcousticScoreCache *cache = nullptr) const;

    /** Synthesize @p text and transcribe it (testing convenience). */
    AsrResult transcribeText(const std::string &text) const;

    /** Synthesize @p text with this service's synthesizer config. */
    audio::Waveform synthesize(const std::string &text) const;

    /** "GMM" or "DNN". */
    const char *backendName() const { return scorer_->name(); }

    const Lexicon &lexicon() const { return *lexicon_; }
    const AsrConfig &config() const { return config_; }
    const AcousticScorer &scorer() const { return *scorer_; }

    /**
     * Word error rate of transcribing synthesized @p sentences
     * (Levenshtein distance over words / reference length).
     */
    double wordErrorRate(const std::vector<std::string> &sentences) const;

  private:
    AsrService() = default;

    AsrConfig config_;
    std::unique_ptr<audio::SpeechSynthesizer> synthesizer_;
    std::unique_ptr<audio::MfccExtractor> mfcc_;
    std::unique_ptr<Lexicon> lexicon_;
    std::unique_ptr<BigramLm> lm_;
    std::unique_ptr<AcousticScorer> scorer_;
    std::unique_ptr<ViterbiDecoder> decoder_;
};

/** Word-level Levenshtein distance between two strings. */
size_t wordEditDistance(const std::string &reference,
                        const std::string &hypothesis);

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_ASR_SERVICE_H
