#include "speech/dnn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "audio/phoneme.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"

namespace sirius::speech {

FeedForwardNet::FeedForwardNet(std::vector<size_t> layer_sizes,
                               uint64_t seed)
    : layerSizes_(std::move(layer_sizes))
{
    if (layerSizes_.size() < 2)
        fatal("FeedForwardNet needs at least input and output layers");
    Rng rng(seed);
    for (size_t l = 0; l + 1 < layerSizes_.size(); ++l) {
        const size_t in = layerSizes_[l];
        const size_t out = layerSizes_[l + 1];
        Matrix w(out, in);
        // He initialization suits the ReLU hiddens.
        w.fillGaussian(rng, 0.0f,
                       static_cast<float>(std::sqrt(2.0 /
                           static_cast<double>(in))));
        weights_.push_back(std::move(w));
        biases_.emplace_back(out, 0.0f);
    }
}

void
FeedForwardNet::forwardInternal(const std::vector<float> &input,
                                std::vector<std::vector<float>> &acts) const
{
    acts.clear();
    acts.push_back(input);
    for (size_t l = 0; l < weights_.size(); ++l) {
        std::vector<float> z;
        matvec(weights_[l], acts.back(), z);
        simd::kernels().addRowF32(z.data(), biases_[l].data(),
                                  z.size());
        if (l + 1 < weights_.size())
            reluInPlace(z);
        acts.push_back(std::move(z));
    }
    logSoftmaxInPlace(acts.back());
}

std::vector<float>
FeedForwardNet::forward(const std::vector<float> &input) const
{
    std::vector<std::vector<float>> acts;
    forwardInternal(input, acts);
    return acts.back();
}

std::vector<std::vector<float>>
FeedForwardNet::forwardBatch(
    const std::vector<const std::vector<float> *> &inputs) const
{
    std::vector<std::vector<float>> out(inputs.size());
    if (inputs.empty())
        return out;

    // Pack inputs as columns of an (in_dim x batch) activation matrix so
    // every layer is one GEMM: z = W * A. matmul's ikj ordering makes
    // each z(o, j) the same k-ascending accumulation matvec performs for
    // a single frame, which is what keeps the batch bitwise-identical
    // to the serial path while the j-inner loop vectorizes over frames.
    const size_t batch = inputs.size();
    Matrix acts(layerSizes_.front(), batch);
    for (size_t j = 0; j < batch; ++j) {
        const std::vector<float> &input = *inputs[j];
        if (input.size() != layerSizes_.front())
            fatal("forwardBatch: input dimension mismatch");
        for (size_t i = 0; i < input.size(); ++i)
            acts.at(i, j) = input[i];
    }

    Matrix z;
    for (size_t l = 0; l < weights_.size(); ++l) {
        matmul(weights_[l], acts, z);
        for (size_t o = 0; o < z.rows(); ++o) {
            simd::kernels().addScalarF32(z.row(o), batch,
                                         biases_[l][o]);
        }
        if (l + 1 < weights_.size())
            simd::kernels().reluF32(z.data(), z.size());
        std::swap(acts, z);
    }

    // The log-softmax head normalizes each frame independently; unpack
    // columns and reuse the serial routine verbatim.
    for (size_t j = 0; j < batch; ++j) {
        std::vector<float> scores(acts.rows());
        for (size_t o = 0; o < acts.rows(); ++o)
            scores[o] = acts.at(o, j);
        logSoftmaxInPlace(scores);
        out[j] = std::move(scores);
    }
    return out;
}

double
FeedForwardNet::sgdStep(const std::vector<float> &input, int label,
                        float lr)
{
    std::vector<std::vector<float>> acts;
    forwardInternal(input, acts);
    const auto &log_probs = acts.back();
    const double loss =
        -static_cast<double>(log_probs[static_cast<size_t>(label)]);

    // Output-layer delta: softmax - onehot.
    std::vector<float> delta(log_probs.size());
    for (size_t i = 0; i < delta.size(); ++i) {
        delta[i] = std::exp(log_probs[i]) -
            (static_cast<int>(i) == label ? 1.0f : 0.0f);
    }

    for (size_t l = weights_.size(); l-- > 0; ) {
        const auto &below = acts[l];
        Matrix &w = weights_[l];
        std::vector<float> next_delta;
        if (l > 0) {
            // Backpropagate before mutating the layer's weights.
            next_delta.assign(below.size(), 0.0f);
            for (size_t o = 0; o < w.rows(); ++o) {
                const float d = delta[o];
                const float *row = w.row(o);
                for (size_t i = 0; i < w.cols(); ++i)
                    next_delta[i] += row[i] * d;
            }
            // ReLU derivative at the layer below.
            for (size_t i = 0; i < next_delta.size(); ++i) {
                if (below[i] <= 0.0f)
                    next_delta[i] = 0.0f;
            }
        }
        for (size_t o = 0; o < w.rows(); ++o) {
            const float step = lr * delta[o];
            float *row = w.row(o);
            for (size_t i = 0; i < w.cols(); ++i)
                row[i] -= step * below[i];
            biases_[l][o] -= step;
        }
        delta = std::move(next_delta);
    }
    return loss;
}

double
FeedForwardNet::train(const std::vector<audio::FeatureVector> &inputs,
                      const std::vector<int> &labels, size_t epochs,
                      float lr, uint64_t shuffle_seed)
{
    if (inputs.size() != labels.size())
        fatal("FeedForwardNet::train: size mismatch");
    Rng rng(shuffle_seed);
    std::vector<size_t> order(inputs.size());
    std::iota(order.begin(), order.end(), 0);
    double mean_loss = 0.0;
    for (size_t e = 0; e < epochs; ++e) {
        for (size_t i = order.size(); i-- > 1; )
            std::swap(order[i], order[rng.below(i + 1)]);
        const float epoch_lr = lr /
            (1.0f + 0.5f * static_cast<float>(e));
        double loss = 0.0;
        for (size_t idx : order)
            loss += sgdStep(inputs[idx], labels[idx], epoch_lr);
        mean_loss = loss / static_cast<double>(inputs.size());
    }
    return mean_loss;
}

double
FeedForwardNet::accuracy(const std::vector<audio::FeatureVector> &inputs,
                         const std::vector<int> &labels) const
{
    if (inputs.empty())
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        const auto scores = forward(inputs[i]);
        const auto arg = static_cast<int>(std::distance(scores.begin(),
            std::max_element(scores.begin(), scores.end())));
        if (arg == labels[i])
            ++correct;
    }
    return static_cast<double>(correct) /
        static_cast<double>(inputs.size());
}

size_t
FeedForwardNet::parameterCount() const
{
    size_t count = 0;
    for (size_t l = 0; l < weights_.size(); ++l)
        count += weights_[l].size() + biases_[l].size();
    return count;
}

DnnAcousticModel
DnnAcousticModel::train(const std::vector<audio::FeatureVector> &features,
                        const std::vector<int> &labels,
                        std::vector<size_t> hidden, size_t epochs,
                        float lr, uint64_t seed, size_t num_states)
{
    if (features.empty() || features.size() != labels.size())
        fatal("DnnAcousticModel::train: bad training data");
    if (num_states == 0)
        num_states = audio::kNumPhonemes;

    std::vector<size_t> sizes;
    sizes.push_back(features[0].size());
    for (size_t h : hidden)
        sizes.push_back(h);
    sizes.push_back(num_states);

    FeedForwardNet net(sizes, seed);
    net.train(features, labels, epochs, lr, seed ^ 0x9e3779b9ULL);

    // State priors from label frequencies (Laplace-smoothed).
    std::vector<double> counts(num_states, 1.0);
    for (int label : labels)
        counts[static_cast<size_t>(label)] += 1.0;
    const double total = std::accumulate(counts.begin(), counts.end(),
                                         0.0);
    std::vector<float> log_priors(num_states);
    for (size_t s = 0; s < counts.size(); ++s)
        log_priors[s] = static_cast<float>(std::log(counts[s] / total));

    return DnnAcousticModel(std::move(net), std::move(log_priors));
}

std::vector<float>
DnnAcousticModel::scoreAll(const audio::FeatureVector &feature) const
{
    auto scores = net_.forward(feature);
    for (size_t s = 0; s < scores.size(); ++s)
        scores[s] -= logPriors_[s];
    return scores;
}

std::vector<std::vector<float>>
DnnAcousticModel::scoreBatch(
    const std::vector<const audio::FeatureVector *> &frames) const
{
    auto batch = net_.forwardBatch(frames);
    for (auto &scores : batch) {
        for (size_t s = 0; s < scores.size(); ++s)
            scores[s] -= logPriors_[s];
    }
    return batch;
}

} // namespace sirius::speech
