/**
 * @file
 * Bigram word language model with add-k smoothing.
 */

#ifndef SIRIUS_SPEECH_LANGUAGE_MODEL_H
#define SIRIUS_SPEECH_LANGUAGE_MODEL_H

#include <map>
#include <string>
#include <vector>

namespace sirius::speech {

/**
 * Word vocabulary with stable integer ids.
 * Id 0 is reserved for the sentence-boundary marker.
 */
class Vocabulary
{
  public:
    Vocabulary();

    /** Add @p word if absent; returns its id. */
    int add(const std::string &word);

    /** Id of @p word or -1 when unknown. */
    int idOf(const std::string &word) const;

    /** Word for @p id. */
    const std::string &wordOf(int id) const;

    /** Vocabulary size including the boundary marker. */
    size_t size() const { return words_.size(); }

  private:
    std::vector<std::string> words_;
    std::map<std::string, int> ids_;
};

/** Add-k smoothed bigram model over a Vocabulary. */
class BigramLm
{
  public:
    /**
     * Count bigrams over @p sentences (each a word-id sequence; boundary
     * transitions to/from id 0 are added automatically).
     */
    BigramLm(const std::vector<std::vector<int>> &sentences,
             size_t vocab_size, double add_k = 0.2);

    /** log P(next | prev). */
    double logProb(int prev, int next) const;

    /** log P(word | sentence start). */
    double logProbStart(int word) const { return logProb(0, word); }

    size_t vocabSize() const { return vocabSize_; }

  private:
    size_t vocabSize_;
    double addK_;
    std::vector<double> counts_;     ///< counts_[prev * V + next]
    std::vector<double> rowTotals_;
};

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_LANGUAGE_MODEL_H
