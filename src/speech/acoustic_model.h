/**
 * @file
 * Interface shared by the GMM and DNN acoustic scorers.
 *
 * The ASR pipeline (Figure 4 of the paper) scores HMM state transitions
 * with either a Gaussian Mixture Model (Sphinx-style) or a Deep Neural
 * Network (Kaldi/RASR-style); the Viterbi search consumes the scores
 * through this interface.
 */

#ifndef SIRIUS_SPEECH_ACOUSTIC_MODEL_H
#define SIRIUS_SPEECH_ACOUSTIC_MODEL_H

#include <vector>

#include "audio/mfcc.h"

namespace sirius::speech {

/** Produces per-phoneme log-likelihoods for one feature vector. */
class AcousticScorer
{
  public:
    virtual ~AcousticScorer() = default;

    /**
     * Score @p feature against every acoustic state.
     * @return log p(feature | state) for state ids [0, stateCount()).
     *         With 1 state per phoneme a state id is a phoneme id; with
     *         3-state phoneme models (Sphinx-style) state id =
     *         phoneme * 3 + position.
     */
    virtual std::vector<float>
    scoreAll(const audio::FeatureVector &feature) const = 0;

    /**
     * Score a batch of feature vectors in one call.
     *
     * Contract: the result is bitwise-identical to calling scoreAll()
     * per frame — batching may only amortize work across frames (blocked
     * matrix kernels, reused scratch buffers), never reorder the
     * floating-point accumulation that produces any single score. The
     * differential suite in tests/test_batching.cc enforces this.
     *
     * The default implementation is the serial loop itself, so custom
     * scorers are batch-correct by construction.
     */
    virtual std::vector<std::vector<float>>
    scoreBatch(const std::vector<const audio::FeatureVector *> &frames) const
    {
        std::vector<std::vector<float>> out;
        out.reserve(frames.size());
        for (const audio::FeatureVector *frame : frames)
            out.push_back(scoreAll(*frame));
        return out;
    }

    /** Number of acoustic states scored by scoreAll(). */
    virtual size_t stateCount() const = 0;

    /** Human-readable backend name ("GMM" or "DNN"). */
    virtual const char *name() const = 0;
};

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_ACOUSTIC_MODEL_H
