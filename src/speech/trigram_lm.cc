#include "speech/trigram_lm.h"

#include <cmath>

#include "common/logging.h"

namespace sirius::speech {

TrigramLm::TrigramLm(const std::vector<std::vector<int>> &sentences,
                     size_t vocab_size, double backoff)
    : vocabSize_(vocab_size), backoff_(backoff),
      unigrams_(vocab_size, 0)
{
    if (vocab_size == 0 || vocab_size >= (1u << 21))
        fatal("TrigramLm: vocabulary size out of range");
    for (const auto &sentence : sentences) {
        // Pad with two boundary markers so the first real word has full
        // trigram context.
        std::vector<int> padded;
        padded.reserve(sentence.size() + 3);
        padded.push_back(0);
        padded.push_back(0);
        padded.insert(padded.end(), sentence.begin(), sentence.end());
        padded.push_back(0);
        for (size_t i = 0; i < padded.size(); ++i) {
            const auto w = static_cast<uint64_t>(padded[i]);
            if (w >= vocabSize_)
                fatal("TrigramLm: word id out of range");
            ++unigrams_[w];
            ++totalUnigrams_;
            if (i >= 1) {
                ++bigrams_[pack(
                    static_cast<uint64_t>(padded[i - 1]), w)];
            }
            if (i >= 2) {
                ++trigrams_[pack3(
                    static_cast<uint64_t>(padded[i - 2]),
                    static_cast<uint64_t>(padded[i - 1]), w)];
            }
        }
    }
}

double
TrigramLm::logProb(int prev2, int prev1, int next) const
{
    const auto a = static_cast<uint64_t>(prev2);
    const auto b = static_cast<uint64_t>(prev1);
    const auto c = static_cast<uint64_t>(next);

    // Trigram estimate when the context was seen.
    auto tri = trigrams_.find(pack3(a, b, c));
    if (tri != trigrams_.end()) {
        auto ctx = bigrams_.find(pack(a, b));
        if (ctx != bigrams_.end() && ctx->second > 0) {
            return std::log(static_cast<double>(tri->second) /
                            static_cast<double>(ctx->second));
        }
    }
    // Back off to the bigram.
    auto bi = bigrams_.find(pack(b, c));
    if (bi != bigrams_.end() && unigrams_[b] > 0) {
        return std::log(backoff_) +
            std::log(static_cast<double>(bi->second) /
                     static_cast<double>(unigrams_[b]));
    }
    // Back off to the (add-one) unigram.
    return 2.0 * std::log(backoff_) +
        std::log((static_cast<double>(unigrams_[c]) + 1.0) /
                 (static_cast<double>(totalUnigrams_) +
                  static_cast<double>(vocabSize_)));
}

double
TrigramLm::sentenceLogProb(const std::vector<int> &sentence) const
{
    int prev2 = 0, prev1 = 0;
    double total = 0.0;
    for (int w : sentence) {
        total += logProb(prev2, prev1, w);
        prev2 = prev1;
        prev1 = w;
    }
    total += logProb(prev2, prev1, 0); // sentence end
    return total;
}

double
TrigramLm::perplexity(const std::vector<std::vector<int>> &corpus) const
{
    double log_sum = 0.0;
    size_t tokens = 0;
    for (const auto &sentence : corpus) {
        log_sum += sentenceLogProb(sentence);
        tokens += sentence.size() + 1; // + end marker
    }
    if (tokens == 0)
        return 1.0;
    return std::exp(-log_sum / static_cast<double>(tokens));
}

} // namespace sirius::speech
