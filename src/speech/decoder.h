/**
 * @file
 * HMM state graph and Viterbi beam decoder.
 *
 * The decoding graph is compiled from a lexicon: each word is a left-to-
 * right chain of phoneme states with self loops, followed by an optional
 * word-final silence state. Word-end states connect to every word-start
 * state weighted by the bigram language model. The decoder consumes a
 * precomputed acoustic score matrix (frames x phonemes) so that acoustic
 * scoring (the GMM/DNN kernel) and search (the HMM/Viterbi kernel) can be
 * timed separately, exactly as the paper separates them.
 */

#ifndef SIRIUS_SPEECH_DECODER_H
#define SIRIUS_SPEECH_DECODER_H

#include <string>
#include <vector>

#include "speech/language_model.h"

namespace sirius::speech {

/** Words and their phoneme-sequence pronunciations. */
struct Lexicon
{
    Vocabulary vocab;                     ///< word ids (0 is <s>)
    std::vector<std::vector<int>> prons;  ///< pronunciation per word id

    /** Add a word with its grapheme-derived pronunciation. */
    int addWord(const std::string &word);
};

/** Decoder tuning parameters. */
struct DecoderConfig
{
    /**
     * Sub-states per phoneme: 1 for whole-phoneme models, 3 for
     * Sphinx-style begin/middle/end models. Must match the acoustic
     * model's training (AsrConfig::statesPerPhoneme).
     */
    int statesPerPhoneme = 1;
    double selfLoopLogProb = -0.105;   ///< ~log(0.9)
    double advanceLogProb = -2.303;    ///< ~log(0.1)
    double wordInsertionPenalty = -1.0;
    double lmWeight = 1.0;
    double beam = 60.0;                ///< prune states this far below best
};

/** Result of a decode, with search statistics. */
struct DecodeResult
{
    std::string text;
    double logProb = 0.0;
    size_t framesProcessed = 0;
    size_t statesExpanded = 0;
};

/** Viterbi beam-search decoder over the compiled word graph. */
class ViterbiDecoder
{
  public:
    ViterbiDecoder(const Lexicon &lexicon, const BigramLm &lm,
                   DecoderConfig config = {});

    /**
     * Decode a score matrix.
     * @param scores scores[t][p] = log p(frame t | phoneme p)
     */
    DecodeResult decode(
        const std::vector<std::vector<float>> &scores) const;

    /** Number of states in the compiled graph. */
    size_t stateCount() const { return states_.size(); }

  private:
    struct State
    {
        int word;      ///< word id owning this state
        int emission;  ///< acoustic-state index scored at this state
        bool wordEnd;  ///< true for the word-final silence state
    };

    const Lexicon &lexicon_;
    const BigramLm &lm_;
    DecoderConfig config_;

    std::vector<State> states_;
    std::vector<int> wordStartState_;  ///< per word id, -1 for <s>
    std::vector<int> wordFinalState_;  ///< per word id, -1 for <s>
};

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_DECODER_H
