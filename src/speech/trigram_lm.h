/**
 * @file
 * Backoff trigram language model.
 *
 * Extends the bigram model with one more order of context plus
 * stupid-backoff smoothing: P(w | u, v) backs off to the bigram (and
 * then unigram) estimate with a fixed discount when the trigram is
 * unseen. The decoder keeps its bigram interface (its state space is
 * word-level), but the trigram model rescoring API lets callers rerank
 * n-best hypotheses — the standard two-pass arrangement in large
 * recognizers.
 */

#ifndef SIRIUS_SPEECH_TRIGRAM_LM_H
#define SIRIUS_SPEECH_TRIGRAM_LM_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "speech/language_model.h"

namespace sirius::speech {

/** Stupid-backoff trigram model over a Vocabulary. */
class TrigramLm
{
  public:
    /**
     * Count n-grams over @p sentences (word-id sequences; boundary
     * id 0 is added at both ends automatically).
     * @param backoff discount applied per backoff level (default 0.4,
     *        the canonical stupid-backoff constant)
     */
    TrigramLm(const std::vector<std::vector<int>> &sentences,
              size_t vocab_size, double backoff = 0.4);

    /** log P(next | prev2, prev1) with backoff. */
    double logProb(int prev2, int prev1, int next) const;

    /** Log probability of a full sentence including boundaries. */
    double sentenceLogProb(const std::vector<int> &sentence) const;

    /**
     * Perplexity over a corpus: exp(-sum logP / token count).
     * Lower is better; the trigram must beat the bigram on text it was
     * trained on (asserted in tests).
     */
    double perplexity(const std::vector<std::vector<int>> &corpus) const;

    size_t vocabSize() const { return vocabSize_; }

  private:
    size_t vocabSize_;
    double backoff_;
    uint64_t totalUnigrams_ = 0;

    std::unordered_map<uint64_t, uint32_t> trigrams_;
    std::unordered_map<uint64_t, uint32_t> bigrams_;
    std::vector<uint32_t> unigrams_;

    static uint64_t
    pack(uint64_t a, uint64_t b)
    {
        return (a << 32) | b;
    }
    static uint64_t
    pack3(uint64_t a, uint64_t b, uint64_t c)
    {
        return (a << 42) | (b << 21) | c;
    }
};

} // namespace sirius::speech

#endif // SIRIUS_SPEECH_TRIGRAM_LM_H
