/**
 * @file
 * ShardedLruCache: a sharded, mutex-striped, byte-budgeted LRU cache
 * with TTL — the semantic result cache behind the pipeline's caching
 * layer (docs/CACHING.md).
 *
 * Real assistant traffic is heavily skewed — popular questions and
 * repeated landmark images dominate — and Sirius's end-to-end cost is
 * concentrated in a handful of deterministic kernels (acoustic scoring,
 * QA ranking, descriptor matching; Figure 9). Reusing their results is
 * therefore the cheapest throughput-per-dollar lever after batching
 * (the paper's Figures 16-19 make throughput/$ the binding WSC
 * constraint). Three caches share this one implementation: per-frame
 * acoustic scores in speech/, full answers in core/, and image-hash
 * match results in vision/.
 *
 * Correctness stance: keys are exact-content hashes (128-bit, raw bit
 * patterns), so a hit returns precisely what a miss would recompute and
 * the batching layer's bitwise-identical guarantee survives caching —
 * tests/test_cache.cc enforces hit ≡ miss per layer and end to end.
 */

#ifndef SIRIUS_COMMON_CACHE_H
#define SIRIUS_COMMON_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"

namespace sirius {

/**
 * Cache policy knobs, shared by every layer's cache (the server applies
 * one config to all three; see core::PipelineCaches).
 */
struct CacheConfig
{
    /**
     * Master switch. Disabled caches are pure pass-through: every
     * lookup is a counted bypass and every insert is a no-op, so the
     * integration points can thread a cache unconditionally.
     */
    bool enabled = false;

    /**
     * Mutex stripes. Lookups on different shards never contend, so this
     * bounds lock contention under concurrent workers; 8 is ample for
     * the default 4-worker server.
     */
    size_t shards = 8;

    /**
     * Byte budget per cache (not per shard; each shard gets an equal
     * slice). Inserting past the budget evicts least-recently-used
     * entries; a single value larger than a shard's slice is rejected
     * rather than cached. 0 means unlimited.
     */
    size_t byteBudget = 64ull << 20;

    /**
     * Entry time-to-live in seconds; 0 disables expiry. Expired entries
     * are collected lazily at lookup (counted as `expired` lookups and
     * `expired` evictions).
     */
    double ttlSeconds = 0.0;

    /**
     * Virtual clock for deterministic TTL tests: when set, entry age is
     * measured in the clock's virtual seconds (advance() moves time, no
     * real sleeping). Must outlive the cache. Production leaves this
     * null and uses the wall clock.
     */
    const ManualTime *clock = nullptr;
};

/**
 * 128-bit content key. Two independently seeded 64-bit lanes make an
 * accidental collision (a hit returning another input's result)
 * cryptographically improbable, which is what lets the cache promise
 * hit ≡ miss without storing full keys.
 */
struct CacheKey128
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool
    operator==(const CacheKey128 &other) const
    {
        return hi == other.hi && lo == other.lo;
    }
    bool
    operator!=(const CacheKey128 &other) const
    {
        return !(*this == other);
    }
};

/** Hash @p bytes of @p data into a 128-bit content key. */
CacheKey128 hashBytes128(const void *data, size_t bytes,
                         uint64_t seed = 0);

/** Mix an extra 64-bit word (dimensions, ids) into an existing key. */
CacheKey128 mixKey(CacheKey128 key, uint64_t word);

/**
 * Point-in-time counters of one cache, aggregated across its shards.
 * All lookup outcomes partition: hits + misses + expired + bypasses ==
 * total lookups.
 */
struct CacheStats
{
    uint64_t hits = 0;     ///< lookup returned a live entry
    uint64_t misses = 0;   ///< key absent
    uint64_t expired = 0;  ///< key present but past its TTL (a miss)
    /**
     * Lookups that never touched the table: cache disabled, deadline
     * already expired, or the shard lock was contended under a bounded
     * deadline (the "lookup never blocks past budget" rule).
     */
    uint64_t bypasses = 0;
    uint64_t insertions = 0; ///< new entries stored
    uint64_t replaced = 0;   ///< inserts that overwrote an existing key
    uint64_t rejected = 0;   ///< inserts larger than a shard's budget
    uint64_t evictedLru = 0;     ///< evicted to make byte room
    uint64_t evictedExpired = 0; ///< collected past their TTL
    uint64_t entries = 0;    ///< live entries right now
    uint64_t bytes = 0;      ///< live bytes right now

    uint64_t
    lookups() const
    {
        return hits + misses + expired + bypasses;
    }

    /** Hits over non-bypass lookups; 0 when nothing was looked up. */
    double
    hitRate() const
    {
        const uint64_t tried = hits + misses + expired;
        return tried == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(tried);
    }

    /** Fold @p other's counters into this one. */
    void merge(const CacheStats &other);

    /**
     * Export as labeled metrics under `cache=@p cache_name`:
     * `sirius_cache_lookups_total{cache=,outcome=hit|miss|expired|bypass}`,
     * `sirius_cache_insertions_total{cache=,outcome=stored|replaced|rejected}`,
     * `sirius_cache_evictions_total{cache=,outcome=lru|expired}`, and the
     * `sirius_cache_entries{cache=}` / `sirius_cache_bytes{cache=}` gauges.
     */
    void exportTo(MetricsRegistry &registry,
                  const std::string &cache_name) const;
};

/**
 * A sharded, mutex-striped, byte-budgeted LRU cache with TTL.
 *
 * - Sharding: the key hash picks one of `shards` independent stripes,
 *   each with its own mutex, LRU list and hash map, so concurrent
 *   workers rarely contend (the hammer test in tests/test_cache.cc runs
 *   it under TSan).
 * - Budget: each shard owns byteBudget/shards; inserts evict from the
 *   LRU tail until the new entry fits. Entry cost is caller-declared
 *   (the integration points know their value layouts).
 * - TTL: entries expire ttlSeconds after insertion, collected lazily at
 *   lookup; with CacheConfig::clock set, expiry is deterministic under
 *   a ManualTime (no real sleeping in tests).
 * - Deadlines: a lookup carrying a bounded Deadline never blocks — an
 *   already-expired budget skips the table entirely and a contended
 *   shard lock is a counted bypass, so caching can only remove latency
 *   from a query, never add queueing to one that cannot afford it.
 * - Disabled (enabled = false): pass-through; gets miss (as bypasses),
 *   puts are dropped. Integration points need no `if (cache)` forests.
 *
 * Thread-safe throughout. Not copyable (mutexes).
 */
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache
{
  public:
    /** @param name stable metrics label (`cache=<name>`). */
    explicit ShardedLruCache(CacheConfig config, std::string name)
        : config_(config), name_(std::move(name)),
          epoch_(std::chrono::steady_clock::now())
    {
        const size_t count = config_.shards < 1 ? 1 : config_.shards;
        perShardBudget_ = config_.byteBudget == 0
            ? 0
            : (config_.byteBudget + count - 1) / count;
        shards_.reserve(count);
        for (size_t i = 0; i < count; ++i)
            shards_.push_back(std::make_unique<Shard>());
    }

    ShardedLruCache(const ShardedLruCache &) = delete;
    ShardedLruCache &operator=(const ShardedLruCache &) = delete;

    bool enabled() const { return config_.enabled; }
    const CacheConfig &config() const { return config_; }
    const std::string &name() const { return name_; }

    /**
     * Look up @p key; on a hit copy the value into @p out, promote the
     * entry to most-recently-used, and return true.
     *
     * A bounded @p deadline makes the lookup non-blocking: an expired
     * budget returns false without touching the shard, and a contended
     * shard mutex is a counted bypass instead of a wait.
     */
    bool
    get(const K &key, V &out, const Deadline &deadline = {})
    {
        if (!config_.enabled) {
            bypasses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        if (deadline.bounded() && deadline.expired()) {
            bypasses_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        Shard &shard = shardOf(key);
        std::unique_lock<std::mutex> lock(shard.mutex,
                                          std::defer_lock);
        if (deadline.bounded()) {
            if (!lock.try_lock()) {
                bypasses_.fetch_add(1, std::memory_order_relaxed);
                return false;
            }
        } else {
            lock.lock();
        }
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            ++shard.stats.misses;
            return false;
        }
        if (config_.ttlSeconds > 0.0 &&
            nowSeconds() - it->second->insertedSeconds >
                config_.ttlSeconds) {
            shard.bytes -= it->second->bytes;
            shard.lru.erase(it->second);
            shard.map.erase(it);
            ++shard.stats.expired;
            ++shard.stats.evictedExpired;
            return false;
        }
        // Promote to MRU; the list splice invalidates no iterators.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        out = it->second->value;
        ++shard.stats.hits;
        return true;
    }

    /**
     * Insert (or overwrite) @p key with @p value, declared to cost
     * @p bytes. Evicts LRU entries until the value fits its shard's
     * budget slice; a value larger than the whole slice is rejected.
     */
    void
    put(const K &key, V value, size_t bytes)
    {
        if (!config_.enabled)
            return;
        Shard &shard = shardOf(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.bytes -= it->second->bytes;
            shard.bytes += bytes;
            it->second->value = std::move(value);
            it->second->bytes = bytes;
            it->second->insertedSeconds = nowSeconds();
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            ++shard.stats.replaced;
            evictOverBudget(shard);
            return;
        }
        if (perShardBudget_ != 0 && bytes > perShardBudget_) {
            ++shard.stats.rejected;
            return;
        }
        shard.lru.push_front(
            Node{key, std::move(value), bytes, nowSeconds()});
        shard.map.emplace(key, shard.lru.begin());
        shard.bytes += bytes;
        ++shard.stats.insertions;
        evictOverBudget(shard);
    }

    /** Aggregated counters across all shards (thread-safe). */
    CacheStats
    stats() const
    {
        CacheStats out;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            out.merge(shard->stats);
            out.entries += shard->map.size();
            out.bytes += shard->bytes;
        }
        out.bypasses += bypasses_.load(std::memory_order_relaxed);
        return out;
    }

    /** Export stats() under this cache's name (see CacheStats). */
    void
    exportTo(MetricsRegistry &registry) const
    {
        stats().exportTo(registry, name_);
    }

    /** Live entries across all shards. */
    size_t
    entryCount() const
    {
        size_t n = 0;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            n += shard->map.size();
        }
        return n;
    }

    /** Live bytes across all shards. */
    size_t
    byteCount() const
    {
        size_t n = 0;
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            n += shard->bytes;
        }
        return n;
    }

    /** Drop every entry (counters are kept). */
    void
    clear()
    {
        for (const auto &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            shard->map.clear();
            shard->lru.clear();
            shard->bytes = 0;
        }
    }

    size_t shardCount() const { return shards_.size(); }

  private:
    struct Node
    {
        K key;
        V value;
        size_t bytes = 0;
        double insertedSeconds = 0.0;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Node> lru; ///< front = most recently used
        std::unordered_map<K, typename std::list<Node>::iterator, Hash>
            map;
        size_t bytes = 0;
        CacheStats stats; ///< entries/bytes fields unused per shard
    };

    Shard &
    shardOf(const K &key)
    {
        // splitmix64 finalizer spreads clustered std::hash values
        // across shards.
        uint64_t h = static_cast<uint64_t>(Hash{}(key));
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        h ^= h >> 31;
        return *shards_[h % shards_.size()];
    }

    double
    nowSeconds() const
    {
        if (config_.clock != nullptr)
            return config_.clock->now();
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

    /** Evict from the LRU tail until the shard fits its budget slice. */
    void
    evictOverBudget(Shard &shard)
    {
        if (perShardBudget_ == 0)
            return;
        while (shard.bytes > perShardBudget_ && !shard.lru.empty()) {
            const Node &victim = shard.lru.back();
            shard.bytes -= victim.bytes;
            shard.map.erase(victim.key);
            shard.lru.pop_back();
            ++shard.stats.evictedLru;
        }
    }

    CacheConfig config_;
    std::string name_;
    size_t perShardBudget_ = 0;
    std::chrono::steady_clock::time_point epoch_;
    /** Bypass outcomes are counted lock-free (no shard was touched). */
    std::atomic<uint64_t> bypasses_{0};
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace sirius

namespace std {

/** CacheKey128 is already a high-quality hash; fold the lanes. */
template <> struct hash<sirius::CacheKey128>
{
    size_t
    operator()(const sirius::CacheKey128 &key) const noexcept
    {
        return static_cast<size_t>(key.hi ^ (key.lo * 0x9e3779b97f4a7c15ULL));
    }
};

} // namespace std

#endif // SIRIUS_COMMON_CACHE_H
