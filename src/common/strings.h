/**
 * @file
 * Small string helpers shared by the NLP, search and QA components.
 */

#ifndef SIRIUS_COMMON_STRINGS_H
#define SIRIUS_COMMON_STRINGS_H

#include <string>
#include <vector>

namespace sirius {

/** ASCII lower-case copy. */
std::string toLower(const std::string &s);

/** Split on any of the characters in @p delims, dropping empty fields. */
std::vector<std::string> split(const std::string &s,
                               const std::string &delims = " \t\r\n");

/** Join with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep = " ");

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** True if @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace sirius

#endif // SIRIUS_COMMON_STRINGS_H
