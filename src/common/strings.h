/**
 * @file
 * Small string helpers shared by the NLP, search and QA components.
 */

#ifndef SIRIUS_COMMON_STRINGS_H
#define SIRIUS_COMMON_STRINGS_H

#include <string>
#include <vector>

namespace sirius {

/** ASCII lower-case copy. */
std::string toLower(const std::string &s);

/** Split on any of the characters in @p delims, dropping empty fields. */
std::vector<std::string> split(const std::string &s,
                               const std::string &delims = " \t\r\n");

/** Join with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep = " ");

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** True if @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Append @p value to @p out as a JSON string literal (with quotes). */
void appendJsonString(std::string &out, const std::string &value);

/**
 * Minimal scanner for the flat single-line JSON objects this codebase
 * emits (trace spans, event-log entries). It is a parser for *our*
 * formats, not a general JSON library: top-level keys are unique,
 * values are numbers, strings, or one flat string-to-string object.
 */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &text) : text_(text) {}

    /** Consume @p c (after whitespace); false when absent. */
    bool expect(char c);

    /** True when the next non-space character is @p c (not consumed). */
    bool peek(char c);

    /** Parse a quoted, escaped JSON string into @p out. */
    bool parseString(std::string &out);

    /** Parse a JSON number into @p out. */
    bool parseNumber(double &out);

    /** True when only whitespace remains. */
    bool done();

  private:
    void skipSpace();

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace sirius

#endif // SIRIUS_COMMON_STRINGS_H
