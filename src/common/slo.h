/**
 * @file
 * SLO engine: declarative service-level objectives evaluated over
 * rolling windows with multi-window burn-rate alerts, plus a bounded
 * structured EventLog the alerts (and the cluster tier) write to.
 *
 * The paper's warehouse-scale argument is budget arithmetic: a query
 * has a latency budget (Figures 14-19) and the fleet has an error
 * budget. Aggregate counters say how many queries failed; an SLO says
 * whether the *rate* of failure is burning the budget faster than the
 * objective allows. The SloTracker implements the standard
 * multi-window, multi-burn-rate form: an alert fires when both a long
 * window (is this real?) and a short window (is it still happening?)
 * exceed a burn-rate threshold, and clears when the condition lapses.
 * Windows scale by a single knob so the 5m/1h and 6h/3d production
 * pairs shrink to milliseconds under ManualTime in tests and to a few
 * seconds in the slo_smoke.sh drill.
 *
 * Everything here is process-local and allocation-light: time-bucketed
 * good/total counters per objective, a fixed set of alert rules, and a
 * bounded event ring — cheap enough to leave on in production, which is
 * the same design point as the TraceCollector and the flight recorder.
 */

#ifndef SIRIUS_COMMON_SLO_H
#define SIRIUS_COMMON_SLO_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"

namespace sirius {

/**
 * Bounded ring of structured operational events (alert fire/clear,
 * shard ejection/rejoin, drill actions, flight-recorder dumps).
 *
 * Logs tell a human what happened; the EventLog tells *tools*: each
 * entry is a kind + message + flat attrs with a timestamp, exportable
 * as JSONL for the ops scripts and asserted on by the smoke drills.
 * The ring is bounded so an alert storm cannot grow the process; drops
 * are counted, never silent.
 */
class EventLog
{
  public:
    /** One structured event. */
    struct Event
    {
        double timeSeconds = 0.0; ///< owner-defined clock (see append)
        std::string kind;         ///< snake_case ("alert_fire", ...)
        std::string message;      ///< one human-readable line
        /** Flat key=value details (objective, shard, burn rates...). */
        std::vector<std::pair<std::string, std::string>> attrs;
    };

    /** @param capacity ring size in events (>= 1) */
    explicit EventLog(size_t capacity = 1024);

    /** Append one event (thread-safe). Oldest events are overwritten. */
    void append(Event event);

    /** Convenience: build and append an event stamped with @p time_s. */
    void note(double time_s, const std::string &kind,
              const std::string &message,
              std::vector<std::pair<std::string, std::string>> attrs = {});

    /** Events ever appended, including overwritten ones. */
    uint64_t appended() const;

    /** Events lost to the ring bound. */
    uint64_t dropped() const;

    /** Ring capacity in events. */
    size_t capacity() const { return capacity_; }

    /** Copy of the retained events, oldest first. */
    std::vector<Event> snapshot() const;

    /**
     * Export per-kind totals into @p registry as
     * `sirius_events_total{kind=}` counters plus
     * `sirius_events_dropped_total`; @p base labels are prepended.
     */
    void exportTo(MetricsRegistry &registry,
                  const MetricLabels &base = {}) const;

    /** One event as a single-line JSON object (no newline). */
    static std::string toJson(const Event &event);

    /** Parse a toJson() line back. @return false when malformed. */
    static bool fromJson(const std::string &line, Event &out);

    /** Write the retained events as JSONL to @p path. */
    bool writeJsonl(const std::string &path, bool append = false) const;

    /**
     * Read a JSONL event file written by writeJsonl(). Unparseable
     * lines are skipped and counted into @p malformed when non-null.
     */
    static std::vector<Event> readJsonl(const std::string &path,
                                        size_t *malformed = nullptr);

  private:
    mutable std::mutex mutex_;
    size_t capacity_;
    std::deque<Event> ring_;
    uint64_t appended_ = 0;
    std::vector<std::pair<std::string, uint64_t>> kindCounts_;
};

/** One declarative objective the tracker evaluates. */
struct SloObjective
{
    /** What counts as a good observation. */
    enum class Signal
    {
        Availability, ///< recordOutcome(): good = the query succeeded
        Latency,      ///< recordLatency(): good = under the threshold
    };

    std::string name;    ///< label value ("availability", "latency_p99")
    Signal signal = Signal::Availability;
    double target = 0.999; ///< required good fraction (SLO target)
    /** Latency signal only: a good observation is <= this. */
    double latencyThresholdSeconds = 0.0;
};

/**
 * One multi-window burn-rate alert rule. Burn rate is
 * badFraction(window) / (1 - target): 1.0 means the error budget is
 * consumed exactly at the rate the SLO allows, 14.4 means a 30-day
 * budget would be gone in ~2 days. The rule fires when BOTH windows
 * exceed the threshold (long = significant, short = still happening)
 * and clears as soon as either recovers.
 */
struct SloAlertRule
{
    std::string name;    ///< label value ("fast", "slow")
    double longWindowSeconds = 3600.0;
    double shortWindowSeconds = 300.0;
    double burnThreshold = 14.4;
};

/** SloTracker configuration. */
struct SloConfig
{
    std::vector<SloObjective> objectives;
    /** Empty = the standard fast (5m/1h) + slow (6h/3d) pair. */
    std::vector<SloAlertRule> rules;
    /**
     * Multiplier applied to every rule window — the knob that shrinks
     * production windows to drill/test scale (load_test --slo-scale).
     */
    double windowScale = 1.0;
    /**
     * Rolling-window bucket width; 0 derives it from the shortest
     * scaled window so burn rates resolve ~30 points per short window.
     */
    double bucketSeconds = 0.0;
    /** Virtual clock for deterministic tests; null = steady_clock. */
    const ManualTime *clock = nullptr;
};

/** The standard objective pair: availability 99.9% + latency target. */
SloConfig defaultSloConfig(double latency_threshold_seconds,
                           double latency_target = 0.99,
                           double availability_target = 0.999);

/** Rolling-window state of one objective for one window length. */
struct SloWindowStatus
{
    std::string window; ///< label value ("5m", "1h", ... or "w<secs>")
    double windowSeconds = 0.0;
    uint64_t good = 0;
    uint64_t total = 0;
    double goodRatio = 1.0; ///< 1.0 when the window is empty
    double burnRate = 0.0;  ///< badFraction / error budget
};

/** State of one alert rule on one objective. */
struct SloAlertStatus
{
    std::string alert; ///< rule name
    bool firing = false;
    uint64_t fires = 0;
    uint64_t clears = 0;
    double lastTransitionSeconds = 0.0;
};

/** Snapshot of one objective: lifetime counts, windows, alerts. */
struct SloObjectiveStatus
{
    std::string objective;
    double target = 0.0;
    uint64_t good = 0;  ///< lifetime good observations
    uint64_t total = 0; ///< lifetime observations
    std::vector<SloWindowStatus> windows;
    std::vector<SloAlertStatus> alerts;
};

/** Full tracker snapshot. */
struct SloSnapshot
{
    double nowSeconds = 0.0;
    std::vector<SloObjectiveStatus> objectives;

    /** True when any alert on any objective is currently firing. */
    bool anyFiring() const;
};

/**
 * Tracks a set of SloObjectives over rolling windows and drives their
 * burn-rate alerts.
 *
 * Observations arrive from serving threads (recordOutcome per leg or
 * query, recordLatency per delivered query); each record updates the
 * objective's time buckets and re-evaluates the alert state machine,
 * so fire/clear transitions happen at a deterministic observation
 * under ManualTime. Transitions are written to the EventLog (when one
 * is attached) and counted for export; an optional onFire hook lets
 * the owner dump the flight recorder the moment an alert fires.
 */
class SloTracker
{
  public:
    explicit SloTracker(SloConfig config, EventLog *events = nullptr);

    /** Feed availability objectives: one query/leg outcome. */
    void recordOutcome(bool good);

    /** Feed latency objectives: one delivered end-to-end latency. */
    void recordLatency(double seconds);

    /** Convenience: both signals from one completed query. */
    void record(double latency_seconds, bool good);

    /**
     * Re-evaluate every alert at the current time without a new
     * observation (record*() already evaluates; call this from a
     * monitor loop so alerts clear during quiet periods too).
     */
    void evaluate();

    /** Current time on the tracker's clock (virtual under ManualTime). */
    double nowSeconds() const;

    /** The scaled alert rules actually in force. */
    const std::vector<SloAlertRule> &rules() const { return rules_; }

    /** Hook invoked (outside the lock) each time any alert fires. */
    void setOnFire(std::function<void()> hook);

    /** Consistent snapshot of every objective, window, and alert. */
    SloSnapshot snapshot() const;

    /**
     * Export the SLO families into @p registry (@p base labels are
     * prepended): `sirius_slo_target{objective=}`,
     * `sirius_slo_good_ratio` / `sirius_slo_burn_rate`
     * `{objective=,window=}`, `sirius_slo_events_total`
     * `{objective=,outcome=}`, `sirius_slo_alert_state`
     * `{objective=,alert=}`, and `sirius_slo_alert_transitions_total`
     * `{objective=,alert=,state=}`.
     */
    void exportTo(MetricsRegistry &registry,
                  const MetricLabels &base = {}) const;

  private:
    struct Bucket
    {
        int64_t index = 0; ///< floor(time / bucketSeconds)
        uint64_t good = 0;
        uint64_t total = 0;
    };

    struct AlertState
    {
        bool firing = false;
        uint64_t fires = 0;
        uint64_t clears = 0;
        double lastTransitionSeconds = 0.0;
    };

    struct ObjectiveState
    {
        SloObjective objective;
        std::deque<Bucket> buckets; ///< newest at the back
        uint64_t good = 0;
        uint64_t total = 0;
        std::vector<AlertState> alerts; ///< parallel to rules_
    };

    void observe(ObjectiveState &state, bool good, double now);
    /** (good, total) over the trailing @p window_seconds at @p now. */
    std::pair<uint64_t, uint64_t> windowCounts(
        const ObjectiveState &state, double window_seconds,
        double now) const;
    double burnRate(const ObjectiveState &state, double window_seconds,
                    double now) const;
    /** Runs the alert state machine; returns true if any alert fired. */
    bool evaluateLocked(double now);
    static std::string windowLabel(double seconds);

    mutable std::mutex mutex_;
    std::vector<SloAlertRule> rules_; ///< windows already scaled
    double bucketSeconds_;
    double maxWindowSeconds_;
    std::vector<ObjectiveState> objectives_;
    EventLog *events_;
    std::function<void()> onFire_;
    const ManualTime *clock_;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace sirius

#endif // SIRIUS_COMMON_SLO_H
