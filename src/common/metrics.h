/**
 * @file
 * A labeled metrics registry: counters, gauges, and latency histograms
 * under snake_case names with key=value labels, plus machine-readable
 * exporters (Prometheus-style text exposition and CSV).
 *
 * ServerStats, the Profiler, and the queue-wait measurement all export
 * through one registry so every serving-stack number — Figure-14 service
 * latency, Figure-8 variability, Figure-17 queueing — leaves the process
 * in one consistent, labeled, scrapeable form instead of bespoke printf
 * tables. Label conventions live in docs/ARCHITECTURE.md: `stage=` for
 * pipeline stages, `component=` for Figure-9 kernels, `rung=` for
 * degradation ladder levels, `outcome=` for query fates.
 */

#ifndef SIRIUS_COMMON_METRICS_H
#define SIRIUS_COMMON_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace sirius {

/** Ordered key=value labels attached to one metric instance. */
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/**
 * True when @p name follows the registry's naming convention:
 * snake_case, starting with a letter — `sirius_queue_wait_seconds`,
 * never `QueueWait` or `queue-wait`. scripts/lint_metrics.sh enforces
 * the same rule over the source tree.
 */
bool isValidMetricName(const std::string &name);

/** A monotonically increasing count (thread-safe). */
class CounterMetric
{
  public:
    void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** A point-in-time double value (thread-safe set/read). */
class GaugeMetric
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Thread-safe registry of labeled metrics.
 *
 * Registration (name + labels -> instance) takes an internal mutex;
 * the returned references are stable for the registry's lifetime, so
 * hot paths register once and then update lock-free (atomic adds, or
 * LatencyHistogram's lock-free buckets). Registries are copyable and
 * mergeable, which is how per-worker or per-level registries combine
 * into a fleet view.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &other);
    MetricsRegistry &operator=(const MetricsRegistry &other);

    /**
     * The counter registered under (@p name, @p labels), created on
     * first use. Fatal when @p name breaks the naming convention or is
     * already registered with a different type.
     */
    CounterMetric &counter(const std::string &name,
                           const MetricLabels &labels);

    /** The gauge under (@p name, @p labels); see counter(). */
    GaugeMetric &gauge(const std::string &name,
                       const MetricLabels &labels);

    /**
     * The latency histogram under (@p name, @p labels); see counter().
     * All histograms use LatencyHistogram's default log-bucket layout
     * so instances merge across registries.
     */
    LatencyHistogram &histogram(const std::string &name,
                                const MetricLabels &labels);

    /**
     * Fold @p other into this registry: counters add, histograms merge,
     * gauges add (so fleet merges sum instantaneous values like queue
     * depth; overwrite by set() after merging when sum is wrong).
     */
    void merge(const MetricsRegistry &other);

    /** Number of registered metric instances. */
    size_t size() const;

    /**
     * Prometheus-style text exposition: `# TYPE` headers, one
     * `name{labels} value` line per instance, histograms expanded into
     * cumulative `_bucket{le=...}` / `_sum` / `_count` series. Empty
     * trailing buckets are elided (the `+Inf` bucket always remains),
     * keeping 96-bucket histograms readable.
     */
    std::string renderPrometheus() const;

    /**
     * CSV exposition for the bench harness: header
     * `metric,labels,stat,value`; counters and gauges emit one `value`
     * row, histograms emit `count`, `sum`, `mean`, `p50`, `p95`, `p99`.
     * Labels are `k=v` pairs joined with `;`.
     */
    std::string renderCsv() const;

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry
    {
        std::string name;
        MetricLabels labels;
        Kind kind;
        std::unique_ptr<CounterMetric> counter;
        std::unique_ptr<GaugeMetric> gauge;
        std::unique_ptr<LatencyHistogram> histogram;
    };

    Entry &entry(const std::string &name, const MetricLabels &labels,
                 Kind kind);

    static std::string key(const std::string &name,
                           const MetricLabels &labels);

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_; ///< key() -> instance
};

} // namespace sirius

#endif // SIRIUS_COMMON_METRICS_H
