#include "common/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/strings.h"

namespace sirius {

namespace {

/** Error budget with a floor so target = 1.0 cannot divide by zero. */
double
errorBudget(double target)
{
    return std::max(1.0 - target, 1e-9);
}

} // namespace

EventLog::EventLog(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1))
{
}

void
EventLog::append(Event event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++appended_;
    auto it = std::find_if(kindCounts_.begin(), kindCounts_.end(),
                           [&](const auto &kv) {
                               return kv.first == event.kind;
                           });
    if (it == kindCounts_.end())
        kindCounts_.emplace_back(event.kind, 1);
    else
        ++it->second;
    if (ring_.size() == capacity_)
        ring_.pop_front();
    ring_.push_back(std::move(event));
}

void
EventLog::note(double time_s, const std::string &kind,
               const std::string &message,
               std::vector<std::pair<std::string, std::string>> attrs)
{
    Event event;
    event.timeSeconds = time_s;
    event.kind = kind;
    event.message = message;
    event.attrs = std::move(attrs);
    append(std::move(event));
}

uint64_t
EventLog::appended() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appended_;
}

uint64_t
EventLog::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appended_ - ring_.size();
}

std::vector<EventLog::Event>
EventLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<Event>(ring_.begin(), ring_.end());
}

void
EventLog::exportTo(MetricsRegistry &registry,
                   const MetricLabels &base) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[kind, count] : kindCounts_) {
        MetricLabels labels = base;
        labels.emplace_back("kind", kind);
        auto &counter = registry.counter("sirius_events_total", labels);
        counter.add(count - counter.value());
    }
    MetricLabels labels = base;
    labels.emplace_back("log", "events");
    auto &dropped = registry.counter("sirius_events_dropped_total", labels);
    dropped.add(appended_ - ring_.size() > dropped.value()
                    ? appended_ - ring_.size() - dropped.value()
                    : 0);
}

std::string
EventLog::toJson(const Event &event)
{
    std::string out;
    out.reserve(96 + event.message.size());
    char buf[48];
    out += "{\"t\":";
    std::snprintf(buf, sizeof(buf), "%.9f", event.timeSeconds);
    out += buf;
    out += ",\"kind\":";
    appendJsonString(out, event.kind);
    out += ",\"msg\":";
    appendJsonString(out, event.message);
    if (!event.attrs.empty()) {
        out += ",\"attrs\":{";
        bool first = true;
        for (const auto &[key, value] : event.attrs) {
            if (!first)
                out += ',';
            first = false;
            appendJsonString(out, key);
            out += ':';
            appendJsonString(out, value);
        }
        out += '}';
    }
    out += '}';
    return out;
}

bool
EventLog::fromJson(const std::string &line, Event &out)
{
    JsonScanner scan(line);
    if (!scan.expect('{'))
        return false;
    out = Event{};
    bool first = true;
    bool sawTime = false, sawKind = false;
    while (!scan.peek('}')) {
        if (!first && !scan.expect(','))
            return false;
        first = false;
        std::string key;
        if (!scan.parseString(key) || !scan.expect(':'))
            return false;
        if (key == "kind" || key == "msg") {
            std::string value;
            if (!scan.parseString(value))
                return false;
            if (key == "kind") {
                out.kind = std::move(value);
                sawKind = true;
            } else {
                out.message = std::move(value);
            }
        } else if (key == "attrs") {
            if (!scan.expect('{'))
                return false;
            bool firstAttr = true;
            while (!scan.peek('}')) {
                if (!firstAttr && !scan.expect(','))
                    return false;
                firstAttr = false;
                std::string k, v;
                if (!scan.parseString(k) || !scan.expect(':') ||
                    !scan.parseString(v)) {
                    return false;
                }
                out.attrs.emplace_back(std::move(k), std::move(v));
            }
            if (!scan.expect('}'))
                return false;
        } else {
            double value = 0.0;
            if (!scan.parseNumber(value))
                return false;
            if (key == "t") {
                out.timeSeconds = value;
                sawTime = true;
            }
            // Unknown numeric keys are tolerated for forward compat.
        }
    }
    if (!scan.expect('}') || !scan.done())
        return false;
    return sawTime && sawKind;
}

bool
EventLog::writeJsonl(const std::string &path, bool append) const
{
    std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
    if (!out)
        return false;
    for (const auto &event : snapshot())
        out << toJson(event) << '\n';
    return static_cast<bool>(out);
}

std::vector<EventLog::Event>
EventLog::readJsonl(const std::string &path, size_t *malformed)
{
    std::vector<Event> events;
    size_t bad = 0;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Event event;
        if (fromJson(line, event))
            events.push_back(std::move(event));
        else
            ++bad;
    }
    if (malformed != nullptr)
        *malformed = bad;
    return events;
}

SloConfig
defaultSloConfig(double latency_threshold_seconds,
                 double latency_target, double availability_target)
{
    SloConfig config;
    SloObjective availability;
    availability.name = "availability";
    availability.signal = SloObjective::Signal::Availability;
    availability.target = availability_target;
    config.objectives.push_back(availability);
    if (latency_threshold_seconds > 0.0) {
        SloObjective latency;
        latency.name = "latency";
        latency.signal = SloObjective::Signal::Latency;
        latency.target = latency_target;
        latency.latencyThresholdSeconds = latency_threshold_seconds;
        config.objectives.push_back(latency);
    }
    return config;
}

bool
SloSnapshot::anyFiring() const
{
    for (const auto &objective : objectives)
        for (const auto &alert : objective.alerts)
            if (alert.firing)
                return true;
    return false;
}

SloTracker::SloTracker(SloConfig config, EventLog *events)
    : events_(events), clock_(config.clock),
      epoch_(std::chrono::steady_clock::now())
{
    if (config.rules.empty()) {
        // The standard multi-window pair (Google SRE workbook): fast
        // catches an outage in minutes, slow catches a simmering leak.
        config.rules.push_back({"fast", 3600.0, 300.0, 14.4});
        config.rules.push_back({"slow", 259200.0, 21600.0, 6.0});
    }
    const double scale = config.windowScale > 0.0 ? config.windowScale : 1.0;
    double shortest = 0.0;
    double longest = 0.0;
    for (SloAlertRule rule : config.rules) {
        rule.longWindowSeconds *= scale;
        rule.shortWindowSeconds *= scale;
        if (shortest == 0.0 || rule.shortWindowSeconds < shortest)
            shortest = rule.shortWindowSeconds;
        longest = std::max(longest, rule.longWindowSeconds);
        rules_.push_back(std::move(rule));
    }
    bucketSeconds_ = config.bucketSeconds > 0.0
        ? config.bucketSeconds
        : std::max(shortest / 30.0, 1e-6);
    maxWindowSeconds_ = longest;
    for (const SloObjective &objective : config.objectives) {
        ObjectiveState state;
        state.objective = objective;
        state.alerts.resize(rules_.size());
        objectives_.push_back(std::move(state));
    }
}

double
SloTracker::nowSeconds() const
{
    if (clock_ != nullptr)
        return clock_->now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
SloTracker::setOnFire(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(mutex_);
    onFire_ = std::move(hook);
}

void
SloTracker::recordOutcome(bool good)
{
    const double now = nowSeconds();
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (ObjectiveState &state : objectives_)
            if (state.objective.signal ==
                SloObjective::Signal::Availability)
                observe(state, good, now);
        if (evaluateLocked(now))
            hook = onFire_;
    }
    if (hook)
        hook();
}

void
SloTracker::recordLatency(double seconds)
{
    const double now = nowSeconds();
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (ObjectiveState &state : objectives_)
            if (state.objective.signal == SloObjective::Signal::Latency)
                observe(state,
                        seconds <=
                            state.objective.latencyThresholdSeconds,
                        now);
        if (evaluateLocked(now))
            hook = onFire_;
    }
    if (hook)
        hook();
}

void
SloTracker::record(double latency_seconds, bool good)
{
    const double now = nowSeconds();
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (ObjectiveState &state : objectives_) {
            if (state.objective.signal ==
                SloObjective::Signal::Availability) {
                observe(state, good, now);
            } else {
                observe(state,
                        good &&
                            latency_seconds <=
                                state.objective.latencyThresholdSeconds,
                        now);
            }
        }
        if (evaluateLocked(now))
            hook = onFire_;
    }
    if (hook)
        hook();
}

void
SloTracker::evaluate()
{
    const double now = nowSeconds();
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (evaluateLocked(now))
            hook = onFire_;
    }
    if (hook)
        hook();
}

void
SloTracker::observe(ObjectiveState &state, bool good, double now)
{
    const auto index =
        static_cast<int64_t>(std::floor(now / bucketSeconds_));
    if (state.buckets.empty() || state.buckets.back().index < index) {
        Bucket bucket;
        bucket.index = index;
        state.buckets.push_back(bucket);
    }
    Bucket &bucket = state.buckets.back();
    bucket.total += 1;
    if (good)
        bucket.good += 1;
    state.total += 1;
    if (good)
        state.good += 1;
    // Trim buckets that no window can see any more.
    const auto oldest = static_cast<int64_t>(
        std::floor((now - maxWindowSeconds_) / bucketSeconds_));
    while (!state.buckets.empty() &&
           state.buckets.front().index < oldest)
        state.buckets.pop_front();
}

std::pair<uint64_t, uint64_t>
SloTracker::windowCounts(const ObjectiveState &state,
                         double window_seconds, double now) const
{
    // A bucket belongs to the window when any part of it is newer than
    // now - window; floor alignment keeps membership deterministic.
    const auto oldest = static_cast<int64_t>(
        std::floor((now - window_seconds) / bucketSeconds_));
    uint64_t good = 0;
    uint64_t total = 0;
    for (auto it = state.buckets.rbegin(); it != state.buckets.rend();
         ++it) {
        if (it->index < oldest)
            break;
        good += it->good;
        total += it->total;
    }
    return {good, total};
}

double
SloTracker::burnRate(const ObjectiveState &state, double window_seconds,
                     double now) const
{
    const auto [good, total] = windowCounts(state, window_seconds, now);
    if (total == 0)
        return 0.0;
    const double bad =
        static_cast<double>(total - good) / static_cast<double>(total);
    return bad / errorBudget(state.objective.target);
}

bool
SloTracker::evaluateLocked(double now)
{
    bool anyFired = false;
    for (ObjectiveState &state : objectives_) {
        for (size_t r = 0; r < rules_.size(); ++r) {
            const SloAlertRule &rule = rules_[r];
            AlertState &alert = state.alerts[r];
            const double burnLong =
                burnRate(state, rule.longWindowSeconds, now);
            const double burnShort =
                burnRate(state, rule.shortWindowSeconds, now);
            const bool condition = burnLong > rule.burnThreshold &&
                burnShort > rule.burnThreshold;
            if (condition == alert.firing)
                continue;
            alert.firing = condition;
            alert.lastTransitionSeconds = now;
            if (condition) {
                ++alert.fires;
                anyFired = true;
            } else {
                ++alert.clears;
            }
            if (events_ != nullptr) {
                events_->note(
                    now, condition ? "alert_fire" : "alert_clear",
                    format("%s burn-rate alert %s on objective %s",
                           rule.name.c_str(),
                           condition ? "fired" : "cleared",
                           state.objective.name.c_str()),
                    {{"objective", state.objective.name},
                     {"alert", rule.name},
                     {"burn_long", format("%.3f", burnLong)},
                     {"burn_short", format("%.3f", burnShort)},
                     {"threshold",
                      format("%.3f", rule.burnThreshold)}});
            }
        }
    }
    return anyFired;
}

std::string
SloTracker::windowLabel(double seconds)
{
    // Friendly labels for the canonical windows; generic elsewhere.
    if (seconds >= 1.0 &&
        std::fabs(seconds - std::round(seconds)) < 1e-9) {
        const auto whole = static_cast<long long>(std::llround(seconds));
        if (whole % 86400 == 0)
            return format("%lldd", whole / 86400);
        if (whole % 3600 == 0)
            return format("%lldh", whole / 3600);
        if (whole % 60 == 0)
            return format("%lldm", whole / 60);
        return format("%llds", whole);
    }
    return format("w%g", seconds);
}

SloSnapshot
SloTracker::snapshot() const
{
    const double now = nowSeconds();
    SloSnapshot snap;
    snap.nowSeconds = now;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const ObjectiveState &state : objectives_) {
        SloObjectiveStatus status;
        status.objective = state.objective.name;
        status.target = state.objective.target;
        status.good = state.good;
        status.total = state.total;
        // One window entry per distinct window length across rules.
        std::vector<double> lengths;
        for (const SloAlertRule &rule : rules_) {
            for (double w :
                 {rule.longWindowSeconds, rule.shortWindowSeconds}) {
                if (std::find(lengths.begin(), lengths.end(), w) ==
                    lengths.end())
                    lengths.push_back(w);
            }
        }
        std::sort(lengths.begin(), lengths.end());
        for (double w : lengths) {
            SloWindowStatus window;
            window.window = windowLabel(w);
            window.windowSeconds = w;
            const auto [good, total] = windowCounts(state, w, now);
            window.good = good;
            window.total = total;
            window.goodRatio = total == 0
                ? 1.0
                : static_cast<double>(good) / static_cast<double>(total);
            window.burnRate = burnRate(state, w, now);
            status.windows.push_back(window);
        }
        for (size_t r = 0; r < rules_.size(); ++r) {
            SloAlertStatus alert;
            alert.alert = rules_[r].name;
            alert.firing = state.alerts[r].firing;
            alert.fires = state.alerts[r].fires;
            alert.clears = state.alerts[r].clears;
            alert.lastTransitionSeconds =
                state.alerts[r].lastTransitionSeconds;
            status.alerts.push_back(alert);
        }
        snap.objectives.push_back(std::move(status));
    }
    return snap;
}

void
SloTracker::exportTo(MetricsRegistry &registry,
                     const MetricLabels &base) const
{
    const SloSnapshot snap = snapshot();
    for (const SloObjectiveStatus &objective : snap.objectives) {
        {
            MetricLabels labels = base;
            labels.emplace_back("objective", objective.objective);
            registry.gauge("sirius_slo_target", labels)
                .set(objective.target);
        }
        for (const SloWindowStatus &window : objective.windows) {
            MetricLabels labels = base;
            labels.emplace_back("objective", objective.objective);
            labels.emplace_back("window", window.window);
            registry.gauge("sirius_slo_good_ratio", labels)
                .set(window.goodRatio);
            registry.gauge("sirius_slo_burn_rate", labels)
                .set(window.burnRate);
        }
        {
            MetricLabels good = base;
            good.emplace_back("objective", objective.objective);
            good.emplace_back("outcome", "good");
            auto &goodCounter =
                registry.counter("sirius_slo_events_total", good);
            goodCounter.add(objective.good - goodCounter.value());
            MetricLabels bad = base;
            bad.emplace_back("objective", objective.objective);
            bad.emplace_back("outcome", "bad");
            auto &badCounter =
                registry.counter("sirius_slo_events_total", bad);
            badCounter.add(objective.total - objective.good -
                           badCounter.value());
        }
        for (const SloAlertStatus &alert : objective.alerts) {
            MetricLabels labels = base;
            labels.emplace_back("alert", alert.alert);
            labels.emplace_back("objective", objective.objective);
            registry.gauge("sirius_slo_alert_state", labels)
                .set(alert.firing ? 1.0 : 0.0);
            MetricLabels fires = labels;
            fires.emplace_back("state", "fire");
            auto &fireCounter = registry.counter(
                "sirius_slo_alert_transitions_total", fires);
            fireCounter.add(alert.fires - fireCounter.value());
            MetricLabels clears = labels;
            clears.emplace_back("state", "clear");
            auto &clearCounter = registry.counter(
                "sirius_slo_alert_transitions_total", clears);
            clearCounter.add(alert.clears - clearCounter.value());
        }
    }
}

} // namespace sirius
