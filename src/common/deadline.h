/**
 * @file
 * Deadline: a latency budget carried through the pipeline.
 *
 * Sirius is a latency-bound workload — the paper's entire server/TCO
 * analysis (Figures 14-19) assumes end-to-end query latency can be held
 * to a target under load. A Deadline makes that target explicit: it is
 * created when a request is admitted and threaded through every pipeline
 * stage, which checks its remaining budget and skips or cuts work short
 * once the budget is gone (see core::SiriusPipeline and the degradation
 * ladder in docs/ARCHITECTURE.md).
 */

#ifndef SIRIUS_COMMON_DEADLINE_H
#define SIRIUS_COMMON_DEADLINE_H

#include <atomic>
#include <chrono>
#include <limits>

namespace sirius {

/**
 * A manually advanced clock for deterministic timing tests.
 *
 * Tests that assert on deadline expiry or injected latency must not
 * depend on how fast the machine happens to run (a loaded CI box under
 * TSan can stall a "2 ms" window for seconds). A ManualTime starts at
 * zero and only moves when advance() is called, so a test can place a
 * deadline exactly before or after an event with no real sleeping.
 *
 * Thread-safe: advance() and now() may race; readers see some recent
 * value, which mirrors how steady_clock behaves across threads.
 */
class ManualTime
{
  public:
    /** Current virtual time in seconds since construction. */
    double now() const { return seconds_.load(std::memory_order_acquire); }

    /** Move virtual time forward by @p seconds (never backwards). */
    void
    advance(double seconds)
    {
        double cur = seconds_.load(std::memory_order_relaxed);
        while (!seconds_.compare_exchange_weak(cur, cur + seconds,
                                               std::memory_order_acq_rel))
        {
        }
    }

  private:
    std::atomic<double> seconds_{0.0};
};

/**
 * A wall-clock latency budget anchored at a fixed start instant.
 *
 * Default-constructed deadlines are unbounded (never expire), so code
 * can thread a Deadline unconditionally and pay nothing when no latency
 * target is configured. Copies share the same absolute expiry instant,
 * which is what lets one per-request deadline be handed from the
 * admission point through every stage: time spent queueing counts
 * against the same budget as time spent computing.
 */
class Deadline
{
  public:
    /** Unbounded: expired() is always false. */
    Deadline() = default;

    /** A deadline expiring @p seconds from now. */
    static Deadline
    after(double seconds)
    {
        Deadline d;
        d.bounded_ = true;
        d.budgetSeconds_ = seconds;
        d.expiry_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
        return d;
    }

    /** Explicit spelling of the default (no latency target). */
    static Deadline unbounded() { return Deadline(); }

    /**
     * A deadline expiring @p seconds from @p clock's current virtual
     * time. Behaves exactly like after(), but time only moves when the
     * test advances the clock — see ManualTime. The clock must outlive
     * every copy of the deadline.
     */
    static Deadline
    afterManual(double seconds, const ManualTime &clock)
    {
        Deadline d;
        d.bounded_ = true;
        d.budgetSeconds_ = seconds;
        d.clock_ = &clock;
        d.manualExpiry_ = clock.now() + seconds;
        return d;
    }

    /** True when this deadline can ever expire. */
    bool bounded() const { return bounded_; }

    /** True once the budget is exhausted; always false if unbounded. */
    bool
    expired() const
    {
        if (!bounded_)
            return false;
        if (clock_ != nullptr)
            return clock_->now() >= manualExpiry_;
        return Clock::now() >= expiry_;
    }

    /**
     * Seconds of budget left; negative once expired, +infinity when
     * unbounded.
     */
    double
    remainingSeconds() const
    {
        if (!bounded_)
            return std::numeric_limits<double>::infinity();
        if (clock_ != nullptr)
            return manualExpiry_ - clock_->now();
        return std::chrono::duration<double>(expiry_ - Clock::now())
            .count();
    }

    /** The original budget in seconds; +infinity when unbounded. */
    double
    budgetSeconds() const
    {
        return bounded_ ? budgetSeconds_
                        : std::numeric_limits<double>::infinity();
    }

  private:
    using Clock = std::chrono::steady_clock;

    bool bounded_ = false;
    double budgetSeconds_ = 0.0;
    Clock::time_point expiry_{};

    // Manual-clock mode (tests): when clock_ is set, expiry is tracked
    // in the clock's virtual seconds instead of steady_clock instants.
    const ManualTime *clock_ = nullptr;
    double manualExpiry_ = 0.0;
};

} // namespace sirius

#endif // SIRIUS_COMMON_DEADLINE_H
