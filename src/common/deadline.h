/**
 * @file
 * Deadline: a latency budget carried through the pipeline.
 *
 * Sirius is a latency-bound workload — the paper's entire server/TCO
 * analysis (Figures 14-19) assumes end-to-end query latency can be held
 * to a target under load. A Deadline makes that target explicit: it is
 * created when a request is admitted and threaded through every pipeline
 * stage, which checks its remaining budget and skips or cuts work short
 * once the budget is gone (see core::SiriusPipeline and the degradation
 * ladder in docs/ARCHITECTURE.md).
 */

#ifndef SIRIUS_COMMON_DEADLINE_H
#define SIRIUS_COMMON_DEADLINE_H

#include <chrono>
#include <limits>

namespace sirius {

/**
 * A wall-clock latency budget anchored at a fixed start instant.
 *
 * Default-constructed deadlines are unbounded (never expire), so code
 * can thread a Deadline unconditionally and pay nothing when no latency
 * target is configured. Copies share the same absolute expiry instant,
 * which is what lets one per-request deadline be handed from the
 * admission point through every stage: time spent queueing counts
 * against the same budget as time spent computing.
 */
class Deadline
{
  public:
    /** Unbounded: expired() is always false. */
    Deadline() = default;

    /** A deadline expiring @p seconds from now. */
    static Deadline
    after(double seconds)
    {
        Deadline d;
        d.bounded_ = true;
        d.budgetSeconds_ = seconds;
        d.expiry_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
        return d;
    }

    /** Explicit spelling of the default (no latency target). */
    static Deadline unbounded() { return Deadline(); }

    /** True when this deadline can ever expire. */
    bool bounded() const { return bounded_; }

    /** True once the budget is exhausted; always false if unbounded. */
    bool
    expired() const
    {
        return bounded_ && Clock::now() >= expiry_;
    }

    /**
     * Seconds of budget left; negative once expired, +infinity when
     * unbounded.
     */
    double
    remainingSeconds() const
    {
        if (!bounded_)
            return std::numeric_limits<double>::infinity();
        return std::chrono::duration<double>(expiry_ - Clock::now())
            .count();
    }

    /** The original budget in seconds; +infinity when unbounded. */
    double
    budgetSeconds() const
    {
        return bounded_ ? budgetSeconds_
                        : std::numeric_limits<double>::infinity();
    }

  private:
    using Clock = std::chrono::steady_clock;

    bool bounded_ = false;
    double budgetSeconds_ = 0.0;
    Clock::time_point expiry_{};
};

} // namespace sirius

#endif // SIRIUS_COMMON_DEADLINE_H
