/**
 * @file
 * Critical-path attribution over stitched traces.
 *
 * The paper's Figure 9 attributes cycles to algorithmic components in
 * aggregate; a stitched trace lets us do the same attribution exactly,
 * per query: walk one trace (router route spans + the winning leg's
 * shard spans, all on one clock after epoch alignment) and partition
 * its end-to-end duration into named, non-overlapping segments —
 * route dispatch, queue wait, each pipeline stage, inter-span gaps —
 * that sum to the root span to within floating-point addition error.
 * That exactness is the contract: "which shard/stage put query Q over
 * its deadline" has a numeric answer, not a vibe.
 */

#ifndef SIRIUS_COMMON_CRITICAL_PATH_H
#define SIRIUS_COMMON_CRITICAL_PATH_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/trace.h"

namespace sirius {

/** One contiguous slice of a query's end-to-end latency. */
struct CriticalPathSegment
{
    std::string name; ///< segment label ("queue_wait", "asr", "other"...)
    std::string kind; ///< spanKindName of the source span ("gap" if none)
    double startSeconds = 0.0;
    double durationSeconds = 0.0;
};

/** Exact latency attribution for one trace. */
struct CriticalPathReport
{
    uint64_t traceId = 0;
    bool valid = false;    ///< a root (route or query) span was found
    bool stitched = false; ///< router route spans present (cluster query)
    bool hedged = false;   ///< a hedge leg was dispatched
    int failovers = 0;     ///< failover legs dispatched
    int legs = 0;          ///< total legs (primary + failover + hedge)
    std::string winnerArm;   ///< arm that delivered ("primary", "hedge"...)
    std::string winnerShard; ///< shard index as text; "" for single server
    std::string degradation = "none";
    double totalSeconds = 0.0; ///< the root span's duration
    /**
     * Ordered partition of [start, start + total]: segment durations
     * sum to totalSeconds exactly (each boundary is computed once, so
     * the only error is float addition, well under the 1 µs contract).
     */
    std::vector<CriticalPathSegment> segments;
    /**
     * Kernel time inside the winning leg by kernel name — informational
     * (kernels nest inside stage segments, so this is not part of the
     * partition).
     */
    std::map<std::string, double> kernelSeconds;

    /** Sum of the partition (== totalSeconds by construction). */
    double sumSeconds() const;
};

/** Spans grouped by trace id, in trace-id order. */
std::map<uint64_t, std::vector<SpanRecord>> groupByTrace(
    const std::vector<SpanRecord> &spans);

/**
 * Attribute one trace's end-to-end latency. @p trace_spans holds every
 * span of a single trace id, in any order. Degrades gracefully: a
 * trace with no root yields valid = false; a stitched trace whose leg
 * spans were lost to the ring bound falls back to one "route" segment.
 */
CriticalPathReport analyzeCriticalPath(
    const std::vector<SpanRecord> &trace_spans);

} // namespace sirius

#endif // SIRIUS_COMMON_CRITICAL_PATH_H
