/**
 * @file
 * Minimal leveled logging for the Sirius libraries.
 *
 * Logging is intentionally lightweight: benchmarks time hot loops and must
 * not pay for formatting unless a message is actually emitted.
 */

#ifndef SIRIUS_COMMON_LOGGING_H
#define SIRIUS_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sirius {

/** Severity levels in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

namespace detail {

/** Process-wide minimum level that will be emitted. */
inline LogLevel &
logThreshold()
{
    static LogLevel level = LogLevel::Warn;
    return level;
}

inline const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace detail

/** Set the process-wide log threshold. */
inline void
setLogLevel(LogLevel level)
{
    detail::logThreshold() = level;
}

/** Emit a single log line to stderr if @p level passes the threshold. */
inline void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <
        static_cast<int>(detail::logThreshold())) {
        return;
    }
    std::fprintf(stderr, "[%s] %s\n", detail::levelName(level), msg.c_str());
}

/**
 * Abort the process with a message describing an internal invariant
 * violation (a bug in this library, never a user error).
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process with a message describing an unrecoverable user error
 * (bad configuration, invalid arguments).
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s\n", msg.c_str());
    std::exit(1);
}

} // namespace sirius

#endif // SIRIUS_COMMON_LOGGING_H
