/**
 * @file
 * Minimal leveled logging for the Sirius libraries.
 *
 * Logging is intentionally lightweight: benchmarks time hot loops and must
 * not pay for formatting unless a message is actually emitted.
 */

#ifndef SIRIUS_COMMON_LOGGING_H
#define SIRIUS_COMMON_LOGGING_H

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sirius {

/** Severity levels in increasing order of importance. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3 };

/**
 * Parse a level name ("debug", "info", "warn", "error", case-
 * insensitive). Returns false (and leaves @p out alone) on anything
 * else.
 */
inline bool
logLevelFromName(const std::string &name, LogLevel &out)
{
    std::string lower;
    lower.reserve(name.size());
    for (char c : name)
        lower += static_cast<char>(std::tolower(
            static_cast<unsigned char>(c)));
    if (lower == "debug") out = LogLevel::Debug;
    else if (lower == "info") out = LogLevel::Info;
    else if (lower == "warn" || lower == "warning") out = LogLevel::Warn;
    else if (lower == "error") out = LogLevel::Error;
    else return false;
    return true;
}

namespace detail {

/** Process-wide minimum level that will be emitted. */
inline LogLevel &
logThreshold()
{
    // SIRIUS_LOG_LEVEL overrides the default once, at first use; the
    // runtime setters below still win after that.
    static LogLevel level = [] {
        LogLevel initial = LogLevel::Warn;
        if (const char *env = std::getenv("SIRIUS_LOG_LEVEL"))
            logLevelFromName(env, initial);
        return initial;
    }();
    return level;
}

/**
 * Per-thread trace tag: when a sampled TraceContext is active on this
 * thread (see common/trace.h), its id is set here so every log line the
 * query emits can be correlated with its trace. Empty = no active trace.
 */
inline std::string &
logTraceTag()
{
    static thread_local std::string tag;
    return tag;
}

inline const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace detail

/** Set the process-wide log threshold. */
inline void
setLogLevel(LogLevel level)
{
    detail::logThreshold() = level;
}

/**
 * Emit a single log line to stderr if @p level passes the threshold.
 * When a sampled trace is active on this thread, the line is prefixed
 * with `trace=<id>` so logs and the JSONL trace dump correlate.
 */
inline void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <
        static_cast<int>(detail::logThreshold())) {
        return;
    }
    const std::string &tag = detail::logTraceTag();
    if (tag.empty()) {
        std::fprintf(stderr, "[%s] %s\n", detail::levelName(level),
                     msg.c_str());
    } else {
        std::fprintf(stderr, "[%s] trace=%s %s\n",
                     detail::levelName(level), tag.c_str(), msg.c_str());
    }
}

/**
 * Abort the process with a message describing an internal invariant
 * violation (a bug in this library, never a user error).
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "[PANIC] %s\n", msg.c_str());
    std::abort();
}

/**
 * Exit the process with a message describing an unrecoverable user error
 * (bad configuration, invalid arguments).
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "[FATAL] %s\n", msg.c_str());
    std::exit(1);
}

} // namespace sirius

#endif // SIRIUS_COMMON_LOGGING_H
