#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"
#include "common/simd.h"

namespace sirius {

void
Matrix::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
matmul(const Matrix &a, const Matrix &b, Matrix &out)
{
    if (a.cols() != b.rows())
        panic("matmul: inner dimensions differ");
    out = Matrix(a.rows(), b.cols());
    // The register-blocked loop nest lives in common/simd.cc (scalar
    // table) and common/simd_body.h (vector tables); both honour the
    // kk-ascending accumulation contract in matrix.h / simd.h.
    simd::kernels().matmulF32(a.data(), a.rows(), a.cols(), b.data(),
                              b.cols(), out.data());
}

void
matvec(const Matrix &m, const std::vector<float> &v, std::vector<float> &out)
{
    if (m.cols() != v.size())
        panic("matvec: dimension mismatch");
    out.resize(m.rows());
    simd::kernels().matvecF32(m.data(), m.rows(), m.cols(), v.data(),
                              out.data());
}

void
reluInPlace(std::vector<float> &v)
{
    simd::kernels().reluF32(v.data(), v.size());
}

void
softmaxInPlace(std::vector<float> &v)
{
    if (v.empty())
        return;
    const float peak = *std::max_element(v.begin(), v.end());
    float sum = 0.0f;
    for (auto &x : v) {
        x = std::exp(x - peak);
        sum += x;
    }
    for (auto &x : v)
        x /= sum;
}

void
logSoftmaxInPlace(std::vector<float> &v)
{
    if (v.empty())
        return;
    const float peak = *std::max_element(v.begin(), v.end());
    double sum = 0.0;
    for (float x : v)
        sum += std::exp(static_cast<double>(x - peak));
    const float log_z = peak + static_cast<float>(std::log(sum));
    for (auto &x : v)
        x -= log_z;
}

float
dot(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        panic("dot: size mismatch");
    float acc = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
logSumExp(const std::vector<double> &xs)
{
    if (xs.empty())
        return -std::numeric_limits<double>::infinity();
    const double peak = *std::max_element(xs.begin(), xs.end());
    if (!std::isfinite(peak))
        return peak;
    double sum = 0.0;
    for (double x : xs)
        sum += std::exp(x - peak);
    return peak + std::log(sum);
}

double
logAdd(double a, double b)
{
    if (a == -std::numeric_limits<double>::infinity())
        return b;
    if (b == -std::numeric_limits<double>::infinity())
        return a;
    const double hi = std::max(a, b);
    const double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

} // namespace sirius
