#include "common/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace sirius {

void
Matrix::fillGaussian(Rng &rng, float mean, float stddev)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.gaussian(mean, stddev));
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

namespace {

// Tile sizes for the register-blocked matmul below: IB x JB output
// accumulators (32 floats) fit the SSE register file with room for the
// broadcast operands, which is what keeps the k sweep out of memory.
constexpr size_t kMatmulRowsPerTile = 4;
constexpr size_t kMatmulColsPerTile = 8;

} // namespace

void
matmul(const Matrix &a, const Matrix &b, Matrix &out)
{
    if (a.cols() != b.rows())
        panic("matmul: inner dimensions differ");
    out = Matrix(a.rows(), b.cols());
    const size_t n = a.rows(), k = a.cols(), m = b.cols();
    constexpr size_t IB = kMatmulRowsPerTile, JB = kMatmulColsPerTile;

    // Register-blocked ikj order. Every out(i,j) is still the sum of
    // a(i,kk)*b(kk,j) over kk ascending — the same per-element addition
    // order as matvec's inner loop, which is what makes batched DNN
    // forwards bitwise-identical to serial ones (see FeedForwardNet).
    // Blocking only changes *where* the partial sums live: a full tile
    // keeps its IB x JB accumulators in registers for the whole k
    // sweep instead of re-streaming the output row through memory on
    // every kk step (~4x on the 128x128xB layers the ASR DNN runs).
    size_t i0 = 0;
    for (; i0 + IB <= n; i0 += IB) {
        size_t j0 = 0;
        for (; j0 + JB <= m; j0 += JB) {
            float acc[IB][JB] = {};
            for (size_t kk = 0; kk < k; ++kk) {
                const float *b_row = b.row(kk) + j0;
                for (size_t i = 0; i < IB; ++i) {
                    const float a_ik = a.row(i0 + i)[kk];
                    for (size_t j = 0; j < JB; ++j)
                        acc[i][j] += a_ik * b_row[j];
                }
            }
            for (size_t i = 0; i < IB; ++i)
                std::memcpy(out.row(i0 + i) + j0, acc[i],
                            JB * sizeof(float));
        }
        for (; j0 < m; ++j0) { // ragged column tail
            for (size_t i = 0; i < IB; ++i) {
                const float *a_row = a.row(i0 + i);
                float acc = 0.0f;
                for (size_t kk = 0; kk < k; ++kk)
                    acc += a_row[kk] * b.row(kk)[j0];
                out.row(i0 + i)[j0] = acc;
            }
        }
    }
    for (; i0 < n; ++i0) { // ragged row tail
        const float *a_row = a.row(i0);
        float *out_row = out.row(i0);
        size_t j0 = 0;
        for (; j0 + JB <= m; j0 += JB) {
            float acc[JB] = {};
            for (size_t kk = 0; kk < k; ++kk) {
                const float a_ik = a_row[kk];
                const float *b_row = b.row(kk) + j0;
                for (size_t j = 0; j < JB; ++j)
                    acc[j] += a_ik * b_row[j];
            }
            std::memcpy(out_row + j0, acc, JB * sizeof(float));
        }
        for (; j0 < m; ++j0) {
            float acc = 0.0f;
            for (size_t kk = 0; kk < k; ++kk)
                acc += a_row[kk] * b.row(kk)[j0];
            out_row[j0] = acc;
        }
    }
}

void
matvec(const Matrix &m, const std::vector<float> &v, std::vector<float> &out)
{
    if (m.cols() != v.size())
        panic("matvec: dimension mismatch");
    out.assign(m.rows(), 0.0f);
    for (size_t r = 0; r < m.rows(); ++r) {
        const float *row = m.row(r);
        float acc = 0.0f;
        for (size_t c = 0; c < m.cols(); ++c)
            acc += row[c] * v[c];
        out[r] = acc;
    }
}

void
reluInPlace(std::vector<float> &v)
{
    for (auto &x : v)
        x = std::max(0.0f, x);
}

void
softmaxInPlace(std::vector<float> &v)
{
    if (v.empty())
        return;
    const float peak = *std::max_element(v.begin(), v.end());
    float sum = 0.0f;
    for (auto &x : v) {
        x = std::exp(x - peak);
        sum += x;
    }
    for (auto &x : v)
        x /= sum;
}

void
logSoftmaxInPlace(std::vector<float> &v)
{
    if (v.empty())
        return;
    const float peak = *std::max_element(v.begin(), v.end());
    double sum = 0.0;
    for (float x : v)
        sum += std::exp(static_cast<double>(x - peak));
    const float log_z = peak + static_cast<float>(std::log(sum));
    for (auto &x : v)
        x -= log_z;
}

float
dot(const std::vector<float> &a, const std::vector<float> &b)
{
    if (a.size() != b.size())
        panic("dot: size mismatch");
    float acc = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
logSumExp(const std::vector<double> &xs)
{
    if (xs.empty())
        return -std::numeric_limits<double>::infinity();
    const double peak = *std::max_element(xs.begin(), xs.end());
    if (!std::isfinite(peak))
        return peak;
    double sum = 0.0;
    for (double x : xs)
        sum += std::exp(x - peak);
    return peak + std::log(sum);
}

double
logAdd(double a, double b)
{
    if (a == -std::numeric_limits<double>::infinity())
        return b;
    if (b == -std::numeric_limits<double>::infinity())
        return a;
    const double hi = std::max(a, b);
    const double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

} // namespace sirius
