#include "common/cache.h"

namespace sirius {

namespace {

/** splitmix64 finalizer: the avalanche core of the content hash. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * One 64-bit lane of the content hash: word-at-a-time absorb with a
 * splitmix64 finalizer per word. Not cryptographic, but two
 * independently seeded lanes give 128 bits of state, which makes an
 * accidental collision across a cache's lifetime negligible.
 */
uint64_t
hashLane(const unsigned char *bytes, size_t size, uint64_t seed)
{
    uint64_t h = mix64(seed ^ (0x9e3779b97f4a7c15ULL + size));
    size_t i = 0;
    for (; i + 8 <= size; i += 8) {
        uint64_t word = 0;
        // memcpy-free little-endian load keeps the hash
        // platform-independent regardless of alignment.
        for (int b = 7; b >= 0; --b)
            word = (word << 8) | bytes[i + static_cast<size_t>(b)];
        h = mix64(h ^ word);
        h = h * 0x2545f4914f6cdd1dULL + 0x9e3779b97f4a7c15ULL;
    }
    if (i < size) {
        uint64_t word = 0;
        for (size_t b = size; b > i; --b)
            word = (word << 8) | bytes[b - 1];
        h = mix64(h ^ word);
    }
    return mix64(h);
}

} // namespace

CacheKey128
hashBytes128(const void *data, size_t bytes, uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    CacheKey128 key;
    key.hi = hashLane(p, bytes, seed ^ 0x8a5cd789635d2dffULL);
    key.lo = hashLane(p, bytes, seed ^ 0x121fd2155c472f96ULL);
    return key;
}

CacheKey128
mixKey(CacheKey128 key, uint64_t word)
{
    key.hi = mix64(key.hi ^ word);
    key.lo = mix64(key.lo ^ mix64(word ^ 0x6c62272e07bb0142ULL));
    return key;
}

void
CacheStats::merge(const CacheStats &other)
{
    hits += other.hits;
    misses += other.misses;
    expired += other.expired;
    bypasses += other.bypasses;
    insertions += other.insertions;
    replaced += other.replaced;
    rejected += other.rejected;
    evictedLru += other.evictedLru;
    evictedExpired += other.evictedExpired;
    entries += other.entries;
    bytes += other.bytes;
}

void
CacheStats::exportTo(MetricsRegistry &registry,
                     const std::string &cache_name) const
{
    const auto outcome = [&](const char *value) {
        return MetricLabels{{"cache", cache_name}, {"outcome", value}};
    };
    registry.counter("sirius_cache_lookups_total", outcome("hit"))
        .add(hits);
    registry.counter("sirius_cache_lookups_total", outcome("miss"))
        .add(misses);
    registry.counter("sirius_cache_lookups_total", outcome("expired"))
        .add(expired);
    registry.counter("sirius_cache_lookups_total", outcome("bypass"))
        .add(bypasses);
    registry.counter("sirius_cache_insertions_total", outcome("stored"))
        .add(insertions);
    registry
        .counter("sirius_cache_insertions_total", outcome("replaced"))
        .add(replaced);
    registry
        .counter("sirius_cache_insertions_total", outcome("rejected"))
        .add(rejected);
    registry.counter("sirius_cache_evictions_total", outcome("lru"))
        .add(evictedLru);
    registry.counter("sirius_cache_evictions_total", outcome("expired"))
        .add(evictedExpired);
    const MetricLabels just_cache{{"cache", cache_name}};
    registry.gauge("sirius_cache_entries", just_cache)
        .set(static_cast<double>(entries));
    registry.gauge("sirius_cache_bytes", just_cache)
        .set(static_cast<double>(bytes));
}

} // namespace sirius
