#include "common/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace sirius {

namespace {

/** The thread's installed context (null when tracing is not active). */
thread_local TraceContext *tlsContext = nullptr;

/** splitmix64: the sampling hash (also the Rng seeding expansion). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::Query: return "query";
      case SpanKind::QueueWait: return "queue_wait";
      case SpanKind::Stage: return "stage";
      case SpanKind::Kernel: return "kernel";
      case SpanKind::Retry: return "retry";
      case SpanKind::Fault: return "fault";
      case SpanKind::Degradation: return "degradation";
      case SpanKind::Route: return "route";
    }
    return "?";
}

bool
spanKindFromName(const std::string &name, SpanKind &out)
{
    for (size_t i = 0; i < kSpanKinds; ++i) {
        const auto kind = static_cast<SpanKind>(i);
        if (name == spanKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

TraceCollector::TraceCollector(size_t capacity, double sample_rate,
                               uint64_t seed)
    : sampleRate_(std::clamp(sample_rate, 0.0, 1.0)), seed_(seed),
      epoch_(std::chrono::steady_clock::now()),
      slots_(std::max<size_t>(capacity, 1))
{
}

bool
TraceCollector::sampled(uint64_t trace_id) const
{
    if (sampleRate_ <= 0.0)
        return false;
    if (sampleRate_ >= 1.0)
        return true;
    // Deterministic head-based decision: hash the id against the rate.
    // 2^64 * rate compared against a uniform 64-bit hash keeps exactly
    // the same ids for the same (seed, rate) on every run.
    const uint64_t hashed = mix64(seed_ ^ trace_id);
    return static_cast<double>(hashed) <
        sampleRate_ * 18446744073709551616.0; // 2^64
}

double
TraceCollector::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

void
TraceCollector::append(SpanRecord record)
{
    // Claim a slot without a global lock; the per-slot guard only
    // contends when two appends race a full ring apart (or a snapshot
    // is copying that very slot).
    const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[seq % slots_.size()];
    std::lock_guard<std::mutex> lock(slot.guard);
    // A slower thread may arrive after the ring lapped its slot; keep
    // the newer span so a snapshot is always the freshest window.
    if (slot.seq > seq + 1) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    if (slot.seq > 0)
        dropped_.fetch_add(1, std::memory_order_relaxed);
    slot.seq = seq + 1;
    slot.record = std::move(record);
}

uint64_t
TraceCollector::appended() const
{
    return next_.load(std::memory_order_relaxed);
}

uint64_t
TraceCollector::dropped() const
{
    return dropped_.load(std::memory_order_relaxed);
}

size_t
TraceCollector::size() const
{
    return static_cast<size_t>(
        std::min<uint64_t>(appended(), slots_.size()));
}

std::vector<SpanRecord>
TraceCollector::snapshot() const
{
    std::vector<std::pair<uint64_t, SpanRecord>> taken;
    taken.reserve(slots_.size());
    for (const Slot &slot : slots_) {
        std::lock_guard<std::mutex> lock(slot.guard);
        if (slot.seq > 0)
            taken.emplace_back(slot.seq, slot.record);
    }
    std::sort(taken.begin(), taken.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<SpanRecord> out;
    out.reserve(taken.size());
    for (auto &[seq, record] : taken)
        out.push_back(std::move(record));
    return out;
}

void
TraceCollector::clear()
{
    for (Slot &slot : slots_) {
        std::lock_guard<std::mutex> lock(slot.guard);
        slot.seq = 0;
        slot.record = SpanRecord{};
    }
    next_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
}

TraceContext::TraceContext(TraceCollector &collector, uint64_t trace_id,
                           uint32_t span_id_base, uint32_t root_parent_id)
    : collector_(collector.sampled(trace_id) ? &collector : nullptr),
      traceId_(trace_id), nextSpanId_(span_id_base + 1),
      rootParentId_(root_parent_id)
{
}

uint32_t
TraceContext::recordSpan(
    SpanKind kind, const std::string &name, double start_seconds,
    double duration_seconds, uint32_t parent_id,
    std::vector<std::pair<std::string, std::string>> attrs)
{
    if (!active())
        return 0;
    SpanRecord record;
    record.traceId = traceId_;
    record.spanId = allocSpanId();
    record.parentId = parent_id;
    record.kind = kind;
    record.name = name;
    record.startSeconds = start_seconds;
    record.durationSeconds = duration_seconds;
    record.attrs = std::move(attrs);
    const uint32_t id = record.spanId;
    sink(std::move(record));
    return id;
}

uint32_t
TraceContext::openRoot()
{
    if (!active())
        return 0;
    rootId_ = allocSpanId();
    currentParent_ = rootId_;
    return rootId_;
}

void
TraceContext::closeRoot(
    const std::string &name, double start_seconds,
    double duration_seconds,
    std::vector<std::pair<std::string, std::string>> attrs)
{
    if (!active() || rootId_ == 0)
        return;
    SpanRecord record;
    record.traceId = traceId_;
    record.spanId = rootId_;
    record.parentId = rootParentId_;
    record.kind = SpanKind::Query;
    record.name = name;
    record.startSeconds = start_seconds;
    record.durationSeconds = duration_seconds;
    record.attrs = std::move(attrs);
    sink(std::move(record));
}

uint32_t
TraceContext::reserveSpanId()
{
    if (!active())
        return 0;
    return allocSpanId();
}

void
TraceContext::recordReserved(
    uint32_t span_id, SpanKind kind, const std::string &name,
    double start_seconds, double duration_seconds, uint32_t parent_id,
    std::vector<std::pair<std::string, std::string>> attrs)
{
    if (!active() || span_id == 0)
        return;
    SpanRecord record;
    record.traceId = traceId_;
    record.spanId = span_id;
    record.parentId = parent_id;
    record.kind = kind;
    record.name = name;
    record.startSeconds = start_seconds;
    record.durationSeconds = duration_seconds;
    record.attrs = std::move(attrs);
    sink(std::move(record));
}

void
TraceContext::bufferSpans()
{
    if (!active())
        return;
    if (buffer_ == nullptr)
        buffer_ = std::make_shared<std::vector<SpanRecord>>();
}

std::vector<SpanRecord>
TraceContext::takeBuffered()
{
    std::vector<SpanRecord> out;
    if (buffer_ != nullptr) {
        out = std::move(*buffer_);
        buffer_.reset();
    }
    return out;
}

void
TraceContext::sink(SpanRecord &&record)
{
    if (buffer_ != nullptr)
        buffer_->push_back(std::move(record));
    else
        collector_->append(std::move(record));
}

void
TraceContext::event(
    SpanKind kind, const std::string &name,
    std::vector<std::pair<std::string, std::string>> attrs)
{
    if (!active())
        return;
    recordSpan(kind, name, collector_->nowSeconds(), 0.0,
               currentParent_, std::move(attrs));
}

TraceContext *
TraceContext::current()
{
    return tlsContext;
}

ScopedTraceActivation::ScopedTraceActivation(TraceContext &context)
    : previous_(tlsContext), previousTag_(detail::logTraceTag())
{
    tlsContext = &context;
    if (context.active()) {
        char tag[32];
        std::snprintf(tag, sizeof(tag), "%08llx",
                      static_cast<unsigned long long>(context.traceId()));
        detail::logTraceTag() = tag;
    }
}

ScopedTraceActivation::~ScopedTraceActivation()
{
    tlsContext = previous_;
    detail::logTraceTag() = previousTag_;
}

Span::Span(const char *name, SpanKind kind)
{
    open(tlsContext, name, kind);
}

Span::Span(TraceContext *context, const char *name, SpanKind kind)
{
    open(context, name, kind);
}

void
Span::open(TraceContext *context, const char *name, SpanKind kind)
{
    if (context == nullptr || !context->active())
        return;
    context_ = context;
    record_.traceId = context->traceId();
    record_.spanId = context->allocSpanId();
    record_.parentId = context->currentParent_;
    record_.kind = kind;
    record_.name = name;
    record_.startSeconds = context->collector_->nowSeconds();
    savedParent_ = context->currentParent_;
    context->currentParent_ = record_.spanId;
}

void
Span::attr(const char *key, std::string value)
{
    if (context_ != nullptr)
        record_.attrs.emplace_back(key, std::move(value));
}

void
Span::end()
{
    if (context_ == nullptr)
        return;
    record_.durationSeconds =
        context_->collector_->nowSeconds() - record_.startSeconds;
    context_->currentParent_ = savedParent_;
    context_->sink(std::move(record_));
    context_ = nullptr;
}

std::string
spanToJson(const SpanRecord &span)
{
    std::string out;
    out.reserve(160 + span.name.size());
    char buf[64];
    out += "{\"trace\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(span.traceId));
    out += buf;
    out += ",\"span\":";
    std::snprintf(buf, sizeof(buf), "%u", span.spanId);
    out += buf;
    out += ",\"parent\":";
    std::snprintf(buf, sizeof(buf), "%u", span.parentId);
    out += buf;
    out += ",\"kind\":";
    appendJsonString(out, spanKindName(span.kind));
    out += ",\"name\":";
    appendJsonString(out, span.name);
    out += ",\"start_s\":";
    std::snprintf(buf, sizeof(buf), "%.9f", span.startSeconds);
    out += buf;
    out += ",\"dur_s\":";
    std::snprintf(buf, sizeof(buf), "%.9f", span.durationSeconds);
    out += buf;
    if (!span.attrs.empty()) {
        out += ",\"attrs\":{";
        bool first = true;
        for (const auto &[key, value] : span.attrs) {
            if (!first)
                out += ',';
            first = false;
            appendJsonString(out, key);
            out += ':';
            appendJsonString(out, value);
        }
        out += '}';
    }
    out += '}';
    return out;
}

bool
spanFromJson(const std::string &line, SpanRecord &out)
{
    JsonScanner scan(line);
    if (!scan.expect('{'))
        return false;
    out = SpanRecord{};
    bool first = true;
    bool sawTrace = false, sawSpan = false, sawKind = false,
         sawName = false;
    while (!scan.peek('}')) {
        if (!first && !scan.expect(','))
            return false;
        first = false;
        std::string key;
        if (!scan.parseString(key) || !scan.expect(':'))
            return false;
        if (key == "kind" || key == "name") {
            std::string value;
            if (!scan.parseString(value))
                return false;
            if (key == "name") {
                out.name = value;
                sawName = true;
            } else {
                if (!spanKindFromName(value, out.kind))
                    return false;
                sawKind = true;
            }
        } else if (key == "attrs") {
            if (!scan.expect('{'))
                return false;
            bool firstAttr = true;
            while (!scan.peek('}')) {
                if (!firstAttr && !scan.expect(','))
                    return false;
                firstAttr = false;
                std::string k, v;
                if (!scan.parseString(k) || !scan.expect(':') ||
                    !scan.parseString(v)) {
                    return false;
                }
                out.attrs.emplace_back(std::move(k), std::move(v));
            }
            if (!scan.expect('}'))
                return false;
        } else {
            double value = 0.0;
            if (!scan.parseNumber(value))
                return false;
            if (key == "trace") {
                out.traceId = static_cast<uint64_t>(value);
                sawTrace = true;
            } else if (key == "span") {
                out.spanId = static_cast<uint32_t>(value);
                sawSpan = true;
            } else if (key == "parent") {
                out.parentId = static_cast<uint32_t>(value);
            } else if (key == "start_s") {
                out.startSeconds = value;
            } else if (key == "dur_s") {
                out.durationSeconds = value;
            }
            // Unknown numeric keys are tolerated for forward compat.
        }
    }
    if (!scan.expect('}') || !scan.done())
        return false;
    return sawTrace && sawSpan && sawKind && sawName;
}

bool
writeTraceJsonl(const std::string &path,
                const std::vector<SpanRecord> &spans, bool append)
{
    std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
    if (!out)
        return false;
    for (const auto &span : spans)
        out << spanToJson(span) << '\n';
    return static_cast<bool>(out);
}

std::vector<SpanRecord>
readTraceJsonl(const std::string &path, size_t *malformed)
{
    std::vector<SpanRecord> spans;
    size_t bad = 0;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        SpanRecord record;
        if (spanFromJson(line, record))
            spans.push_back(std::move(record));
        else
            ++bad;
    }
    if (malformed != nullptr)
        *malformed = bad;
    return spans;
}

} // namespace sirius
