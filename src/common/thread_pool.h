/**
 * @file
 * A simple fixed-size thread pool plus a parallel-for helper.
 *
 * The Sirius Suite multicore (CMP) kernel ports use the same structure the
 * paper describes for its pthread ports: divide the data range across
 * threads, run independently, join once at the end.
 */

#ifndef SIRIUS_COMMON_THREAD_POOL_H
#define SIRIUS_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sirius {

/** Fixed-size worker pool executing enqueued std::function jobs. */
class ThreadPool
{
  public:
    /** @param workers number of worker threads (>= 1). */
    explicit ThreadPool(size_t workers);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Enqueue a job for execution. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void waitIdle();

    /** Number of worker threads. */
    size_t workerCount() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> jobs_;
    std::mutex mutex_;
    std::condition_variable jobReady_;
    std::condition_variable allDone_;
    size_t inFlight_ = 0;
    bool shutdown_ = false;
};

/**
 * Statically partition [0, count) into @p threads contiguous chunks and run
 * @p body(begin, end) on each from its own thread (the paper's pthread
 * porting strategy). Synchronizes once at the end.
 */
void parallelFor(size_t count, size_t threads,
                 const std::function<void(size_t, size_t)> &body);

/**
 * Interleaved variant: thread t handles indices t, t+threads, t+2*threads...
 * Matches the paper's interlaced-array Phi stemmer optimization.
 */
void parallelForStrided(size_t count, size_t threads,
                        const std::function<void(size_t, size_t)> &body);

} // namespace sirius

#endif // SIRIUS_COMMON_THREAD_POOL_H
